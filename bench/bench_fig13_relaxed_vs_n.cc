// Figure 13: BTM with tight vs relaxed lower bounds, varying the trajectory
// length n (ξ fixed). Reports (a) the pruning ratio and (b) the response
// time of both variants — the paper's finding is that relaxed bounds are
// only slightly weaker at pruning but orders of magnitude faster overall.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

struct Cell {
  double pruning_ratio = 0.0;
  double seconds = 0.0;
};

Cell RunVariant(const Trajectory& s, Index xi, bool relaxed) {
  BtmOptions options;
  options.motif.min_length_xi = xi;
  options.relaxed = relaxed;
  MotifStats stats;
  Timer timer;
  const StatusOr<MotifResult> r = BtmMotif(s, Haversine(), options, &stats);
  Cell cell;
  cell.seconds = timer.ElapsedSeconds();
  if (!r.ok()) {
    std::fprintf(stderr, "BTM failed: %s\n", r.status().ToString().c_str());
    std::exit(2);
  }
  cell.pruning_ratio =
      1.0 - static_cast<double>(stats.subsets_evaluated) /
                static_cast<double>(stats.total_subsets);
  return cell;
}

int Main(int argc, char** argv) {
  // Default laptop scale; --full reaches the paper's 1K/5K/10K with ξ=100.
  BenchConfig config =
      ParseBenchConfig(argc, argv, {300, 600, 1000}, {}, 30, 0);
  if (config.full) {
    config.lengths = {1000, 5000, 10000};
    config.xi = 100;
  }
  PrintHeader("Figure 13",
              "BTM tight vs relaxed bounds, varying trajectory length n",
              config);

  TablePrinter table({"n", "pruned% (tight)", "pruned% (relaxed)",
                      "time tight (s)", "time relaxed (s)"});
  for (const std::int64_t n : config.lengths) {
    double tight_ratio = 0.0;
    double relaxed_ratio = 0.0;
    double tight_time = 0.0;
    double relaxed_time = 0.0;
    for (std::int64_t r = 0; r < config.repeats; ++r) {
      const Trajectory s = MakeBenchTrajectory(
          DatasetKind::kGeoLifeLike, static_cast<Index>(n), config, r);
      const Cell tight = RunVariant(s, static_cast<Index>(config.xi), false);
      const Cell relaxed = RunVariant(s, static_cast<Index>(config.xi), true);
      tight_ratio += tight.pruning_ratio;
      relaxed_ratio += relaxed.pruning_ratio;
      tight_time += tight.seconds;
      relaxed_time += relaxed.seconds;
    }
    const double k = static_cast<double>(config.repeats);
    table.AddRow({TablePrinter::Fmt(n),
                  TablePrinter::FmtPercent(tight_ratio / k, 2),
                  TablePrinter::FmtPercent(relaxed_ratio / k, 2),
                  TablePrinter::Fmt(tight_time / k, 3),
                  TablePrinter::Fmt(relaxed_time / k, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 13): both variants prune >80%% of\n"
      "candidates, tight slightly more, but relaxed is much faster.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
