#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/numeric.h"

namespace frechet_motif {
namespace bench {

BenchConfig ParseBenchConfig(int argc, char** argv,
                             const std::vector<std::int64_t>& default_lengths,
                             const std::vector<std::int64_t>& default_xis,
                             std::int64_t default_xi, std::int64_t default_n) {
  Flags flags;
  const Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "flag error: %s\n", s.ToString().c_str());
    std::exit(2);
  }
  BenchConfig config;
  config.full = flags.GetBool("full", false);
  config.repeats = flags.GetInt("repeats", config.full ? 10 : 1);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.lengths = flags.GetIntList("lengths", default_lengths);
  config.xis = flags.GetIntList("xis", default_xis);
  config.xi = flags.GetInt("xi", default_xi);
  config.n = flags.GetInt("n", default_n);
  // Keep the paper's xi/tau ratio (~3): tau=32 belongs with xi=100.
  config.tau = flags.GetInt("tau", config.full ? 32 : 8);
  config.smoke = flags.GetBool("smoke", false);
  config.threads = flags.GetInt("threads", 1);
  if (config.threads < 0) {
    std::fprintf(stderr, "flag error: --threads must be >= 0\n");
    std::exit(2);
  }
  if (flags.Has("json")) {
    const std::string v = flags.GetString("json", "");
    // Bare `--json` parses as the boolean "true"; treat it as the default
    // output path.
    config.json_path = (v.empty() || v == "true") ? "BENCH_kernels.json" : v;
  }
  return config;
}

Trajectory MakeBenchTrajectory(DatasetKind kind, Index length,
                               const BenchConfig& config,
                               std::int64_t repeat) {
  DatasetOptions options;
  options.length = length;
  options.seed = config.seed + 1000003ULL * static_cast<std::uint64_t>(repeat);
  StatusOr<Trajectory> t = MakeDataset(kind, options);
  if (!t.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 t.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(t).value();
}

std::string GitDescribe() {
  // The bench binaries run from (a subdirectory of) the repository, so a
  // plain `git describe` resolves by walking up from the working directory.
  FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128];
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
    out.pop_back();
  }
  return out.empty() ? "unknown" : out;
}

namespace {

/// Escapes the characters JSON string literals cannot contain raw. The
/// values written here (kernel names, git describe) are ASCII, so quotes,
/// backslashes and control characters are the full set.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool WriteKernelJson(const std::string& path, const std::string& bench_name,
                     const BenchConfig& config,
                     const std::vector<KernelResult>& results) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"%s\",\n", JsonEscape(bench_name).c_str());
  std::fprintf(f, "  \"git\": \"%s\",\n", JsonEscape(GitDescribe()).c_str());
  std::fprintf(f, "  \"smoke\": %s,\n", config.smoke ? "true" : "false");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(f, "  \"kernels\": [\n");
  for (std::size_t k = 0; k < results.size(); ++k) {
    const KernelResult& r = results[k];
    std::string extras;
    for (const auto& [key, value] : r.extras) {
      extras += ", \"" + JsonEscape(key) +
                "\": " + DoubleToStringGeneral(value, 10);
    }
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"n\": %lld, \"threads\": %lld, "
                 "\"ns_per_op\": %s, \"iterations\": %lld%s}%s\n",
                 JsonEscape(r.name).c_str(), static_cast<long long>(r.n),
                 static_cast<long long>(r.threads),
                 DoubleToStringFixed(r.ns_per_op, 3).c_str(),
                 static_cast<long long>(r.iterations), extras.c_str(),
                 k + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (%zu kernels)\n", path.c_str(), results.size());
  return true;
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const BenchConfig& config) {
  std::printf("=== %s: %s ===\n", figure.c_str(), description.c_str());
  std::printf("mode=%s repeats=%lld seed=%llu\n\n",
              config.full ? "full (paper-scale)" : "default (laptop-scale)",
              static_cast<long long>(config.repeats),
              static_cast<unsigned long long>(config.seed));
}

}  // namespace bench
}  // namespace frechet_motif
