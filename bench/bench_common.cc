#include "bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace frechet_motif {
namespace bench {

BenchConfig ParseBenchConfig(int argc, char** argv,
                             const std::vector<std::int64_t>& default_lengths,
                             const std::vector<std::int64_t>& default_xis,
                             std::int64_t default_xi, std::int64_t default_n) {
  Flags flags;
  const Status s = flags.Parse(argc, argv);
  if (!s.ok()) {
    std::fprintf(stderr, "flag error: %s\n", s.ToString().c_str());
    std::exit(2);
  }
  BenchConfig config;
  config.full = flags.GetBool("full", false);
  config.repeats = flags.GetInt("repeats", config.full ? 10 : 1);
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  config.lengths = flags.GetIntList("lengths", default_lengths);
  config.xis = flags.GetIntList("xis", default_xis);
  config.xi = flags.GetInt("xi", default_xi);
  config.n = flags.GetInt("n", default_n);
  // Keep the paper's xi/tau ratio (~3): tau=32 belongs with xi=100.
  config.tau = flags.GetInt("tau", config.full ? 32 : 8);
  return config;
}

Trajectory MakeBenchTrajectory(DatasetKind kind, Index length,
                               const BenchConfig& config,
                               std::int64_t repeat) {
  DatasetOptions options;
  options.length = length;
  options.seed = config.seed + 1000003ULL * static_cast<std::uint64_t>(repeat);
  StatusOr<Trajectory> t = MakeDataset(kind, options);
  if (!t.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 t.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(t).value();
}

void PrintHeader(const std::string& figure, const std::string& description,
                 const BenchConfig& config) {
  std::printf("=== %s: %s ===\n", figure.c_str(), description.c_str());
  std::printf("mode=%s repeats=%lld seed=%llu\n\n",
              config.full ? "full (paper-scale)" : "default (laptop-scale)",
              static_cast<long long>(config.repeats),
              static_cast<unsigned long long>(config.seed));
}

}  // namespace bench
}  // namespace frechet_motif
