// Self-timed throughput benchmark of the streaming sliding-window motif
// engine (src/stream/), in the same JSON pipeline as bench_micro_kernels:
//
//   ./bench_stream_throughput [--smoke] [--lengths=256,512] [--xi=N]
//       [--threads=N] [--json[=path]]
//
// For each window length W it replays a GeoLife-like stream through a
// StreamingMotifMonitor (slide step W/16) and measures end-to-end
// points/second, then re-answers every slide from scratch with
// FindMotif(kBtm) on the identical window. Three kernels per W land in
// the JSON:
//
//   stream_ingest       ns per ingested point (searches amortized in)
//   stream_search       ns per slide, incremental engine
//   scratch_search      ns per slide, from-scratch baseline
//
// with extras recording the per-slide DFD-cell counts of both sides and
// their ratio — the acceptance signal that per-update work scales with
// the dirty region (the streaming count stays strictly below the
// from-scratch count), plus points_per_sec on the ingest kernel.
// Distances are asserted bit-identical along the way; a mismatch aborts.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "stream/streaming_motif_monitor.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

struct ReplayMeasurement {
  double ingest_seconds = 0.0;    // whole replay, searches included
  double stream_search_seconds = 0.0;
  double scratch_seconds = 0.0;
  std::int64_t points = 0;
  std::int64_t slides = 0;
  std::int64_t seeded = 0;
  std::int64_t stream_cells = 0;
  std::int64_t scratch_cells = 0;
};

ReplayMeasurement ReplayWindow(Index window, const BenchConfig& config) {
  StreamOptions options;
  options.window_length = window;
  options.slide_step = std::max<Index>(1, window / 16);
  options.min_length_xi =
      config.xi > 0 ? static_cast<Index>(config.xi) : window / 8;
  options.threads = static_cast<int>(config.threads);

  DatasetOptions data;
  data.length = static_cast<Index>(3 * window);
  data.seed = config.seed;
  const Trajectory t = MakeDataset(DatasetKind::kGeoLifeLike, data).value();
  const HaversineMetric metric;

  ReplayMeasurement m;
  auto monitor = StreamingMotifMonitor::Create(options, metric);
  if (!monitor.ok()) {
    std::fprintf(stderr, "monitor: %s\n", monitor.status().ToString().c_str());
    std::exit(1);
  }

  std::vector<StreamUpdate> updates;
  Timer timer;
  for (Index k = 0; k < t.size(); ++k) {
    auto update = monitor.value().Push(t[k]);
    if (!update.ok()) {
      std::fprintf(stderr, "push: %s\n", update.status().ToString().c_str());
      std::exit(1);
    }
    if (update.value().has_value()) updates.push_back(*update.value());
  }
  m.ingest_seconds = timer.ElapsedSeconds();
  m.points = t.size();

  // Re-answer every slide from scratch on the identical window contents.
  // The windows are replayed from the original trajectory via the global
  // start index each update reports.
  for (const StreamUpdate& u : updates) {
    ++m.slides;
    if (u.seeded) ++m.seeded;
    m.stream_search_seconds += u.stats.total_seconds();
    m.stream_cells += u.stats.dfd_cells_computed;

    const Trajectory w = t.Slice(static_cast<Index>(u.window_start),
                                 static_cast<Index>(u.window_start) +
                                     u.window_points - 1);
    MotifStats stats;
    timer.Restart();
    auto scratch = FindMotif(w, metric, options.BaselineOptions(), &stats);
    m.scratch_seconds += timer.ElapsedSeconds();
    if (!scratch.ok()) {
      std::fprintf(stderr, "scratch: %s\n",
                   scratch.status().ToString().c_str());
      std::exit(1);
    }
    m.scratch_cells += stats.dfd_cells_computed;
    if (scratch.value().distance != u.motif.distance) {
      std::fprintf(stderr,
                   "PARITY VIOLATION at window_start=%lld: stream %.17g vs "
                   "scratch %.17g\n",
                   static_cast<long long>(u.window_start), u.motif.distance,
                   scratch.value().distance);
      std::exit(1);
    }
  }
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  using namespace frechet_motif;
  using namespace frechet_motif::bench;

  BenchConfig config = ParseBenchConfig(argc, argv, /*default_lengths=*/
                                        {256, 512}, /*default_xis=*/{},
                                        /*default_xi=*/0, /*default_n=*/0);
  if (config.smoke) config.lengths = {128, 192};
  PrintHeader("stream",
              "Streaming sliding-window motif engine: ingest throughput and "
              "per-slide work vs a from-scratch re-search",
              config);

  std::vector<KernelResult> results;
  for (std::int64_t length : config.lengths) {
    const Index window = static_cast<Index>(length);
    const ReplayMeasurement m = ReplayWindow(window, config);
    const double slides = m.slides > 0 ? static_cast<double>(m.slides) : 1.0;

    KernelResult ingest;
    ingest.name = "stream_ingest";
    ingest.n = window;
    ingest.threads = config.threads;
    ingest.ns_per_op = m.ingest_seconds * 1e9 / static_cast<double>(m.points);
    ingest.iterations = m.points;
    ingest.extras["points_per_sec"] =
        static_cast<double>(m.points) / m.ingest_seconds;
    ingest.extras["slides"] = static_cast<double>(m.slides);
    ingest.extras["seeded_slides"] = static_cast<double>(m.seeded);
    results.push_back(ingest);

    KernelResult stream;
    stream.name = "stream_search";
    stream.n = window;
    stream.threads = config.threads;
    stream.ns_per_op = m.stream_search_seconds * 1e9 / slides;
    stream.iterations = m.slides;
    stream.extras["dfd_cells_per_slide"] =
        static_cast<double>(m.stream_cells) / slides;
    results.push_back(stream);

    KernelResult scratch;
    scratch.name = "scratch_search";
    scratch.n = window;
    scratch.threads = config.threads;
    scratch.ns_per_op = m.scratch_seconds * 1e9 / slides;
    scratch.iterations = m.slides;
    scratch.extras["dfd_cells_per_slide"] =
        static_cast<double>(m.scratch_cells) / slides;
    scratch.extras["stream_cells_ratio"] =
        m.scratch_cells > 0 ? static_cast<double>(m.stream_cells) /
                                  static_cast<double>(m.scratch_cells)
                            : 0.0;
    results.push_back(scratch);

    std::printf(
        "W=%-5d  %9.0f points/s  slides=%lld (%lld seeded)  "
        "cells/slide: stream=%.0f scratch=%.0f (ratio %.3f)\n",
        window, static_cast<double>(m.points) / m.ingest_seconds,
        static_cast<long long>(m.slides), static_cast<long long>(m.seeded),
        static_cast<double>(m.stream_cells) / slides,
        static_cast<double>(m.scratch_cells) / slides,
        m.scratch_cells > 0
            ? static_cast<double>(m.stream_cells) /
                  static_cast<double>(m.scratch_cells)
            : 0.0);
  }

  if (!config.json_path.empty() &&
      !WriteKernelJson(config.json_path, "stream_throughput", config,
                       results)) {
    return 1;
  }
  return 0;
}
