// Figure 19: peak space consumption vs trajectory length n for BTM, GTM
// and GTM* on the three datasets. BTM/GTM hold quadratic structures (the
// dG matrix and the subset list); GTM* stays at O(max{(n/τ)², n}).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "motif/gtm.h"
#include "motif/gtm_star.h"
#include "util/table_printer.h"

namespace frechet_motif {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {200, 400, 800, 1500}, {}, 30, 0);
  if (config.full) {
    config.lengths = {500, 1000, 5000, 10000};
    config.xi = 100;
  }
  PrintHeader("Figure 19", "peak space consumption vs n (MiB)", config);

  for (const DatasetKind kind : kAllDatasetKinds) {
    std::printf("--- %s ---\n", DatasetName(kind).c_str());
    TablePrinter table({"n", "BTM (MiB)", "GTM (MiB)", "GTM* (MiB)"});
    for (const std::int64_t n : config.lengths) {
      const Trajectory s =
          MakeBenchTrajectory(kind, static_cast<Index>(n), config, 0);
      const Index xi = static_cast<Index>(config.xi);
      const Index tau = static_cast<Index>(config.tau);

      MotifStats btm_stats;
      BtmOptions btm;
      btm.motif.min_length_xi = xi;
      if (!BtmMotif(s, Haversine(), btm, &btm_stats).ok()) return 2;

      MotifStats gtm_stats;
      GtmOptions gtm;
      gtm.motif.min_length_xi = xi;
      gtm.group_size_tau = tau;
      if (!GtmMotif(s, Haversine(), gtm, &gtm_stats).ok()) return 2;

      MotifStats star_stats;
      GtmStarOptions star;
      star.motif.min_length_xi = xi;
      star.group_size_tau = tau;
      if (!GtmStarMotif(s, Haversine(), star, &star_stats).ok()) return 2;

      table.AddRow({TablePrinter::Fmt(n),
                    TablePrinter::Fmt(btm_stats.memory.peak_mib(), 2),
                    TablePrinter::Fmt(gtm_stats.memory.peak_mib(), 2),
                    TablePrinter::Fmt(star_stats.memory.peak_mib(), 2)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig 19): BTM and GTM grow quadratically with\n"
      "n; GTM* grows roughly linearly, making it the choice for very long\n"
      "trajectories.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
