#ifndef FRECHET_MOTIF_BENCH_BENCH_COMMON_H_
#define FRECHET_MOTIF_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "data/datasets.h"
#include "util/flags.h"

namespace frechet_motif {
namespace bench {

/// Shared bench configuration parsed from the command line.
///
/// Defaults are laptop-scale so the whole harness finishes in minutes;
/// `--full` switches every sweep to the paper's settings (n up to 10000,
/// ξ up to 400) — expect multi-hour runs for the BruteDP rows, exactly as
/// the paper reports.
struct BenchConfig {
  bool full = false;
  std::int64_t repeats = 1;     // trajectories averaged per cell ("10" in §6.1)
  std::uint64_t seed = 42;
  std::vector<std::int64_t> lengths;  // trajectory-length sweep
  std::vector<std::int64_t> xis;      // minimum-motif-length sweep
  std::int64_t xi = 0;                // fixed ξ for length sweeps
  std::int64_t n = 0;                 // fixed n for ξ sweeps
  std::int64_t tau = 32;

  /// --smoke: shrink every measurement to a CI-sized sanity run (seconds,
  /// not minutes). Timings are still reported but are not meaningful.
  bool smoke = false;

  /// --threads=N: worker threads handed to the algorithms under test
  /// (0 = all hardware threads).
  std::int64_t threads = 1;

  /// --json[=path]: write machine-readable results here ("" disables;
  /// bare --json defaults to BENCH_kernels.json in the working directory).
  std::string json_path;
};

/// Parses flags (--full, --smoke, --repeats=, --seed=, --lengths=, --xis=,
/// --xi=, --n=, --tau=, --threads=, --json[=path]) and fills defaults
/// appropriate for the given bench. Exits the process with a message on
/// malformed flags.
BenchConfig ParseBenchConfig(int argc, char** argv,
                             const std::vector<std::int64_t>& default_lengths,
                             const std::vector<std::int64_t>& default_xis,
                             std::int64_t default_xi, std::int64_t default_n);

/// One measured kernel data point for the machine-readable JSON output.
struct KernelResult {
  /// Kernel identifier, e.g. "dfd_on_range_matrix".
  std::string name;
  /// Problem size the kernel ran at (subtrajectory length, matrix side...).
  std::int64_t n = 0;
  /// Worker threads the kernel used.
  std::int64_t threads = 1;
  /// Mean wall-clock nanoseconds per operation.
  double ns_per_op = 0.0;
  /// Operations timed to produce the mean.
  std::int64_t iterations = 0;
  /// Additional numeric facts about the run (e.g. work counters such as
  /// dfd_cells_per_slide), emitted verbatim as extra JSON fields.
  std::map<std::string, double> extras;
};

/// `git describe --always --dirty` of the working tree the bench runs in,
/// or "unknown" when git is unavailable. Recorded in the JSON output so a
/// benchmark number is always attributable to a commit.
std::string GitDescribe();

/// Writes the result set as a JSON document:
///   {"bench": ..., "git": ..., "smoke": ..., "kernels": [{...}, ...]}
/// Returns false (with a message on stderr) when the file cannot be
/// written.
bool WriteKernelJson(const std::string& path, const std::string& bench_name,
                     const BenchConfig& config,
                     const std::vector<KernelResult>& results);

/// Generates the r-th repeat trajectory for a dataset/length cell
/// (deterministic in config.seed).
Trajectory MakeBenchTrajectory(DatasetKind kind, Index length,
                               const BenchConfig& config, std::int64_t repeat);

/// Prints a standard bench header (figure id, settings).
void PrintHeader(const std::string& figure, const std::string& description,
                 const BenchConfig& config);

}  // namespace bench
}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_BENCH_BENCH_COMMON_H_
