#ifndef FRECHET_MOTIF_BENCH_BENCH_COMMON_H_
#define FRECHET_MOTIF_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "data/datasets.h"
#include "util/flags.h"

namespace frechet_motif {
namespace bench {

/// Shared bench configuration parsed from the command line.
///
/// Defaults are laptop-scale so the whole harness finishes in minutes;
/// `--full` switches every sweep to the paper's settings (n up to 10000,
/// ξ up to 400) — expect multi-hour runs for the BruteDP rows, exactly as
/// the paper reports.
struct BenchConfig {
  bool full = false;
  std::int64_t repeats = 1;     // trajectories averaged per cell ("10" in §6.1)
  std::uint64_t seed = 42;
  std::vector<std::int64_t> lengths;  // trajectory-length sweep
  std::vector<std::int64_t> xis;      // minimum-motif-length sweep
  std::int64_t xi = 0;                // fixed ξ for length sweeps
  std::int64_t n = 0;                 // fixed n for ξ sweeps
  std::int64_t tau = 32;
};

/// Parses flags (--full, --repeats=, --seed=, --lengths=, --xis=, --xi=,
/// --n=, --tau=) and fills defaults appropriate for the given bench. Exits
/// the process with a message on malformed flags.
BenchConfig ParseBenchConfig(int argc, char** argv,
                             const std::vector<std::int64_t>& default_lengths,
                             const std::vector<std::int64_t>& default_xis,
                             std::int64_t default_xi, std::int64_t default_n);

/// Generates the r-th repeat trajectory for a dataset/length cell
/// (deterministic in config.seed).
Trajectory MakeBenchTrajectory(DatasetKind kind, Index length,
                               const BenchConfig& config, std::int64_t repeat);

/// Prints a standard bench header (figure id, settings).
void PrintHeader(const std::string& figure, const std::string& description,
                 const BenchConfig& config);

}  // namespace bench
}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_BENCH_BENCH_COMMON_H_
