// Figure 21: motif discovery *between different trajectories* — response
// time vs trajectory length n for BTM, GTM and GTM* on randomly selected
// trajectory pairs from each dataset (ξ fixed). The paper finds performance
// very similar to the single-trajectory case.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "motif/gtm.h"
#include "motif/gtm_star.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {200, 400, 800, 1500}, {}, 30, 0);
  if (config.full) {
    config.lengths = {500, 1000, 5000, 10000};
    config.xi = 100;
  }
  PrintHeader("Figure 21",
              "two-trajectory motif discovery: response time vs n", config);

  for (const DatasetKind kind : kAllDatasetKinds) {
    std::printf("--- %s (xi=%lld) ---\n", DatasetName(kind).c_str(),
                static_cast<long long>(config.xi));
    TablePrinter table({"n", "BTM (s)", "GTM (s)", "GTM* (s)"});
    for (const std::int64_t n : config.lengths) {
      double times[3] = {0.0, 0.0, 0.0};
      for (std::int64_t r = 0; r < config.repeats; ++r) {
        const Trajectory s =
            MakeBenchTrajectory(kind, static_cast<Index>(n), config, 2 * r);
        const Trajectory t = MakeBenchTrajectory(kind, static_cast<Index>(n),
                                                 config, 2 * r + 1);
        const Index xi = static_cast<Index>(config.xi);
        const Index tau = static_cast<Index>(config.tau);
        {
          BtmOptions options;
          options.motif.min_length_xi = xi;
          Timer timer;
          if (!BtmMotif(s, t, Haversine(), options).ok()) return 2;
          times[0] += timer.ElapsedSeconds();
        }
        {
          GtmOptions options;
          options.motif.min_length_xi = xi;
          options.group_size_tau = tau;
          Timer timer;
          if (!GtmMotif(s, t, Haversine(), options).ok()) return 2;
          times[1] += timer.ElapsedSeconds();
        }
        {
          GtmStarOptions options;
          options.motif.min_length_xi = xi;
          options.group_size_tau = tau;
          Timer timer;
          if (!GtmStarMotif(s, t, Haversine(), options).ok()) return 2;
          times[2] += timer.ElapsedSeconds();
        }
      }
      const double k = static_cast<double>(config.repeats);
      table.AddRow({TablePrinter::Fmt(n), TablePrinter::Fmt(times[0] / k, 3),
                    TablePrinter::Fmt(times[1] / k, 3),
                    TablePrinter::Fmt(times[2] / k, 3)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig 21): very similar to Figure 18's single-\n"
      "trajectory results — the bounds carry over unchanged.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
