// Accuracy/work sweep of the (1+ε) approximate search knob
// (FindMotifOptions / StreamOptions :: approximation_epsilon):
//
//   ./bench_approx_sweep [--smoke] [--n=N] [--xi=N] [--json[=path]]
//
// The workload is a *near-tie* trajectory — a base loop repeated with
// small jitter, so many candidate pairs land within a few percent of the
// optimal distance. That is exactly the regime the exact search pays for
// (every near-tie's lower bound sits just under the threshold and must
// be refined) and the regime ε-pruning is built for (lb·(1+ε) > T
// discharges the whole tie band at the bound level).
//
// For each ε in {0, 0.01, 0.05, 0.1} two legs run:
//
//   batch_search    FindMotif (GTM) over the whole trajectory
//   stream_search   StreamingMotifMonitor replay, per-slide answers
//                   compared against a from-scratch exact search on the
//                   identical window
//
// Each JSON row records the DP-cell count and the achieved-distance
// ratio (reported / exact; streaming reports the worst ratio across all
// slides). The bench enforces the approximation contract as it runs and
// aborts on violation:
//
//   * every ratio is <= 1+ε (per window in the streaming leg), and
//   * the ε=0 rows are bit-identical to the exact baseline
//     (extras.bit_identical_to_exact records the check for the CI gate).
//
// scripts/check_bench_approx.py re-validates the committed
// BENCH_approx.json: cells non-increasing in ε, ratio <= 1+ε per row,
// ε=0 bit-identity flags set.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "stream/streaming_motif_monitor.h"

namespace frechet_motif {
namespace bench {
namespace {

constexpr double kEpsilons[] = {0.0, 0.01, 0.05, 0.1};

/// A base random walk of `period` points repeated `repeats` times, each
/// repeat jittered by up to `jitter` per coordinate: every pair of
/// repeats is a near-optimal motif, so candidate distances cluster in a
/// band of width ~2·jitter above the optimum. Planar coordinates, meant
/// for the Euclidean metric.
Trajectory MakeNearTieWorkload(Index period, int repeats, double step,
                               double jitter, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> angle(0.0, 6.283185307179586);
  std::uniform_real_distribution<double> noise(-jitter, jitter);

  std::vector<Point> base;
  double x = 0.0;
  double y = 0.0;
  base.reserve(static_cast<std::size_t>(period));
  for (Index k = 0; k < period; ++k) {
    const double a = angle(rng);
    x += step * std::cos(a);
    y += step * std::sin(a);
    base.push_back(LatLon(x, y));
  }

  Trajectory t;
  for (int r = 0; r < repeats; ++r) {
    for (const Point& p : base) {
      t.Append(LatLon(p.lat() + noise(rng), p.lon() + noise(rng)));
    }
  }
  return t;
}

void Abort(const char* what, double eps, double ratio) {
  std::fprintf(stderr,
               "APPROXIMATION CONTRACT VIOLATION (%s, eps=%g): ratio %.17g "
               "exceeds 1+eps\n",
               what, eps, ratio);
  std::exit(1);
}

struct BatchRun {
  double distance = 0.0;
  std::int64_t cells = 0;
};

BatchRun RunBatch(const Trajectory& t, Index xi, double eps) {
  FindMotifOptions options;
  options.algorithm = MotifAlgorithm::kGtm;
  options.min_length_xi = xi;
  options.approximation_epsilon = eps;
  MotifStats stats;
  const auto r = FindMotif(t, Euclidean(), options, &stats);
  if (!r.ok()) {
    std::fprintf(stderr, "batch: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  BatchRun out;
  out.distance = r.value().distance;
  out.cells = stats.dfd_cells_computed;
  return out;
}

struct StreamRun {
  std::int64_t slides = 0;
  std::int64_t cells = 0;
  double worst_ratio = 1.0;
  bool bit_identical = true;
};

/// Replays the workload at the given ε and grades every slide against a
/// from-scratch exact (ε=0) search on the identical window. The exact
/// answers are computed once by the caller (they do not depend on ε) and
/// indexed by slide number — every ε leg sees the same slide schedule.
StreamRun RunStream(const Trajectory& t, const StreamOptions& base,
                    double eps, std::vector<double>* exact_by_slide) {
  StreamOptions options = base;
  options.approximation_epsilon = eps;
  auto monitor = StreamingMotifMonitor::Create(options, Euclidean());
  if (!monitor.ok()) {
    std::fprintf(stderr, "monitor: %s\n",
                 monitor.status().ToString().c_str());
    std::exit(1);
  }

  StreamRun m;
  for (Index k = 0; k < t.size(); ++k) {
    auto update = monitor.value().Push(t[k]);
    if (!update.ok()) {
      std::fprintf(stderr, "push: %s\n",
                   update.status().ToString().c_str());
      std::exit(1);
    }
    if (!update.value().has_value()) continue;
    const StreamUpdate& u = *update.value();
    m.cells += u.stats.dfd_cells_computed;

    // Exact per-window baseline, computed on the first (ε=0) leg and
    // replayed for every other ε — the slide schedule is ε-independent.
    const std::size_t slide = static_cast<std::size_t>(m.slides);
    ++m.slides;
    if (slide >= exact_by_slide->size()) {
      const Trajectory w = t.Slice(static_cast<Index>(u.window_start),
                                   static_cast<Index>(u.window_start) +
                                       u.window_points - 1);
      StreamOptions exact_options = base;
      const auto scratch =
          FindMotif(w, Euclidean(), exact_options.BaselineOptions(), nullptr);
      if (!scratch.ok()) {
        std::fprintf(stderr, "scratch: %s\n",
                     scratch.status().ToString().c_str());
        std::exit(1);
      }
      exact_by_slide->push_back(scratch.value().distance);
    }
    const double exact = (*exact_by_slide)[slide];
    if (u.motif.distance != exact) m.bit_identical = false;
    if (exact > 0.0) {
      const double ratio = u.motif.distance / exact;
      if (ratio > m.worst_ratio) m.worst_ratio = ratio;
      if (ratio > (1.0 + eps) * (1.0 + 1e-12)) {
        Abort("stream", eps, ratio);
      }
    }
  }
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  using namespace frechet_motif;
  using namespace frechet_motif::bench;

  BenchConfig config = ParseBenchConfig(argc, argv, /*default_lengths=*/{},
                                        /*default_xis=*/{},
                                        /*default_xi=*/24, /*default_n=*/0);
  // Near-tie geometry: a 64-point loop repeated 10 times with jitter two
  // orders of magnitude below the step, i.e. repeats differ by ~1% of
  // the typical ground distance — inside every tested tie band.
  Index period = 64;
  int repeats = 10;
  const double step = 10.0;
  const double jitter = 0.05;
  if (config.smoke) {
    period = 32;
    repeats = 6;
  }
  const Index xi = static_cast<Index>(config.xi);
  const Trajectory t =
      MakeNearTieWorkload(period, repeats, step, jitter, config.seed);

  PrintHeader("approx",
              "(1+eps) approximate search: DP cells and achieved-distance "
              "ratio vs eps, batch and streaming, near-tie workload",
              config);

  std::vector<KernelResult> results;

  // --- batch leg -----------------------------------------------------------
  const BatchRun exact = RunBatch(t, xi, 0.0);
  for (const double eps : kEpsilons) {
    const BatchRun run = eps == 0.0 ? exact : RunBatch(t, xi, eps);
    const double ratio =
        exact.distance > 0.0 ? run.distance / exact.distance : 1.0;
    if (ratio > (1.0 + eps) * (1.0 + 1e-12)) Abort("batch", eps, ratio);
    const bool bits_equal =
        std::memcmp(&run.distance, &exact.distance, sizeof(double)) == 0;
    if (eps == 0.0 && !bits_equal) {
      std::fprintf(stderr, "eps=0 batch run is not bit-identical\n");
      return 1;
    }

    KernelResult r;
    r.name = "batch_search";
    r.n = t.size();
    r.threads = 1;
    r.iterations = 1;
    r.extras["approx_eps"] = eps;
    r.extras["dfd_cells"] = static_cast<double>(run.cells);
    r.extras["distance_m"] = run.distance;
    r.extras["distance_ratio"] = ratio;
    r.extras["cells_vs_exact"] =
        exact.cells > 0
            ? static_cast<double>(run.cells) / static_cast<double>(exact.cells)
            : 1.0;
    r.extras["bit_identical_to_exact"] = bits_equal ? 1.0 : 0.0;
    results.push_back(r);
    std::printf("batch   eps=%-5g cells=%-10lld ratio=%.6f (%.1f%% of exact "
                "cells)\n",
                eps, static_cast<long long>(run.cells), ratio,
                100.0 * r.extras["cells_vs_exact"]);
  }

  // --- streaming leg -------------------------------------------------------
  StreamOptions stream;
  stream.window_length = static_cast<Index>(3 * period);
  stream.slide_step = std::max<Index>(1, period / 4);
  stream.min_length_xi = xi;
  std::vector<double> exact_by_slide;
  const StreamRun stream_exact = RunStream(t, stream, 0.0, &exact_by_slide);
  if (!stream_exact.bit_identical) {
    std::fprintf(stderr, "eps=0 streaming run is not bit-identical\n");
    return 1;
  }
  for (const double eps : kEpsilons) {
    const StreamRun run =
        eps == 0.0 ? stream_exact : RunStream(t, stream, eps, &exact_by_slide);
    const double slides =
        run.slides > 0 ? static_cast<double>(run.slides) : 1.0;

    KernelResult r;
    r.name = "stream_search";
    r.n = stream.window_length;
    r.threads = 1;
    r.iterations = run.slides;
    r.extras["approx_eps"] = eps;
    r.extras["dfd_cells"] = static_cast<double>(run.cells);
    r.extras["dfd_cells_per_slide"] = static_cast<double>(run.cells) / slides;
    r.extras["max_distance_ratio"] = run.worst_ratio;
    r.extras["cells_vs_exact"] =
        stream_exact.cells > 0 ? static_cast<double>(run.cells) /
                                     static_cast<double>(stream_exact.cells)
                               : 1.0;
    r.extras["bit_identical_to_exact"] = run.bit_identical ? 1.0 : 0.0;
    results.push_back(r);
    std::printf("stream  eps=%-5g cells=%-10lld worst ratio=%.6f (%.1f%% of "
                "exact cells)\n",
                eps, static_cast<long long>(run.cells), run.worst_ratio,
                100.0 * r.extras["cells_vs_exact"]);
  }

  if (!config.json_path.empty() &&
      !WriteKernelJson(config.json_path, "approx_sweep", config, results)) {
    return 1;
  }
  return 0;
}
