// Table 1: trajectory similarity measures, their robustness properties and
// their computation cost. Reproduces both halves of the table: the property
// columns are demonstrated behaviourally, the cost column is measured as
// wall-clock scaling over subtrajectory length ℓ.

#include <cstdio>
#include <functional>
#include <iostream>

#include "bench_common.h"
#include "core/trajectory.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/dtw.h"
#include "similarity/edr.h"
#include "similarity/euclidean.h"
#include "similarity/frechet.h"
#include "similarity/lcss.h"
#include "util/random.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

/// Emulates a denser logger: every second sample is followed by an extra
/// fix a couple of meters away (same position up to GPS noise). A
/// sampling-robust measure should treat the result as the same trajectory.
Trajectory Oversample(const Trajectory& t) {
  Rng rng(99);
  std::vector<Point> points;
  std::vector<double> times;
  for (Index i = 0; i < t.size(); ++i) {
    points.push_back(t[i]);
    times.push_back(t.timestamp(i));
    if (i % 2 == 0 && i + 1 < t.size()) {
      points.push_back(OffsetByMeters(t[i], rng.NextGaussian(0.0, 2.0),
                                      rng.NextGaussian(0.0, 2.0)));
      times.push_back(t.timestamp(i) + 1e-3);
    }
  }
  return Trajectory(std::move(points), std::move(times));
}

double MeasureSeconds(const std::function<void()>& fn, int reps) {
  Timer timer;
  for (int r = 0; r < reps; ++r) fn();
  return timer.ElapsedSeconds() / reps;
}

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {250, 500, 1000, 2000}, {}, 0, 0);
  PrintHeader("Table 1", "distance measures: properties and computation cost",
              config);

  // ---- Property columns, demonstrated behaviourally. -------------------
  const Trajectory base =
      MakeBenchTrajectory(DatasetKind::kGeoLifeLike, 400, config, 0);
  const Trajectory dense = Oversample(base);
  const double eps = 25.0;

  const double dfd_same = DiscreteFrechet(base, dense, Haversine()).value();
  const double dtw_same = DtwDistance(base, dense, Haversine()).value();
  const double edr_same =
      static_cast<double>(EdrDistance(base, dense, Haversine(), eps).value());
  const double lcss_same = LcssDistance(base, dense, Haversine(), eps).value();

  TablePrinter props({"measure", "non-uniform sampling", "local time shift",
                      "cost", "evidence (self vs oversampled self)"});
  props.AddRow({"ED", "no", "no", "O(l)", "undefined (length mismatch)"});
  props.AddRow({"DTW", "no", "yes", "O(l^2)",
                "DTW=" + TablePrinter::Fmt(dtw_same, 1) + " (sums every extra fix)"});
  props.AddRow({"LCSS", "no", "yes", "O(l^2)",
                "dist=" + TablePrinter::Fmt(lcss_same, 3)});
  props.AddRow({"EDR", "no", "yes", "O(l^2)",
                "edits=" + TablePrinter::Fmt(edr_same, 0)});
  props.AddRow({"DFD", "yes", "yes", "O(l^2)",
                "DFD=" + TablePrinter::Fmt(dfd_same, 1) + " m (~GPS noise only)"});
  props.Print(std::cout);
  std::printf("\n");

  // ---- Cost column: measured scaling over length. ----------------------
  TablePrinter cost({"l", "ED (ms)", "DTW (ms)", "LCSS (ms)", "EDR (ms)",
                     "DFD (ms)"});
  for (const std::int64_t l : config.lengths) {
    const Trajectory a = MakeBenchTrajectory(DatasetKind::kGeoLifeLike,
                                             static_cast<Index>(l), config, 1);
    const Trajectory b = MakeBenchTrajectory(DatasetKind::kGeoLifeLike,
                                             static_cast<Index>(l), config, 2);
    const int reps = l <= 500 ? 5 : 2;
    const double ed = MeasureSeconds(
        [&] { (void)EuclideanMeanDistance(a, b, Haversine()); }, reps);
    const double dtw =
        MeasureSeconds([&] { (void)DtwDistance(a, b, Haversine()); }, reps);
    const double lcss = MeasureSeconds(
        [&] { (void)LcssLength(a, b, Haversine(), eps); }, reps);
    const double edr = MeasureSeconds(
        [&] { (void)EdrDistance(a, b, Haversine(), eps); }, reps);
    const double dfd = MeasureSeconds(
        [&] { (void)DiscreteFrechet(a, b, Haversine()); }, reps);
    cost.AddRow({TablePrinter::Fmt(l), TablePrinter::Fmt(ed * 1e3, 3),
                 TablePrinter::Fmt(dtw * 1e3, 3),
                 TablePrinter::Fmt(lcss * 1e3, 3),
                 TablePrinter::Fmt(edr * 1e3, 3),
                 TablePrinter::Fmt(dfd * 1e3, 3)});
  }
  cost.Print(std::cout);
  std::printf(
      "\nExpected shape: ED linear in l; DTW/LCSS/EDR/DFD quadratic.\n"
      "Only DFD keeps the oversampled trajectory at distance ~0.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
