// Figure 18: response time vs trajectory length n for the four algorithms
// (BruteDP, BTM, GTM, GTM*) on the three datasets. BruteDP is skipped
// beyond a cutoff, mirroring the paper's 2-hour termination rule.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {200, 400, 800, 1500}, {}, 30, 0);
  if (config.full) {
    config.lengths = {500, 1000, 5000, 10000};
    config.xi = 100;
  }
  PrintHeader("Figure 18",
              "response time vs n: BruteDP / BTM / GTM / GTM*, 3 datasets",
              config);
  // BruteDP is O(n^4); cap it like the paper caps it at 2 hours.
  const std::int64_t brute_cutoff = config.full ? 1000 : 500;

  for (const DatasetKind kind : kAllDatasetKinds) {
    std::printf("--- %s (xi=%lld, tau=%lld) ---\n",
                DatasetName(kind).c_str(),
                static_cast<long long>(config.xi),
                static_cast<long long>(config.tau));
    TablePrinter table(
        {"n", "BruteDP (s)", "BTM (s)", "GTM (s)", "GTM* (s)"});
    for (const std::int64_t n : config.lengths) {
      double times[4] = {0.0, 0.0, 0.0, 0.0};
      bool brute_ran = n <= brute_cutoff;
      for (std::int64_t r = 0; r < config.repeats; ++r) {
        const Trajectory s =
            MakeBenchTrajectory(kind, static_cast<Index>(n), config, r);
        FindMotifOptions options;
        options.min_length_xi = static_cast<Index>(config.xi);
        options.group_size_tau = static_cast<Index>(config.tau);
        const MotifAlgorithm algos[4] = {
            MotifAlgorithm::kBruteDp, MotifAlgorithm::kBtm,
            MotifAlgorithm::kGtm, MotifAlgorithm::kGtmStar};
        for (int a = 0; a < 4; ++a) {
          if (a == 0 && !brute_ran) continue;
          options.algorithm = algos[a];
          Timer timer;
          const StatusOr<MotifResult> result =
              FindMotif(s, Haversine(), options);
          if (!result.ok()) {
            std::fprintf(stderr, "%s failed: %s\n",
                         AlgorithmName(algos[a]).c_str(),
                         result.status().ToString().c_str());
            return 2;
          }
          times[a] += timer.ElapsedSeconds();
        }
      }
      const double k = static_cast<double>(config.repeats);
      table.AddRow({TablePrinter::Fmt(n),
                    brute_ran ? TablePrinter::Fmt(times[0] / k, 3)
                              : std::string("> cutoff"),
                    TablePrinter::Fmt(times[1] / k, 3),
                    TablePrinter::Fmt(times[2] / k, 3),
                    TablePrinter::Fmt(times[3] / k, 3)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig 18): BruteDP slowest by orders of\n"
      "magnitude; GTM fastest with GTM* the runner-up; all grow with n.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
