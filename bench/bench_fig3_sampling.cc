// Figure 3: DTW vs DFD under non-uniform sampling. S_b is a uniformly
// sampled copy of S_a at a fixed lateral offset; S_c traces the *same*
// geometry as S_a at half that offset but is non-uniformly resampled
// (denser and denser in one region). A sampling-robust measure must rank
// S_c closer to S_a than S_b; DTW inverts the ranking once the oversampling
// is strong enough, DFD never does.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/dtw.h"
#include "similarity/frechet.h"
#include "util/table_printer.h"

namespace frechet_motif {
namespace bench {
namespace {

/// Straight east-bound track of `n` points `spacing` meters apart, shifted
/// `offset_north` meters sideways.
Trajectory StraightTrack(const Point& origin, Index n, double spacing,
                         double offset_north) {
  Trajectory t;
  for (Index i = 0; i < n; ++i) {
    t.Append(OffsetByMeters(origin, i * spacing, offset_north),
             static_cast<double>(i));
  }
  return t;
}

/// The same geometry as StraightTrack but with `factor` extra samples
/// squeezed into the first third of the track (non-uniform sampling).
Trajectory OversampledTrack(const Point& origin, Index n, double spacing,
                            double offset_north, int factor) {
  Trajectory t;
  double clock = 0.0;
  for (Index i = 0; i < n; ++i) {
    const double east = i * spacing;
    t.Append(OffsetByMeters(origin, east, offset_north), clock);
    clock += 1.0;
    if (i < n / 3 && i + 1 < n) {
      for (int k = 1; k <= factor; ++k) {
        const double frac = static_cast<double>(k) / (factor + 1);
        t.Append(OffsetByMeters(origin, east + frac * spacing, offset_north),
                 clock);
        clock += 1.0 / (factor + 1);
      }
    }
  }
  return t;
}

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv, {}, {}, 0, 100);
  PrintHeader("Figure 3", "DTW vs DFD under non-uniform sampling", config);

  const Point origin = LatLon(39.9, 116.4);
  const Index n = static_cast<Index>(config.n);
  const Trajectory sa = StraightTrack(origin, n, 10.0, 0.0);
  const Trajectory sb = StraightTrack(origin, n, 10.0, 20.0);

  const double dtw_ab = DtwDistance(sa, sb, Haversine()).value();
  const double dfd_ab = DiscreteFrechet(sa, sb, Haversine()).value();

  TablePrinter table({"oversampling factor", "DTW(Sa,Sb)", "DTW(Sa,Sc)",
                      "DFD(Sa,Sb) m", "DFD(Sa,Sc) m", "DTW ranking",
                      "DFD ranking"});
  for (const int factor : {0, 1, 2, 4, 8}) {
    const Trajectory sc = OversampledTrack(origin, n, 10.0, 10.0, factor);
    const double dtw_ac = DtwDistance(sa, sc, Haversine()).value();
    const double dfd_ac = DiscreteFrechet(sa, sc, Haversine()).value();
    table.AddRow(
        {TablePrinter::Fmt(static_cast<std::int64_t>(factor)),
         TablePrinter::Fmt(dtw_ab, 1), TablePrinter::Fmt(dtw_ac, 1),
         TablePrinter::Fmt(dfd_ab, 2), TablePrinter::Fmt(dfd_ac, 2),
         dtw_ac < dtw_ab ? "Sc closer (ok)" : "Sb closer (WRONG)",
         dfd_ac < dfd_ab ? "Sc closer (ok)" : "Sb closer (WRONG)"});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 3): Sc is geometrically closer to Sa, so\n"
      "DFD always ranks Sc first; DTW flips to the wrong ranking as the\n"
      "oversampling factor grows.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
