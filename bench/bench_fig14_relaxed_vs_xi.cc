// Figure 14: BTM with tight vs relaxed lower bounds, varying the minimum
// motif length ξ (n fixed). The paper's finding: the tight bounds prune
// slightly more, but the relaxed bounds make motif computation ~10x faster.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {}, {20, 40, 60}, 0, 600);
  if (config.full) {
    config.xis = {100, 200, 300};
    config.n = 5000;
  }
  PrintHeader("Figure 14",
              "BTM tight vs relaxed bounds, varying minimum motif length xi",
              config);

  TablePrinter table({"xi", "pruned% (tight)", "pruned% (relaxed)",
                      "time tight (s)", "time relaxed (s)"});
  for (const std::int64_t xi : config.xis) {
    double ratios[2] = {0.0, 0.0};
    double times[2] = {0.0, 0.0};
    for (std::int64_t r = 0; r < config.repeats; ++r) {
      const Trajectory s = MakeBenchTrajectory(
          DatasetKind::kGeoLifeLike, static_cast<Index>(config.n), config, r);
      for (const bool relaxed : {false, true}) {
        BtmOptions options;
        options.motif.min_length_xi = static_cast<Index>(xi);
        options.relaxed = relaxed;
        MotifStats stats;
        Timer timer;
        const StatusOr<MotifResult> result =
            BtmMotif(s, Haversine(), options, &stats);
        if (!result.ok()) {
          std::fprintf(stderr, "BTM failed: %s\n",
                       result.status().ToString().c_str());
          return 2;
        }
        times[relaxed ? 1 : 0] += timer.ElapsedSeconds();
        ratios[relaxed ? 1 : 0] +=
            1.0 - static_cast<double>(stats.subsets_evaluated) /
                      static_cast<double>(stats.total_subsets);
      }
    }
    const double k = static_cast<double>(config.repeats);
    table.AddRow({TablePrinter::Fmt(xi),
                  TablePrinter::FmtPercent(ratios[0] / k, 2),
                  TablePrinter::FmtPercent(ratios[1] / k, 2),
                  TablePrinter::Fmt(times[0] / k, 3),
                  TablePrinter::Fmt(times[1] / k, 3)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 14): response time grows with xi for both\n"
      "variants; relaxed stays roughly an order of magnitude faster.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
