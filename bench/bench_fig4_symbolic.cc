// Figure 4: why the paper dismisses the symbolic approach. The same tour
// shape driven in different cities maps to the same movement-pattern
// string ("geographically far apart, symbolically identical"), so
// substring matching reports motifs that are not spatially similar at all;
// DFD exposes them. Also measures the cost of the symbolic pipeline as the
// speed-for-semantics trade-off it is.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/frechet.h"
#include "symbolic/symbolic.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

Trajectory FromWaypoints(const Point& origin,
                         const std::vector<Point>& waypoints,
                         Index points_per_leg) {
  Trajectory t;
  double clock = 0.0;
  for (std::size_t w = 0; w + 1 < waypoints.size(); ++w) {
    for (Index k = 0; k < points_per_leg; ++k) {
      const double f =
          static_cast<double>(k) / static_cast<double>(points_per_leg);
      t.Append(OffsetByMeters(
                   origin,
                   waypoints[w].x + f * (waypoints[w + 1].x - waypoints[w].x),
                   waypoints[w].y + f * (waypoints[w + 1].y - waypoints[w].y)),
               clock);
      clock += 1.0;
    }
  }
  t.Append(OffsetByMeters(origin, waypoints.back().x, waypoints.back().y),
           clock);
  return t;
}

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv, {}, {}, 0, 0);
  PrintHeader("Figure 4", "the symbolic approach cannot capture distance",
              config);

  // An 'RVLH'-flavoured tour: right turn onto a vertical run, left turn
  // onto a horizontal run.
  const std::vector<Point> tour = {
      {0, 0}, {600, 0}, {600, 700}, {0, 700}, {0, 0}};
  const Trajectory beijing =
      FromWaypoints(LatLon(39.9042, 116.4074), tour, 25);
  const Trajectory shenzhen =
      FromWaypoints(LatLon(22.5431, 114.0579), tour, 25);

  SymbolizerOptions options;
  options.fragment_length = 10;
  const std::string s1 = SymbolizeTrajectory(beijing, options).value();
  const std::string s2 = SymbolizeTrajectory(shenzhen, options).value();
  const double dfd = DiscreteFrechet(beijing, shenzhen, Haversine()).value();

  TablePrinter table({"trajectory", "symbol string", "DFD to the other"});
  table.AddRow({"square tour in Beijing", s1,
                TablePrinter::Fmt(dfd / 1000.0, 1) + " km"});
  table.AddRow({"square tour in Shenzhen", s2,
                TablePrinter::Fmt(dfd / 1000.0, 1) + " km"});
  table.Print(std::cout);
  std::printf("identical strings: %s -> symbolic matching calls these a "
              "motif;\nDFD places them %.0f km apart.\n\n",
              s1 == s2 ? "YES" : "no", dfd / 1000.0);

  // Cost side: symbolization + substring repeat search vs one exact DFD.
  TablePrinter cost({"n", "symbolic pipeline (ms)", "one exact DFD (ms)"});
  for (const Index n : {500, 1000, 2000}) {
    const Trajectory t =
        MakeBenchTrajectory(DatasetKind::kGeoLifeLike, n, config, 0);
    const Trajectory u =
        MakeBenchTrajectory(DatasetKind::kGeoLifeLike, n, config, 1);
    Timer timer;
    (void)SymbolicMotifDiscovery(t, options, 2);
    const double symbolic_ms = timer.ElapsedMillis();
    timer.Restart();
    (void)DiscreteFrechet(t, u, Haversine());
    const double dfd_ms = timer.ElapsedMillis();
    cost.AddRow({TablePrinter::Fmt(static_cast<std::int64_t>(n)),
                 TablePrinter::Fmt(symbolic_ms, 3),
                 TablePrinter::Fmt(dfd_ms, 3)});
  }
  cost.Print(std::cout);
  std::printf(
      "\nExpected shape: the symbolic pipeline is near-linear and much\n"
      "cheaper than even a single DFD — but its motifs ignore geography\n"
      "(the paper's reason to dismiss it).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
