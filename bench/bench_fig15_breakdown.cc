// Figure 15: breakdown of the candidate subsets pruned by each lower bound
// (LB_cell, rLB_cross, rLB_band) and the fraction that required an exact
// DFD computation — once varying n (a) and once varying ξ (b).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "util/table_printer.h"

namespace frechet_motif {
namespace bench {
namespace {

struct Breakdown {
  double cell = 0.0;
  double cross = 0.0;
  double band = 0.0;
  double dfd = 0.0;
};

Breakdown Run(const Trajectory& s, Index xi) {
  BtmOptions options;
  options.motif.min_length_xi = xi;
  options.collect_breakdown = true;
  MotifStats stats;
  const StatusOr<MotifResult> r = BtmMotif(s, Haversine(), options, &stats);
  if (!r.ok()) {
    std::fprintf(stderr, "BTM failed: %s\n", r.status().ToString().c_str());
    std::exit(2);
  }
  Breakdown b;
  const double total = static_cast<double>(stats.total_subsets);
  b.cell = static_cast<double>(stats.pruned_by_cell) / total;
  b.cross = static_cast<double>(stats.pruned_by_cross) / total;
  b.band = static_cast<double>(stats.pruned_by_band) / total;
  b.dfd = 1.0 - b.cell - b.cross - b.band;
  return b;
}

void PrintTable(const char* label, const std::vector<std::int64_t>& xs,
                const std::vector<Breakdown>& rows) {
  TablePrinter table({label, "LBcell", "rLBcross", "rLBband", "DFD"});
  for (std::size_t k = 0; k < xs.size(); ++k) {
    table.AddRow({TablePrinter::Fmt(xs[k]),
                  TablePrinter::FmtPercent(rows[k].cell, 2),
                  TablePrinter::FmtPercent(rows[k].cross, 2),
                  TablePrinter::FmtPercent(rows[k].band, 2),
                  TablePrinter::FmtPercent(rows[k].dfd, 2)});
  }
  table.Print(std::cout);
}

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {300, 600, 1000}, {20, 40, 60}, 30, 600);
  if (config.full) {
    config.lengths = {1000, 5000, 10000};
    config.xis = {100, 200, 300};
    config.xi = 100;
    config.n = 5000;
  }
  PrintHeader("Figure 15", "pruning-ratio breakdown per bound type", config);

  std::printf("(a) varying trajectory length n (xi=%lld)\n",
              static_cast<long long>(config.xi));
  std::vector<Breakdown> rows_n;
  for (const std::int64_t n : config.lengths) {
    Breakdown acc;
    for (std::int64_t r = 0; r < config.repeats; ++r) {
      const Breakdown b = Run(
          MakeBenchTrajectory(DatasetKind::kGeoLifeLike,
                              static_cast<Index>(n), config, r),
          static_cast<Index>(config.xi));
      acc.cell += b.cell / static_cast<double>(config.repeats);
      acc.cross += b.cross / static_cast<double>(config.repeats);
      acc.band += b.band / static_cast<double>(config.repeats);
      acc.dfd += b.dfd / static_cast<double>(config.repeats);
    }
    rows_n.push_back(acc);
  }
  PrintTable("n", config.lengths, rows_n);

  std::printf("\n(b) varying minimum motif length xi (n=%lld)\n",
              static_cast<long long>(config.n));
  std::vector<Breakdown> rows_xi;
  for (const std::int64_t xi : config.xis) {
    Breakdown acc;
    for (std::int64_t r = 0; r < config.repeats; ++r) {
      const Breakdown b = Run(
          MakeBenchTrajectory(DatasetKind::kGeoLifeLike,
                              static_cast<Index>(config.n), config, r),
          static_cast<Index>(xi));
      acc.cell += b.cell / static_cast<double>(config.repeats);
      acc.cross += b.cross / static_cast<double>(config.repeats);
      acc.band += b.band / static_cast<double>(config.repeats);
      acc.dfd += b.dfd / static_cast<double>(config.repeats);
    }
    rows_xi.push_back(acc);
  }
  PrintTable("xi", config.xis, rows_xi);

  std::printf(
      "\nExpected shape (paper Fig 15): LBcell dominates (>50%%); as xi\n"
      "grows LBcell weakens and rLBband picks up the slack — the bounds\n"
      "complement each other. Over 92%% pruned collectively.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
