// Self-timed throughput benchmark of the fleet streaming engine
// (src/stream/motif_fleet_engine.h) against N independent
// StreamingMotifMonitors fed the identical points, in the same JSON
// pipeline as the other benches:
//
//   ./bench_fleet_throughput [--smoke] [--lengths=256] [--n=STREAMS]
//       [--xi=N] [--threads=N] [--json[=path]]
//
// For each window length W it synthesizes N (--n, default 8) GeoLife-like
// streams of 3W points and replays them three ways:
//
//   monitors         N independent monitors, round-robin pushes — the
//                    pre-fleet baseline.
//   fleet_parity     MotifFleetEngine, unbudgeted: one arrival loop, one
//                    scheduler, one pool. Every per-stream report is
//                    asserted bit-identical to its monitor's (candidate,
//                    distance, flags); a mismatch aborts.
//   fleet_budgeted   MotifFleetEngine with max_searches_per_drain = N/2,
//                    ingesting one slide period per call: half the fleet
//                    defers each drain, so every window coalesces ~2
//                    pending slides per search.
//
// The acceptance signal lands on the fleet_search_budgeted kernel:
// dp_cells_ratio_vs_monitors — total DP cells the budgeted fleet spent
// over the identical ingest, divided by the monitors' total — must stay
// below 1.0 at N >= 8: coalesced searches answer for fewer intermediate
// windows, and each merged search costs far less than the slides it
// replaces. fleet_parity records ratio 1.0 by construction (same
// searches, shared loop) — its win is wall-clock, reported as
// points_per_sec.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "stream/motif_fleet_engine.h"
#include "stream/streaming_motif_monitor.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

struct FleetMeasurement {
  double monitors_seconds = 0.0;
  double parity_seconds = 0.0;
  double budgeted_seconds = 0.0;
  std::int64_t points = 0;
  std::int64_t monitor_slides = 0;
  std::int64_t monitor_cells = 0;
  std::int64_t parity_cells = 0;
  std::int64_t budgeted_slides = 0;
  std::int64_t budgeted_cells = 0;
  std::int64_t coalesced_slides = 0;
};

void Die(const Status& status, const char* where) {
  std::fprintf(stderr, "%s: %s\n", where, status.ToString().c_str());
  std::exit(1);
}

FleetMeasurement ReplayFleet(Index window, Index streams,
                             const BenchConfig& config) {
  StreamOptions stream_options;
  stream_options.window_length = window;
  stream_options.slide_step = std::max<Index>(1, window / 16);
  stream_options.min_length_xi =
      config.xi > 0 ? static_cast<Index>(config.xi) : window / 8;
  stream_options.threads = static_cast<int>(config.threads);

  const HaversineMetric metric;
  std::vector<Trajectory> data;
  for (Index s = 0; s < streams; ++s) {
    DatasetOptions options;
    options.length = static_cast<Index>(3 * window);
    options.seed = config.seed + static_cast<std::uint64_t>(s);
    data.push_back(MakeDataset(DatasetKind::kGeoLifeLike, options).value());
  }
  const Index points_per_stream = data[0].size();

  FleetMeasurement m;
  m.points = static_cast<std::int64_t>(streams) * points_per_stream;

  // --- N independent monitors, round-robin. ---
  std::vector<StreamingMotifMonitor> monitors;
  for (Index s = 0; s < streams; ++s) {
    auto monitor = StreamingMotifMonitor::Create(stream_options, metric);
    if (!monitor.ok()) Die(monitor.status(), "monitor");
    monitors.push_back(std::move(monitor).value());
  }
  std::vector<std::vector<StreamUpdate>> monitor_updates(
      static_cast<std::size_t>(streams));
  Timer timer;
  for (Index k = 0; k < points_per_stream; ++k) {
    for (Index s = 0; s < streams; ++s) {
      auto update = monitors[static_cast<std::size_t>(s)].Push(data[s][k]);
      if (!update.ok()) Die(update.status(), "monitor push");
      if (update.value().has_value()) {
        monitor_updates[static_cast<std::size_t>(s)].push_back(
            *update.value());
      }
    }
  }
  m.monitors_seconds = timer.ElapsedSeconds();
  for (const auto& updates : monitor_updates) {
    m.monitor_slides += static_cast<std::int64_t>(updates.size());
    for (const StreamUpdate& u : updates) {
      m.monitor_cells += u.stats.dfd_cells_computed;
    }
  }

  // --- Fleet, parity mode: same round-robin through one arrival loop. ---
  FleetOptions parity_options;
  parity_options.stream = stream_options;
  auto parity = MotifFleetEngine::Create(parity_options, metric);
  if (!parity.ok()) Die(parity.status(), "fleet");
  for (Index s = 0; s < streams; ++s) {
    if (!parity.value().AddStream().ok()) Die(Status::Internal(""), "add");
  }
  std::vector<std::size_t> parity_seen(static_cast<std::size_t>(streams), 0);
  timer.Restart();
  std::vector<FleetArrival> batch;
  for (Index k = 0; k < points_per_stream; ++k) {
    batch.clear();
    for (Index s = 0; s < streams; ++s) {
      batch.push_back(FleetArrival{static_cast<std::size_t>(s), data[s][k],
                                   false, 0.0});
    }
    auto report = parity.value().Ingest(batch);
    if (!report.ok()) Die(report.status(), "fleet ingest");
    for (const FleetStreamUpdate& fu : report.value().updates) {
      m.parity_cells += fu.update.stats.dfd_cells_computed;
      const std::vector<StreamUpdate>& expected = monitor_updates[fu.stream];
      const std::size_t at = parity_seen[fu.stream]++;
      if (at >= expected.size() ||
          !(expected[at].motif.best == fu.update.motif.best) ||
          expected[at].motif.distance != fu.update.motif.distance ||
          expected[at].seeded != fu.update.seeded ||
          expected[at].carried != fu.update.carried) {
        std::fprintf(stderr,
                     "PARITY VIOLATION: fleet stream %zu update %zu differs "
                     "from its monitor\n",
                     fu.stream, at);
        std::exit(1);
      }
    }
  }
  m.parity_seconds = timer.ElapsedSeconds();
  for (Index s = 0; s < streams; ++s) {
    if (parity_seen[static_cast<std::size_t>(s)] !=
        monitor_updates[static_cast<std::size_t>(s)].size()) {
      std::fprintf(stderr, "PARITY VIOLATION: fleet missed updates\n");
      std::exit(1);
    }
  }

  // --- Fleet, budgeted: one slide period per Ingest, capacity N/2. ---
  FleetOptions budget_options;
  budget_options.stream = stream_options;
  budget_options.max_searches_per_drain =
      std::max(1, static_cast<int>(streams) / 2);
  auto budgeted = MotifFleetEngine::Create(budget_options, metric);
  if (!budgeted.ok()) Die(budgeted.status(), "fleet budgeted");
  for (Index s = 0; s < streams; ++s) {
    if (!budgeted.value().AddStream().ok()) Die(Status::Internal(""), "add");
  }
  timer.Restart();
  const Index slide = stream_options.slide_step;
  for (Index k0 = 0; k0 < points_per_stream; k0 += slide) {
    batch.clear();
    for (Index k = k0; k < std::min(points_per_stream, k0 + slide); ++k) {
      for (Index s = 0; s < streams; ++s) {
        batch.push_back(FleetArrival{static_cast<std::size_t>(s), data[s][k],
                                     false, 0.0});
      }
    }
    auto report = budgeted.value().Ingest(batch);
    if (!report.ok()) Die(report.status(), "fleet budgeted ingest");
    m.budgeted_slides +=
        static_cast<std::int64_t>(report.value().updates.size());
    for (const FleetStreamUpdate& fu : report.value().updates) {
      m.budgeted_cells += fu.update.stats.dfd_cells_computed;
    }
  }
  m.budgeted_seconds = timer.ElapsedSeconds();
  m.coalesced_slides = budgeted.value().stats().coalesced_slides;
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  using namespace frechet_motif;
  using namespace frechet_motif::bench;

  BenchConfig config = ParseBenchConfig(argc, argv, /*default_lengths=*/
                                        {256}, /*default_xis=*/{},
                                        /*default_xi=*/0, /*default_n=*/8);
  if (config.smoke) config.lengths = {128};
  const Index streams =
      static_cast<Index>(std::max<std::int64_t>(2, config.n));
  PrintHeader("fleet",
              "Fleet streaming engine vs N independent monitors: shared "
              "arrival loop (parity) and budgeted slide coalescing",
              config);

  std::vector<KernelResult> results;
  for (std::int64_t length : config.lengths) {
    const Index window = static_cast<Index>(length);
    const FleetMeasurement m = ReplayFleet(window, streams, config);
    const double slides =
        m.monitor_slides > 0 ? static_cast<double>(m.monitor_slides) : 1.0;

    KernelResult monitors;
    monitors.name = "monitors_ingest";
    monitors.n = window;
    monitors.threads = config.threads;
    monitors.ns_per_op =
        m.monitors_seconds * 1e9 / static_cast<double>(m.points);
    monitors.iterations = m.points;
    monitors.extras["streams"] = static_cast<double>(streams);
    monitors.extras["points_per_sec"] =
        static_cast<double>(m.points) / m.monitors_seconds;
    monitors.extras["slides"] = static_cast<double>(m.monitor_slides);
    monitors.extras["dfd_cells_per_slide"] =
        static_cast<double>(m.monitor_cells) / slides;
    results.push_back(monitors);

    KernelResult parity;
    parity.name = "fleet_ingest_parity";
    parity.n = window;
    parity.threads = config.threads;
    parity.ns_per_op = m.parity_seconds * 1e9 / static_cast<double>(m.points);
    parity.iterations = m.points;
    parity.extras["streams"] = static_cast<double>(streams);
    parity.extras["points_per_sec"] =
        static_cast<double>(m.points) / m.parity_seconds;
    parity.extras["dfd_cells_per_slide"] =
        static_cast<double>(m.parity_cells) / slides;
    parity.extras["dp_cells_ratio_vs_monitors"] =
        m.monitor_cells > 0 ? static_cast<double>(m.parity_cells) /
                                  static_cast<double>(m.monitor_cells)
                            : 0.0;
    results.push_back(parity);

    KernelResult budgeted;
    budgeted.name = "fleet_search_budgeted";
    budgeted.n = window;
    budgeted.threads = config.threads;
    budgeted.ns_per_op =
        m.budgeted_seconds * 1e9 / static_cast<double>(m.points);
    budgeted.iterations = m.points;
    budgeted.extras["streams"] = static_cast<double>(streams);
    budgeted.extras["budget"] =
        static_cast<double>(std::max(1, static_cast<int>(streams) / 2));
    budgeted.extras["searches"] = static_cast<double>(m.budgeted_slides);
    budgeted.extras["coalesced_slides"] =
        static_cast<double>(m.coalesced_slides);
    budgeted.extras["dfd_cells_per_slide"] =
        static_cast<double>(m.budgeted_cells) / slides;
    // The acceptance ratio: budgeted-fleet DP cells over the monitors'
    // for the identical ingest. < 1.0 = coalescing pays.
    budgeted.extras["dp_cells_ratio_vs_monitors"] =
        m.monitor_cells > 0 ? static_cast<double>(m.budgeted_cells) /
                                  static_cast<double>(m.monitor_cells)
                            : 0.0;
    results.push_back(budgeted);

    std::printf(
        "W=%-5d N=%-3d monitors %.0f pts/s | fleet parity %.0f pts/s "
        "(cells ratio %.3f) | budgeted: %lld searches (%lld coalesced), "
        "cells ratio %.3f\n",
        window, streams, static_cast<double>(m.points) / m.monitors_seconds,
        static_cast<double>(m.points) / m.parity_seconds,
        m.monitor_cells > 0 ? static_cast<double>(m.parity_cells) /
                                  static_cast<double>(m.monitor_cells)
                            : 0.0,
        static_cast<long long>(m.budgeted_slides),
        static_cast<long long>(m.coalesced_slides),
        m.monitor_cells > 0 ? static_cast<double>(m.budgeted_cells) /
                                  static_cast<double>(m.monitor_cells)
                            : 0.0);
  }

  if (!config.json_path.empty() &&
      !WriteKernelJson(config.json_path, "fleet_throughput", config,
                       results)) {
    return 1;
  }
  return 0;
}
