// Ablations beyond the paper's figures, covering the design choices
// DESIGN.md calls out:
//  (a) best-first order (Algorithm 2's sort) vs plain scan order;
//  (b) end-cell cross pruning (Eq. 9 + the global endpoint caps) on/off;
//  (c) the (1+ε)-approximate mode (Section 7 future work): time and result
//      quality vs ε.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

struct RunResult {
  double seconds = 0.0;
  double distance = 0.0;
  std::int64_t evaluated = 0;
};

RunResult Run(const Trajectory& s, Index xi, bool sorted, bool end_cross,
              double epsilon) {
  BtmOptions options;
  options.motif.min_length_xi = xi;
  options.sort_subsets = sorted;
  options.use_end_cross = end_cross;
  options.approximation_epsilon = epsilon;
  MotifStats stats;
  Timer timer;
  const StatusOr<MotifResult> r = BtmMotif(s, Haversine(), options, &stats);
  if (!r.ok()) {
    std::fprintf(stderr, "BTM failed: %s\n", r.status().ToString().c_str());
    std::exit(2);
  }
  return RunResult{timer.ElapsedSeconds(), r.value().distance,
                   stats.subsets_evaluated};
}

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv, {600, 1200}, {}, 40, 0);
  if (config.full) {
    config.lengths = {2000, 5000};
    config.xi = 100;
  }
  PrintHeader("Ablations",
              "search order, end-cross pruning, (1+eps)-approximation",
              config);
  const Index xi = static_cast<Index>(config.xi);

  std::printf("(a,b) search-order and end-cross ablations\n");
  TablePrinter ab({"n", "sorted+endcross (s)", "scan+endcross (s)",
                   "sorted, no endcross (s)", "subsets evaluated (s+e)"});
  for (const std::int64_t n : config.lengths) {
    const Trajectory s = MakeBenchTrajectory(DatasetKind::kGeoLifeLike,
                                             static_cast<Index>(n), config, 0);
    const RunResult base = Run(s, xi, true, true, 0.0);
    const RunResult scan = Run(s, xi, false, true, 0.0);
    const RunResult no_ec = Run(s, xi, true, false, 0.0);
    ab.AddRow({TablePrinter::Fmt(n), TablePrinter::Fmt(base.seconds, 3),
               TablePrinter::Fmt(scan.seconds, 3),
               TablePrinter::Fmt(no_ec.seconds, 3),
               TablePrinter::Fmt(base.evaluated)});
  }
  ab.Print(std::cout);

  std::printf("\n(c) approximate mode: eps sweep (n=%lld)\n",
              static_cast<long long>(config.lengths.back()));
  const Trajectory s = MakeBenchTrajectory(
      DatasetKind::kGeoLifeLike, static_cast<Index>(config.lengths.back()),
      config, 0);
  const RunResult exact = Run(s, xi, true, true, 0.0);
  TablePrinter approx({"eps", "time (s)", "subsets evaluated",
                       "distance (m)", "vs exact"});
  for (const double eps : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    const RunResult r = Run(s, xi, true, true, eps);
    approx.AddRow(
        {TablePrinter::Fmt(eps, 2), TablePrinter::Fmt(r.seconds, 3),
         TablePrinter::Fmt(r.evaluated), TablePrinter::Fmt(r.distance, 2),
         "x" + TablePrinter::Fmt(
                   exact.distance > 0 ? r.distance / exact.distance : 1.0,
                   3)});
  }
  approx.Print(std::cout);
  std::printf(
      "\nExpected shape: best-first order and end-cross pruning each help;\n"
      "approximation trades bounded distance inflation (<= 1+eps) for\n"
      "fewer DFD evaluations.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
