// Microbenchmarks (google-benchmark) for the computational kernels the
// paper's complexity analysis is built on: the haversine ground distance,
// the O(l^2) DFD dynamic program, the relaxed-bound precomputation pass and
// the group-envelope construction.

#include <benchmark/benchmark.h>

#include "core/distance_matrix.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "motif/group.h"
#include "motif/relaxed_bounds.h"
#include "similarity/frechet.h"

namespace frechet_motif {
namespace {

Trajectory Dataset(Index n) {
  DatasetOptions options;
  options.length = n;
  options.seed = 7;
  return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
}

void BM_HaversineDistance(benchmark::State& state) {
  const Trajectory t = Dataset(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Haversine().Distance(t[0], t[1]));
  }
}
BENCHMARK(BM_HaversineDistance);

void BM_DiscreteFrechet(benchmark::State& state) {
  const Index l = static_cast<Index>(state.range(0));
  DatasetOptions options;
  options.length = l;
  options.seed = 1;
  const Trajectory a =
      MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  options.seed = 2;
  const Trajectory b =
      MakeDataset(DatasetKind::kGeoLifeLike, options).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DiscreteFrechet(a, b, Haversine()));
  }
  state.SetComplexityN(l);
}
BENCHMARK(BM_DiscreteFrechet)->RangeMultiplier(2)->Range(64, 1024)->Complexity();

void BM_DistanceMatrixBuild(benchmark::State& state) {
  const Trajectory t = Dataset(static_cast<Index>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistanceMatrix::Build(t, Haversine()));
  }
}
BENCHMARK(BM_DistanceMatrixBuild)->Arg(256)->Arg(512)->Arg(1024);

void BM_RelaxedBoundsBuild(benchmark::State& state) {
  const Trajectory t = Dataset(static_cast<Index>(state.range(0)));
  const DistanceMatrix dg = DistanceMatrix::Build(t, Haversine()).value();
  MotifOptions options;
  options.min_length_xi = 30;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RelaxedBounds::Build(dg, options));
  }
}
BENCHMARK(BM_RelaxedBoundsBuild)->Arg(256)->Arg(512)->Arg(1024);

void BM_GroupingBuild(benchmark::State& state) {
  const Trajectory t = Dataset(1024);
  const DistanceMatrix dg = DistanceMatrix::Build(t, Haversine()).value();
  MotifOptions options;
  options.min_length_xi = 30;
  const Index tau = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Grouping::Build(dg, options, tau));
  }
}
BENCHMARK(BM_GroupingBuild)->Arg(8)->Arg(32)->Arg(128);

void BM_FrechetOnRange(benchmark::State& state) {
  const Trajectory t = Dataset(512);
  const DistanceMatrix dg = DistanceMatrix::Build(t, Haversine()).value();
  const Index l = static_cast<Index>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DiscreteFrechetOnRange(dg, 0, l - 1, 256, 256 + l - 1));
  }
}
BENCHMARK(BM_FrechetOnRange)->Arg(32)->Arg(128)->Arg(256);

}  // namespace
}  // namespace frechet_motif

BENCHMARK_MAIN();
