// Microbenchmarks for the computational kernels the paper's complexity
// analysis is built on: the haversine ground distance, the dG matrix build,
// the O(l^2) DFD dynamic program (generic virtual-dispatch baseline vs the
// monomorphized matrix path vs the threshold early-exit path), the
// relaxed-bound precomputation pass, the group-envelope construction and
// the end-to-end BTM search (serial and thread-pooled).
//
// Self-contained harness (no Google Benchmark): each kernel is run until a
// minimum wall-clock budget is spent and reported as mean ns/op. With
// --json[=path] the results are also written machine-readably (see
// docs/PERFORMANCE.md for the schema); --smoke shrinks everything to a
// CI-sized sanity run. --threads=N sizes the pooled kernels.

#include <cinttypes>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/distance_matrix.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "motif/group.h"
#include "motif/relaxed_bounds.h"
#include "similarity/frechet.h"
#include "stream/motif_fleet_engine.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace frechet_motif {
namespace {

using bench::BenchConfig;
using bench::KernelResult;

/// Accumulator the kernels fold their outputs into so the optimizer cannot
/// delete the measured work; printed once at the end.
double g_sink = 0.0;

Trajectory Dataset(Index n, std::uint64_t seed) {
  DatasetOptions options;
  options.length = n;
  options.seed = seed;
  return MakeDataset(DatasetKind::kGeoLifeLike, options).value();
}

/// Runs `fn` until the time budget is spent (at least once) and records the
/// mean ns/op under `name`.
KernelResult Measure(const std::string& name, std::int64_t n,
                     std::int64_t threads, double min_seconds,
                     const std::function<void()>& fn) {
  // One untimed warm-up pass populates caches and scratch buffers.
  fn();
  std::int64_t iters = 0;
  Timer timer;
  do {
    fn();
    ++iters;
  } while (timer.ElapsedSeconds() < min_seconds);
  KernelResult r;
  r.name = name;
  r.n = n;
  r.threads = threads;
  r.iterations = iters;
  r.ns_per_op = static_cast<double>(timer.ElapsedNanos()) /
                static_cast<double>(iters);
  std::printf("%-34s n=%-6lld threads=%-2lld %14.1f ns/op  (%lld iters)\n",
              name.c_str(), static_cast<long long>(n),
              static_cast<long long>(threads), r.ns_per_op,
              static_cast<long long>(iters));
  return r;
}

std::vector<KernelResult> RunAll(const BenchConfig& config) {
  std::vector<KernelResult> results;
  const double budget = config.smoke ? 0.02 : 0.25;
  const Index l = config.smoke ? 64 : 256;     // DFD subtrajectory length
  const Index n = config.smoke ? 160 : 512;    // matrix side
  const int threads = ResolveThreadCount(static_cast<int>(config.threads));

  const Trajectory t = Dataset(n, 7);
  const DistanceMatrix dg = DistanceMatrix::Build(t, Haversine()).value();
  FrechetScratch scratch;

  // -- Ground distance ------------------------------------------------
  const Trajectory two = Dataset(2, 7);
  results.push_back(Measure("haversine_distance", 2, 1, budget, [&] {
    g_sink += Haversine().Distance(two[0], two[1]);
  }));

  // -- dG matrix build (blocked, cached unit vectors) -----------------
  results.push_back(Measure("distance_matrix_build", n, 1, budget, [&] {
    g_sink += DistanceMatrix::Build(t, Haversine()).value().Distance(1, 2);
  }));

  // -- The DFD kernel: baseline vs monomorphized vs early-exit --------
  // Each matrix-path row carries the SIMD level it dispatched to
  // (0=scalar 1=sse2 2=avx2 3=avx512) so the committed JSON records what
  // the numbers mean; *_scalar rows pin the level to 0 via the
  // programmatic cap, isolating the vectorization speedup from the
  // monomorphization one.
  const double simd_level = static_cast<double>(ActiveSimdLevel());
  const std::vector<Index> range_lengths =
      config.smoke ? std::vector<Index>{32, 64}
                   : std::vector<Index>{64, 128, 256};
  const Index i0 = 0;
  const Index j0 = n / 2;
  for (const Index len : range_lengths) {
    const auto range_exact =
        DiscreteFrechetOnRange(dg, i0, i0 + len - 1, j0, j0 + len - 1)
            .value();
    results.push_back(
        Measure("dfd_on_range_generic", len, 1, budget, [&] {
          g_sink += DiscreteFrechetOnRangeGeneric(
                        dg, i0, i0 + len - 1, j0, j0 + len - 1,
                        kNoFrechetThreshold, &scratch)
                        .value();
        }));
    results.push_back(Measure("dfd_on_range_matrix", len, 1, budget, [&] {
      g_sink += DiscreteFrechetOnRange(dg, i0, i0 + len - 1, j0,
                                       j0 + len - 1, kNoFrechetThreshold,
                                       &scratch)
                    .value();
    }));
    results.back().extras["simd_level"] = simd_level;
    SetSimdLevelCap(SimdLevel::kScalar);
    results.push_back(
        Measure("dfd_on_range_matrix_scalar", len, 1, budget, [&] {
          g_sink += DiscreteFrechetOnRange(dg, i0, i0 + len - 1, j0,
                                           j0 + len - 1, kNoFrechetThreshold,
                                           &scratch)
                        .value();
        }));
    ClearSimdLevelCap();
    results.push_back(
        Measure("dfd_on_range_matrix_threshold", len, 1, budget, [&] {
          g_sink += DiscreteFrechetOnRange(dg, i0, i0 + len - 1, j0,
                                           j0 + len - 1, range_exact * 0.5,
                                           &scratch)
                        .value();
        }));
    results.back().extras["simd_level"] = simd_level;
    SetSimdLevelCap(SimdLevel::kScalar);
    results.push_back(Measure("dfd_on_range_matrix_threshold_scalar", len, 1,
                              budget, [&] {
                                g_sink += DiscreteFrechetOnRange(
                                              dg, i0, i0 + len - 1, j0,
                                              j0 + len - 1, range_exact * 0.5,
                                              &scratch)
                                              .value();
                              }));
    ClearSimdLevelCap();
  }

  // -- Whole-trajectory kernels ---------------------------------------
  const Trajectory a = Dataset(l, 1);
  const Trajectory b = Dataset(l, 2);
  results.push_back(Measure("discrete_frechet", l, 1, budget, [&] {
    g_sink += DiscreteFrechet(a, b, Haversine(), &scratch).value();
  }));
  results.push_back(Measure("dfd_at_most", l, 1, budget, [&] {
    g_sink += DiscreteFrechetAtMost(a, b, Haversine(), 500.0, &scratch).value()
                  ? 1.0
                  : 0.0;
  }));

  // -- Bound precomputation and grouping ------------------------------
  MotifOptions motif;
  motif.min_length_xi = config.smoke ? 10 : 30;
  results.push_back(Measure("relaxed_bounds_build", n, 1, budget, [&] {
    g_sink += RelaxedBounds::Build(dg, motif).Rmin(1);
  }));
  if (threads > 1) {
    ThreadPool pool(threads);
    results.push_back(
        Measure("relaxed_bounds_build", n, threads, budget, [&] {
          g_sink += RelaxedBounds::Build(dg, motif, &pool).Rmin(1);
        }));
  }
  results.push_back(Measure("grouping_build", n, 1, budget, [&] {
    g_sink += static_cast<double>(
        Grouping::Build(dg, motif, static_cast<Index>(config.tau))
            .num_row_groups());
  }));

  // -- End-to-end search: serial vs pooled ----------------------------
  const double search_budget = config.smoke ? 0.02 : 1.0;
  BtmOptions btm;
  btm.motif = motif;
  results.push_back(Measure("btm_relaxed", n, 1, search_budget, [&] {
    g_sink += BtmMotif(dg, btm).value().distance;
  }));
  if (threads > 1) {
    BtmOptions pooled = btm;
    pooled.motif.threads = threads;
    results.push_back(
        Measure("btm_relaxed", n, threads, search_budget, [&] {
          g_sink += BtmMotif(dg, pooled).value().distance;
        }));
  }

  // -- Fleet drain fan-out: 16 windows, serial vs threaded ------------
  // One op = one Ingest of slide_step points per stream (blocked), which
  // makes all 16 windows due in the same batch-end drain — the threaded
  // fleet fans those searches out one window per lane. Results are
  // bit-identical either way (tests/fleet_drain_test.cc); this measures
  // the wall-clock. `hw_threads` is recorded so the CI gate only
  // compares the curves on machines that actually have the cores.
  constexpr std::size_t kFleetStreams = 16;
  const double hw_threads = static_cast<double>(ResolveThreadCount(0));
  StreamOptions drain_stream;
  drain_stream.window_length = config.smoke ? 70 : 128;
  drain_stream.slide_step = config.smoke ? 10 : 16;
  drain_stream.min_length_xi = config.smoke ? 10 : 16;
  const Index drain_batch = drain_stream.slide_step;
  std::vector<Trajectory> drain_walks;
  for (std::size_t s = 0; s < kFleetStreams; ++s) {
    drain_walks.push_back(Dataset(4096, 500 + s));
  }
  for (const int fleet_threads : {1, 4}) {
    FleetOptions fleet_options;
    fleet_options.stream = drain_stream;
    fleet_options.stream.threads = fleet_threads;
    MotifFleetEngine fleet =
        MotifFleetEngine::Create(fleet_options, Haversine()).value();
    for (std::size_t s = 0; s < kFleetStreams; ++s) {
      g_sink += static_cast<double>(fleet.AddStream().value());
    }
    std::vector<Index> cursor(kFleetStreams, 0);
    const auto ingest_per_stream = [&](Index count) {
      std::vector<FleetArrival> batch;
      batch.reserve(kFleetStreams * static_cast<std::size_t>(count));
      for (std::size_t s = 0; s < kFleetStreams; ++s) {
        for (Index k = 0; k < count; ++k) {
          FleetArrival arrival;
          arrival.stream = s;
          arrival.point =
              drain_walks[s][(cursor[s] + k) % drain_walks[s].size()];
          batch.push_back(arrival);
        }
        cursor[s] = (cursor[s] + count) % drain_walks[s].size();
      }
      g_sink += static_cast<double>(
          fleet.Ingest(batch).value().updates.size());
    };
    ingest_per_stream(drain_stream.window_length);  // fill all windows
    results.push_back(Measure("fleet_drain_16w", kFleetStreams,
                              fleet_threads, search_budget, [&] {
                                ingest_per_stream(drain_batch);
                              }));
    results.back().extras["hw_threads"] = hw_threads;
  }
  return results;
}

int Main(int argc, char** argv) {
  const BenchConfig config =
      bench::ParseBenchConfig(argc, argv, {}, {}, 0, 0);
  bench::PrintHeader("micro-kernels",
                     "per-kernel ns/op (devirtualized DP fast path vs "
                     "virtual-dispatch baseline)",
                     config);

  const std::vector<KernelResult> results = RunAll(config);

  // Headline ratios: the monomorphized matrix path against the PR-1-era
  // virtual-dispatch kernel, per measured size.
  std::printf("\n");
  for (const KernelResult& g : results) {
    if (g.name != "dfd_on_range_generic") continue;
    for (const KernelResult& m : results) {
      if (m.name == "dfd_on_range_matrix" && m.n == g.n &&
          m.ns_per_op > 0.0) {
        std::printf(
            "dfd_on_range speedup (matrix vs generic), n=%-4" PRId64
            ": %.2fx\n",
            g.n, g.ns_per_op / m.ns_per_op);
      }
    }
  }
  std::printf("(sink %g)\n", g_sink);

  if (!config.json_path.empty() &&
      !bench::WriteKernelJson(config.json_path, "bench_micro_kernels", config,
                              results)) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace frechet_motif

int main(int argc, char** argv) { return frechet_motif::Main(argc, argv); }
