// Figure 20: response time vs minimum motif length ξ (n fixed) for BTM,
// GTM and GTM* on the three datasets. Larger ξ disqualifies short motifs
// with small DFD, delaying the discovery of a small best-so-far and thus
// weakening pruning — response time grows with ξ for every method.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {}, {20, 40, 60, 80}, 0, 600);
  if (config.full) {
    config.xis = {100, 200, 300, 400};
    config.n = 5000;
  }
  PrintHeader("Figure 20", "response time vs minimum motif length xi",
              config);

  for (const DatasetKind kind : kAllDatasetKinds) {
    std::printf("--- %s (n=%lld) ---\n", DatasetName(kind).c_str(),
                static_cast<long long>(config.n));
    TablePrinter table({"xi", "BTM (s)", "GTM (s)", "GTM* (s)"});
    for (const std::int64_t xi : config.xis) {
      double times[3] = {0.0, 0.0, 0.0};
      for (std::int64_t r = 0; r < config.repeats; ++r) {
        const Trajectory s =
            MakeBenchTrajectory(kind, static_cast<Index>(config.n), config, r);
        FindMotifOptions options;
        options.min_length_xi = static_cast<Index>(xi);
        options.group_size_tau = static_cast<Index>(config.tau);
        const MotifAlgorithm algos[3] = {MotifAlgorithm::kBtm,
                                         MotifAlgorithm::kGtm,
                                         MotifAlgorithm::kGtmStar};
        for (int a = 0; a < 3; ++a) {
          options.algorithm = algos[a];
          Timer timer;
          const StatusOr<MotifResult> result =
              FindMotif(s, Haversine(), options);
          if (!result.ok()) {
            std::fprintf(stderr, "%s failed: %s\n",
                         AlgorithmName(algos[a]).c_str(),
                         result.status().ToString().c_str());
            return 2;
          }
          times[a] += timer.ElapsedSeconds();
        }
      }
      const double k = static_cast<double>(config.repeats);
      table.AddRow({TablePrinter::Fmt(xi), TablePrinter::Fmt(times[0] / k, 3),
                    TablePrinter::Fmt(times[1] / k, 3),
                    TablePrinter::Fmt(times[2] / k, 3)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper Fig 20): all methods slow down as xi grows;\n"
      "relative ranking unchanged (GTM fastest, GTM* runner-up).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
