// Figure 17: GTM response time as a function of the initial group size τ
// (x-axis, 8..128) for several trajectory lengths n (one line per n).
// The paper observes response time is not overly sensitive to τ, with
// τ = 32 a good default.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/gtm.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {300, 600, 1000}, {}, 30, 0);
  if (config.full) {
    config.lengths = {1000, 5000, 10000};
    config.xi = 100;
  }
  PrintHeader("Figure 17", "GTM response time vs group size tau", config);

  const std::vector<std::int64_t> taus = {8, 16, 32, 64, 128};
  std::vector<std::string> headers = {"tau"};
  for (const std::int64_t n : config.lengths) {
    headers.push_back("n=" + std::to_string(n) + " (s)");
  }
  TablePrinter table(headers);
  for (const std::int64_t tau : taus) {
    std::vector<std::string> row = {TablePrinter::Fmt(tau)};
    for (const std::int64_t n : config.lengths) {
      double total = 0.0;
      for (std::int64_t r = 0; r < config.repeats; ++r) {
        const Trajectory s = MakeBenchTrajectory(
            DatasetKind::kGeoLifeLike, static_cast<Index>(n), config, r);
        GtmOptions options;
        options.motif.min_length_xi = static_cast<Index>(config.xi);
        options.group_size_tau = static_cast<Index>(tau);
        Timer timer;
        const StatusOr<MotifResult> result =
            GtmMotif(s, Haversine(), options);
        if (!result.ok()) {
          std::fprintf(stderr, "GTM failed: %s\n",
                       result.status().ToString().c_str());
          return 2;
        }
        total += timer.ElapsedSeconds();
      }
      row.push_back(
          TablePrinter::Fmt(total / static_cast<double>(config.repeats), 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape (paper Fig 17): a shallow bowl — small tau pays for\n"
      "group bookkeeping, large tau weakens group pruning; tau=32 works\n"
      "well across lengths.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
