// Self-timed benchmark of the durability layer (src/durable/): snapshot
// size and write latency, the journal-append overhead a durable fleet
// pays per ingested point, and — the acceptance signal — recovery time
// versus replaying the whole feed from scratch:
//
//   ./bench_snapshot [--smoke] [--lengths=256] [--n=STREAMS]
//       [--xi=N] [--threads=N] [--json[=path]]
//
// For each window length W it synthesizes N (--n, default 2)
// GeoLife-like streams of 3W points and runs four kernels against a real
// on-disk state directory (a fresh temp dir per run):
//
//   plain_ingest         MotifFleetEngine alone — the no-durability
//                        baseline.
//   durable_ingest       the same feed through DurableFleet: every
//                        released batch is encoded, CRC-framed and
//                        appended to the journal (auto-checkpointing
//                        every 100 records). journal_overhead_ratio is
//                        durable seconds / plain seconds.
//   snapshot_checkpoint  explicit Checkpoint() on the full engine state:
//                        serialize + write + fsync + atomic rename.
//   recovery_open        DurableFleet::Open over a pristine copy of the
//                        run's state dir: newest valid snapshot loaded,
//                        journal tail replayed, then the mandatory
//                        post-recovery rotation. recovery_vs_replay_ratio
//                        (in the paired full_replay kernel) divides this
//                        by a from-scratch re-ingest of every point and
//                        must stay < 1.0 — recovery that loses to a full
//                        replay would make the subsystem pointless.
//
// Reports are written in the same JSON schema as the other benches.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "data/datasets.h"
#include "durable/durable_fleet.h"
#include "geo/metric.h"
#include "stream/motif_fleet_engine.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

void Die(const Status& status, const char* where) {
  std::fprintf(stderr, "%s: %s\n", where, status.ToString().c_str());
  std::exit(1);
}

struct SnapshotMeasurement {
  std::int64_t points = 0;
  double plain_seconds = 0.0;
  double durable_seconds = 0.0;
  double checkpoint_seconds = 0.0;  // mean per checkpoint
  std::int64_t checkpoints = 0;
  std::int64_t snapshot_bytes = 0;
  double recovery_seconds = 0.0;  // mean per Open
  std::int64_t recovery_opens = 0;
  std::int64_t replayed_records = 0;
  double full_replay_seconds = 0.0;
};

/// One full measurement at window length `window`: feed, checkpoint,
/// recover, replay. All state lives under `root` (wiped afterwards).
SnapshotMeasurement Measure(Index window, Index streams,
                            const std::filesystem::path& root,
                            const BenchConfig& config) {
  StreamOptions stream_options;
  stream_options.window_length = window;
  stream_options.slide_step = std::max<Index>(1, window / 16);
  stream_options.min_length_xi =
      config.xi > 0 ? static_cast<Index>(config.xi) : window / 8;
  stream_options.threads = static_cast<int>(config.threads);
  FleetOptions options;
  options.stream = stream_options;

  const HaversineMetric metric;
  std::vector<Trajectory> data;
  for (Index s = 0; s < streams; ++s) {
    DatasetOptions dataset;
    dataset.length = static_cast<Index>(3 * window);
    dataset.seed = config.seed + static_cast<std::uint64_t>(s);
    data.push_back(MakeDataset(DatasetKind::kGeoLifeLike, dataset).value());
  }
  const Index points_per_stream = data[0].size();

  SnapshotMeasurement m;
  m.points = static_cast<std::int64_t>(streams) * points_per_stream;

  // --- Baseline: the same feed with no durability at all. ---
  auto plain = MotifFleetEngine::Create(options, metric);
  if (!plain.ok()) Die(plain.status(), "plain create");
  for (Index s = 0; s < streams; ++s) {
    if (!plain.value().AddStream().ok()) Die(Status::Internal(""), "add");
  }
  Timer timer;
  for (Index k = 0; k < points_per_stream; ++k) {
    for (Index s = 0; s < streams; ++s) {
      auto report =
          plain.value().Push(static_cast<std::size_t>(s), data[s][k]);
      if (!report.ok()) Die(report.status(), "plain push");
    }
  }
  m.plain_seconds = timer.ElapsedSeconds();

  // --- Durable feed: journal every released batch, checkpoint every
  // 100 records, one final Sync (per-record fsync would time the disk,
  // not the layer). ---
  DurableOptions durable_options;
  durable_options.state_dir = (root / "state").string();
  durable_options.checkpoint_interval_records = 100;
  durable_options.sync_each_record = false;
  auto durable = DurableFleet::Open(options, metric, durable_options);
  if (!durable.ok()) Die(durable.status(), "durable open");
  for (Index s = 0; s < streams; ++s) {
    if (!durable.value().AddStream().ok()) Die(Status::Internal(""), "add");
  }
  timer.Restart();
  for (Index k = 0; k < points_per_stream; ++k) {
    for (Index s = 0; s < streams; ++s) {
      auto report =
          durable.value().Push(static_cast<std::size_t>(s), data[s][k]);
      if (!report.ok()) Die(report.status(), "durable push");
    }
  }
  if (!durable.value().Sync().ok()) Die(Status::Internal(""), "sync");
  m.durable_seconds = timer.ElapsedSeconds();

  std::string snapshot;
  if (!durable.value().engine().Snapshot(&snapshot).ok()) {
    Die(Status::Internal(""), "snapshot");
  }
  m.snapshot_bytes = static_cast<std::int64_t>(snapshot.size());

  // Freeze the post-feed state (journal tail included) before the
  // explicit checkpoints below rotate it away.
  const std::filesystem::path pristine = root / "pristine";
  std::filesystem::copy(root / "state", pristine,
                        std::filesystem::copy_options::recursive);

  // --- Explicit checkpoint cost: serialize + write + fsync + rename. ---
  m.checkpoints = config.smoke ? 3 : 10;
  timer.Restart();
  for (std::int64_t c = 0; c < m.checkpoints; ++c) {
    if (!durable.value().Checkpoint().ok()) {
      Die(Status::Internal(""), "checkpoint");
    }
  }
  m.checkpoint_seconds =
      timer.ElapsedSeconds() / static_cast<double>(m.checkpoints);

  // --- Recovery: Open over a copy of the pristine state. Each Open
  // consumes its copy (recovery rotates the journal), so every
  // iteration gets a fresh one. ---
  m.recovery_opens = config.smoke ? 3 : 10;
  double recovery_total = 0.0;
  for (std::int64_t r = 0; r < m.recovery_opens; ++r) {
    const std::filesystem::path copy = root / "recover";
    std::filesystem::remove_all(copy);
    std::filesystem::copy(pristine, copy,
                          std::filesystem::copy_options::recursive);
    DurableOptions recover_options = durable_options;
    recover_options.state_dir = copy.string();
    timer.Restart();
    auto recovered = DurableFleet::Open(options, metric, recover_options);
    recovery_total += timer.ElapsedSeconds();
    if (!recovered.ok()) Die(recovered.status(), "recovery open");
    if (!recovered.value().recovery().restored_snapshot) {
      Die(Status::Internal("recovery found no snapshot"), "recovery");
    }
    m.replayed_records = static_cast<std::int64_t>(
        recovered.value().recovery().replayed_records);
  }
  m.recovery_seconds =
      recovery_total / static_cast<double>(m.recovery_opens);

  // --- The alternative to recovery: replay the entire feed. ---
  auto replay = MotifFleetEngine::Create(options, metric);
  if (!replay.ok()) Die(replay.status(), "replay create");
  for (Index s = 0; s < streams; ++s) {
    if (!replay.value().AddStream().ok()) Die(Status::Internal(""), "add");
  }
  timer.Restart();
  for (Index k = 0; k < points_per_stream; ++k) {
    for (Index s = 0; s < streams; ++s) {
      auto report =
          replay.value().Push(static_cast<std::size_t>(s), data[s][k]);
      if (!report.ok()) Die(report.status(), "replay push");
    }
  }
  m.full_replay_seconds = timer.ElapsedSeconds();
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  using namespace frechet_motif;
  using namespace frechet_motif::bench;
  BenchConfig config = ParseBenchConfig(argc, argv, /*default_lengths=*/
                                        {256}, /*default_xis=*/{},
                                        /*default_xi=*/0, /*default_n=*/2);
  if (config.smoke) config.lengths = {128};
  if (config.json_path == "BENCH_kernels.json") {
    config.json_path = "BENCH_snapshot.json";
  }
  const Index streams =
      static_cast<Index>(std::max<std::int64_t>(1, config.n));
  PrintHeader("snapshot",
              "Durability layer: snapshot latency, journal overhead, and "
              "recovery time vs full replay",
              config);

  std::error_code ec;
  const std::filesystem::path root =
      std::filesystem::temp_directory_path(ec) / "fmotif_bench_snapshot";
  std::filesystem::remove_all(root, ec);
  std::filesystem::create_directories(root, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", root.string().c_str(),
                 ec.message().c_str());
    return 1;
  }

  std::vector<KernelResult> results;
  for (std::int64_t length : config.lengths) {
    const Index window = static_cast<Index>(length);
    const SnapshotMeasurement m = Measure(window, streams, root, config);
    std::filesystem::remove_all(root, ec);
    std::filesystem::create_directories(root, ec);
    const double points = static_cast<double>(m.points);

    KernelResult plain;
    plain.name = "plain_ingest";
    plain.n = window;
    plain.threads = config.threads;
    plain.ns_per_op = m.plain_seconds * 1e9 / points;
    plain.iterations = m.points;
    plain.extras["streams"] = static_cast<double>(streams);
    plain.extras["points_per_sec"] = points / m.plain_seconds;
    results.push_back(plain);

    KernelResult durable;
    durable.name = "durable_ingest";
    durable.n = window;
    durable.threads = config.threads;
    durable.ns_per_op = m.durable_seconds * 1e9 / points;
    durable.iterations = m.points;
    durable.extras["streams"] = static_cast<double>(streams);
    durable.extras["points_per_sec"] = points / m.durable_seconds;
    durable.extras["journal_overhead_ratio"] =
        m.plain_seconds > 0.0 ? m.durable_seconds / m.plain_seconds : 0.0;
    results.push_back(durable);

    KernelResult checkpoint;
    checkpoint.name = "snapshot_checkpoint";
    checkpoint.n = window;
    checkpoint.threads = config.threads;
    checkpoint.ns_per_op = m.checkpoint_seconds * 1e9;
    checkpoint.iterations = m.checkpoints;
    checkpoint.extras["snapshot_bytes"] =
        static_cast<double>(m.snapshot_bytes);
    results.push_back(checkpoint);

    KernelResult recovery;
    recovery.name = "recovery_open";
    recovery.n = window;
    recovery.threads = config.threads;
    recovery.ns_per_op = m.recovery_seconds * 1e9;
    recovery.iterations = m.recovery_opens;
    recovery.extras["replayed_records"] =
        static_cast<double>(m.replayed_records);
    results.push_back(recovery);

    KernelResult replay;
    replay.name = "full_replay";
    replay.n = window;
    replay.threads = config.threads;
    replay.ns_per_op = m.full_replay_seconds * 1e9 / points;
    replay.iterations = m.points;
    replay.extras["seconds"] = m.full_replay_seconds;
    replay.extras["recovery_vs_replay_ratio"] =
        m.full_replay_seconds > 0.0
            ? m.recovery_seconds / m.full_replay_seconds
            : 0.0;
    results.push_back(replay);

    std::printf(
        "W=%-5d snapshot %lld B, checkpoint %.2f ms, recovery %.2f ms "
        "(%lld records replayed), full replay %.2f ms, ratio %.3f\n",
        window, static_cast<long long>(m.snapshot_bytes),
        m.checkpoint_seconds * 1e3, m.recovery_seconds * 1e3,
        static_cast<long long>(m.replayed_records),
        m.full_replay_seconds * 1e3,
        m.full_replay_seconds > 0.0
            ? m.recovery_seconds / m.full_replay_seconds
            : 0.0);
  }
  std::filesystem::remove_all(root, ec);

  if (!config.json_path.empty() &&
      !WriteKernelJson(config.json_path, "snapshot", config, results)) {
    return 1;
  }
  return 0;
}
