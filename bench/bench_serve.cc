// Self-timed throughput/latency benchmark of the serve tier
// (src/serve/motif_server.h) driven over real kernel sockets
// (socketpair(2) wrapped in PosixServeSocket), in the same JSON
// pipeline as the other benches:
//
//   ./bench_serve [--smoke] [--lengths=128] [--xi=N] [--json[=path]]
//
// For each fleet size N in {1, 4, 8} it replays N GeoLife-like streams
// two ways over a window of W points (--lengths, default 128):
//
//   fleet_direct_ingest   MotifFleetEngine fed FleetArrival batches in
//                         process — the no-wire baseline.
//   serve_wire_ingest     the same points as CSV rows through a feeder
//                         socketpair into MotifServer, with one
//                         subscribed connection receiving every report
//                         frame over a second socketpair — parse,
//                         ingest, serialize, and socket I/O included.
//
// Each round-robin batch (one point per stream) is timed end to end —
// from the client write(2) of the rows to the last report frame drained
// from the subscriber's socket — giving a push-latency distribution;
// the JSON records points/sec plus the p99 of those batch latencies.
// The run aborts if the server drops or miscounts anything: ingest over
// the wire must be lossless (frames_dropped = 0, every point acked).

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "serve/motif_server.h"
#include "serve/serve_socket.h"
#include "stream/motif_fleet_engine.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

struct ServeMeasurement {
  double direct_seconds = 0.0;
  double serve_seconds = 0.0;
  double p99_latency_us = 0.0;
  std::int64_t points = 0;
  std::int64_t frames_pushed = 0;
  std::int64_t frames_dropped = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
};

void Die(const Status& status, const char* where) {
  std::fprintf(stderr, "%s: %s\n", where, status.ToString().c_str());
  std::exit(1);
}

/// One end of a socketpair, adopted by the server; the other end stays
/// with the bench as a plain fd (non-blocking, so drains terminate).
struct WirePair {
  std::unique_ptr<ServeSocket> server_side;
  int client_fd = -1;
};

WirePair MakePair(const char* label) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    std::perror("socketpair");
    std::exit(1);
  }
  const int flags = ::fcntl(fds[1], F_GETFL, 0);
  ::fcntl(fds[1], F_SETFL, flags | O_NONBLOCK);
  WirePair pair;
  pair.server_side = std::make_unique<PosixServeSocket>(fds[0], label);
  pair.client_fd = fds[1];
  return pair;
}

void WriteAll(int fd, const std::string& bytes) {
  std::size_t at = 0;
  while (at < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + at, bytes.size() - at);
    if (n > 0) {
      at += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    std::perror("write");
    std::exit(1);
  }
}

/// Reads everything currently buffered on `fd` (non-blocking).
std::size_t DrainFd(int fd) {
  char buf[16 * 1024];
  std::size_t total = 0;
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    total += static_cast<std::size_t>(n);
  }
  return total;
}

ServeMeasurement ReplayServe(Index window, Index streams,
                             const BenchConfig& config) {
  StreamOptions stream_options;
  stream_options.window_length = window;
  stream_options.slide_step = std::max<Index>(1, window / 16);
  stream_options.min_length_xi =
      config.xi > 0 ? static_cast<Index>(config.xi) : window / 8;

  const HaversineMetric metric;
  std::vector<Trajectory> data;
  for (Index s = 0; s < streams; ++s) {
    DatasetOptions options;
    options.length = static_cast<Index>(2 * window);
    options.seed = config.seed + static_cast<std::uint64_t>(s);
    data.push_back(MakeDataset(DatasetKind::kGeoLifeLike, options).value());
  }
  const Index points_per_stream = data[0].size();

  ServeMeasurement m;
  m.points = static_cast<std::int64_t>(streams) * points_per_stream;

  // --- In-process baseline: the engine fed the same batches directly. ---
  FleetOptions fleet_options;
  fleet_options.stream = stream_options;
  auto direct = MotifFleetEngine::Create(fleet_options, metric);
  if (!direct.ok()) Die(direct.status(), "fleet");
  for (Index s = 0; s < streams; ++s) {
    if (!direct.value().AddStream().ok()) Die(Status::Internal(""), "add");
  }
  Timer timer;
  std::vector<FleetArrival> batch;
  for (Index k = 0; k < points_per_stream; ++k) {
    batch.clear();
    for (Index s = 0; s < streams; ++s) {
      batch.push_back(
          FleetArrival{static_cast<std::size_t>(s), data[s][k], false, 0.0});
    }
    if (!direct.value().Ingest(batch).ok()) Die(Status::Internal(""), "ingest");
  }
  m.direct_seconds = timer.ElapsedSeconds();

  // --- The same points over the wire: feeder + subscriber sockets. ---
  ServeOptions serve_options;
  serve_options.fleet = fleet_options;
  auto server = MotifServer::Create(serve_options, metric);
  if (!server.ok()) Die(server.status(), "server");

  WirePair feed = MakePair("bench-feed");
  WirePair sub = MakePair("bench-sub");
  const int feed_fd = feed.client_fd;
  const int sub_fd = sub.client_fd;
  std::int64_t now = 0;
  const MotifServer::ConnId feed_id =
      server.value().OnAccept(std::move(feed.server_side), now);
  const MotifServer::ConnId sub_id =
      server.value().OnAccept(std::move(sub.server_side), now);
  WriteAll(sub_fd, "SUB reports\n");
  server.value().OnReadable(sub_id, now);
  DrainFd(sub_fd);   // hello + subscribed
  DrainFd(feed_fd);  // hello

  // Pre-render every round-robin batch so row formatting stays outside
  // the timed region.
  std::vector<std::string> wire_batches;
  wire_batches.reserve(static_cast<std::size_t>(points_per_stream));
  for (Index k = 0; k < points_per_stream; ++k) {
    std::string rows;
    for (Index s = 0; s < streams; ++s) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%zu,%.8f,%.8f\n",
                    static_cast<std::size_t>(s), data[s][k].lat(),
                    data[s][k].lon());
      rows += buf;
    }
    wire_batches.push_back(std::move(rows));
  }

  std::vector<double> latencies_us;
  latencies_us.reserve(wire_batches.size());
  timer.Restart();
  Timer sample;
  for (const std::string& rows : wire_batches) {
    sample.Restart();
    WriteAll(feed_fd, rows);
    server.value().OnReadable(feed_id, ++now);
    while (server.value().WantsWrite(sub_id)) {
      server.value().OnWritable(sub_id, now);
      DrainFd(sub_fd);
    }
    DrainFd(sub_fd);
    latencies_us.push_back(sample.ElapsedSeconds() * 1e6);
  }
  m.serve_seconds = timer.ElapsedSeconds();

  const ServeStats& stats = server.value().stats();
  if (stats.points_ingested != m.points || stats.frames_dropped != 0 ||
      stats.parse_errors != 0) {
    std::fprintf(stderr,
                 "WIRE LOSS: ingested %lld of %lld points, %lld dropped "
                 "frames, %lld parse errors\n",
                 static_cast<long long>(stats.points_ingested),
                 static_cast<long long>(m.points),
                 static_cast<long long>(stats.frames_dropped),
                 static_cast<long long>(stats.parse_errors));
    std::exit(1);
  }
  m.frames_pushed = stats.frames_pushed;
  m.frames_dropped = stats.frames_dropped;
  m.bytes_in = stats.bytes_in;
  m.bytes_out = stats.bytes_out;

  std::sort(latencies_us.begin(), latencies_us.end());
  const std::size_t p99_at =
      latencies_us.size() - 1 -
      std::min(latencies_us.size() - 1, latencies_us.size() / 100);
  m.p99_latency_us = latencies_us[p99_at];

  if (!server.value().Shutdown().ok()) Die(Status::Internal(""), "shutdown");
  ::close(feed_fd);
  ::close(sub_fd);
  return m;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  using namespace frechet_motif;
  using namespace frechet_motif::bench;

  BenchConfig config = ParseBenchConfig(argc, argv, /*default_lengths=*/
                                        {128}, /*default_xis=*/{},
                                        /*default_xi=*/0, /*default_n=*/0);
  if (config.smoke) config.lengths = {64};
  PrintHeader("serve",
              "Serve tier over socketpairs vs direct engine ingest: wire "
              "overhead, push throughput, and p99 batch latency",
              config);

  std::vector<KernelResult> results;
  for (std::int64_t length : config.lengths) {
    const Index window = static_cast<Index>(length);
    for (Index streams : {Index{1}, Index{4}, Index{8}}) {
      const ServeMeasurement m = ReplayServe(window, streams, config);

      KernelResult direct;
      direct.name = "fleet_direct_ingest";
      direct.n = streams;
      direct.ns_per_op =
          m.direct_seconds * 1e9 / static_cast<double>(m.points);
      direct.iterations = m.points;
      direct.extras["window"] = static_cast<double>(window);
      direct.extras["points_per_sec"] =
          static_cast<double>(m.points) / m.direct_seconds;
      results.push_back(direct);

      KernelResult serve;
      serve.name = "serve_wire_ingest";
      serve.n = streams;
      serve.ns_per_op = m.serve_seconds * 1e9 / static_cast<double>(m.points);
      serve.iterations = m.points;
      serve.extras["window"] = static_cast<double>(window);
      serve.extras["points_per_sec"] =
          static_cast<double>(m.points) / m.serve_seconds;
      serve.extras["p99_push_latency_us"] = m.p99_latency_us;
      serve.extras["frames_pushed"] = static_cast<double>(m.frames_pushed);
      serve.extras["frames_dropped"] = static_cast<double>(m.frames_dropped);
      serve.extras["bytes_in"] = static_cast<double>(m.bytes_in);
      serve.extras["bytes_out"] = static_cast<double>(m.bytes_out);
      // Wire tax: serve-path time over the in-process engine's for the
      // identical ingest (parse + frames + socket I/O).
      serve.extras["wire_overhead_ratio"] =
          m.direct_seconds > 0.0 ? m.serve_seconds / m.direct_seconds : 0.0;
      results.push_back(serve);

      std::printf(
          "W=%-5d N=%-3d direct %.0f pts/s | wire %.0f pts/s "
          "(overhead x%.2f, p99 push %.0f us, %lld report frames)\n",
          window, streams, static_cast<double>(m.points) / m.direct_seconds,
          static_cast<double>(m.points) / m.serve_seconds,
          m.direct_seconds > 0.0 ? m.serve_seconds / m.direct_seconds : 0.0,
          m.p99_latency_us, static_cast<long long>(m.frames_pushed));
    }
  }

  if (!config.json_path.empty() &&
      !WriteKernelJson(config.json_path, "serve_throughput", config,
                       results)) {
    return 1;
  }
  return 0;
}
