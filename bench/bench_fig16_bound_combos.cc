// Figure 16: response time of BTM using (i) LB_cell only, (ii) LB_cell +
// rLB_cross, (iii) LB_cell + rLB_cross + rLB_band — varying n (a) and ξ (b).
// Verifies that the bounds complement each other: each addition helps.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "geo/metric.h"
#include "motif/btm.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

double RunCombo(const Trajectory& s, Index xi, bool cross, bool band) {
  BtmOptions options;
  options.motif.min_length_xi = xi;
  options.use_cell = true;
  options.use_cross = cross;
  options.use_band = band;
  Timer timer;
  const StatusOr<MotifResult> r = BtmMotif(s, Haversine(), options);
  if (!r.ok()) {
    std::fprintf(stderr, "BTM failed: %s\n", r.status().ToString().c_str());
    std::exit(2);
  }
  return timer.ElapsedSeconds();
}

int Main(int argc, char** argv) {
  BenchConfig config =
      ParseBenchConfig(argc, argv, {300, 600, 1000}, {20, 40, 60}, 30, 600);
  if (config.full) {
    config.lengths = {1000, 5000, 10000};
    config.xis = {100, 200, 300};
    config.xi = 100;
    config.n = 5000;
  }
  PrintHeader("Figure 16", "response time of bound combinations", config);

  std::printf("(a) varying trajectory length n (xi=%lld)\n",
              static_cast<long long>(config.xi));
  TablePrinter by_n({"n", "LBcell (s)", "+rLBcross (s)", "+rLBband (s)"});
  for (const std::int64_t n : config.lengths) {
    double t1 = 0.0;
    double t2 = 0.0;
    double t3 = 0.0;
    for (std::int64_t r = 0; r < config.repeats; ++r) {
      const Trajectory s = MakeBenchTrajectory(
          DatasetKind::kGeoLifeLike, static_cast<Index>(n), config, r);
      const Index xi = static_cast<Index>(config.xi);
      t1 += RunCombo(s, xi, false, false);
      t2 += RunCombo(s, xi, true, false);
      t3 += RunCombo(s, xi, true, true);
    }
    const double k = static_cast<double>(config.repeats);
    by_n.AddRow({TablePrinter::Fmt(n), TablePrinter::Fmt(t1 / k, 3),
                 TablePrinter::Fmt(t2 / k, 3), TablePrinter::Fmt(t3 / k, 3)});
  }
  by_n.Print(std::cout);

  std::printf("\n(b) varying minimum motif length xi (n=%lld)\n",
              static_cast<long long>(config.n));
  TablePrinter by_xi({"xi", "LBcell (s)", "+rLBcross (s)", "+rLBband (s)"});
  for (const std::int64_t xi : config.xis) {
    double t1 = 0.0;
    double t2 = 0.0;
    double t3 = 0.0;
    for (std::int64_t r = 0; r < config.repeats; ++r) {
      const Trajectory s = MakeBenchTrajectory(
          DatasetKind::kGeoLifeLike, static_cast<Index>(config.n), config, r);
      t1 += RunCombo(s, static_cast<Index>(xi), false, false);
      t2 += RunCombo(s, static_cast<Index>(xi), true, false);
      t3 += RunCombo(s, static_cast<Index>(xi), true, true);
    }
    const double k = static_cast<double>(config.repeats);
    by_xi.AddRow({TablePrinter::Fmt(xi), TablePrinter::Fmt(t1 / k, 3),
                  TablePrinter::Fmt(t2 / k, 3),
                  TablePrinter::Fmt(t3 / k, 3)});
  }
  by_xi.Print(std::cout);

  std::printf(
      "\nExpected shape (paper Fig 16): each added bound reduces response\n"
      "time; the gains are not attributable to a single bound.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
