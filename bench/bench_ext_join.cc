// Extension benchmark: the DFD similarity join (Section 7 outlook) —
// throughput with and without the pruning cascade, and the cascade's
// per-stage resolution breakdown.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "geo/metric.h"
#include "join/similarity_join.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace frechet_motif {
namespace bench {
namespace {

std::vector<Trajectory> MakeCollection(Index count, Index length,
                                       const BenchConfig& config) {
  std::vector<Trajectory> out;
  for (Index k = 0; k < count; ++k) {
    out.push_back(
        MakeBenchTrajectory(DatasetKind::kGeoLifeLike, length, config, k));
  }
  return out;
}

int Main(int argc, char** argv) {
  BenchConfig config = ParseBenchConfig(argc, argv, {}, {}, 0, 0);
  PrintHeader("Join extension",
              "DFD similarity self-join: cascade on/off, stage breakdown",
              config);

  const Index count = static_cast<Index>(config.full ? 120 : 60);
  const Index length = 150;
  const std::vector<Trajectory> trajectories =
      MakeCollection(count, length, config);

  TablePrinter table({"theta (m)", "matches", "with cascade (s)",
                      "no cascade (s)", "speedup", "bbox%", "endpoint%",
                      "hausdorff%", "exact%"});
  for (const double theta : {100.0, 500.0, 2000.0}) {
    JoinOptions options;
    options.threshold = theta;
    JoinStats stats;
    Timer timer;
    const StatusOr<std::vector<JoinPair>> pruned =
        DfdSelfJoin(trajectories, Haversine(), options, &stats);
    const double with_cascade = timer.ElapsedSeconds();
    if (!pruned.ok()) return 2;

    options.use_pruning = false;
    timer.Restart();
    const StatusOr<std::vector<JoinPair>> plain =
        DfdSelfJoin(trajectories, Haversine(), options);
    const double no_cascade = timer.ElapsedSeconds();
    if (!plain.ok()) return 2;
    if (pruned.value().size() != plain.value().size()) {
      std::fprintf(stderr, "cascade changed the result!\n");
      return 2;
    }

    const double total = static_cast<double>(stats.pairs_total);
    table.AddRow(
        {TablePrinter::Fmt(theta, 0),
         TablePrinter::Fmt(static_cast<std::int64_t>(pruned.value().size())),
         TablePrinter::Fmt(with_cascade, 3), TablePrinter::Fmt(no_cascade, 3),
         "x" + TablePrinter::Fmt(no_cascade / std::max(1e-9, with_cascade), 1),
         TablePrinter::FmtPercent(static_cast<double>(stats.pruned_bbox) / total, 1),
         TablePrinter::FmtPercent(static_cast<double>(stats.pruned_endpoints) / total, 1),
         TablePrinter::FmtPercent(static_cast<double>(stats.pruned_hausdorff) / total, 1),
         TablePrinter::FmtPercent(static_cast<double>(stats.decided_exact) / total, 1)});
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: small thresholds resolve almost entirely in the\n"
      "cheap stages (big speedup); large thresholds force exact decisions.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace frechet_motif

int main(int argc, char** argv) {
  return frechet_motif::bench::Main(argc, argv);
}
