#ifndef FRECHET_MOTIF_PUBLIC_SERVE_H_
#define FRECHET_MOTIF_PUBLIC_SERVE_H_

/// \file
/// Public serve surface: motif-as-a-service over TCP, robustness-first.
///
/// `MotifServer` is the transport-independent core of `fmotif serve`: a
/// single-threaded server that accepts line-delimited point ingest
/// (`stream,lat,lon[,ts]` — the fleet CSV dialect) plus subscription
/// commands (`SUB reports|join|all`, `UNSUB`, `PING`, `STATS`, `QUIT`),
/// routes arrivals into a `MotifFleetEngine` (journaled through
/// `DurableFleet` when a state directory is configured), and pushes
/// per-slide reports and join deltas to subscribers as newline-delimited
/// single-line JSON frames.
///
/// ```
/// ServeOptions options;                    // fleet + limits + durability
/// options.fleet.stream.window_length = 64;
/// auto server = MotifServer::Create(options, Haversine());
/// auto listener = PosixListener::Create("127.0.0.1", 0);
/// ServeLoopOptions loop;
/// loop.stop = &g_interrupted;              // SIGTERM/SIGINT flag
/// RunServeLoop(server.value(), listener.value(), loop);
/// server.value().Shutdown();               // durable checkpoint
/// ```
///
/// Robustness guarantees (enforced by tests/serve_fault_test.cc over the
/// injectable `ServeSocket` seam): a malformed, oversized, or torn
/// protocol line answers with an `error` frame and never kills the
/// process; a slow subscriber loses oldest broadcast frames (counted,
/// and reported via `dropped` frames) and is evicted past a high-water
/// mark, but can never stall ingest; admission control sheds connections
/// past `ServeLimits::max_connections`; and a graceful drain flushes
/// every subscriber before `Shutdown` checkpoints. A surviving
/// subscriber's report stream is bit-identical to a batch
/// `MotifFleetEngine` oracle fed the same acknowledged points.

#include "serve/motif_server.h"
#include "serve/serve_loop.h"
#include "serve/serve_socket.h"

#endif  // FRECHET_MOTIF_PUBLIC_SERVE_H_
