#ifndef FRECHET_MOTIF_PUBLIC_FRECHET_MOTIF_H_
#define FRECHET_MOTIF_PUBLIC_FRECHET_MOTIF_H_

/// \file
/// Umbrella header: the entire public API of the frechet_motif library.
///
/// The library reproduces Tang, Yiu, Mouratidis, Wang — *Efficient Motif
/// Discovery in Spatial Trajectories Using Discrete Fréchet Distance*
/// (EDBT 2017) — and its Section 7 extensions. Everything lives in
/// `namespace frechet_motif`.
///
/// Typical use:
///
/// ```
/// #include <frechet_motif/frechet_motif.h>
/// namespace fm = frechet_motif;
///
/// fm::StatusOr<fm::Trajectory> t = fm::ReadCsv("trace.csv");
/// fm::FindMotifOptions options;              // GTM, ξ = 100, τ = 32
/// auto result = fm::FindMotif(t.value(), fm::Haversine(), options);
/// // result->best holds (i, ie, j, je); result->distance the DFD.
/// ```
///
/// Applications that care about compile time can include the per-subsystem
/// headers instead:
///  * `<frechet_motif/status.h>` — `Status` / `StatusOr<T>` error model;
///  * `<frechet_motif/trajectory.h>` — trajectory model, metrics, I/O,
///    simplification, summaries;
///  * `<frechet_motif/options.h>` — shared motif options and result types;
///  * `<frechet_motif/similarity.h>` — DFD kernels + Table 1 measures;
///  * `<frechet_motif/motif.h>` — FindMotif front door, BTM/GTM/GTM*,
///    top-k;
///  * `<frechet_motif/stream.h>` — incremental sliding-window motif
///    maintenance over live point streams;
///  * `<frechet_motif/fleet.h>` — N streams behind one arrival loop,
///    scheduler and incremental ε-join (MotifFleetEngine);
///  * `<frechet_motif/durable.h>` — crash-safe snapshot + journal
///    persistence for the streaming engines (DurableFleet);
///  * `<frechet_motif/join.h>` — DFD similarity join, batch and
///    incremental;
///  * `<frechet_motif/cluster.h>` — subtrajectory clustering;
///  * `<frechet_motif/symbolic.h>` — the symbolic baseline of Figure 4;
///  * `<frechet_motif/datasets.h>` — reproducible synthetic datasets.
///
/// Headers under `frechet_motif/impl/` (installed alongside these) are
/// internal: they back the public surface but carry no stability promise.
/// See CONTRIBUTING.md for the public-API stability rule.

#include "frechet_motif/cluster.h"
#include "frechet_motif/datasets.h"
#include "frechet_motif/durable.h"
#include "frechet_motif/fleet.h"
#include "frechet_motif/join.h"
#include "frechet_motif/motif.h"
#include "frechet_motif/options.h"
#include "frechet_motif/serve.h"
#include "frechet_motif/similarity.h"
#include "frechet_motif/status.h"
#include "frechet_motif/stream.h"
#include "frechet_motif/symbolic.h"
#include "frechet_motif/trajectory.h"

#endif  // FRECHET_MOTIF_PUBLIC_FRECHET_MOTIF_H_
