#ifndef FRECHET_MOTIF_PUBLIC_CLUSTER_H_
#define FRECHET_MOTIF_PUBLIC_CLUSTER_H_

/// \file
/// Public subtrajectory-clustering surface: group the sliding windows of
/// one trajectory into star-shaped clusters around a reference window — a
/// motif generalized from "the best pair" to "all repetitions" (Section 7
/// outlook, in the spirit of Buchin et al.'s commuting patterns).
///
/// `ClusterSubtrajectories()` greedily extracts pairwise window-disjoint
/// clusters; `BestSubtrajectoryCluster()` exposes the single-cluster
/// primitive. `ClusterOptions` sets the window length, stride, membership
/// threshold θ (meters) and minimum cluster size.

#include "cluster/subtrajectory_cluster.h"

#endif  // FRECHET_MOTIF_PUBLIC_CLUSTER_H_
