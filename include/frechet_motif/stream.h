#ifndef FRECHET_MOTIF_PUBLIC_STREAM_H_
#define FRECHET_MOTIF_PUBLIC_STREAM_H_

/// \file
/// Public streaming surface: incremental sliding-window motif
/// maintenance for live trajectory feeds.
///
/// `StreamingMotifMonitor` ingests points one at a time (or in batches)
/// into a bounded window of the last W points, and re-derives the
/// window's motif on a fixed cadence without ever rebuilding state from
/// scratch: the ground-distance matrix is maintained as a ring buffer
/// (one fresh row/column per arrival, O(1) eviction), the relaxed-bound
/// minima are updated under eviction, and each search carries the
/// previous window's motif distance forward as its pruning threshold.
///
/// ```
/// StreamOptions options;                     // W = 512, slide 32, ξ = 100
/// auto monitor = StreamingMotifMonitor::Create(options, Haversine());
/// for (const Point& p : feed) {
///   auto update = monitor.value().Push(p);
///   if (update.ok() && update.value().has_value()) {
///     // update->motif is bit-identical to FindMotif over the window
///     // with options.BaselineOptions().
///   }
/// }
/// ```
///
/// Every per-slide answer reports exactly the window's optimal motif
/// distance — bit-identical to a from-scratch `FindMotif` on the
/// identical window configured with `StreamOptions::BaselineOptions()`;
/// streaming trades no exactness for its incrementality. The reported
/// *pair* is also bit-identical whenever the optimum is uniquely
/// attained; when several pairs tie at exactly the optimal distance, a
/// carried slide keeps the previous pair (shifted) while a from-scratch
/// run re-breaks the tie from its own enumeration — the one divergence
/// possible, spelled out in the StreamingMotifMonitor contract. The
/// `fmotif stream` subcommand exposes the same engine on the command
/// line.

#include "stream/streaming_motif_monitor.h"

#endif  // FRECHET_MOTIF_PUBLIC_STREAM_H_
