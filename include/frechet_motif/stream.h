#ifndef FRECHET_MOTIF_PUBLIC_STREAM_H_
#define FRECHET_MOTIF_PUBLIC_STREAM_H_

/// \file
/// Public streaming surface: incremental sliding-window motif
/// maintenance for live trajectory feeds.
///
/// `StreamingMotifMonitor` ingests points one at a time (or in batches)
/// into a bounded window of the last W points, and re-derives the
/// window's motif on a fixed cadence without ever rebuilding state from
/// scratch: the ground-distance matrix is maintained as a ring buffer
/// (one fresh row/column per arrival, O(1) eviction), the relaxed-bound
/// minima are updated under eviction, and each search carries the
/// previous window's motif distance forward as its pruning threshold.
///
/// ```
/// StreamOptions options;                     // W = 512, slide 32, ξ = 100
/// auto monitor = StreamingMotifMonitor::Create(options, Haversine());
/// for (const Point& p : feed) {
///   auto update = monitor.value().Push(p);
///   if (update.ok() && update.value().has_value()) {
///     // update->motif is bit-identical to FindMotif over the window
///     // with options.BaselineOptions().
///   }
/// }
/// ```
///
/// Every per-slide answer — candidate *and* distance, exact ties
/// included — is bit-identical to a from-scratch `FindMotif` on the
/// identical window configured with `StreamOptions::BaselineOptions()`;
/// streaming trades no exactness for its incrementality. (Equal-distance
/// candidates resolve everywhere to the canonical lexicographic
/// (i, j, ie, je) minimum — see `CandidateOrderedBefore` — which is what
/// makes the parity exact even on adversarial tied data.) The `fmotif
/// stream` subcommand exposes the same engine on the command line; for
/// many streams behind one arrival loop, see `<frechet_motif/fleet.h>`.

#include "stream/ingest_frontend.h"
#include "stream/streaming_motif_monitor.h"
#include "stream/window_state.h"

#endif  // FRECHET_MOTIF_PUBLIC_STREAM_H_
