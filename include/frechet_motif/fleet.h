#ifndef FRECHET_MOTIF_PUBLIC_FLEET_H_
#define FRECHET_MOTIF_PUBLIC_FLEET_H_

/// \file
/// Public fleet-streaming surface: N sliding-window motif monitors'
/// worth of state behind one arrival loop, one scheduler and one worker
/// pool, with an incrementally maintained DFD ε-join across the fleet's
/// windows.
///
/// `MotifFleetEngine` maintains one bounded window per registered
/// stream. Arrivals — single points or multiplexed batches, optionally
/// timestamped and optionally re-ordered through a per-stream watermark
/// buffer (`FleetOptions::reorder_capacity`) — flow through one ingest
/// loop; due re-searches are ordered by a dirty-cell/staleness scheduler
/// and can be budgeted (`FleetOptions::max_searches_per_drain`) so a
/// busy fleet coalesces pending slides instead of falling behind.
///
/// ```
/// FleetOptions options;                  // W = 512, slide 32, ξ = 100
/// options.join_epsilon = 250.0;          // maintain the ε-join too
/// auto engine = MotifFleetEngine::Create(options, Haversine());
/// std::size_t a = engine.value().AddStream().value();
/// std::size_t b = engine.value().AddStream().value();
/// auto report = engine.value().Ingest({{a, pa}, {b, pb}});
/// // report->updates: per-slide motifs, bit-identical to independent
/// // monitors (and to from-scratch FindMotif on each window);
/// // report->join_delta: stream pairs entering/leaving ε.
/// ```
///
/// Guarantees (proofs in the implementation headers): in the default
/// unbudgeted mode each stream's report sequence is **bit-identical** to
/// an independent `StreamingMotifMonitor`; every reported motif is
/// bit-identical to a from-scratch `FindMotif` on its window (ties
/// included); and the accumulated join deltas equal a from-scratch
/// `DfdSelfJoin` over the current window snapshots. The `fmotif fleet`
/// subcommand exposes the engine on the command line.

#include "join/incremental_join.h"
#include "stream/ingest_frontend.h"
#include "stream/motif_fleet_engine.h"
#include "stream/search_scheduler.h"

#endif  // FRECHET_MOTIF_PUBLIC_FLEET_H_
