#ifndef FRECHET_MOTIF_PUBLIC_JOIN_H_
#define FRECHET_MOTIF_PUBLIC_JOIN_H_

/// \file
/// Public similarity-join surface: report every trajectory pair within a
/// DFD threshold (the paper's Section 7 outlook).
///
/// `DfdSimilarityJoin()` joins two collections, `DfdSelfJoin()` one; both
/// run a cascade of O(1)/O(ℓ) lower bounds (bounding box, endpoints,
/// sampled one-sided Hausdorff) before the O(ℓ²) early-abandoning decision
/// kernel, and can generate candidates with a uniform grid index
/// (`JoinOptions::use_grid_index`) for spread-out collections.
///
/// `JoinOptions::threshold` is the join radius ε in meters (the `fmotif
/// join --eps` flag); `JoinOptions::threads` parallelizes candidate
/// verification deterministically. `JoinStats` counts how each pruning
/// stage resolved the candidate pairs.
///
/// For mutating collections (sliding windows), `IncrementalDfdJoin`
/// maintains the match set across snapshot updates with a mutable grid
/// index and a verdict cache, emitting per-update deltas (pairs
/// entering/leaving ε) whose accumulation equals a from-scratch join —
/// the engine behind the fleet's `join_delta` reports
/// (`<frechet_motif/fleet.h>`).

#include "join/incremental_join.h"
#include "join/similarity_join.h"

#endif  // FRECHET_MOTIF_PUBLIC_JOIN_H_
