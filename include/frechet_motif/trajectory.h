#ifndef FRECHET_MOTIF_PUBLIC_TRAJECTORY_H_
#define FRECHET_MOTIF_PUBLIC_TRAJECTORY_H_

/// \file
/// Public trajectory surface: the `frechet_motif::Trajectory` model, the
/// pluggable ground metric, trajectory I/O, simplification and summary
/// statistics.
///
/// A `Trajectory` is a sequence of `Point`s with optional strictly
/// ascending timestamps (the paper's Definition 1). All similarity
/// computations are order-based — the tolerance to non-uniform sampling is
/// exactly why Tang et al. pick the discrete Fréchet distance — so
/// timestamps are carried only for ingest, reporting and the non-overlap
/// semantics of the motif definition.
///
/// What this header provides:
///  * `Trajectory`, `SubtrajectoryRef`, the `Index` typedef
///    (`core/trajectory.h`);
///  * `GroundMetric` with the built-in `Haversine()` / `Euclidean()`
///    singletons (`geo/metric.h`) and the `Point` representation
///    (`geo/point.h`);
///  * file ingest/egress: CSV (`lat,lon[,timestamp]`), GeoLife PLT and
///    GeoJSON LineString (`data/io.h`);
///  * Douglas–Peucker simplification (`data/simplify.h`);
///  * one-pass descriptive statistics, `Summarize()`
///    (`core/trajectory_stats.h`).

#include "core/trajectory.h"
#include "core/trajectory_stats.h"
#include "data/io.h"
#include "data/simplify.h"
#include "geo/metric.h"
#include "geo/point.h"

#endif  // FRECHET_MOTIF_PUBLIC_TRAJECTORY_H_
