#ifndef FRECHET_MOTIF_PUBLIC_OPTIONS_H_
#define FRECHET_MOTIF_PUBLIC_OPTIONS_H_

/// \file
/// Public configuration surface shared by every motif-discovery algorithm:
/// `MotifOptions`, `MotifVariant`, `Candidate` and `MotifResult`.
///
/// House convention (docs/ARCHITECTURE.md): every algorithm takes a plain
/// aggregate `*Options` struct whose fields default to the paper's values
/// (ξ = 100, τ = 32, θ, ε), so `{}` is always a sensible configuration.
/// Options are validated inside the callee — never silently clamped — and
/// a violation returns `Status::InvalidArgument`.
///
/// The shared knobs here are the minimum motif length ξ
/// (`MotifOptions::min_length_xi`), the problem variant (same-trajectory
/// Problem 1 vs the cross-trajectory variant of Section 3) and the worker
/// thread count, which is deterministic: results are bit-identical for
/// every `threads` setting.

#include "core/options.h"

#endif  // FRECHET_MOTIF_PUBLIC_OPTIONS_H_
