#ifndef FRECHET_MOTIF_PUBLIC_DATASETS_H_
#define FRECHET_MOTIF_PUBLIC_DATASETS_H_

/// \file
/// Public synthetic-data surface: reproducible trajectory generation for
/// experiments, demos and tests.
///
/// The paper evaluates on three real corpora (GeoLife, Athens trucks,
/// Mpala wild-baboon collars) that are not redistributable; `MakeDataset()`
/// (`data/datasets.h`) emulates each one's motion profile, sampling
/// behaviour and — crucially for motif discovery — route re-use, so
/// genuine motifs exist. `GenerateWalk()` / `FollowRoute()`
/// (`data/generator.h`) expose the underlying correlated-random-walk
/// sampler, and `PlantMotif()` (`data/planted.h`) builds instances with a
/// known ground-truth motif and a certified DFD upper bound.
///
/// Everything is deterministic given a seed (`frechet_motif::Rng`), so
/// results reproduce bit-identically across runs and platforms. The
/// `fmotif gen` subcommand is a thin CLI over this header.

#include "data/datasets.h"
#include "data/generator.h"
#include "data/planted.h"

#endif  // FRECHET_MOTIF_PUBLIC_DATASETS_H_
