#ifndef FRECHET_MOTIF_PUBLIC_DURABLE_H_
#define FRECHET_MOTIF_PUBLIC_DURABLE_H_

/// \file
/// Public durability surface: crash-safe snapshot + journal persistence
/// for the streaming engines.
///
/// `DurableFleet` wraps a `MotifFleetEngine` with a state directory:
/// every released (post-reorder) arrival batch is appended to a
/// CRC-framed journal, and the engine's full manifest — ring distance
/// matrices, incremental bounds, carried thresholds and tie-break
/// state, scheduler, join verdict cache — is checkpointed into
/// versioned, checksummed snapshot generations with atomic rename
/// rotation. Reopening the same directory after a crash recovers the
/// newest valid snapshot, replays the journal tail (skipping a torn or
/// corrupt trailing record), and continues **bit-identically**: every
/// future report — candidate, distance, tie resolution, DP-cell
/// counters, join deltas — matches the run that never crashed. The
/// guarantee is enforced by a fault-injection harness
/// (tests/durable_recovery_fuzz_test.cc) that kills the "process"
/// between writes, syncs, and renames, tears trailing writes, and
/// flips bits in snapshots.
///
/// ```
/// DurableOptions durable;
/// durable.state_dir = "/var/lib/fmotif/fleet";
/// auto fleet = DurableFleet::Open(options, Haversine(), durable);
/// // fleet->recovery().replayed_records == journal tail replayed
/// fleet->AddStream();
/// fleet->Push(0, p, t);            // journaled + synced before return
/// ```
///
/// Single-stream monitors snapshot through the same machinery:
/// `StreamingMotifMonitor::Snapshot`/`Restore` round-trips a monitor
/// through raw bytes (the CLI's `--state-dir` uses a one-stream
/// DurableFleet instead, gaining the journal).

#include "durable/durable_fleet.h"
#include "durable/durable_fs.h"
#include "durable/state_store.h"

#endif  // FRECHET_MOTIF_PUBLIC_DURABLE_H_
