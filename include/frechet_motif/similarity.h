#ifndef FRECHET_MOTIF_PUBLIC_SIMILARITY_H_
#define FRECHET_MOTIF_PUBLIC_SIMILARITY_H_

/// \file
/// Public similarity-measure surface: the discrete Fréchet distance (DFD)
/// kernels plus the comparison measures of the paper's Table 1.
///
/// The DFD entry points (`similarity/frechet.h`) are the heart of the
/// library:
///  * `DiscreteFrechet()` — exact DFD between two trajectories;
///  * `DiscreteFrechetOnRange()` — DFD of a subtrajectory pair over a
///    ground-distance provider, with the threshold early-exit contract the
///    motif search builds on;
///  * `DiscreteFrechetAtMost()` — the decision kernel ("is DFD ≤ θ?") the
///    similarity join and clustering use;
///  * `DiscreteFrechetCoupling()` — an optimal point alignment, for
///    rendering *why* two subtrajectories match;
///  * `FrechetScratch` — reusable DP buffers that make every evaluation
///    allocation-free after warm-up (one per thread).
///
/// The comparison measures — lock-step Euclidean (`similarity/euclidean.h`),
/// DTW (`similarity/dtw.h`), LCSS (`similarity/lcss.h`) and EDR
/// (`similarity/edr.h`) — exist for the robustness experiments
/// (Table 1, Figure 3); motif discovery itself is DFD-only.

#include "similarity/dtw.h"
#include "similarity/edr.h"
#include "similarity/euclidean.h"
#include "similarity/frechet.h"
#include "similarity/lcss.h"

#endif  // FRECHET_MOTIF_PUBLIC_SIMILARITY_H_
