#ifndef FRECHET_MOTIF_PUBLIC_SYMBOLIC_H_
#define FRECHET_MOTIF_PUBLIC_SYMBOLIC_H_

/// \file
/// Public symbolic-baseline surface: the movement-pattern-string approach
/// the paper dismisses in Section 2 (Figure 4).
///
/// `SymbolizeTrajectory()` maps fixed-length fragments to a five-letter
/// movement alphabet (vertical/horizontal straight, left/right turn,
/// diagonal) and `SymbolicMotifDiscovery()` matches repeated substrings. The
/// approach is fast but cannot capture spatial distance — two trajectories
/// in different cities can map to the same string — which this module
/// exists to demonstrate against the DFD-based algorithms.

#include "symbolic/symbolic.h"

#endif  // FRECHET_MOTIF_PUBLIC_SYMBOLIC_H_
