#ifndef FRECHET_MOTIF_PUBLIC_MOTIF_H_
#define FRECHET_MOTIF_PUBLIC_MOTIF_H_

/// \file
/// Public motif-discovery surface: the paper's exact algorithms behind one
/// front door, plus the top-k extension and search instrumentation.
///
/// The **motif** of a trajectory is the pair of non-overlapping
/// subtrajectories, each spanning more than ξ index steps, with the
/// smallest discrete Fréchet distance. Most applications only need
///
/// ```
/// FindMotifOptions options;                 // ξ = 100, GTM, τ = 32
/// auto result = FindMotif(trajectory, Haversine(), options);
/// ```
///
/// `FindMotifOptions::algorithm` selects among the paper's algorithms —
/// BruteDP (Algorithm 1), BTM (Algorithm 2), GTM (Algorithm 3, the
/// fastest) and the space-efficient GTM* (Section 5.5); all four are exact
/// and return identical distances. The individual algorithm headers
/// (`motif/btm.h`, `motif/gtm.h`, `motif/gtm_star.h`, `motif/brute_dp.h`)
/// stay available through this header for fine-grained control over the
/// pruning cascade (bound toggles, approximation ε, best-first order).
///
/// `TopKMotifs()` (`motif/top_k.h`) generalizes from "the best pair" to
/// the k best subset optima with a diversity separation knob, and
/// `MotifStats` (`motif/stats.h`) exposes the pruning counters behind the
/// paper's Figures 13–19.

#include "motif/motif.h"
#include "motif/stats.h"
#include "motif/top_k.h"

#endif  // FRECHET_MOTIF_PUBLIC_MOTIF_H_
