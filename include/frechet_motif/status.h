#ifndef FRECHET_MOTIF_PUBLIC_STATUS_H_
#define FRECHET_MOTIF_PUBLIC_STATUS_H_

/// \file
/// Public error-handling surface: `frechet_motif::Status` and
/// `frechet_motif::StatusOr<T>`.
///
/// The library never throws. Every fallible entry point returns a `Status`
/// (plain success/failure) or a `StatusOr<T>` (a value or the failure that
/// prevented producing it), RocksDB/Arrow style. Callers check `.ok()` and
/// unwrap with `.value()`; `Status::ToString()` renders a diagnostic that
/// names the offending parameter and value.
///
/// Stability: the `StatusCode` enumerators and the `Status`/`StatusOr`
/// member signatures are part of the public API (see CONTRIBUTING.md for
/// the stability rule).

#include "util/status.h"

#endif  // FRECHET_MOTIF_PUBLIC_STATUS_H_
