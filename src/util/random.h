#ifndef FRECHET_MOTIF_UTIL_RANDOM_H_
#define FRECHET_MOTIF_UTIL_RANDOM_H_

#include <cstdint>

namespace frechet_motif {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256++ seeded via SplitMix64).
///
/// The data generators and the property-test sweeps require bit-identical
/// streams across platforms and standard-library versions, which
/// std::mt19937 + std::distributions do not guarantee; hence a self-contained
/// implementation.
class Rng {
 public:
  /// Seeds the stream. Two Rng instances with the same seed produce
  /// identical outputs on every platform.
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses rejection sampling,
  /// so the result is exactly uniform.
  std::uint64_t NextUint64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal deviate (Box-Muller, cached pair).
  double NextGaussian();

  /// Gaussian with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability p (p clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed deviate with the given mean (> 0).
  double NextExponential(double mean);

 private:
  std::uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_RANDOM_H_
