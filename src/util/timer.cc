#include "util/timer.h"

// Timer is header-only; this file exists so the build registers the module
// and to keep one-translation-unit-per-header symmetry.
