#ifndef FRECHET_MOTIF_UTIL_THREAD_ANNOTATIONS_H_
#define FRECHET_MOTIF_UTIL_THREAD_ANNOTATIONS_H_

/// Clang thread-safety-analysis attributes, wrapped in macros that
/// vanish on every other compiler.
///
/// The repo's lock discipline (which fields a mutex guards, which
/// functions require it held) used to live in comments and be enforced
/// only dynamically, by the TSan CI leg. These macros move that
/// contract into the type system: annotate a member `GUARDED_BY(mu_)`
/// and a helper `REQUIRES(mu_)`, and `clang -Wthread-safety` rejects —
/// at compile time, on every path, raced or not — any access outside
/// the lock. The `thread-safety` CI job compiles the tree with
/// `-Werror=thread-safety`, so an annotation violation is a build
/// break, not a flaky race report.
///
/// The analysis only understands lock types that are themselves
/// annotated as capabilities. libstdc++'s `std::mutex` is not, so the
/// project locks through `util/mutex.h`'s annotated wrappers
/// (`Mutex`, `MutexLock`, `CondVar`) instead of raw `std::mutex`.
///
/// Macro names and semantics follow the Clang documentation (and the
/// Abseil/LLVM convention), so the annotations read the same here as
/// in any production serving stack:
///
///   GUARDED_BY(mu)    field: accessed only with `mu` held.
///   PT_GUARDED_BY(mu) pointer field: the pointee needs `mu`.
///   REQUIRES(mu)      function: caller must hold `mu`.
///   ACQUIRE(mu)       function: acquires `mu`, returns holding it.
///   RELEASE(mu)       function: caller holds `mu`; returns without it.
///   TRY_ACQUIRE(b,mu) function: acquires `mu` iff it returns `b`.
///   EXCLUDES(mu)      function: caller must NOT hold `mu` (deadlock
///                     guard for self-locking entry points).
///   CAPABILITY(name)  type: is a lock (names the capability in
///                     diagnostics, e.g. "mutex").
///   SCOPED_CAPABILITY type: RAII object acquiring in its constructor
///                     and releasing in its destructor.
///   ASSERT_CAPABILITY(mu)         function: runtime-asserts `mu` held.
///   RETURN_CAPABILITY(mu)         function: returns a reference to `mu`.
///   NO_THREAD_SAFETY_ANALYSIS     function: opt out (use sparingly,
///                                 with a comment saying why).

#if defined(__clang__) && !defined(SWIG)
#define FM_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define FM_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#define CAPABILITY(x) FM_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define SCOPED_CAPABILITY FM_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define GUARDED_BY(x) FM_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define PT_GUARDED_BY(x) FM_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) FM_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define ASSERT_SHARED_CAPABILITY(x) \
  FM_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) FM_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  FM_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // FRECHET_MOTIF_UTIL_THREAD_ANNOTATIONS_H_
