#include "util/flags.h"

#include <cstdlib>

#include "util/numeric.h"

namespace frechet_motif {

Status Flags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq == std::string::npos) {
      if (body.empty()) {
        return Status::InvalidArgument("bare '--' is not a valid flag");
      }
      values_[body] = "true";
    } else {
      const std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      values_[name] = body.substr(eq + 1);
    }
  }
  return Status::Ok();
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') return def;
  return v;
}

double Flags::GetDouble(const std::string& name, double def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  // C-locale parse regardless of the global locale, so "--eps=2.5" means
  // the same thing in every environment.
  double v = 0.0;
  if (!ParseDoubleC(it->second, &v)) return def;
  return v;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::string v = it->second;
  for (auto& ch : v) ch = static_cast<char>(std::tolower(ch));
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  return def;
}

std::vector<std::int64_t> Flags::GetIntList(
    const std::string& name, const std::vector<std::int64_t>& def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  const std::string& s = it->second;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    const std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) {
      char* end = nullptr;
      const long long v = std::strtoll(tok.c_str(), &end, 10);
      if (end != tok.c_str() && *end == '\0') out.push_back(v);
    }
    pos = comma + 1;
  }
  return out.empty() ? def : out;
}

}  // namespace frechet_motif
