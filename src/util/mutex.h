#ifndef FRECHET_MOTIF_UTIL_MUTEX_H_
#define FRECHET_MOTIF_UTIL_MUTEX_H_

/// Annotated locking primitives for Clang's thread-safety analysis.
///
/// The analysis (see util/thread_annotations.h) only tracks locks whose
/// types are annotated as capabilities, and libstdc++'s `std::mutex`
/// is not — so project code locks through these thin wrappers instead.
/// They add nothing at runtime: `Mutex` is exactly a `std::mutex`,
/// `MutexLock` a scope guard, `CondVar` a `std::condition_variable_any`
/// waiting on the `Mutex` directly.
///
/// Idiom (the wait loop stays in the locked scope, so the predicate's
/// guarded reads are visible to the analysis — no lambda escapes it):
///
///   Mutex mu_;
///   CondVar cv_;
///   int work_ GUARDED_BY(mu_);
///
///   void Consume() {
///     MutexLock lock(mu_);
///     while (work_ == 0) cv_.Wait(mu_);
///     --work_;
///   }

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace frechet_motif {

/// An annotated `std::mutex`. Lock through `MutexLock` in new code;
/// the raw Lock/Unlock pair exists for the rare split acquire/release.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spellings so `CondVar` (a condition_variable_any)
  /// can wait on the Mutex itself — annotated identically.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII scope lock over `Mutex`, visible to the analysis as a scoped
/// capability: the constructor acquires, the destructor releases, and
/// guarded fields are accessible for exactly the guard's lifetime.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on a `Mutex`. `Wait` atomically releases
/// and reacquires the lock, which the analysis cannot see through —
/// `REQUIRES(mu)` pins the caller-side contract (held on entry, held
/// again on return), and the implementation opts out of analysis for
/// the unlock/relock handoff inside `std::condition_variable_any`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always wait in
  /// a `while (!predicate)` loop inside the locked scope).
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_MUTEX_H_
