#ifndef FRECHET_MOTIF_UTIL_NUMERIC_H_
#define FRECHET_MOTIF_UTIL_NUMERIC_H_

/// Locale-independent floating-point formatting and parsing.
///
/// The C standard library's `snprintf("%g"/"%f")` and `strtod` honor the
/// process-global LC_NUMERIC locale: under a comma-decimal locale such as
/// de_DE.UTF-8 they emit "39,9" and parse "39.9" only up to the decimal
/// point. A library cannot assume its host application never calls
/// setlocale(), so every data-plane writer/reader (CSV, GeoJSON, JSON
/// output) must go through these helpers instead. They always use
/// C-locale semantics ('.' decimal point, no grouping) regardless of the
/// global locale, and produce byte-identical output to the C-locale
/// printf formats they replace.
///
/// Human-facing ToString() dumps (stats tables, memory sizes) deliberately
/// keep plain printf: they are display text, not data.

#include <cstddef>
#include <string>

namespace frechet_motif {

/// Formats `v` exactly as C-locale `printf("%.*g", significant, v)`.
/// Writes into [buf, buf+size) and returns the number of characters
/// written (no NUL is appended). `size` must be >= 40 for significant
/// <= 17; passing a short buffer truncates to 0 characters.
std::size_t FormatDoubleGeneral(char* buf, std::size_t size, double v,
                                int significant);

/// Formats `v` exactly as C-locale `printf("%.*f", decimals, v)`. Same
/// buffer contract; fixed notation of a large double can need ~310 + the
/// fractional digits, so size the buffer generously (>= 352).
std::size_t FormatDoubleFixed(char* buf, std::size_t size, double v,
                              int decimals);

/// Convenience std::string forms of the two formatters.
std::string DoubleToStringGeneral(double v, int significant);
std::string DoubleToStringFixed(double v, int decimals);

/// Parses a double from [begin, end) with C-locale semantics, requiring
/// the whole range to be consumed. Accepts an optional leading '+' (which
/// strtod accepted and CSV files in the wild use — but never "+-");
/// accepts "inf"/"nan" spellings like strtod; saturates out-of-range
/// magnitudes like strtod (overflow to +/-infinity, underflow toward
/// zero); rejects empty input, trailing garbage, and locale decimal
/// commas. Returns true and sets *out on success.
bool ParseDoubleC(const char* begin, const char* end, double* out);

/// std::string convenience overload of ParseDoubleC.
bool ParseDoubleC(const std::string& s, double* out);

/// strtod-style prefix parse with C-locale semantics: parses the longest
/// valid double at `begin` and returns the first unconsumed position, or
/// `begin` itself when no number starts there. Used by the JSON number
/// scanner, which parses inside a larger document.
const char* ParseDoublePrefixC(const char* begin, const char* end,
                               double* out);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_NUMERIC_H_
