#ifndef FRECHET_MOTIF_UTIL_BINARY_CODEC_H_
#define FRECHET_MOTIF_UTIL_BINARY_CODEC_H_

/// Bit-exact binary encoding primitives for the durable state formats
/// (src/durable/): a little-endian writer/reader pair and a CRC-32
/// checksum.
///
/// The streaming engines' parity contract is *bit* identity, so the
/// codec never round-trips values through text or through any lossy
/// representation: doubles are stored as their raw IEEE-754 bit
/// patterns, integers as fixed-width little-endian two's complement.
/// Encoding is byte-shift based (no memcpy of host-endian words), so
/// the on-disk format is identical across platforms.
///
/// The reader is defensive by design — every Get* reports truncation
/// via Status instead of reading past the end — because recovery feeds
/// it torn and corrupted buffers on purpose (see tests/fault_fs.h).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace frechet_motif {

/// CRC-32 (ISO-HDLC: polynomial 0xEDB88320, reflected, as in zlib/PNG)
/// of `size` bytes. Pass a previous result as `seed` to checksum a
/// stream in chunks.
std::uint32_t Crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

inline std::uint32_t Crc32(std::string_view data, std::uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

/// String literals must not decay into the (pointer, size) overload: a
/// two-argument call like Crc32("abc", seed) would otherwise bind `seed`
/// to `size` and walk far past the literal. The array reference is an
/// exact match for literals, so it always wins overload resolution.
template <std::size_t N>
inline std::uint32_t Crc32(const char (&data)[N], std::uint32_t seed = 0) {
  return Crc32(std::string_view(data, N - 1), seed);
}

/// Appends fixed-width little-endian primitives to a byte string.
class BinaryWriter {
 public:
  void PutU8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(std::uint32_t v) {
    for (int b = 0; b < 4; ++b) {
      out_.push_back(static_cast<char>((v >> (8 * b)) & 0xffu));
    }
  }

  void PutU64(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      out_.push_back(static_cast<char>((v >> (8 * b)) & 0xffu));
    }
  }

  void PutI32(std::int32_t v) { PutU32(static_cast<std::uint32_t>(v)); }
  void PutI64(std::int64_t v) { PutU64(static_cast<std::uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Raw IEEE-754 bit pattern — the value read back is the exact double
  /// written, NaN payloads and signed zeros included.
  void PutDouble(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBytes(const void* data, std::size_t size) {
    out_.append(static_cast<const char*>(data), size);
  }

  /// u64 length prefix + bytes.
  void PutString(std::string_view s) {
    PutU64(s.size());
    out_.append(s.data(), s.size());
  }

  void PutDoubleVector(const std::vector<double>& v) {
    PutU64(v.size());
    for (const double d : v) PutDouble(d);
  }

  void PutI32Vector(const std::vector<std::int32_t>& v) {
    PutU64(v.size());
    for (const std::int32_t x : v) PutI32(x);
  }

  std::size_t size() const { return out_.size(); }
  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Reads the writer's encoding back, Status-checked against truncation.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status GetU8(std::uint8_t* v) {
    FM_RETURN_IF_ERROR(Need(1));
    *v = static_cast<std::uint8_t>(data_[pos_++]);
    return Status::Ok();
  }

  Status GetU32(std::uint32_t* v) {
    FM_RETURN_IF_ERROR(Need(4));
    std::uint32_t out = 0;
    for (int b = 0; b < 4; ++b) {
      out |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(data_[pos_ + b]))
             << (8 * b);
    }
    pos_ += 4;
    *v = out;
    return Status::Ok();
  }

  Status GetU64(std::uint64_t* v) {
    FM_RETURN_IF_ERROR(Need(8));
    std::uint64_t out = 0;
    for (int b = 0; b < 8; ++b) {
      out |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(data_[pos_ + b]))
             << (8 * b);
    }
    pos_ += 8;
    *v = out;
    return Status::Ok();
  }

  Status GetI32(std::int32_t* v) {
    std::uint32_t raw = 0;
    FM_RETURN_IF_ERROR(GetU32(&raw));
    *v = static_cast<std::int32_t>(raw);
    return Status::Ok();
  }

  Status GetI64(std::int64_t* v) {
    std::uint64_t raw = 0;
    FM_RETURN_IF_ERROR(GetU64(&raw));
    *v = static_cast<std::int64_t>(raw);
    return Status::Ok();
  }

  Status GetBool(bool* v) {
    std::uint8_t raw = 0;
    FM_RETURN_IF_ERROR(GetU8(&raw));
    if (raw > 1) {
      return Status::DataLoss("encoded bool is neither 0 nor 1");
    }
    *v = raw != 0;
    return Status::Ok();
  }

  Status GetDouble(double* v) {
    std::uint64_t bits = 0;
    FM_RETURN_IF_ERROR(GetU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::Ok();
  }

  Status GetBytes(void* out, std::size_t size) {
    FM_RETURN_IF_ERROR(Need(size));
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  Status GetString(std::string* s) {
    std::uint64_t size = 0;
    FM_RETURN_IF_ERROR(GetU64(&size));
    FM_RETURN_IF_ERROR(Need(size));
    s->assign(data_.data() + pos_, static_cast<std::size_t>(size));
    pos_ += static_cast<std::size_t>(size);
    return Status::Ok();
  }

  Status GetDoubleVector(std::vector<double>* v) {
    std::uint64_t size = 0;
    FM_RETURN_IF_ERROR(GetU64(&size));
    // 8 bytes per element must still be available — guards against a
    // corrupt length causing a giant allocation. Compare by division:
    // `Need(size * 8)` would wrap for size >= 2^61 and wave a bogus
    // length through to a throwing resize() (found by fuzz_snapshot).
    if (size > remaining() / 8) {
      return Status::DataLoss("encoded data truncated");
    }
    v->resize(static_cast<std::size_t>(size));
    for (double& d : *v) FM_RETURN_IF_ERROR(GetDouble(&d));
    return Status::Ok();
  }

  Status GetI32Vector(std::vector<std::int32_t>* v) {
    std::uint64_t size = 0;
    FM_RETURN_IF_ERROR(GetU64(&size));
    // Division, not `Need(size * 4)`: see GetDoubleVector.
    if (size > remaining() / 4) {
      return Status::DataLoss("encoded data truncated");
    }
    v->resize(static_cast<std::size_t>(size));
    for (std::int32_t& x : *v) FM_RETURN_IF_ERROR(GetI32(&x));
    return Status::Ok();
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(std::uint64_t bytes) const {
    if (bytes > data_.size() - pos_) {
      return Status::DataLoss("encoded data truncated");
    }
    return Status::Ok();
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_BINARY_CODEC_H_
