#include "util/memory_tracker.h"

// fmotif-lint-file: allow(locale-format) — FormatBytes renders display
// text ("1.5 MiB"), not data-plane numbers; see the contract note in
// util/numeric.h.

#include <array>
#include <cstdio>

namespace frechet_motif {

std::string FormatBytes(std::size_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < kUnits.size()) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

}  // namespace frechet_motif
