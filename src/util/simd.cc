#include "util/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace frechet_motif {

namespace {

constexpr int kNoCap = static_cast<int>(SimdLevel::kAvx512);

/// Test/bench cap; kNoCap means "no programmatic cap". Relaxed is enough:
/// the cap is configuration, not synchronization — callers set it before
/// launching the work that should observe it.
std::atomic<int> g_cap{kNoCap};

SimdLevel MinLevel(SimdLevel a, SimdLevel b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

SimdLevel DetectOnce() {
#if defined(FRECHET_MOTIF_SIMD_X86)
#if defined(FRECHET_MOTIF_WIDE_SIMD)
  if (__builtin_cpu_supports("avx512f")) return SimdLevel::kAvx512;
#endif
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

SimdLevel EnvCapOnce() {
  const char* env = std::getenv("FMOTIF_SIMD");
  if (env == nullptr || *env == '\0') return SimdLevel::kAvx512;
  SimdLevel level = SimdLevel::kAvx512;
  if (!ParseSimdLevel(env, &level)) {
    // One-shot env-var diagnostic from a lazy initializer; there is no
    // Status channel this deep and silently ignoring a typo'd
    // FMOTIF_SIMD would be worse.
    // fmotif-lint: allow(stderr)
    std::fprintf(stderr,
                 "[simd] unknown FMOTIF_SIMD value \"%s\" ignored "
                 "(expected scalar, sse2, avx2 or avx512)\n",
                 env);
  }
  return level;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool ParseSimdLevel(const char* name, SimdLevel* out) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "scalar") == 0) {
    *out = SimdLevel::kScalar;
  } else if (std::strcmp(name, "sse2") == 0) {
    *out = SimdLevel::kSse2;
  } else if (std::strcmp(name, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
  } else if (std::strcmp(name, "avx512") == 0) {
    *out = SimdLevel::kAvx512;
  } else {
    return false;
  }
  return true;
}

SimdLevel CompiledSimdLevel() {
#if defined(FRECHET_MOTIF_SIMD_X86)
#if defined(FRECHET_MOTIF_WIDE_SIMD)
  return SimdLevel::kAvx512;
#else
  return SimdLevel::kAvx2;
#endif
#else
  return SimdLevel::kScalar;
#endif
}

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected = DetectOnce();
  return detected;
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel ceiling = MinLevel(DetectedSimdLevel(), EnvCapOnce());
  return MinLevel(ceiling,
                  static_cast<SimdLevel>(g_cap.load(std::memory_order_relaxed)));
}

void SetSimdLevelCap(SimdLevel cap) {
  g_cap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

void ClearSimdLevelCap() { g_cap.store(kNoCap, std::memory_order_relaxed); }

}  // namespace frechet_motif
