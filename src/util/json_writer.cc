#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/numeric.h"

namespace frechet_motif {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Escape the C0 controls (required by RFC 8259) and DEL (0x7f),
        // which is a control character many log pipelines mangle even
        // though the RFC tolerates it raw. Bytes >= 0x80 pass through
        // untouched — see the pass-through contract in json_writer.h.
        if (c < 0x20 || c == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Prepare([[maybe_unused]] bool is_key) {
  if (key_pending_) {
    // A value directly follows its key on the same line.
    assert(!is_key && "Key() while another key's value is pending");
    key_pending_ = false;
    return;
  }
  assert((stack_.empty() || stack_.back() == Scope::kArray || is_key) &&
         "a value inside an object needs a Key() first");
  if (!stack_.empty()) {
    if (has_element_.back()) out_ += ',';
    if (style_ == JsonStyle::kPretty) {
      out_ += '\n';
      out_.append(2 * stack_.size(), ' ');
    }
    has_element_.back() = true;
  } else {
    assert(out_.empty() && "JSON documents hold exactly one root value");
  }
}

void JsonWriter::Append(const std::string& text) { out_ += text; }

void JsonWriter::BeginObject() {
  Prepare(/*is_key=*/false);
  Append("{");
  stack_.push_back(Scope::kObject);
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  assert(!stack_.empty() && stack_.back() == Scope::kObject && !key_pending_);
  const bool had_elements = has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (had_elements && style_ == JsonStyle::kPretty) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  Append("}");
  if (stack_.empty() && style_ == JsonStyle::kPretty) out_ += '\n';
}

void JsonWriter::BeginArray() {
  Prepare(/*is_key=*/false);
  Append("[");
  stack_.push_back(Scope::kArray);
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  assert(!stack_.empty() && stack_.back() == Scope::kArray && !key_pending_);
  const bool had_elements = has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (had_elements && style_ == JsonStyle::kPretty) {
    out_ += '\n';
    out_.append(2 * stack_.size(), ' ');
  }
  Append("]");
  if (stack_.empty() && style_ == JsonStyle::kPretty) out_ += '\n';
}

void JsonWriter::Key(const std::string& name) {
  assert(!stack_.empty() && stack_.back() == Scope::kObject);
  Prepare(/*is_key=*/true);
  Append("\"" + JsonEscape(name) +
         (style_ == JsonStyle::kPretty ? "\": " : "\":"));
  key_pending_ = true;
}

void JsonWriter::String(const std::string& value) {
  Prepare(/*is_key=*/false);
  Append("\"" + JsonEscape(value) + "\"");
}

void JsonWriter::Int(std::int64_t value) {
  Prepare(/*is_key=*/false);
  Append(std::to_string(value));
}

void JsonWriter::Double(double value) {
  Prepare(/*is_key=*/false);
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN literal; null is the conventional stand-in.
    Append("null");
    return;
  }
  // Locale-independent: under a comma-decimal global locale snprintf("%g")
  // would emit "12,5", which is not JSON.
  std::string text = DoubleToStringGeneral(value, 10);
  // Keep the value typed as a number-with-fraction where possible so
  // schema-checking consumers see a stable shape.
  if (text.find_first_of(".eE") == std::string::npos) text += ".0";
  Append(text);
}

void JsonWriter::Double(double value, int decimals) {
  Prepare(/*is_key=*/false);
  if (!std::isfinite(value)) {
    Append("null");
    return;
  }
  Append(DoubleToStringFixed(value, decimals));
}

void JsonWriter::Bool(bool value) {
  Prepare(/*is_key=*/false);
  Append(value ? "true" : "false");
}

void JsonWriter::Null() {
  Prepare(/*is_key=*/false);
  Append("null");
}

}  // namespace frechet_motif
