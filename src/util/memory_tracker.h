#ifndef FRECHET_MOTIF_UTIL_MEMORY_TRACKER_H_
#define FRECHET_MOTIF_UTIL_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace frechet_motif {

/// Explicit byte accounting for the data structures an algorithm allocates.
///
/// Figure 19 of the paper reports per-algorithm space consumption; rather
/// than sampling the process RSS (noisy, allocator-dependent), every matrix
/// and index in this library registers its footprint with the MotifStats'
/// MemoryTracker so the benchmark can report exactly what the analysis in
/// Sections 4-5 counts: dG, dF, bound arrays and group structures.
///
/// The tracker records both the current watermark and the peak.
class MemoryTracker {
 public:
  MemoryTracker() = default;

  /// Registers `bytes` newly allocated.
  void Add(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Registers `bytes` released. Releasing more than was added clamps to 0.
  void Release(std::size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  /// Currently registered bytes.
  std::size_t current_bytes() const { return current_; }

  /// Highest value current_bytes() ever reached.
  std::size_t peak_bytes() const { return peak_; }

  /// Peak footprint in mebibytes (the unit of Figure 19).
  double peak_mib() const {
    return static_cast<double>(peak_) / (1024.0 * 1024.0);
  }

  /// Forgets all accounting.
  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII registration of a fixed-size allocation against a tracker.
/// The tracker pointer may be null, in which case this is a no-op; that lets
/// library code register unconditionally.
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryTracker* tracker, std::size_t bytes)
      : tracker_(tracker), bytes_(bytes) {
    if (tracker_ != nullptr) tracker_->Add(bytes_);
  }
  ~ScopedAllocation() {
    if (tracker_ != nullptr) tracker_->Release(bytes_);
  }

  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

 private:
  MemoryTracker* tracker_;
  std::size_t bytes_;
};

/// Formats a byte count as a human-readable string ("12.3 MiB").
std::string FormatBytes(std::size_t bytes);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_MEMORY_TRACKER_H_
