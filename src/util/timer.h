#ifndef FRECHET_MOTIF_UTIL_TIMER_H_
#define FRECHET_MOTIF_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace frechet_motif {

/// Monotonic wall-clock timer used by the benchmark harness to measure
/// response times (the paper reports end-to-end response time including
/// precomputation; see Section 6.1).
class Timer {
 public:
  /// Starts the timer at construction.
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time since construction/Restart, in nanoseconds.
  std::int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_TIMER_H_
