#include "util/random.h"

#include <cmath>

namespace frechet_motif {

namespace {

// SplitMix64: expands a single seed into well-distributed state words.
std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
  // xoshiro256++ requires a nonzero state; SplitMix64 of any seed yields one
  // with overwhelming probability, but guard the pathological case anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
    state_[0] = 0x9E3779B97F4A7C15ULL;
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextUint64(std::uint64_t bound) {
  // Lemire-style rejection-free-in-expectation bounded generation.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    // Split 64x64 -> 128-bit multiply via __uint128_t (GCC/Clang builtin).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(r) * static_cast<unsigned __int128>(bound);
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1;  // hi >= lo by contract
  return lo + static_cast<std::int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller transform on two uniforms; u1 bounded away from 0.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return radius * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

}  // namespace frechet_motif
