#ifndef FRECHET_MOTIF_UTIL_JSON_WRITER_H_
#define FRECHET_MOTIF_UTIL_JSON_WRITER_H_

/// Minimal streaming JSON writer for machine-readable CLI/bench output.
///
/// Produces pretty-printed (2-space indent), syntactically valid JSON with
/// full string escaping. The writer tracks the open container stack and
/// inserts commas/indentation itself, so call sites read like the document
/// they emit:
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("command"); w.String("motif");
///   w.Key("result");  w.BeginObject();
///   w.Key("distance_m"); w.Double(12.5);
///   w.EndObject();
///   w.EndObject();
///   std::fputs(w.str().c_str(), stdout);
///
/// Misuse (a value without a pending Key inside an object, unbalanced
/// End*) is a programming error caught by assert, not a Status — the
/// document shape is static at every call site.

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace frechet_motif {

/// Output layout of a JsonWriter document.
enum class JsonStyle {
  /// 2-space indent, one key per line, trailing newline after the root
  /// closes — the human-facing CLI/bench layout.
  kPretty,
  /// Single line, no whitespace, no trailing newline — one frame of a
  /// newline-delimited JSON stream (the serve tier's wire format). The
  /// caller owns the frame-terminating '\n'.
  kCompact,
};

class JsonWriter {
 public:
  JsonWriter() = default;
  explicit JsonWriter(JsonStyle style) : style_(style) {}

  /// Opens an object/array, as a document root, object value or array
  /// element.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Names the next value. Only valid directly inside an object.
  void Key(const std::string& name);

  /// Scalar values (document root, object value after Key, array element).
  void String(const std::string& value);
  void Int(std::int64_t value);
  void Double(double value);
  /// Fixed-point rendering with exactly `decimals` fractional digits, for
  /// values whose precision contract is decimal (coordinates, timestamps —
  /// matches the CSV writer's %.Nf so formats round-trip identically).
  void Double(double value, int decimals);
  void Bool(bool value);
  void Null();

  /// The document so far. Complete once every Begin* is balanced; ends
  /// with a newline.
  const std::string& str() const { return out_; }

 private:
  enum class Scope { kObject, kArray };

  /// Indent/comma bookkeeping before a key or an array/root value.
  void Prepare(bool is_key);
  void Append(const std::string& text);

  JsonStyle style_ = JsonStyle::kPretty;
  std::string out_;
  std::vector<Scope> stack_;
  /// Whether the current container already holds an element (comma needed).
  std::vector<bool> has_element_;
  /// A Key() was emitted and its value is pending.
  bool key_pending_ = false;
};

/// Escapes `s` for inclusion in a JSON string literal (quotes not added).
///
/// Escaping contract:
///  * `"` and `\` get backslash escapes; `\n`, `\r`, `\t` use the short
///    forms; the remaining C0 controls and DEL (0x7f) are emitted as
///    `\u00XX`.
///  * Bytes >= 0x80 pass through **unchanged**. The writer neither
///    validates nor repairs UTF-8: callers own the encoding of their
///    strings, and well-formed UTF-8 input yields well-formed UTF-8
///    JSON. A lone continuation byte in the input therefore produces a
///    document that is structurally valid JSON but not valid UTF-8 —
///    exactly as invalid as the input was. (File paths and user labels,
///    the only strings this library round-trips, are treated as opaque
///    bytes end to end.)
std::string JsonEscape(const std::string& s);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_JSON_WRITER_H_
