#include "util/thread_pool.h"

#include <algorithm>

namespace frechet_motif {

ThreadPool::ThreadPool(int threads) {
  const int lanes = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(lanes - 1));
  for (int lane = 1; lane < lanes; ++lane) {
    workers_.emplace_back([this, lane] { WorkerLoop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop(int lane) {
  std::uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && generation_ == seen_generation) {
        work_ready_.Wait(mutex_);
      }
      if (shutting_down_ && generation_ == seen_generation) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(lane);
    {
      MutexLock lock(mutex_);
      if (--outstanding_ == 0) work_done_.NotifyOne();
    }
  }
}

void ThreadPool::RunOnAllLanes(const std::function<void(int)>& fn) {
  if (workers_.empty()) {
    fn(0);
    return;
  }
  {
    MutexLock lock(mutex_);
    job_ = &fn;
    outstanding_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_ready_.NotifyAll();
  fn(0);  // the caller is lane 0
  {
    MutexLock lock(mutex_);
    while (outstanding_ != 0) work_done_.Wait(mutex_);
    job_ = nullptr;
  }
}

void ThreadPool::ChunkRange(std::int64_t n, int lanes, int lane,
                            std::int64_t* begin, std::int64_t* end) {
  const std::int64_t per_lane = n / lanes;
  const std::int64_t remainder = n % lanes;
  // The first `remainder` lanes take one extra element.
  *begin = lane * per_lane + std::min<std::int64_t>(lane, remainder);
  *end = *begin + per_lane + (lane < remainder ? 1 : 0);
}

void ThreadPool::ParallelFor(
    std::int64_t n,
    const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const int lanes = threads();
  if (lanes == 1 || n == 1) {
    fn(0, 0, n);
    return;
  }
  RunOnAllLanes([&](int lane) {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    ChunkRange(n, lanes, lane, &begin, &end);
    if (begin < end) fn(lane, begin, end);
  });
}

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace frechet_motif
