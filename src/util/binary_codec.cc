#include "util/binary_codec.h"

#include <array>

namespace frechet_motif {

namespace {

/// The 256-entry lookup table for the reflected 0xEDB88320 polynomial,
/// computed once at first use.
const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t n = 0; n < 256; ++n) {
      std::uint32_t c = n;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[n] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size, std::uint32_t seed) {
  const std::array<std::uint32_t, 256>& table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace frechet_motif
