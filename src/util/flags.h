#ifndef FRECHET_MOTIF_UTIL_FLAGS_H_
#define FRECHET_MOTIF_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace frechet_motif {

/// Minimal command-line flag parser for the bench/example binaries.
///
/// Recognizes `--name=value` and bare `--name` (boolean true). Anything not
/// starting with `--` is collected as a positional argument.
///
///   Flags flags;
///   Status s = flags.Parse(argc, argv);
///   int n = flags.GetInt("n", 1000);
///   bool full = flags.GetBool("full", false);
class Flags {
 public:
  Flags() = default;

  /// Parses argv (skipping argv[0]). Returns InvalidArgument on a malformed
  /// token such as `--=x`.
  Status Parse(int argc, const char* const* argv);

  /// True iff --name was present.
  bool Has(const std::string& name) const;

  /// String value of --name, or `def` when absent.
  std::string GetString(const std::string& name, const std::string& def) const;

  /// Integer value of --name, or `def` when absent or unparsable.
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;

  /// Double value of --name, or `def` when absent or unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean value of --name. Bare `--name` means true; otherwise accepts
  /// true/false/1/0 (case-insensitive).
  bool GetBool(const std::string& name, bool def) const;

  /// Comma-separated integer list of --name, or `def` when absent.
  std::vector<std::int64_t> GetIntList(
      const std::string& name, const std::vector<std::int64_t>& def) const;

  /// Non-flag arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_FLAGS_H_
