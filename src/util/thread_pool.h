#ifndef FRECHET_MOTIF_UTIL_THREAD_POOL_H_
#define FRECHET_MOTIF_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace frechet_motif {

/// A fixed-size pool of worker threads for the embarrassingly-parallel
/// phases of the motif search and the similarity join.
///
/// Design goals, in order:
///  1. *Determinism*: work is assigned by a static partition that depends
///     only on (job size, lane count), never on scheduling. Results merged
///     in lane order are therefore bit-identical run to run, and the serial
///     path (`threads() == 1`) is byte-for-byte the same computation.
///  2. *No per-job allocation or thread spawn*: workers are created once and
///     parked on a condition variable between jobs.
///
/// The calling thread participates as lane 0, so a pool of `threads` lanes
/// spawns only `threads - 1` OS threads and `ThreadPool(1)` spawns none.
/// Jobs must not throw — an exception escaping a lane terminates the
/// process (same contract as std::thread).
///
/// The pool itself is not re-entrant: only one job runs at a time, and
/// lanes must not submit nested jobs to the same pool.
class ThreadPool {
 public:
  /// Creates a pool with `threads` execution lanes (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Joins all workers. A job in flight completes first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution lanes, including the calling thread.
  int threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Invokes fn(lane) once per lane in [0, threads()) concurrently and
  /// blocks until every invocation returns. Lane 0 runs on the caller.
  void RunOnAllLanes(const std::function<void(int)>& fn);

  /// Splits [0, n) into threads() contiguous chunks (sizes differing by at
  /// most one, fixed by n and the lane count alone) and invokes
  /// fn(lane, begin, end) for each non-empty chunk concurrently. Blocks
  /// until done. Deterministic: lane k always receives the same range.
  void ParallelFor(std::int64_t n,
                   const std::function<void(int, std::int64_t, std::int64_t)>&
                       fn);

  /// The contiguous chunk of [0, n) that `ParallelFor` hands to `lane`
  /// when splitting across `lanes` lanes. Exposed for tests and for
  /// callers that pre-size per-lane outputs.
  static void ChunkRange(std::int64_t n, int lanes, int lane,
                         std::int64_t* begin, std::int64_t* end);

 private:
  void WorkerLoop(int lane);

  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar work_ready_;
  CondVar work_done_;
  /// The job being fanned out. Workers read it under the lock, then
  /// invoke it unlocked — safe because RunOnAllLanes keeps the target
  /// alive until every lane reports done.
  const std::function<void(int)>* job_ GUARDED_BY(mutex_) = nullptr;
  /// Bumped per job; workers wake on change.
  std::uint64_t generation_ GUARDED_BY(mutex_) = 0;
  /// Workers still running the current job.
  int outstanding_ GUARDED_BY(mutex_) = 0;
  bool shutting_down_ GUARDED_BY(mutex_) = false;
};

/// Resolves a requested thread count from Options: values >= 1 are taken
/// as-is, 0 means "all hardware threads" (at least 1).
int ResolveThreadCount(int requested);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_THREAD_POOL_H_
