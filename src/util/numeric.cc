#include "util/numeric.h"

#include <charconv>
#include <clocale>
#include <cstdlib>

namespace frechet_motif {

namespace {

/// strtod saturation semantics for a token std::from_chars flagged as
/// out of range (overflow -> +/-HUGE_VAL, underflow -> nearest denormal
/// or zero): re-parse the already-validated token with strtod, after
/// translating its '.' to the active locale's decimal point so the
/// result stays locale-independent.
double SaturatedParse(const char* begin, const char* end) {
  std::string token(begin, end);
  const char* dp = std::localeconv()->decimal_point;
  if (!(dp[0] == '.' && dp[1] == '\0')) {
    const std::size_t dot = token.find('.');
    if (dot != std::string::npos) token.replace(dot, 1, dp);
  }
  return std::strtod(token.c_str(), nullptr);
}

/// Skips a leading '+' like strtod, but only when a number can follow —
/// "+-3" must stay rejected (from_chars would otherwise parse the "-3").
const char* SkipLeadingPlus(const char* begin, const char* end) {
  if (begin != end && *begin == '+' && begin + 1 != end &&
      *(begin + 1) != '-' && *(begin + 1) != '+') {
    return begin + 1;
  }
  return begin;
}

}  // namespace

// std::to_chars with an explicit precision is specified to produce the
// same characters as printf with the corresponding %.*g / %.*f format in
// the C locale — verified byte-for-byte against snprintf over a large
// random sweep when this shim was introduced — while never consulting the
// global locale.

std::size_t FormatDoubleGeneral(char* buf, std::size_t size, double v,
                                int significant) {
  const std::to_chars_result r = std::to_chars(
      buf, buf + size, v, std::chars_format::general, significant);
  return r.ec == std::errc() ? static_cast<std::size_t>(r.ptr - buf) : 0;
}

std::size_t FormatDoubleFixed(char* buf, std::size_t size, double v,
                              int decimals) {
  const std::to_chars_result r =
      std::to_chars(buf, buf + size, v, std::chars_format::fixed, decimals);
  return r.ec == std::errc() ? static_cast<std::size_t>(r.ptr - buf) : 0;
}

std::string DoubleToStringGeneral(double v, int significant) {
  char buf[64];
  return std::string(buf, FormatDoubleGeneral(buf, sizeof(buf), v,
                                              significant));
}

std::string DoubleToStringFixed(double v, int decimals) {
  char buf[384];
  return std::string(buf, FormatDoubleFixed(buf, sizeof(buf), v, decimals));
}

bool ParseDoubleC(const char* begin, const char* end, double* out) {
  // std::from_chars rejects a leading '+' that strtod tolerated.
  begin = SkipLeadingPlus(begin, end);
  if (begin == end) return false;
  const std::from_chars_result r = std::from_chars(begin, end, *out);
  if (r.ec == std::errc::result_out_of_range && r.ptr == end) {
    *out = SaturatedParse(begin, end);
    return true;
  }
  return r.ec == std::errc() && r.ptr == end;
}

bool ParseDoubleC(const std::string& s, double* out) {
  return ParseDoubleC(s.data(), s.data() + s.size(), out);
}

const char* ParseDoublePrefixC(const char* begin, const char* end,
                               double* out) {
  const char* start = SkipLeadingPlus(begin, end);
  if (start == end) return begin;
  const std::from_chars_result r = std::from_chars(start, end, *out);
  if (r.ec == std::errc::result_out_of_range) {
    *out = SaturatedParse(start, r.ptr);
    return r.ptr;
  }
  return r.ec == std::errc() ? r.ptr : begin;
}

}  // namespace frechet_motif
