#ifndef FRECHET_MOTIF_UTIL_STATUS_H_
#define FRECHET_MOTIF_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace frechet_motif {

/// Error category for a failed operation. Modeled on the RocksDB/Arrow
/// convention: the library never throws; every fallible public entry point
/// returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kIoError = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  /// Stored data failed validation (bad magic, checksum mismatch,
  /// truncated record). Distinct from kIoError — the bytes were read
  /// fine, they just aren't what was written.
  kDataLoss = 8,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// Usage:
///   Status s = DoWork();
///   if (!s.ok()) return s;
///
/// The class is [[nodiscard]]: ignoring a returned Status is a
/// compile-time warning (an error under the CI warning flags) at every
/// call site, because a dropped Status is a swallowed error. Functions
/// that intentionally discard one must say so: `(void)DoWork();` plus
/// a comment explaining why the failure is unactionable.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code must
  /// not carry a message; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error category.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category (kOk on success).
  StatusCode code() const { return code_; }

  /// The error message (empty on success).
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. T must be movable.
///
/// Usage:
///   StatusOr<Trajectory> t = LoadCsv(path);
///   if (!t.ok()) return t.status();
///   Use(t.value());
///
/// [[nodiscard]] for the same reason Status is: a dropped StatusOr
/// discards an error *and* the value that was paid for.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from a success value.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)) {}

  /// Constructs from an error status. `status.ok()` must be false.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  /// True iff a value is held.
  bool ok() const { return value_.has_value(); }

  /// The status; OK when a value is held.
  const Status& status() const { return status_; }

  /// The held value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  /// Returns the held value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error Status out of the current function.
#define FM_RETURN_IF_ERROR(expr)               \
  do {                                         \
    ::frechet_motif::Status fm_s_ = (expr);    \
    if (!fm_s_.ok()) return fm_s_;             \
  } while (0)

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_STATUS_H_
