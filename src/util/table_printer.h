#ifndef FRECHET_MOTIF_UTIL_TABLE_PRINTER_H_
#define FRECHET_MOTIF_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace frechet_motif {

/// Fixed-width ASCII table writer used by the benchmark harness to print the
/// rows/series of each paper figure, plus a machine-readable CSV twin.
///
/// Usage:
///   TablePrinter t({"n", "BTM (s)", "GTM (s)"});
///   t.AddRow({"1000", "1.23", "0.08"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as there are
  /// headers (short rows are padded, long rows truncated, so a mismatch is
  /// visible but never fatal).
  void AddRow(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string Fmt(std::int64_t v);
  static std::string FmtPercent(double ratio, int precision = 1);

  /// Writes the aligned ASCII table.
  void Print(std::ostream& os) const;

  /// Writes comma-separated values (header row first).
  void PrintCsv(std::ostream& os) const;

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_UTIL_TABLE_PRINTER_H_
