#include "util/table_printer.h"

// fmotif-lint-file: allow(locale-format) — the table cells are display
// text for human-readable stats dumps, not data-plane numbers; see the
// contract note in util/numeric.h.

#include <algorithm>
#include <cstdio>

namespace frechet_motif {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string TablePrinter::FmtPercent(double ratio, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "| " << cells[c] << std::string(widths[c] - cells[c].size(), ' ')
         << ' ';
    }
    os << "|\n";
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto csv_line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  csv_line(headers_);
  for (const auto& row : rows_) csv_line(row);
}

}  // namespace frechet_motif
