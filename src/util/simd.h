#ifndef FRECHET_MOTIF_UTIL_SIMD_H_
#define FRECHET_MOTIF_UTIL_SIMD_H_

/// Runtime SIMD dispatch for the vectorized kernels (currently the
/// discrete-Fréchet DP in src/similarity/frechet.cc).
///
/// The portable build (default) compiles SSE2 and AVX2 variants as
/// target-attribute functions next to the always-present scalar kernel,
/// so one baseline x86-64 binary carries every path and picks the widest
/// one the running CPU supports. `FRECHET_MOTIF_NATIVE=ON` additionally
/// compiles the 512-bit variant (wider vectors only pay off when the
/// whole binary is tuned for the host anyway). `FRECHET_MOTIF_SIMD=OFF`
/// removes every vector path at compile time — the scalar fallback is
/// the same code either way.
///
/// Every variant returns bit-identical results (the DP is min/max-only,
/// so vector reassociation is exact — see docs/PERFORMANCE.md), which is
/// why the dispatch level is allowed to be an invisible runtime choice.
/// tests/kernel_parity_fuzz_test.cc enforces that bit-identity.
///
/// Overrides, strongest first:
///  * SetSimdLevelCap() — tests and benchmarks pin a level;
///  * the FMOTIF_SIMD environment variable ("scalar", "sse2", "avx2",
///    "avx512") — caps the level for debugging without a rebuild;
///  * CPU detection — never exceeds what the hardware supports.

namespace frechet_motif {

/// Instruction-set tiers the kernels are specialized for, widest last.
/// Caps compose by min(), so the numeric order is meaningful.
enum class SimdLevel : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

/// Lower-case tier name ("scalar", "sse2", "avx2", "avx512").
const char* SimdLevelName(SimdLevel level);

/// Parses a tier name (as accepted in FMOTIF_SIMD). Returns false and
/// leaves *out untouched on an unknown name.
bool ParseSimdLevel(const char* name, SimdLevel* out);

/// Widest tier this binary carries code for — a compile-time fact
/// (kScalar when FRECHET_MOTIF_SIMD=OFF or on non-x86 targets; kAvx512
/// only under FRECHET_MOTIF_NATIVE).
SimdLevel CompiledSimdLevel();

/// Widest compiled tier the running CPU supports (detected once, cached).
SimdLevel DetectedSimdLevel();

/// The tier the dispatched kernels run at right now:
/// min(DetectedSimdLevel(), FMOTIF_SIMD cap, SetSimdLevelCap cap).
SimdLevel ActiveSimdLevel();

/// Caps ActiveSimdLevel() at `cap` until ClearSimdLevelCap(). For tests
/// and benchmarks that must pin a specific kernel variant (results are
/// bit-identical across tiers, so production code never needs this).
/// Atomic, so worker threads observe the cap, but not a synchronization
/// point — set it before spawning the work that should see it.
void SetSimdLevelCap(SimdLevel cap);
void ClearSimdLevelCap();

}  // namespace frechet_motif

// Compile gate for the x86 vector kernels: target-attribute functions
// need GCC/Clang, and FRECHET_MOTIF_SIMD=OFF (-> FRECHET_MOTIF_FORCE_SCALAR)
// removes them entirely.
#if !defined(FRECHET_MOTIF_FORCE_SCALAR) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define FRECHET_MOTIF_SIMD_X86 1
#endif

#endif  // FRECHET_MOTIF_UTIL_SIMD_H_
