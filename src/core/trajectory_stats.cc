#include "core/trajectory_stats.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace frechet_motif {

std::string TrajectorySummary::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "points=%d path=%.1f m net=%.1f m duration=%.0f s speed=%.2f m/s\n"
      "sampling period: min=%.2f s median=%.2f s max=%.2f s dropouts=%d\n"
      "extent: x=[%.6f, %.6f] y=[%.6f, %.6f]",
      num_points, path_length_m, net_displacement_m, duration_s,
      mean_speed_mps, min_period_s, median_period_s, max_period_s,
      dropout_events, min_x, max_x, min_y, max_y);
  return buf;
}

StatusOr<TrajectorySummary> Summarize(const Trajectory& t,
                                      const GroundMetric& metric) {
  if (t.empty()) {
    return Status::InvalidArgument("cannot summarize an empty trajectory");
  }
  TrajectorySummary out;
  out.num_points = t.size();
  out.min_x = out.max_x = t[0].x;
  out.min_y = out.max_y = t[0].y;
  for (Index i = 0; i < t.size(); ++i) {
    out.min_x = std::min(out.min_x, t[i].x);
    out.max_x = std::max(out.max_x, t[i].x);
    out.min_y = std::min(out.min_y, t[i].y);
    out.max_y = std::max(out.max_y, t[i].y);
    if (i > 0) out.path_length_m += metric.Distance(t[i - 1], t[i]);
  }
  out.net_displacement_m = metric.Distance(t[0], t[t.size() - 1]);

  if (t.has_timestamps() && t.size() > 1) {
    out.duration_s = t.timestamp(t.size() - 1) - t.timestamp(0);
    if (out.duration_s > 0.0) {
      out.mean_speed_mps = out.path_length_m / out.duration_s;
    }
    std::vector<double> periods;
    periods.reserve(t.size() - 1);
    for (Index i = 1; i < t.size(); ++i) {
      periods.push_back(t.timestamp(i) - t.timestamp(i - 1));
    }
    std::sort(periods.begin(), periods.end());
    out.min_period_s = periods.front();
    out.max_period_s = periods.back();
    out.median_period_s = periods[periods.size() / 2];
    for (const double p : periods) {
      if (p > 3.0 * out.median_period_s) ++out.dropout_events;
    }
  }
  return out;
}

}  // namespace frechet_motif
