#include "core/options.h"

#include <string>

namespace frechet_motif {

Status ValidateMotifInput(const MotifOptions& options, Index n, Index m) {
  const Index xi = options.min_length_xi;
  if (xi < 1) {
    return Status::InvalidArgument("min_length_xi must be >= 1, got " +
                                   std::to_string(xi));
  }
  if (n <= 0 || m <= 0) {
    return Status::InvalidArgument("input trajectory is empty");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }
  if (options.variant == MotifVariant::kSingleTrajectory) {
    // Tightest valid candidate: i=0, ie=ξ+1, j=ξ+2, je=2ξ+3 <= n-1.
    const Index needed = 2 * xi + 4;
    if (n < needed) {
      return Status::InvalidArgument(
          "single-trajectory motif with xi=" + std::to_string(xi) +
          " requires n >= " + std::to_string(needed) + ", got n=" +
          std::to_string(n));
    }
  } else {
    const Index needed = xi + 2;  // i=0, ie=ξ+1 <= n-1
    if (n < needed || m < needed) {
      return Status::InvalidArgument(
          "cross-trajectory motif with xi=" + std::to_string(xi) +
          " requires both lengths >= " + std::to_string(needed));
    }
  }
  return Status::Ok();
}

std::ostream& operator<<(std::ostream& os, const Candidate& c) {
  return os << "(S[" << c.i << ".." << c.ie << "], T[" << c.j << ".." << c.je
            << "])";
}

bool IsValidCandidate(const Candidate& c, const MotifOptions& options,
                      Index n, Index m) {
  const Index xi = options.min_length_xi;
  if (c.i < 0 || c.j < 0) return false;
  if (c.ie <= c.i + xi || c.je <= c.j + xi) return false;
  if (c.je > m - 1 || c.ie > n - 1) return false;
  if (options.variant == MotifVariant::kSingleTrajectory && c.ie >= c.j) {
    return false;
  }
  return true;
}

}  // namespace frechet_motif
