#include "core/trajectory.h"

#include <utility>

namespace frechet_motif {

Trajectory::Trajectory(std::vector<Point> points)
    : points_(std::move(points)) {}

Trajectory::Trajectory(std::vector<Point> points,
                       std::vector<double> timestamps)
    : points_(std::move(points)), timestamps_(std::move(timestamps)) {}

StatusOr<Trajectory> Trajectory::Create(std::vector<Point> points,
                                        std::vector<double> timestamps) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].IsFinite()) {
      return Status::InvalidArgument("non-finite coordinate at point " +
                                     std::to_string(i));
    }
  }
  if (!timestamps.empty()) {
    if (timestamps.size() != points.size()) {
      return Status::InvalidArgument(
          "timestamp count (" + std::to_string(timestamps.size()) +
          ") does not match point count (" + std::to_string(points.size()) +
          ")");
    }
    for (std::size_t i = 1; i < timestamps.size(); ++i) {
      if (!(timestamps[i] > timestamps[i - 1])) {
        return Status::InvalidArgument(
            "timestamps must be strictly ascending; violated at index " +
            std::to_string(i));
      }
    }
  }
  return Trajectory(std::move(points), std::move(timestamps));
}

void Trajectory::Append(const Point& p) {
  points_.push_back(p);
  // A trajectory either has a timestamp for every point or for none;
  // appending without a timestamp to a timestamped trajectory drops them.
  timestamps_.clear();
}

void Trajectory::Append(const Point& p, double timestamp) {
  if (!timestamps_.empty() || points_.empty()) {
    points_.push_back(p);
    timestamps_.push_back(timestamp);
  } else {
    // Existing points lack timestamps; stay timestamp-free.
    points_.push_back(p);
  }
}

Trajectory Trajectory::Slice(Index first, Index last) const {
  std::vector<Point> pts(points_.begin() + first, points_.begin() + last + 1);
  std::vector<double> ts;
  if (has_timestamps()) {
    ts.assign(timestamps_.begin() + first, timestamps_.begin() + last + 1);
  }
  return Trajectory(std::move(pts), std::move(ts));
}

void Trajectory::Concatenate(const Trajectory& other) {
  if (other.empty()) return;
  const bool keep_timestamps =
      (empty() || has_timestamps()) && other.has_timestamps();
  if (keep_timestamps) {
    // Shift other's clock so that it starts strictly after our last sample.
    double shift = 0.0;
    if (!timestamps_.empty()) {
      const double gap = 1.0;  // one second between concatenated recordings
      shift = timestamps_.back() + gap - other.timestamp(0);
    }
    for (Index i = 0; i < other.size(); ++i) {
      points_.push_back(other[i]);
      timestamps_.push_back(other.timestamp(i) + shift);
    }
  } else {
    timestamps_.clear();
    points_.insert(points_.end(), other.points().begin(),
                   other.points().end());
  }
}

std::ostream& operator<<(std::ostream& os, const SubtrajectoryRef& ref) {
  return os << "S[" << ref.first << ".." << ref.last << "]";
}

}  // namespace frechet_motif
