#ifndef FRECHET_MOTIF_CORE_TRAJECTORY_STATS_H_
#define FRECHET_MOTIF_CORE_TRAJECTORY_STATS_H_

#include <string>

#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Descriptive statistics of a trajectory — the quantities the paper's
/// Section 6.1 uses to characterize its datasets (total distance, sampling
/// behaviour) plus the usual movement summaries. Computed in one O(n) pass.
struct TrajectorySummary {
  Index num_points = 0;

  /// Sum of consecutive ground distances (meters).
  double path_length_m = 0.0;

  /// Straight-line distance between first and last point (meters).
  double net_displacement_m = 0.0;

  /// Recording span in seconds (0 when timestamps are absent).
  double duration_s = 0.0;

  /// Mean movement speed = path length / duration (0 without timestamps).
  double mean_speed_mps = 0.0;

  /// Sampling-period statistics (0 without timestamps). The ratio
  /// max/median quantifies the non-uniform sampling the paper highlights.
  double min_period_s = 0.0;
  double median_period_s = 0.0;
  double max_period_s = 0.0;

  /// Sampling gaps exceeding 3x the median period — missing-sample events.
  Index dropout_events = 0;

  /// Geographic extent.
  double min_x = 0.0;
  double max_x = 0.0;
  double min_y = 0.0;
  double max_y = 0.0;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Summarizes `t` under the given ground metric. Returns InvalidArgument
/// for an empty trajectory.
StatusOr<TrajectorySummary> Summarize(const Trajectory& t,
                                      const GroundMetric& metric);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_CORE_TRAJECTORY_STATS_H_
