#ifndef FRECHET_MOTIF_CORE_TRAJECTORY_H_
#define FRECHET_MOTIF_CORE_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point.h"
#include "util/status.h"

namespace frechet_motif {

/// Index into a trajectory's point sequence.
using Index = std::int32_t;

/// A spatial trajectory: a sequence of points with optional ascending
/// timestamps (paper Definition 1). Timestamps may be non-uniform; they are
/// carried for analysis/reporting and for the non-overlap semantics of the
/// motif definition, but the similarity computations themselves are purely
/// order-based (that tolerance to sampling-rate variation is exactly why the
/// paper picks DFD).
class Trajectory {
 public:
  /// Empty trajectory.
  Trajectory() = default;

  /// Builds a trajectory without timestamps.
  explicit Trajectory(std::vector<Point> points);

  /// Builds a trajectory with one timestamp (seconds since epoch) per point.
  /// Prefer FromPointsAndTimes, which validates.
  Trajectory(std::vector<Point> points, std::vector<double> timestamps);

  /// Validating factory: checks that all coordinates are finite and that
  /// timestamps (when provided) match the point count and ascend strictly.
  static StatusOr<Trajectory> Create(std::vector<Point> points,
                                     std::vector<double> timestamps = {});

  /// Number of points `n`.
  Index size() const { return static_cast<Index>(points_.size()); }
  bool empty() const { return points_.empty(); }

  /// The i-th point; i must be in [0, size()).
  const Point& operator[](Index i) const { return points_[i]; }

  /// All points.
  const std::vector<Point>& points() const { return points_; }

  /// True iff per-point timestamps are present.
  bool has_timestamps() const { return !timestamps_.empty(); }

  /// Timestamp of point i (seconds). Only valid when has_timestamps().
  double timestamp(Index i) const { return timestamps_[i]; }

  /// All timestamps (empty when absent).
  const std::vector<double>& timestamps() const { return timestamps_; }

  /// Appends a point (and timestamp when this trajectory carries them).
  void Append(const Point& p);
  void Append(const Point& p, double timestamp);

  /// Returns the contiguous subtrajectory S[first..last] (inclusive),
  /// copying points and timestamps. Indices must satisfy
  /// 0 <= first <= last < size().
  Trajectory Slice(Index first, Index last) const;

  /// Concatenates `other` onto this trajectory. When both carry timestamps,
  /// other's timestamps are shifted so the sequence remains ascending
  /// (mirrors the paper's "concatenate raw trajectories to build longer
  /// trajectories"). When either lacks timestamps, the result drops them.
  void Concatenate(const Trajectory& other);

 private:
  std::vector<Point> points_;
  std::vector<double> timestamps_;
};

/// A half-open reference to a subtrajectory S[first..last] of a trajectory
/// owned elsewhere; cheap to copy. Used in results.
struct SubtrajectoryRef {
  Index first = 0;
  Index last = 0;

  /// Number of points in the referenced range.
  Index length() const { return last - first + 1; }

  friend bool operator==(const SubtrajectoryRef& a, const SubtrajectoryRef& b) {
    return a.first == b.first && a.last == b.last;
  }
};

std::ostream& operator<<(std::ostream& os, const SubtrajectoryRef& ref);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_CORE_TRAJECTORY_H_
