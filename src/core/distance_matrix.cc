#include "core/distance_matrix.h"

#include <algorithm>

namespace frechet_motif {

namespace {

std::vector<SphereVec> VectorizePoints(const Trajectory& t) {
  std::vector<SphereVec> out;
  out.reserve(t.size());
  for (Index i = 0; i < t.size(); ++i) out.push_back(ToSphereVec(t[i]));
  return out;
}

/// Haversine fill over cached unit vectors: one O(n+m) trigonometric pass,
/// then each cell costs a dot product + asin. Bit-identical to
/// metric.Distance (GreatCircleDistanceMeters is defined as exactly this
/// two-step computation), so every algorithm sees the same values.
void FillHaversine(const Trajectory& s, const Trajectory& t, Index n, Index m,
                   std::vector<double>* values) {
  const std::vector<SphereVec> sv = VectorizePoints(s);
  const std::vector<SphereVec> tv = VectorizePoints(t);
  // Block over columns so the tv tile stays resident in L1 while the rows
  // stream past it; column-major reuse is what a naive row-major fill of a
  // large m misses.
  constexpr Index kBlock = 256;
  for (Index j0 = 0; j0 < m; j0 += kBlock) {
    const Index j1 = std::min<Index>(j0 + kBlock, m);
    for (Index i = 0; i < n; ++i) {
      double* row = values->data() + static_cast<std::size_t>(i) * m;
      SphereVecDistanceBatch(sv[i], tv.data() + j0,
                             static_cast<std::size_t>(j1 - j0), row + j0);
    }
  }
}

}  // namespace

StatusOr<DistanceMatrix> DistanceMatrix::Build(const Trajectory& s,
                                               const Trajectory& t,
                                               const GroundMetric& metric) {
  if (s.empty() || t.empty()) {
    return Status::InvalidArgument(
        "cannot build a distance matrix over an empty trajectory");
  }
  const Index n = s.size();
  const Index m = t.size();
  std::vector<double> values(static_cast<std::size_t>(n) * m);
  if (dynamic_cast<const HaversineMetric*>(&metric) != nullptr) {
    FillHaversine(s, t, n, m, &values);
    return DistanceMatrix(n, m, std::move(values));
  }
  constexpr Index kBlock = 256;
  for (Index j0 = 0; j0 < m; j0 += kBlock) {
    const Index j1 = std::min<Index>(j0 + kBlock, m);
    for (Index i = 0; i < n; ++i) {
      const Point& pi = s[i];
      double* row = values.data() + static_cast<std::size_t>(i) * m;
      for (Index j = j0; j < j1; ++j) {
        row[j] = metric.Distance(pi, t[j]);
      }
    }
  }
  return DistanceMatrix(n, m, std::move(values));
}

StatusOr<DistanceMatrix> DistanceMatrix::Build(const Trajectory& s,
                                               const GroundMetric& metric) {
  return Build(s, s, metric);
}

StatusOr<DistanceMatrix> DistanceMatrix::FromValues(
    Index rows, Index cols, std::vector<double> values) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  if (values.size() != static_cast<std::size_t>(rows) * cols) {
    return Status::InvalidArgument(
        "matrix data size does not match rows*cols");
  }
  return DistanceMatrix(rows, cols, std::move(values));
}

RingDistanceMatrix::RingDistanceMatrix(Index row_capacity, Index col_capacity)
    : row_capacity_(row_capacity),
      col_capacity_(col_capacity),
      values_(static_cast<std::size_t>(row_capacity) * col_capacity, 0.0) {}

void RingDistanceMatrix::AppendRow(
    const std::function<double(Index)>& value_of_col) {
  if (row_size_ == row_capacity_) {
    // Evict logical row 0; its physical slot becomes the new last row.
    row_head_ = row_head_ + 1 == row_capacity_ ? 0 : row_head_ + 1;
    --row_size_;
  }
  const Index i = row_size_++;
  for (Index j = 0; j < col_size_; ++j) *Cell(i, j) = value_of_col(j);
}

void RingDistanceMatrix::AppendCol(
    const std::function<double(Index)>& value_of_row) {
  if (col_size_ == col_capacity_) {
    col_head_ = col_head_ + 1 == col_capacity_ ? 0 : col_head_ + 1;
    --col_size_;
  }
  const Index j = col_size_++;
  for (Index i = 0; i < row_size_; ++i) *Cell(i, j) = value_of_row(i);
}

void RingDistanceMatrix::AppendPoint(
    const std::function<double(Index)>& dist_new_to_k,
    const std::function<double(Index)>& dist_k_to_new, double self_distance) {
  if (row_size_ == row_capacity_) {
    row_head_ = row_head_ + 1 == row_capacity_ ? 0 : row_head_ + 1;
    col_head_ = col_head_ + 1 == col_capacity_ ? 0 : col_head_ + 1;
    --row_size_;
    --col_size_;
  }
  const Index k_new = row_size_;
  ++row_size_;
  ++col_size_;
  for (Index k = 0; k < k_new; ++k) {
    *Cell(k_new, k) = dist_new_to_k(k);
    *Cell(k, k_new) = dist_k_to_new(k);
  }
  *Cell(k_new, k_new) = self_distance;
}

void RingDistanceMatrix::WriteRowFromBuffer(Index i, const double* values,
                                            Index count) {
  double* row = values_.data() +
                static_cast<std::size_t>(PhysicalRow(i)) * col_capacity_;
  // Logical columns [0, count) occupy physical slots [col_head_, cap) then
  // wrap to [0, ...): two contiguous copies.
  const Index first = std::min(count, col_capacity_ - col_head_);
  std::copy(values, values + first, row + col_head_);
  std::copy(values + first, values + count, row);
}

void RingDistanceMatrix::WriteColFromBuffer(Index j, const double* values,
                                            Index count) {
  double* col = values_.data() + PhysicalCol(j);
  const Index first = std::min(count, row_capacity_ - row_head_);
  for (Index i = 0; i < first; ++i) {
    col[static_cast<std::size_t>(row_head_ + i) * col_capacity_] = values[i];
  }
  for (Index i = first; i < count; ++i) {
    col[static_cast<std::size_t>(i - first) * col_capacity_] = values[i];
  }
}

void RingDistanceMatrix::AppendRowFromBuffer(const double* values) {
  if (row_size_ == row_capacity_) {
    row_head_ = row_head_ + 1 == row_capacity_ ? 0 : row_head_ + 1;
    --row_size_;
  }
  const Index i = row_size_++;
  WriteRowFromBuffer(i, values, col_size_);
}

void RingDistanceMatrix::AppendColFromBuffer(const double* values) {
  if (col_size_ == col_capacity_) {
    col_head_ = col_head_ + 1 == col_capacity_ ? 0 : col_head_ + 1;
    --col_size_;
  }
  const Index j = col_size_++;
  WriteColFromBuffer(j, values, row_size_);
}

void RingDistanceMatrix::AppendPointFromBuffers(const double* new_to_k,
                                                const double* k_to_new,
                                                double self_distance) {
  if (row_size_ == row_capacity_) {
    row_head_ = row_head_ + 1 == row_capacity_ ? 0 : row_head_ + 1;
    col_head_ = col_head_ + 1 == col_capacity_ ? 0 : col_head_ + 1;
    --row_size_;
    --col_size_;
  }
  const Index k_new = row_size_;
  ++row_size_;
  ++col_size_;
  WriteRowFromBuffer(k_new, new_to_k, k_new);
  WriteColFromBuffer(k_new, k_to_new, k_new);
  *Cell(k_new, k_new) = self_distance;
}

CachedHaversineDistance::CachedHaversineDistance(const Trajectory& s,
                                                 const Trajectory& t)
    : rows_vec_(VectorizePoints(s)), cols_vec_(VectorizePoints(t)) {}

CachedHaversineDistance::CachedHaversineDistance(const Trajectory& s)
    : rows_vec_(VectorizePoints(s)), cols_vec_(rows_vec_) {}

}  // namespace frechet_motif
