#include "core/distance_matrix.h"

namespace frechet_motif {

StatusOr<DistanceMatrix> DistanceMatrix::Build(const Trajectory& s,
                                               const Trajectory& t,
                                               const GroundMetric& metric) {
  if (s.empty() || t.empty()) {
    return Status::InvalidArgument(
        "cannot build a distance matrix over an empty trajectory");
  }
  const Index n = s.size();
  const Index m = t.size();
  std::vector<double> values(static_cast<std::size_t>(n) * m);
  for (Index i = 0; i < n; ++i) {
    const Point& pi = s[i];
    double* row = values.data() + static_cast<std::size_t>(i) * m;
    for (Index j = 0; j < m; ++j) {
      row[j] = metric.Distance(pi, t[j]);
    }
  }
  return DistanceMatrix(n, m, std::move(values));
}

StatusOr<DistanceMatrix> DistanceMatrix::Build(const Trajectory& s,
                                               const GroundMetric& metric) {
  return Build(s, s, metric);
}

StatusOr<DistanceMatrix> DistanceMatrix::FromValues(
    Index rows, Index cols, std::vector<double> values) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  if (values.size() != static_cast<std::size_t>(rows) * cols) {
    return Status::InvalidArgument(
        "matrix data size does not match rows*cols");
  }
  return DistanceMatrix(rows, cols, std::move(values));
}

namespace {

std::vector<SphereVec> VectorizePoints(const Trajectory& t) {
  std::vector<SphereVec> out;
  out.reserve(t.size());
  for (Index i = 0; i < t.size(); ++i) out.push_back(ToSphereVec(t[i]));
  return out;
}

}  // namespace

CachedHaversineDistance::CachedHaversineDistance(const Trajectory& s,
                                                 const Trajectory& t)
    : rows_vec_(VectorizePoints(s)), cols_vec_(VectorizePoints(t)) {}

CachedHaversineDistance::CachedHaversineDistance(const Trajectory& s)
    : rows_vec_(VectorizePoints(s)), cols_vec_(rows_vec_) {}

}  // namespace frechet_motif
