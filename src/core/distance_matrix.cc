#include "core/distance_matrix.h"

#include <algorithm>

namespace frechet_motif {

namespace {

std::vector<SphereVec> VectorizePoints(const Trajectory& t) {
  std::vector<SphereVec> out;
  out.reserve(t.size());
  for (Index i = 0; i < t.size(); ++i) out.push_back(ToSphereVec(t[i]));
  return out;
}

/// Haversine fill over cached unit vectors: one O(n+m) trigonometric pass,
/// then each cell costs a dot product + asin. Bit-identical to
/// metric.Distance (GreatCircleDistanceMeters is defined as exactly this
/// two-step computation), so every algorithm sees the same values.
void FillHaversine(const Trajectory& s, const Trajectory& t, Index n, Index m,
                   std::vector<double>* values) {
  const std::vector<SphereVec> sv = VectorizePoints(s);
  const std::vector<SphereVec> tv = VectorizePoints(t);
  // Block over columns so the tv tile stays resident in L1 while the rows
  // stream past it; column-major reuse is what a naive row-major fill of a
  // large m misses.
  constexpr Index kBlock = 256;
  for (Index j0 = 0; j0 < m; j0 += kBlock) {
    const Index j1 = std::min<Index>(j0 + kBlock, m);
    for (Index i = 0; i < n; ++i) {
      const SphereVec& a = sv[i];
      double* row = values->data() + static_cast<std::size_t>(i) * m;
      for (Index j = j0; j < j1; ++j) {
        row[j] = SphereVecDistanceMeters(a, tv[j]);
      }
    }
  }
}

}  // namespace

StatusOr<DistanceMatrix> DistanceMatrix::Build(const Trajectory& s,
                                               const Trajectory& t,
                                               const GroundMetric& metric) {
  if (s.empty() || t.empty()) {
    return Status::InvalidArgument(
        "cannot build a distance matrix over an empty trajectory");
  }
  const Index n = s.size();
  const Index m = t.size();
  std::vector<double> values(static_cast<std::size_t>(n) * m);
  if (dynamic_cast<const HaversineMetric*>(&metric) != nullptr) {
    FillHaversine(s, t, n, m, &values);
    return DistanceMatrix(n, m, std::move(values));
  }
  constexpr Index kBlock = 256;
  for (Index j0 = 0; j0 < m; j0 += kBlock) {
    const Index j1 = std::min<Index>(j0 + kBlock, m);
    for (Index i = 0; i < n; ++i) {
      const Point& pi = s[i];
      double* row = values.data() + static_cast<std::size_t>(i) * m;
      for (Index j = j0; j < j1; ++j) {
        row[j] = metric.Distance(pi, t[j]);
      }
    }
  }
  return DistanceMatrix(n, m, std::move(values));
}

StatusOr<DistanceMatrix> DistanceMatrix::Build(const Trajectory& s,
                                               const GroundMetric& metric) {
  return Build(s, s, metric);
}

StatusOr<DistanceMatrix> DistanceMatrix::FromValues(
    Index rows, Index cols, std::vector<double> values) {
  if (rows <= 0 || cols <= 0) {
    return Status::InvalidArgument("matrix dimensions must be positive");
  }
  if (values.size() != static_cast<std::size_t>(rows) * cols) {
    return Status::InvalidArgument(
        "matrix data size does not match rows*cols");
  }
  return DistanceMatrix(rows, cols, std::move(values));
}

CachedHaversineDistance::CachedHaversineDistance(const Trajectory& s,
                                                 const Trajectory& t)
    : rows_vec_(VectorizePoints(s)), cols_vec_(VectorizePoints(t)) {}

CachedHaversineDistance::CachedHaversineDistance(const Trajectory& s)
    : rows_vec_(VectorizePoints(s)), cols_vec_(rows_vec_) {}

}  // namespace frechet_motif
