#ifndef FRECHET_MOTIF_CORE_OPTIONS_H_
#define FRECHET_MOTIF_CORE_OPTIONS_H_

#include <limits>
#include <ostream>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// Which motif problem variant is being solved.
enum class MotifVariant {
  /// Problem 1: both subtrajectories come from the same trajectory and must
  /// not overlap (i < ie < j < je).
  kSingleTrajectory,
  /// The variant of Section 3: subtrajectories come from two different
  /// trajectories; no ordering constraint links their index ranges.
  kCrossTrajectory,
};

/// Options shared by every motif-discovery algorithm.
///
/// `min_length_xi` is the paper's ξ: a candidate (i, ie, j, je) is valid iff
/// ie > i + ξ and je > j + ξ (so each subtrajectory spans at least ξ+2
/// points), non-overlap ie < j for the single-trajectory variant, and
/// indices stay inside the trajectory.
struct MotifOptions {
  /// Minimum motif length ξ (paper default: 100). Must be >= 1.
  Index min_length_xi = 100;

  /// Problem variant.
  MotifVariant variant = MotifVariant::kSingleTrajectory;

  /// Worker threads for the bound-precomputation sweep and the subset
  /// verification batches. 1 (default) runs the canonical serial path;
  /// 0 means "all hardware threads". Results are bit-identical for every
  /// setting: work is partitioned statically and merged in a fixed order.
  /// With threads > 1 the DistanceProvider (and its GroundMetric) must be
  /// safe for concurrent const access — true of every provider in this
  /// library, but a custom provider with mutable state (e.g. a memoization
  /// cache) must synchronize internally.
  int threads = 1;
};

/// Validates options against input sizes `n` (rows) and `m` (columns; pass
/// n for the single-trajectory variant). Returns InvalidArgument when no
/// valid candidate can exist.
Status ValidateMotifInput(const MotifOptions& options, Index n, Index m);

/// A motif candidate: the pair of subtrajectories (S[i..ie], T[j..je]).
struct Candidate {
  Index i = 0;
  Index ie = 0;
  Index j = 0;
  Index je = 0;

  friend bool operator==(const Candidate& a, const Candidate& b) {
    return a.i == b.i && a.ie == b.ie && a.j == b.j && a.je == b.je;
  }
};

/// The canonical candidate order used to break exact distance ties:
/// lexicographic on (i, j, ie, je) — subset start pair first, matching the
/// (lb, i, j) order of the search queue, then endpoints. Every search path
/// (serial, threaded, streaming-carried, from-scratch) resolves equal-DFD
/// candidates to the minimum under this order, which is what makes their
/// answers bit-identical even on adversarial tied data.
inline bool CandidateOrderedBefore(const Candidate& a, const Candidate& b) {
  if (a.i != b.i) return a.i < b.i;
  if (a.j != b.j) return a.j < b.j;
  if (a.ie != b.ie) return a.ie < b.ie;
  return a.je < b.je;
}

std::ostream& operator<<(std::ostream& os, const Candidate& c);

/// True iff `c` satisfies the validity constraints for the given options and
/// sizes (see MotifOptions).
bool IsValidCandidate(const Candidate& c, const MotifOptions& options,
                      Index n, Index m);

/// Result of a motif search.
struct MotifResult {
  /// The best pair found. Meaningful only when found is true.
  Candidate best;

  /// Its exact discrete Fréchet distance.
  double distance = std::numeric_limits<double>::infinity();

  /// False iff the input admits no valid candidate (guarded by
  /// ValidateMotifInput, so normally true).
  bool found = false;

  /// Convenience accessors for the two subtrajectories.
  SubtrajectoryRef first() const { return {best.i, best.ie}; }
  SubtrajectoryRef second() const { return {best.j, best.je}; }
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_CORE_OPTIONS_H_
