#ifndef FRECHET_MOTIF_CORE_DISTANCE_MATRIX_H_
#define FRECHET_MOTIF_CORE_DISTANCE_MATRIX_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "core/trajectory.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Read access to the ground-distance matrix dG[i][j] between point i of a
/// "row" trajectory and point j of a "column" trajectory.
///
/// For the single-trajectory motif problem both roles are played by the same
/// trajectory; for the two-trajectory variant they differ. Algorithms are
/// written against this interface so that the precomputed matrix (BruteDP,
/// BTM, GTM — the paper's O(n^2)-space design) and the on-the-fly evaluation
/// (GTM*, Idea (i) of Section 5.5) are interchangeable.
class DistanceProvider {
 public:
  virtual ~DistanceProvider() = default;

  /// dG between row point i and column point j.
  virtual double Distance(Index i, Index j) const = 0;

  /// Number of row points (n).
  virtual Index rows() const = 0;

  /// Number of column points (m; equals rows() for the single-trajectory
  /// problem).
  virtual Index cols() const = 0;

  /// Bytes of memory retained by this provider (for Figure 19 accounting).
  virtual std::size_t MemoryBytes() const = 0;
};

/// Fully materialized dG matrix — the paper's "precompute all pairs of
/// ground distances and store them in matrix dG[·][·]" optimization.
class DistanceMatrix final : public DistanceProvider {
 public:
  /// Precomputes dG over all pairs of `s` (rows) and `t` (columns) points.
  /// Returns InvalidArgument when either trajectory is empty.
  static StatusOr<DistanceMatrix> Build(const Trajectory& s,
                                        const Trajectory& t,
                                        const GroundMetric& metric);

  /// Self-distance matrix for the single-trajectory problem.
  static StatusOr<DistanceMatrix> Build(const Trajectory& s,
                                        const GroundMetric& metric);

  /// Wraps an explicit matrix (row-major, `rows x cols`). Used by tests to
  /// reproduce the paper's worked examples (e.g. Figure 5). Returns
  /// InvalidArgument when the data size does not equal rows*cols or either
  /// dimension is zero.
  static StatusOr<DistanceMatrix> FromValues(Index rows, Index cols,
                                             std::vector<double> values);

  double Distance(Index i, Index j) const override {
    return values_[static_cast<std::size_t>(i) * cols_ + j];
  }

  /// Contiguous row-major span of row i: Row(i)[j] == Distance(i, j) for
  /// j in [0, cols()). This is the devirtualized access path the
  /// monomorphized DFD kernels walk with plain pointer arithmetic.
  const double* Row(Index i) const {
    return values_.data() + static_cast<std::size_t>(i) * cols_;
  }

  Index rows() const override { return rows_; }
  Index cols() const override { return cols_; }
  std::size_t MemoryBytes() const override {
    return values_.capacity() * sizeof(double);
  }

 private:
  DistanceMatrix(Index rows, Index cols, std::vector<double> values)
      : rows_(rows), cols_(cols), values_(std::move(values)) {}

  Index rows_;
  Index cols_;
  std::vector<double> values_;
};

/// Computes ground distances on demand from the trajectories — O(1) memory,
/// one metric evaluation per access. This is GTM*'s Idea (i).
class OnTheFlyDistance final : public DistanceProvider {
 public:
  /// Both trajectories must outlive this provider.
  OnTheFlyDistance(const Trajectory& s, const Trajectory& t,
                   const GroundMetric& metric)
      : s_(s), t_(t), metric_(metric) {}

  /// Single-trajectory form.
  OnTheFlyDistance(const Trajectory& s, const GroundMetric& metric)
      : s_(s), t_(s), metric_(metric) {}

  double Distance(Index i, Index j) const override {
    return metric_.Distance(s_[i], t_[j]);
  }
  Index rows() const override { return s_.size(); }
  Index cols() const override { return t_.size(); }
  std::size_t MemoryBytes() const override { return 0; }

 private:
  const Trajectory& s_;
  const Trajectory& t_;
  const GroundMetric& metric_;
};

/// Bounded sliding-window ground-distance matrix whose storage is reused
/// as a ring buffer: appending a point writes one fresh row (and, for the
/// self-matrix of the single-trajectory problem, one column) of ground
/// distances, and evicting the oldest point is O(1) head advancement —
/// surviving cells are never recomputed and the buffer is never
/// reallocated. Logical index (i, j) maps to physical slot
/// ((i + row_head) mod row_capacity, (j + col_head) mod col_capacity), so
/// algorithms see an ordinary DistanceProvider over the current window.
///
/// This is the incremental-matrix API behind StreamingMotifMonitor
/// (src/stream/): a window slide costs O(s·W) metric evaluations instead
/// of the O(W²) a from-scratch DistanceMatrix::Build pays. Cells are
/// bit-identical to Build's because the caller computes them with the
/// same metric on the same points — so every motif algorithm returns
/// identical results over either provider.
///
/// EvaluateSubset (motif/subset_search.cc) recognizes this provider and
/// runs its DP monomorphized over the ring layout, like it does for
/// DistanceMatrix.
class RingDistanceMatrix final : public DistanceProvider {
 public:
  /// A fixed-capacity rows x cols buffer; both capacities must be >= 1.
  RingDistanceMatrix(Index row_capacity, Index col_capacity);

  double Distance(Index i, Index j) const override {
    return values_[static_cast<std::size_t>(PhysicalRow(i)) * col_capacity_ +
                   PhysicalCol(j)];
  }
  Index rows() const override { return row_size_; }
  Index cols() const override { return col_size_; }
  std::size_t MemoryBytes() const override {
    return values_.capacity() * sizeof(double);
  }

  Index row_capacity() const { return row_capacity_; }
  Index col_capacity() const { return col_capacity_; }

  /// Appends a logical row at index rows(), evicting logical row 0 first
  /// when at capacity. `value_of_col(j)` must return the ground distance
  /// between the new row point and the current column point j, for
  /// j in [0, cols()).
  void AppendRow(const std::function<double(Index)>& value_of_col);

  /// Column counterpart of AppendRow: `value_of_row(i)` is the distance
  /// between row point i and the new column point.
  void AppendCol(const std::function<double(Index)>& value_of_row);

  /// Self-matrix form (square capacities, rows() == cols()): appends one
  /// point as the last row *and* last column in a single step, evicting
  /// the oldest point from both dimensions when full.
  /// `dist_new_to_k(k)` fills the new row (new point is the row point),
  /// `dist_k_to_new(k)` the new column, and `self_distance` the diagonal
  /// cell — the argument split keeps asymmetric metrics honest.
  void AppendPoint(const std::function<double(Index)>& dist_new_to_k,
                   const std::function<double(Index)>& dist_k_to_new,
                   double self_distance);

  /// Buffer counterparts of the append methods: the caller computes the
  /// fresh cells into a contiguous buffer (e.g. with
  /// SphereVecDistanceBatch) and the ring bulk-copies them — contiguous
  /// segment copies for a row, strided stores for a column — instead of
  /// paying one std::function dispatch per cell. Identical eviction and
  /// cell semantics to the std::function forms.
  /// `values[j]` for j in [0, cols()) fills the new row.
  void AppendRowFromBuffer(const double* values);
  /// `values[i]` for i in [0, rows()) fills the new column.
  void AppendColFromBuffer(const double* values);
  /// `new_to_k[k]` / `k_to_new[k]` for k in [0, rows()) fill the new row /
  /// column (pass the same buffer twice for a symmetric metric);
  /// `self_distance` fills the diagonal cell.
  void AppendPointFromBuffers(const double* new_to_k, const double* k_to_new,
                              double self_distance);

  /// Raw layout accessors for monomorphized kernels (subset_search) and
  /// incremental bound maintenance: cell (i, j) lives at
  /// data()[phys(i, row_head, row_capacity) * col_capacity +
  ///        phys(j, col_head, col_capacity)].
  const double* data() const { return values_.data(); }
  Index row_head() const { return row_head_; }
  Index col_head() const { return col_head_; }

 private:
  Index PhysicalRow(Index i) const {
    const Index p = row_head_ + i;
    return p >= row_capacity_ ? p - row_capacity_ : p;
  }
  Index PhysicalCol(Index j) const {
    const Index p = col_head_ + j;
    return p >= col_capacity_ ? p - col_capacity_ : p;
  }
  double* Cell(Index i, Index j) {
    return values_.data() +
           static_cast<std::size_t>(PhysicalRow(i)) * col_capacity_ +
           PhysicalCol(j);
  }

  /// Bulk writes of logical row i / column j from a contiguous buffer of
  /// `count` values, splitting at the ring wrap point.
  void WriteRowFromBuffer(Index i, const double* values, Index count);
  void WriteColFromBuffer(Index j, const double* values, Index count);

  Index row_capacity_;
  Index col_capacity_;
  Index row_head_ = 0;
  Index col_head_ = 0;
  Index row_size_ = 0;
  Index col_size_ = 0;
  std::vector<double> values_;
};

/// On-the-fly great-circle distances with O(n+m) cached unit vectors: each
/// point's sphere vector is precomputed once, so a distance evaluation
/// costs one sqrt + asin instead of six trigonometric calls. Results are
/// bit-identical to HaversineMetric (GreatCircleDistanceMeters is defined
/// as exactly this computation), so GTM* over this provider returns the
/// same distances as the matrix-based algorithms.
class CachedHaversineDistance final : public DistanceProvider {
 public:
  /// Both trajectories must outlive this provider.
  CachedHaversineDistance(const Trajectory& s, const Trajectory& t);

  /// Single-trajectory form.
  explicit CachedHaversineDistance(const Trajectory& s);

  double Distance(Index i, Index j) const override {
    return SphereVecDistanceMeters(rows_vec_[i], cols_vec_[j]);
  }
  Index rows() const override { return static_cast<Index>(rows_vec_.size()); }
  Index cols() const override { return static_cast<Index>(cols_vec_.size()); }
  std::size_t MemoryBytes() const override {
    return (rows_vec_.capacity() + cols_vec_.capacity()) * sizeof(SphereVec);
  }

 private:
  std::vector<SphereVec> rows_vec_;
  std::vector<SphereVec> cols_vec_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_CORE_DISTANCE_MATRIX_H_
