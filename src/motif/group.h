#ifndef FRECHET_MOTIF_MOTIF_GROUP_H_
#define FRECHET_MOTIF_MOTIF_GROUP_H_

#include <cstddef>
#include <vector>

#include "core/distance_matrix.h"
#include "core/options.h"

namespace frechet_motif {

/// One τ-grouping level (Section 5.1): trajectory points are partitioned
/// into contiguous groups of τ samples, g_u = [uτ, min((u+1)τ-1, n-1)]
/// (the trailing group may be partial), and for every pair of groups the
/// minimum and maximum ground distances are recorded:
///
///   dmin(u,v) = min_{i∈g_u, j∈g_v} dG(i,j),
///   dmax(u,v) = max_{i∈g_u, j∈g_v} dG(i,j)      (Definition 4, Corollary 1)
///
/// On top of the envelopes the class offers the group analogues of the
/// pattern bounds (Section 5.2) and the group-based DFD bounds GLB_DFD /
/// GUB_DFD via dFmin/dFmax dynamic programs (Section 5.3, Definition 5,
/// Lemmas 3-4).
///
/// All bounds use conservative index arithmetic so they stay *safe* for any
/// τ (including τ > ξ+1, where crossing a neighbouring group is no longer
/// guaranteed and the cross/band bounds simply deactivate).
class Grouping {
 public:
  /// Scans the provider once (O(n·m) distance evaluations, O((n/τ)(m/τ))
  /// memory) and precomputes the group-level relaxed pattern-bound arrays.
  /// `tau` must be >= 1.
  static Grouping Build(const DistanceProvider& dist,
                        const MotifOptions& options, Index tau);

  Index tau() const { return tau_; }
  Index num_row_groups() const { return nu_; }
  Index num_col_groups() const { return nv_; }

  /// First/last point index of row group u / column group v.
  Index RowFirst(Index u) const { return u * tau_; }
  Index RowLast(Index u) const {
    const Index last = (u + 1) * tau_ - 1;
    return last < n_ - 1 ? last : n_ - 1;
  }
  Index ColFirst(Index v) const { return v * tau_; }
  Index ColLast(Index v) const {
    const Index last = (v + 1) * tau_ - 1;
    return last < m_ - 1 ? last : m_ - 1;
  }

  /// Ground-distance envelopes.
  double Dmin(Index u, Index v) const {
    return dmin_[static_cast<std::size_t>(u) * nv_ + v];
  }
  double Dmax(Index u, Index v) const {
    return dmax_[static_cast<std::size_t>(u) * nv_ + v];
  }

  /// GLB_cell(u,v) = dmin(u,v) (Equation 18). Always applicable.
  double CellLb(Index u, Index v) const { return Dmin(u, v); }

  /// Relaxed group cross bound (max of group-level Cmin/Rmin); -infinity
  /// when τ > ξ+1 (crossing the next group is not guaranteed).
  double CrossLb(Index u, Index v) const;

  /// Relaxed group band bound (sliding max over the group window
  /// ⌊(ξ+1)/τ⌋); -infinity when the window is empty.
  double BandLb(Index u, Index v) const;

  /// Combined O(1) pattern bound: max(cell, cross, band).
  double PatternLb(Index u, Index v) const;

  /// True iff the block g_u x g_v contains the start cell (i,j) of at least
  /// one valid candidate under the options.
  bool AdmitsCandidate(Index u, Index v) const;

  /// Group-based DFD bounds for start pair (u,v) (Section 5.3):
  /// `*glb` <= dF(i,ie,j,je) for every valid candidate starting in
  /// g_u x g_v, and there exists a valid candidate with dF <= `*gub`
  /// (+infinity when no end-group pair guarantees one). Runs the
  /// dFmin/dFmax dynamic programs over the envelope matrices —
  /// O((n/τ)(m/τ)) per call worst case.
  ///
  /// `threshold` enables the paper's early termination: once an entire
  /// dFmin frontier row exceeds it, no deeper cell can fall below it
  /// (each cell is >= the min of its predecessors), so the scan stops.
  /// The pruning decision `*glb > threshold` is unaffected; `*glb` itself
  /// is only guaranteed exact when no cutoff occurred (e.g. threshold =
  /// +infinity), and `*gub` remains a valid — possibly less tight — upper
  /// bound. Pass +infinity for exact bounds.
  void DfdBounds(Index u, Index v, double threshold, double* glb,
                 double* gub) const;

  /// Bytes held by the envelope matrices and bound arrays.
  std::size_t MemoryBytes() const;

 private:
  Grouping() = default;

  Index tau_ = 1;
  Index n_ = 0;   // row points
  Index m_ = 0;   // column points
  Index nu_ = 0;  // row groups
  Index nv_ = 0;  // column groups
  Index window_ = 0;  // ⌊(ξ+1)/τ⌋, the guaranteed group band width
  MotifOptions options_;
  std::vector<double> dmin_;
  std::vector<double> dmax_;
  std::vector<double> grmin_;      // group-level Rmin
  std::vector<double> gcmin_;      // group-level Cmin
  std::vector<double> gband_row_;  // sliding max of grmin_, window window_
  std::vector<double> gband_col_;  // sliding max of gcmin_, window window_
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_GROUP_H_
