#ifndef FRECHET_MOTIF_MOTIF_GTM_STAR_H_
#define FRECHET_MOTIF_MOTIF_GTM_STAR_H_

/// GTM*, the space-efficient motif algorithm (the paper's Section 5.5):
/// trades a little of GTM's speed for O(max{(n/τ)², n}) memory by computing
/// ground distances on the fly, keeping only two DP rows, and running the
/// grouping loop once at a fixed τ. The right choice when the dG matrix of
/// a very long trajectory would not fit in memory (Figure 19). Exact.

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/stats.h"
#include "util/status.h"

namespace frechet_motif {

/// Configuration of the space-efficient GTM* (Section 5.5).
struct GtmStarOptions {
  MotifOptions motif;

  /// Group size τ. GTM* runs the grouping loop *once* at this size
  /// (Idea iii), so — unlike GTM — it is not halved.
  Index group_size_tau = 32;

  /// Enables end-cell cross pruning in the point-level phase.
  bool use_end_cross = true;

  /// Approximation knob with the same contract as GtmOptions: lower-bound
  /// prunes (pattern, GLB_DFD, per-block subset queue) fire at
  /// lb·(1+ε) > threshold, GUB tightenings contribute gub·(1+ε), and the
  /// returned distance is at most (1+ε) times the optimum. 0 (default)
  /// keeps GTM* exact and bit-identical. Must be >= 0.
  double approximation_epsilon = 0.0;
};

/// GTM*: the space-efficient variant. Incorporates the paper's three ideas:
///  (i)   ground distances are computed on the fly (no dG matrix);
///  (ii)  the shared DFD dynamic program keeps only two rows (O(n) space);
///  (iii) the grouping loop runs exactly once at the given τ, so the only
///        quadratic structure is the (n/τ)² group envelope.
/// Space: O(max{(n/τ)², n}). Exact: returns the same distance as
/// BruteDpMotif.
///
/// The provider-based entry point lets tests drive GTM* over explicit
/// matrices; production use goes through the trajectory overloads, which
/// construct an OnTheFlyDistance.
StatusOr<MotifResult> GtmStarMotif(const DistanceProvider& dist,
                                   const GtmStarOptions& options,
                                   MotifStats* stats = nullptr);

/// Problem 1 over a single trajectory (no distance matrix is materialized).
StatusOr<MotifResult> GtmStarMotif(const Trajectory& s,
                                   const GroundMetric& metric,
                                   const GtmStarOptions& options,
                                   MotifStats* stats = nullptr);

/// Two-trajectory variant.
StatusOr<MotifResult> GtmStarMotif(const Trajectory& s, const Trajectory& t,
                                   const GroundMetric& metric,
                                   const GtmStarOptions& options,
                                   MotifStats* stats = nullptr);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_GTM_STAR_H_
