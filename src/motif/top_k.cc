#include "motif/top_k.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "motif/relaxed_bounds.h"
#include "motif/subset_search.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace frechet_motif {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A subset optimum awaiting final selection.
struct PoolEntry {
  double distance = 0.0;
  Candidate candidate;
};

/// Chebyshev distance between the start cells of two candidates.
Index StartSeparation(const Candidate& a, const Candidate& b) {
  const Index di = a.i > b.i ? a.i - b.i : b.i - a.i;
  const Index dj = a.j > b.j ? a.j - b.j : b.j - a.j;
  return di > dj ? di : dj;
}

}  // namespace

StatusOr<std::vector<MotifResult>> TopKMotifs(const DistanceProvider& dist,
                                              const TopKOptions& options,
                                              MotifStats* stats) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  FM_RETURN_IF_ERROR(ValidateMotifInput(options.motif, n, m));
  if (options.k < 1) {
    return Status::InvalidArgument("k must be >= 1");
  }
  if (options.min_start_separation < 1) {
    return Status::InvalidArgument("min_start_separation must be >= 1");
  }
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument("approximation_epsilon must be >= 0");
  }
  const double lb_scale = 1.0 + options.approximation_epsilon;

  Timer timer;
  if (stats != nullptr) stats->memory.Add(dist.MemoryBytes());

  // Worker pool for the bounds build and the subset-bound sweep; absent
  // (null) on the default threads=1 serial path. The evaluation loop
  // below stays serial — its heap threshold evolves with every subset.
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  const int threads = ResolveThreadCount(options.motif.threads);
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }
  const RelaxedBounds rb = RelaxedBounds::Build(dist, options.motif, pool);

  // Candidate subsets in ascending combined-lower-bound order, as in BTM.
  std::vector<SubsetEntry> entries;
  entries.reserve(
      static_cast<std::size_t>(CountValidSubsets(options.motif, n, m)));
  ForEachValidSubset(options.motif, n, m, [&](Index i, Index j) {
    entries.push_back(SubsetEntry{0.0, i, j});
  });
  FillSubsetBounds(&entries, pool, [&](Index i, Index j) {
    return std::max({dist.Distance(i, j), rb.StartCross(i, j), rb.BandRow(j),
                     rb.BandCol(i)});
  });
  std::sort(entries.begin(), entries.end(),
            [](const SubsetEntry& a, const SubsetEntry& b) {
              if (a.lb != b.lb) return a.lb < b.lb;
              if (a.i != b.i) return a.i < b.i;
              return a.j < b.j;
            });
  if (stats != nullptr) {
    stats->total_subsets = static_cast<std::int64_t>(entries.size());
    stats->memory.Add(entries.capacity() * sizeof(SubsetEntry));
    stats->precompute_seconds += timer.ElapsedSeconds();
  }

  timer.Restart();
  // Max-heap of the best subset-optimum distances seen so far; its top is
  // the pruning threshold once full. With separation == 1 the heap holds
  // exactly k and the search is exact: a subset whose lower bound exceeds
  // the current k-th best optimum can never place in the top k. With a
  // larger separation the greedy selection may need to look past
  // conflicting near-duplicates, so the heap is widened (a motif "ridge"
  // contributes ~separation adjacent subsets per direction).
  const int heap_capacity =
      options.min_start_separation == 1
          ? options.k
          : options.k * (2 * static_cast<int>(options.min_start_separation));
  std::priority_queue<double> best_k;
  auto prune_threshold = [&] {
    return static_cast<int>(best_k.size()) < heap_capacity ? kInf
                                                           : best_k.top();
  };

  std::vector<PoolEntry> candidate_pool;
  FrechetScratch scratch;
  for (const SubsetEntry& e : entries) {
    // Sorted: once the scaled bound exceeds the running k-th best, the
    // rest of the queue can only do worse (by at most a (1+ε) factor).
    if (e.lb * lb_scale > prune_threshold()) break;
    SearchState local;
    local.threshold = prune_threshold();
    EvaluateSubset(dist, options.motif, e.i, e.j, &rb,
                   /*use_end_cross=*/true, EndpointCaps{}, &local, stats,
                   &scratch);
    if (!local.found) continue;  // whole subset above the threshold
    candidate_pool.push_back(PoolEntry{local.best_distance, local.best});
    best_k.push(local.best_distance);
    if (static_cast<int>(best_k.size()) > heap_capacity) best_k.pop();
  }

  // Greedy selection in ascending distance order, honouring separation.
  std::sort(candidate_pool.begin(), candidate_pool.end(),
            [](const PoolEntry& a, const PoolEntry& b) {
              return a.distance < b.distance;
            });
  std::vector<MotifResult> results;
  for (const PoolEntry& entry : candidate_pool) {
    if (static_cast<int>(results.size()) >= options.k) break;
    bool conflicts = false;
    for (const MotifResult& chosen : results) {
      if (StartSeparation(entry.candidate, chosen.best) <
          options.min_start_separation) {
        conflicts = true;
        break;
      }
    }
    if (conflicts) continue;
    MotifResult r;
    r.best = entry.candidate;
    r.distance = entry.distance;
    r.found = true;
    results.push_back(r);
  }
  if (stats != nullptr) stats->search_seconds += timer.ElapsedSeconds();
  return results;
}

StatusOr<std::vector<MotifResult>> TopKMotifs(const Trajectory& s,
                                              const GroundMetric& metric,
                                              const TopKOptions& options,
                                              MotifStats* stats) {
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, metric);
  if (!dg.ok()) return dg.status();
  return TopKMotifs(dg.value(), options, stats);
}

StatusOr<std::vector<MotifResult>> TopKMotifs(const Trajectory& s,
                                              const Trajectory& t,
                                              const GroundMetric& metric,
                                              const TopKOptions& options,
                                              MotifStats* stats) {
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, t, metric);
  if (!dg.ok()) return dg.status();
  TopKOptions cross_options = options;
  cross_options.motif.variant = MotifVariant::kCrossTrajectory;
  return TopKMotifs(dg.value(), cross_options, stats);
}

}  // namespace frechet_motif
