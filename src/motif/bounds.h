#ifndef FRECHET_MOTIF_MOTIF_BOUNDS_H_
#define FRECHET_MOTIF_MOTIF_BOUNDS_H_

#include "core/distance_matrix.h"
#include "core/options.h"

namespace frechet_motif {

/// Tight pattern-based lower bounds of Section 4.2.
///
/// Every function lower-bounds dF(i, ie, j, je) for all *valid* candidates
/// in the candidate subset CS(i,j) (band bounds additionally use the minimum
/// motif length ξ). When the subset admits no valid candidate the functions
/// may return +infinity, which safely disqualifies it.
///
/// Index convention: the first subtrajectory index (i, ie) selects the *row
/// point* of the DistanceProvider and the second (j, je) the *column point*,
/// matching dG(i, j) in the paper. The admissible ranges of the path-crossing
/// argument depend on the problem variant (single-trajectory candidates obey
/// ie < j), which is why the options are threaded through.

/// LB_cell(i,j) = dG(i,j): the path leading to any candidate's DFD starts at
/// cell (i, j) (Observation 2). O(1).
double LbCell(const DistanceProvider& dist, Index i, Index j);

/// LB_row(i,j) = min over admissible first-indices c of dG(c, j+1): every
/// path out of (i,j) crosses row j+1 (Observation 3). O(n).
double LbRow(const DistanceProvider& dist, const MotifOptions& options,
             Index i, Index j);

/// LB_col(i,j) = min over admissible second-indices r of dG(i+1, r): every
/// path crosses column i+1 (Observation 3). O(m).
double LbCol(const DistanceProvider& dist, const MotifOptions& options,
             Index i, Index j);

/// LB_cross^start(i,j) = max(LB_row, LB_col)  (Equation 4).
double LbStartCross(const DistanceProvider& dist, const MotifOptions& options,
                    Index i, Index j);

/// LB_band^row(i,j) = max over j' in [j, j+ξ-1] of LB_row(i, j'): with the
/// minimum length constraint the path crosses each of rows j+1..j+ξ
/// (Observation 4, Equation 5). O(ξ·n).
double LbRowBand(const DistanceProvider& dist, const MotifOptions& options,
                 Index i, Index j);

/// LB_band^col(i,j) = max over i' in [i, i+ξ-1] of LB_col(i', j)
/// (Equation 6). O(ξ·m).
double LbColBand(const DistanceProvider& dist, const MotifOptions& options,
                 Index i, Index j);

/// End-cell cross bound (Equation 9): lower-bounds dF(i, ic, j, jc) for all
/// candidates of CS(i,j) that end strictly beyond (ie, je) in both
/// dimensions (ic > ie and jc > je). O(n + m).
double LbEndCross(const DistanceProvider& dist, const MotifOptions& options,
                  Index i, Index j, Index ie, Index je);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_BOUNDS_H_
