#ifndef FRECHET_MOTIF_MOTIF_RELAXED_BOUNDS_H_
#define FRECHET_MOTIF_MOTIF_RELAXED_BOUNDS_H_

#include <cstddef>
#include <vector>

#include "core/distance_matrix.h"
#include "core/options.h"
#include "util/thread_pool.h"

namespace frechet_motif {

/// Relaxed lower bounds of Section 4.3.
///
/// One O(n·m) precomputation pass produces four arrays; afterwards every
/// bound query is O(1) — the amortized-O(1) property the paper relies on:
///
///  * `Rmin[j]`  = min over first-indices c in [0, j-1] (single-trajectory)
///                 or [0, n-1] (cross) of dG(c, j+1); relaxes LB_row(i,j)
///                 for every admissible i (Lemma 2).
///  * `Cmin[i]`  = min over second-indices r in [i+1, m-1] (single) or
///                 [0, m-1] (cross) of dG(i+1, r); relaxes LB_col(i,j).
///  * Band bounds are sliding-window maxima of Rmin/Cmin with window ξ,
///    computed for all positions in O(n+m) total with a monotone deque
///    (the paper quotes O(ξn); same values, just faster to build).
///  * `RminFull`/`CminFull` drop the index restriction entirely
///    (min over the whole row/column). They justify the *global* search-
///    frontier caps of Algorithm 2 lines 12-13: once
///    RminFull[y] exceeds the threshold, no candidate anywhere may end at
///    jc > y, because its path would cross row y+1.
///
/// Out-of-range queries and subsets with no valid candidate yield +infinity,
/// which safely disqualifies them.
class RelaxedBounds {
 public:
  /// Creates an empty instance; all queries are invalid until assigned
  /// from Build().
  RelaxedBounds() = default;

  /// Runs the precomputation pass. O(n·m) distance evaluations,
  /// O(n+m) memory — compatible with GTM*'s on-the-fly provider.
  ///
  /// `pool` (optional) shards the row/column sweeps across its lanes; each
  /// output index is written by exactly one iteration, so the result is
  /// bit-identical to the serial pass.
  static RelaxedBounds Build(const DistanceProvider& dist,
                             const MotifOptions& options,
                             ThreadPool* pool = nullptr);

  /// Assembles an instance from externally maintained component arrays —
  /// the hook for incremental maintainers (the streaming engine keeps the
  /// row/column minima up to date under window eviction instead of
  /// re-running Build). The arrays must hold exactly the values Build
  /// would produce for the same provider and options; the band arrays
  /// are derived here via SlidingWindowMax with window `min_length_xi`,
  /// exactly as Build derives them.
  static RelaxedBounds FromComponents(std::vector<double> rmin,
                                      std::vector<double> cmin,
                                      std::vector<double> cmin_start,
                                      std::vector<double> rmin_full,
                                      std::vector<double> cmin_full,
                                      Index min_length_xi);

  /// Relaxed row bound for any subset with second start index j.
  double Rmin(Index j) const { return rmin_[j]; }

  /// Relaxed column bound valid for *end-cell* queries Cmin(ie): the
  /// crossing row may be as low as j = ie+1 in the single-trajectory
  /// variant, so the scan starts right after the diagonal.
  double Cmin(Index i) const { return cmin_[i]; }

  /// Relaxed column bound valid for *start-cell* and band queries: every
  /// valid subset satisfies j >= i+3 (j >= i+ξ+2 with ξ >= 1), so the
  /// scan can skip the near-diagonal cells whose tiny self-distances would
  /// otherwise drown the bound.
  double CminStart(Index i) const { return cmin_start_[i]; }

  /// Whole-column / whole-row minima (global caps; see class comment).
  double RminFull(Index j) const { return rmin_full_[j]; }
  double CminFull(Index i) const { return cmin_full_[i]; }

  /// rLB_cross^start(i,j) (Equation 12).
  double StartCross(Index i, Index j) const {
    return CminStart(i) > Rmin(j) ? CminStart(i) : Rmin(j);
  }

  /// rLB_cross^end(ie,je) (Equation 13): valid for candidates ending
  /// strictly beyond (ie, je) in both dimensions.
  double EndCross(Index ie, Index je) const {
    return Cmin(ie) > Rmin(je) ? Cmin(ie) : Rmin(je);
  }

  /// rLB_band^row(j) (Equation 14).
  double BandRow(Index j) const { return band_row_[j]; }

  /// rLB_band^col(i) (Equation 15).
  double BandCol(Index i) const { return band_col_[i]; }

  /// Bytes held by the four arrays (Figure 19 accounting).
  std::size_t MemoryBytes() const;

 private:
  std::vector<double> rmin_;
  std::vector<double> cmin_;
  std::vector<double> cmin_start_;
  std::vector<double> rmin_full_;
  std::vector<double> cmin_full_;
  std::vector<double> band_row_;
  std::vector<double> band_col_;
};

/// Sliding-window maximum: out[k] = max(values[k .. k+window-1]), +infinity
/// where the window does not fit. Exposed for testing. O(values.size()).
std::vector<double> SlidingWindowMax(const std::vector<double>& values,
                                     Index window);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_RELAXED_BOUNDS_H_
