#ifndef FRECHET_MOTIF_MOTIF_BTM_H_
#define FRECHET_MOTIF_MOTIF_BTM_H_

/// BTM, the bounding-based trajectory motif algorithm (the paper's
/// Algorithm 2): precompute DFD lower bounds per candidate subset, process
/// subsets best-first, prune with the bound cascade (LB_cell, cross, band —
/// tight per Section 4.2 or relaxed per Section 4.3), and share the DFD
/// dynamic program within each surviving subset. Exact; the BtmOptions
/// toggles exist for the paper's ablation figures. Most applications
/// should call FindMotif (motif/motif.h) instead of BtmMotif directly.

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/stats.h"
#include "util/status.h"

namespace frechet_motif {

/// Configuration of the bounding-based trajectory motif algorithm
/// (Algorithm 2). The bound toggles exist for the paper's ablations:
/// Figure 13/14 compare `relaxed` on/off; Figure 16 compares the
/// cell / cell+cross / cell+cross+band combinations.
struct BtmOptions {
  MotifOptions motif;

  /// Enables LB_cell for subset pruning.
  bool use_cell = true;
  /// Enables the start-cross bound.
  bool use_cross = true;
  /// Enables the band bounds.
  bool use_band = true;
  /// True: O(1)-amortized relaxed bounds (Section 4.3).
  /// False: tight bounds (Section 4.2; O(n)/O(ξn) per subset).
  bool relaxed = true;
  /// Enables end-cell cross pruning inside the shared DP (Equation 9) and
  /// the global endpoint caps of Algorithm 2 lines 12-13.
  bool use_end_cross = true;
  /// Processes subsets in ascending lower-bound order (best-first). The
  /// paper's Algorithm 2 always sorts; disabling isolates the contribution
  /// of the search order in ablations.
  bool sort_subsets = true;
  /// When set (and `stats` is passed), performs a post-search pass that
  /// classifies every subset by the first bound — cell, cross, band, in the
  /// cascade order — exceeding the final threshold (Figure 15's breakdown).
  /// Costs one extra bound evaluation per subset.
  bool collect_breakdown = false;

  /// Approximation knob (the paper's Section 7 future-work direction,
  /// "trade exactness for shorter running times"): with ε > 0 a candidate
  /// subset is pruned as soon as its lower bound exceeds threshold/(1+ε),
  /// and the returned motif distance is guaranteed to be at most (1+ε)
  /// times the optimum. 0 (default) keeps BTM exact.
  double approximation_epsilon = 0.0;
};

/// BTM (Algorithm 2): computes all lower bounds, processes candidate
/// subsets best-first, prunes with the bounds, and shares DFD computation
/// within each subset. Exact: returns the same distance as BruteDpMotif.
///
/// `stats` may be null. Returns InvalidArgument when the input admits no
/// valid candidate.
StatusOr<MotifResult> BtmMotif(const DistanceProvider& dist,
                               const BtmOptions& options,
                               MotifStats* stats = nullptr);

/// Convenience overload: precomputes the dG matrix for `s` and solves
/// Problem 1.
StatusOr<MotifResult> BtmMotif(const Trajectory& s, const GroundMetric& metric,
                               const BtmOptions& options,
                               MotifStats* stats = nullptr);

/// Convenience overload for the two-trajectory variant (sets
/// options.motif.variant accordingly).
StatusOr<MotifResult> BtmMotif(const Trajectory& s, const Trajectory& t,
                               const GroundMetric& metric,
                               const BtmOptions& options,
                               MotifStats* stats = nullptr);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_BTM_H_
