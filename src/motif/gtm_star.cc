#include "motif/gtm_star.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "motif/group.h"
#include "motif/relaxed_bounds.h"
#include "motif/subset_search.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace frechet_motif {

namespace {

struct GroupEntry {
  double lb = 0.0;
  Index u = 0;
  Index v = 0;
};

}  // namespace

StatusOr<MotifResult> GtmStarMotif(const DistanceProvider& dist,
                                   const GtmStarOptions& options,
                                   MotifStats* stats) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  FM_RETURN_IF_ERROR(ValidateMotifInput(options.motif, n, m));
  if (options.group_size_tau < 1) {
    return Status::InvalidArgument("group_size_tau must be >= 1");
  }
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument("approximation_epsilon must be >= 0");
  }
  // (1+ε) scale on every lower-bound prune; GUB tightenings contribute
  // gub·(1+ε) so the upper bound's witness stays unprunable (see
  // GtmOptions::approximation_epsilon).
  const double lb_scale = 1.0 + options.approximation_epsilon;
  const MotifOptions& motif = options.motif;

  Timer timer;
  if (stats != nullptr) stats->memory.Add(dist.MemoryBytes());

  // Worker pool for the bound sweep and the block verification batches;
  // absent (null) on the default threads=1 serial path.
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  const int threads = ResolveThreadCount(motif.threads);
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  // Single grouping pass at τ (Idea iii) and O(n+m)-space relaxed bounds;
  // both scan the provider on the fly (Idea i).
  const Grouping grouping = Grouping::Build(dist, motif,
                                            options.group_size_tau);
  const RelaxedBounds rb = RelaxedBounds::Build(dist, motif, pool);
  if (stats != nullptr) {
    stats->memory.Add(grouping.MemoryBytes());
    stats->memory.Add(rb.MemoryBytes());
    stats->total_subsets = CountValidSubsets(motif, n, m);
    stats->precompute_seconds += timer.ElapsedSeconds();
  }

  timer.Restart();
  SearchState state;

  // Group-pair pruning, best-first by pattern bound.
  std::vector<GroupEntry> entries;
  for (Index u = 0; u < grouping.num_row_groups(); ++u) {
    for (Index v = 0; v < grouping.num_col_groups(); ++v) {
      if (!grouping.AdmitsCandidate(u, v)) continue;
      entries.push_back(GroupEntry{grouping.PatternLb(u, v), u, v});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const GroupEntry& a, const GroupEntry& b) {
              return a.lb < b.lb;
            });
  if (stats != nullptr) {
    stats->memory.Add(entries.capacity() * sizeof(GroupEntry));
  }

  std::vector<GroupEntry> survivors;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const GroupEntry& e = entries[k];
    if (stats != nullptr) ++stats->group_pairs_total;
    if (e.lb * lb_scale > state.threshold) {
      if (stats != nullptr) {
        stats->group_pairs_pruned_pattern +=
            static_cast<std::int64_t>(entries.size() - k);
        stats->group_pairs_total +=
            static_cast<std::int64_t>(entries.size() - k - 1);
      }
      break;
    }
    double glb = 0.0;
    double gub = 0.0;
    grouping.DfdBounds(e.u, e.v, state.threshold, &glb, &gub);
    if (gub * lb_scale < state.threshold) {
      state.threshold = gub * lb_scale;
      if (stats != nullptr) ++stats->gub_tightenings;
    }
    if (glb * lb_scale > state.threshold) {
      if (stats != nullptr) ++stats->group_pairs_pruned_dfd_bound;
      continue;
    }
    survivors.push_back(e);
  }

  // Point-level phase: process each surviving block with the bounded
  // best-first subset loop, keeping per-block memory at O(τ²). The
  // endpoint caps are global facts, so they persist across blocks.
  std::vector<SubsetEntry> block;
  EndpointCaps caps;
  for (const GroupEntry& e : survivors) {
    block.clear();
    for (Index i = grouping.RowFirst(e.u); i <= grouping.RowLast(e.u); ++i) {
      for (Index j = grouping.ColFirst(e.v); j <= grouping.ColLast(e.v);
           ++j) {
        if (!IsValidSubsetStart(motif, n, m, i, j)) continue;
        const double lb =
            std::max({dist.Distance(i, j), rb.StartCross(i, j),
                      rb.BandRow(j), rb.BandCol(i)});
        block.push_back(SubsetEntry{lb, i, j});
      }
    }
    RunSubsetQueue(dist, motif, &block, &rb, options.use_end_cross,
                   /*sort_entries=*/true, &state, stats, &caps,
                   lb_scale, pool);
  }
  if (stats != nullptr) stats->search_seconds += timer.ElapsedSeconds();

  MotifResult result;
  result.best = state.best;
  result.distance = state.best_distance;
  result.found = state.found;
  return result;
}

namespace {

/// The haversine metric admits an O(n)-memory unit-vector cache whose
/// results are bit-identical to fresh evaluation; use it when applicable.
bool IsHaversine(const GroundMetric& metric) {
  return dynamic_cast<const HaversineMetric*>(&metric) != nullptr;
}

}  // namespace

StatusOr<MotifResult> GtmStarMotif(const Trajectory& s,
                                   const GroundMetric& metric,
                                   const GtmStarOptions& options,
                                   MotifStats* stats) {
  if (IsHaversine(metric)) {
    const CachedHaversineDistance dist(s);
    return GtmStarMotif(dist, options, stats);
  }
  const OnTheFlyDistance dist(s, metric);
  return GtmStarMotif(dist, options, stats);
}

StatusOr<MotifResult> GtmStarMotif(const Trajectory& s, const Trajectory& t,
                                   const GroundMetric& metric,
                                   const GtmStarOptions& options,
                                   MotifStats* stats) {
  GtmStarOptions cross_options = options;
  cross_options.motif.variant = MotifVariant::kCrossTrajectory;
  if (IsHaversine(metric)) {
    const CachedHaversineDistance dist(s, t);
    return GtmStarMotif(dist, cross_options, stats);
  }
  const OnTheFlyDistance dist(s, t, metric);
  return GtmStarMotif(dist, cross_options, stats);
}

}  // namespace frechet_motif
