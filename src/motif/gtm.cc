#include "motif/gtm.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "motif/group.h"
#include "motif/relaxed_bounds.h"
#include "motif/subset_search.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace frechet_motif {

namespace {

struct GroupEntry {
  double lb = 0.0;
  Index u = 0;
  Index v = 0;
};

/// One pruning round at the current τ: filters `pairs` down to the
/// survivors, tightening the threshold with GUB_DFD along the way
/// (Algorithm 3 lines 3-13).
///
/// `lb_scale` = 1+ε implements the approximate mode: lower-bound prunes
/// fire at lb·(1+ε) > threshold, and a GUB tightening contributes
/// gub·(1+ε) so the candidate witnessing the upper bound (dF <= gub, see
/// Grouping::DfdBounds) can never be ε-pruned — its containing pair's
/// glb <= gub keeps glb·(1+ε) <= gub·(1+ε) <= threshold at every round,
/// which preserves both found-ness and the (1+ε) result guarantee.
std::vector<std::pair<Index, Index>> PruneGroupPairs(
    const Grouping& grouping, const std::vector<std::pair<Index, Index>>& pairs,
    double lb_scale, SearchState* state, MotifStats* stats) {
  std::vector<GroupEntry> entries;
  entries.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    if (!grouping.AdmitsCandidate(u, v)) continue;
    entries.push_back(GroupEntry{grouping.PatternLb(u, v), u, v});
  }
  std::sort(entries.begin(), entries.end(),
            [](const GroupEntry& a, const GroupEntry& b) {
              return a.lb < b.lb;
            });

  std::vector<std::pair<Index, Index>> survivors;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const GroupEntry& e = entries[k];
    if (stats != nullptr) ++stats->group_pairs_total;
    if (e.lb * lb_scale > state->threshold) {
      // Sorted queue: every remaining pattern bound is at least as large.
      if (stats != nullptr) {
        stats->group_pairs_pruned_pattern +=
            static_cast<std::int64_t>(entries.size() - k);
        stats->group_pairs_total +=
            static_cast<std::int64_t>(entries.size() - k - 1);
      }
      break;
    }
    double glb = 0.0;
    double gub = 0.0;
    grouping.DfdBounds(e.u, e.v, state->threshold, &glb, &gub);
    if (gub * lb_scale < state->threshold) {
      state->threshold = gub * lb_scale;
      if (stats != nullptr) ++stats->gub_tightenings;
    }
    if (glb * lb_scale > state->threshold) {
      if (stats != nullptr) ++stats->group_pairs_pruned_dfd_bound;
      continue;
    }
    survivors.emplace_back(e.u, e.v);
  }
  return survivors;
}

}  // namespace

StatusOr<MotifResult> GtmMotif(const DistanceProvider& dist,
                               const GtmOptions& options, MotifStats* stats) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  FM_RETURN_IF_ERROR(ValidateMotifInput(options.motif, n, m));
  if (options.group_size_tau < 1) {
    return Status::InvalidArgument("group_size_tau must be >= 1");
  }
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument("approximation_epsilon must be >= 0");
  }
  const double lb_scale = 1.0 + options.approximation_epsilon;

  Timer timer;
  if (stats != nullptr) stats->memory.Add(dist.MemoryBytes());

  // Worker pool for the bound sweeps and the final verification phase;
  // absent (null) on the default threads=1 serial path.
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  const int threads = ResolveThreadCount(options.motif.threads);
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  // Point-level relaxed bounds, used in the final phase and for end-cross
  // pruning inside the shared DP.
  const RelaxedBounds rb = RelaxedBounds::Build(dist, options.motif, pool);
  if (stats != nullptr) {
    stats->memory.Add(rb.MemoryBytes());
    stats->total_subsets = CountValidSubsets(options.motif, n, m);
    stats->precompute_seconds += timer.ElapsedSeconds();
  }

  timer.Restart();
  SearchState state;

  // Multi-level grouping loop (Algorithm 3 lines 2-14).
  Index tau = options.group_size_tau;
  std::vector<std::pair<Index, Index>> pairs;
  bool have_pairs = false;
  while (tau > 1) {
    const Grouping grouping = Grouping::Build(dist, options.motif, tau);
    const ScopedAllocation grouping_mem(
        stats != nullptr ? &stats->memory : nullptr, grouping.MemoryBytes());
    if (!have_pairs) {
      // First round: every group pair is a candidate.
      for (Index u = 0; u < grouping.num_row_groups(); ++u) {
        for (Index v = 0; v < grouping.num_col_groups(); ++v) {
          pairs.emplace_back(u, v);
        }
      }
      have_pairs = true;
    }
    const std::vector<std::pair<Index, Index>> survivors =
        PruneGroupPairs(grouping, pairs, lb_scale, &state, stats);

    // Halve τ: each survivor splits into the child pairs whose point spans
    // intersect the parent's (Algorithm 3 line 14). For odd τ the child
    // span per axis covers three groups, not two.
    const Index parent_tau = tau;
    tau /= 2;
    pairs.clear();
    const Index child_nu = (n + tau - 1) / tau;
    const Index child_nv = (m + tau - 1) / tau;
    for (const auto& [u, v] : survivors) {
      const Index cu_lo = (u * parent_tau) / tau;
      const Index cu_hi =
          std::min<Index>(((u + 1) * parent_tau - 1) / tau, child_nu - 1);
      const Index cv_lo = (v * parent_tau) / tau;
      const Index cv_hi =
          std::min<Index>(((v + 1) * parent_tau - 1) / tau, child_nv - 1);
      for (Index cu = cu_lo; cu <= cu_hi; ++cu) {
        for (Index cv = cv_lo; cv <= cv_hi; ++cv) {
          pairs.emplace_back(cu, cv);
        }
      }
    }
  }

  // Final phase (Algorithm 3 line 15): the surviving cells are candidate
  // subsets; run the best-first bounded search of Algorithm 2 on them.
  std::vector<SubsetEntry> entries;
  const MotifOptions& motif = options.motif;
  auto add_entry = [&](Index i, Index j) {
    entries.push_back(SubsetEntry{0.0, i, j});
  };
  if (have_pairs) {
    for (const auto& [i, j] : pairs) {
      if (IsValidSubsetStart(motif, n, m, i, j)) add_entry(i, j);
    }
  } else {
    // τ was 1 from the start: degenerate to plain BTM over all subsets.
    ForEachValidSubset(motif, n, m, add_entry);
  }
  // Bound sweep over the surviving subsets, sharded when a pool is given.
  FillSubsetBounds(&entries, pool, [&](Index i, Index j) {
    return std::max({dist.Distance(i, j), rb.StartCross(i, j), rb.BandRow(j),
                     rb.BandCol(i)});
  });
  if (stats != nullptr) {
    stats->memory.Add(entries.capacity() * sizeof(SubsetEntry));
  }
  RunSubsetQueue(dist, motif, &entries, &rb, options.use_end_cross,
                 /*sort_entries=*/true, &state, stats, /*caps=*/nullptr,
                 lb_scale, pool);
  if (stats != nullptr) stats->search_seconds += timer.ElapsedSeconds();

  MotifResult result;
  result.best = state.best;
  result.distance = state.best_distance;
  result.found = state.found;
  return result;
}

StatusOr<MotifResult> GtmMotif(const Trajectory& s, const GroundMetric& metric,
                               const GtmOptions& options, MotifStats* stats) {
  Timer timer;
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, metric);
  if (!dg.ok()) return dg.status();
  if (stats != nullptr) stats->precompute_seconds += timer.ElapsedSeconds();
  return GtmMotif(dg.value(), options, stats);
}

StatusOr<MotifResult> GtmMotif(const Trajectory& s, const Trajectory& t,
                               const GroundMetric& metric,
                               const GtmOptions& options, MotifStats* stats) {
  Timer timer;
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, t, metric);
  if (!dg.ok()) return dg.status();
  if (stats != nullptr) stats->precompute_seconds += timer.ElapsedSeconds();
  GtmOptions cross_options = options;
  cross_options.motif.variant = MotifVariant::kCrossTrajectory;
  return GtmMotif(dg.value(), cross_options, stats);
}

}  // namespace frechet_motif
