#ifndef FRECHET_MOTIF_MOTIF_SUBSET_SEARCH_H_
#define FRECHET_MOTIF_MOTIF_SUBSET_SEARCH_H_

#include <functional>
#include <limits>
#include <vector>

#include "core/distance_matrix.h"
#include "core/options.h"
#include "motif/relaxed_bounds.h"
#include "motif/stats.h"
#include "similarity/frechet.h"
#include "util/thread_pool.h"

namespace frechet_motif {

/// Mutable state of a motif search shared by all algorithms.
///
/// Threshold semantics (exactness-preserving): `threshold` is always an
/// upper bound on the true motif distance — it is tightened by exact DFD
/// values of evaluated candidates and (in GTM) by group upper bounds
/// GUB_DFD. Search-space elements are pruned only when a lower bound is
/// *strictly* greater than `threshold`; because the true motif's bounds
/// never exceed its own DFD <= threshold, the optimum always survives and
/// is eventually evaluated and recorded in `best`/`best_distance`.
///
/// Tie stability: every pruning rule in the library is strict (`lb >
/// threshold`, end-cross freeze, endpoint caps), so *every* candidate
/// achieving the optimal distance is evaluated by every algorithm, and
/// Record resolves equal-distance candidates to the minimum under
/// `CandidateOrderedBefore`. The reported pair is therefore a function of
/// the input alone — independent of evaluation order, thread count,
/// algorithm choice, and (for the streaming engine) of whether a slide
/// carried its previous optimum or re-derived it.
struct SearchState {
  double threshold = std::numeric_limits<double>::infinity();
  Candidate best;
  double best_distance = std::numeric_limits<double>::infinity();
  bool found = false;

  /// Records an evaluated candidate with exact DFD `d`. Equal-distance
  /// candidates resolve to the lexicographically smallest (i, j, ie, je).
  void Record(const Candidate& c, double d) {
    if (d < best_distance ||
        (found && d == best_distance && CandidateOrderedBefore(c, best))) {
      best_distance = d;
      best = c;
      found = true;
    }
    if (d < threshold) threshold = d;
  }
};

/// Caps on candidate endpoints, justified by whole-row/column minima
/// (RelaxedBounds::RminFull / CminFull): once min_c dG(c, y+1) exceeds the
/// threshold, column y+1 is a *wall* no surviving path may cross, so a
/// candidate starting at j <= y+1 cannot end at jc > y. A candidate
/// starting past the wall (j > y+1) lies entirely on its far side, never
/// crosses it, and is NOT constrained — the evaluation applies each cap
/// only to subsets at or left of the wall. This generalizes the global
/// `jend` shrink of Algorithm 2 lines 12-13 (and adds the symmetric
/// first-index cap).
struct EndpointCaps {
  Index ie_cap = std::numeric_limits<Index>::max();
  Index je_cap = std::numeric_limits<Index>::max();
};

/// Runs the shared dynamic program over candidate subset CS(i,j): one pass
/// computing dF(i, ie, j, je) for all end pairs, updating `state` with every
/// valid candidate (Algorithm 1 lines 4-13 / Algorithm 2 lines 6-13).
///
/// Uses two rolling DP rows (O(m) space — GTM*'s Idea (ii)) held in the
/// caller-provided `scratch`, reused across subsets so no evaluation
/// allocates after warm-up.
///
/// When `dist` is a DistanceMatrix the DP inner loop runs monomorphized
/// over the row-major storage (no virtual call per cell); any other
/// provider takes the generic virtual-dispatch path. Results are
/// bit-identical either way.
///
/// When `relaxed` is non-null and `use_end_cross` is set, applies the
/// end-cell cross bound (Equation 9): a DP cell whose extensions are all
/// strictly worse than state->threshold is frozen (set to +inf), and the
/// subset evaluation stops early once an entire row is frozen.
///
/// `stats` may be null.
void EvaluateSubset(const DistanceProvider& dist, const MotifOptions& options,
                    Index i, Index j, const RelaxedBounds* relaxed,
                    bool use_end_cross, const EndpointCaps& caps,
                    SearchState* state, MotifStats* stats,
                    FrechetScratch* scratch);

/// A candidate subset queued for evaluation, with its combined lower bound.
struct SubsetEntry {
  double lb = 0.0;
  Index i = 0;
  Index j = 0;
};

/// The best-first subset loop shared by BTM, GTM and GTM* (Algorithm 2
/// lines 3-13): optionally sorts `entries` ascending by lower bound, then
/// evaluates each subset whose bound does not strictly exceed the running
/// threshold. With sorting enabled the loop stops at the first bound above
/// the threshold (every later entry is at least as large). Maintains the
/// global endpoint caps after each best-so-far improvement when `relaxed`
/// is provided.
/// `caps` optionally carries the endpoint caps across calls (GTM* processes
/// one block per call but the caps are global facts); pass null to use
/// fresh caps for the call.
///
/// `lb_scale` implements the (1+ε)-approximate mode (the future-work
/// direction of the paper's Section 7): a subset is skipped when
/// lb * lb_scale exceeds the threshold. With lb_scale = 1+ε and a threshold
/// fed only by evaluated candidates, the returned distance is at most
/// (1+ε) times the optimum: whenever the optimum's subset is skipped, the
/// best-so-far at that moment is already below (1+ε)·LB <= (1+ε)·optimum.
/// lb_scale = 1 (default) keeps the search exact.
///
/// `pool` (optional) parallelizes the verification: batches of up to
/// pool->threads() queue-eligible subsets are evaluated concurrently, each
/// against a frozen snapshot of the search state, and the per-subset
/// improvements are merged back in queue order. Because the end-cross
/// freeze and the endpoint caps only ever discard candidates that are
/// provably worse than the running threshold (which only tightens), a
/// stale snapshot threshold prunes less but never changes which candidate
/// wins — the returned motif (candidate, distance, found) is bit-identical
/// to the serial path. Effort counters (subsets_evaluated,
/// dfd_cells_computed, bsf_updates) may legitimately differ from the
/// serial run — a batch is admitted against the batch-start threshold —
/// but total_subsets and the pruning-soundness invariants do not.
/// Exception: approximate mode (lb_scale > 1) ignores `pool` and runs
/// serially — there a skipped subset may hold a better-than-best
/// candidate, so batching could change which (1+ε)-valid answer is
/// returned.
void RunSubsetQueue(const DistanceProvider& dist, const MotifOptions& options,
                    std::vector<SubsetEntry>* entries,
                    const RelaxedBounds* relaxed, bool use_end_cross,
                    bool sort_entries, SearchState* state, MotifStats* stats,
                    EndpointCaps* caps = nullptr, double lb_scale = 1.0,
                    ThreadPool* pool = nullptr);

/// Fills entries[k].lb = bound(entries[k].i, entries[k].j) for every
/// entry, sharded across `pool` when one is given (null or single-lane
/// runs serially). Each index is written by exactly one lane, so the
/// parallel sweep is bit-identical to the serial one. Shared by the
/// algorithms' bound-precomputation phases.
void FillSubsetBounds(std::vector<SubsetEntry>* entries, ThreadPool* pool,
                      const std::function<double(Index, Index)>& bound);

/// Invokes `fn(i, j)` for every candidate subset CS(i,j) that admits at
/// least one valid candidate under `options`, in row-major order.
void ForEachValidSubset(const MotifOptions& options, Index n, Index m,
                        const std::function<void(Index, Index)>& fn);

/// Number of subsets ForEachValidSubset would visit.
std::int64_t CountValidSubsets(const MotifOptions& options, Index n, Index m);

/// True iff CS(i,j) admits at least one valid candidate under `options`.
bool IsValidSubsetStart(const MotifOptions& options, Index n, Index m, Index i,
                        Index j);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_SUBSET_SEARCH_H_
