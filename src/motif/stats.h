#ifndef FRECHET_MOTIF_MOTIF_STATS_H_
#define FRECHET_MOTIF_MOTIF_STATS_H_

#include <cstdint>
#include <string>

#include "util/memory_tracker.h"

namespace frechet_motif {

/// Instrumentation collected by the motif-discovery algorithms.
///
/// The counters feed the paper's evaluation figures directly:
///  * Figure 13/14(a): pruning ratio = pruned subsets / total subsets.
///  * Figure 15: breakdown of pruned subsets per bound type.
///  * Figure 19: peak bytes registered with `memory`.
struct MotifStats {
  /// Candidate subsets CS(i,j) admitting at least one valid candidate.
  std::int64_t total_subsets = 0;

  /// Subsets disqualified by LB_cell (first bound in the cascade).
  std::int64_t pruned_by_cell = 0;

  /// Subsets disqualified by the (relaxed or tight) cross bound.
  std::int64_t pruned_by_cross = 0;

  /// Subsets disqualified by the (relaxed or tight) band bound.
  std::int64_t pruned_by_band = 0;

  /// Subsets that required running the shared DFD dynamic program.
  std::int64_t subsets_evaluated = 0;

  /// Individual DP cell relaxations performed across all evaluations.
  std::int64_t dfd_cells_computed = 0;

  /// Candidate endpoints that improved the best-so-far.
  std::int64_t bsf_updates = 0;

  /// Group pairs considered / pruned across all GTM levels.
  std::int64_t group_pairs_total = 0;
  std::int64_t group_pairs_pruned_pattern = 0;
  std::int64_t group_pairs_pruned_dfd_bound = 0;

  /// Times a group upper bound (GUB_DFD) tightened the threshold.
  std::int64_t gub_tightenings = 0;

  /// Wall-clock split: bound/grouping precomputation vs search.
  double precompute_seconds = 0.0;
  double search_seconds = 0.0;

  /// Peak data-structure footprint (dG, dF rows, bound arrays, group
  /// matrices, subset list).
  MemoryTracker memory;

  /// Subsets pruned by any bound.
  std::int64_t pruned_total() const {
    return pruned_by_cell + pruned_by_cross + pruned_by_band;
  }

  /// Fraction of subsets pruned without a DFD evaluation, in [0,1].
  double pruning_ratio() const {
    return total_subsets == 0
               ? 0.0
               : static_cast<double>(pruned_total()) /
                     static_cast<double>(total_subsets);
  }

  double total_seconds() const { return precompute_seconds + search_seconds; }

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_STATS_H_
