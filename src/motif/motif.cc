#include "motif/motif.h"

namespace frechet_motif {

std::string AlgorithmName(MotifAlgorithm algorithm) {
  switch (algorithm) {
    case MotifAlgorithm::kBruteDp:
      return "BruteDP";
    case MotifAlgorithm::kBtm:
      return "BTM";
    case MotifAlgorithm::kGtm:
      return "GTM";
    case MotifAlgorithm::kGtmStar:
      return "GTM*";
  }
  return "unknown";
}

namespace {

MotifOptions MakeMotifOptions(const FindMotifOptions& options,
                              MotifVariant variant) {
  MotifOptions motif;
  motif.min_length_xi = options.min_length_xi;
  motif.variant = variant;
  motif.threads = options.threads;
  return motif;
}

}  // namespace

StatusOr<MotifResult> FindMotif(const Trajectory& s, const GroundMetric& metric,
                                const FindMotifOptions& options,
                                MotifStats* stats) {
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument("approximation_epsilon must be >= 0");
  }
  const MotifOptions motif =
      MakeMotifOptions(options, MotifVariant::kSingleTrajectory);
  switch (options.algorithm) {
    case MotifAlgorithm::kBruteDp:
      return BruteDpMotif(s, metric, motif, stats);
    case MotifAlgorithm::kBtm: {
      BtmOptions btm;
      btm.motif = motif;
      btm.approximation_epsilon = options.approximation_epsilon;
      return BtmMotif(s, metric, btm, stats);
    }
    case MotifAlgorithm::kGtm: {
      GtmOptions gtm;
      gtm.motif = motif;
      gtm.group_size_tau = options.group_size_tau;
      gtm.approximation_epsilon = options.approximation_epsilon;
      return GtmMotif(s, metric, gtm, stats);
    }
    case MotifAlgorithm::kGtmStar: {
      GtmStarOptions star;
      star.motif = motif;
      star.group_size_tau = options.group_size_tau;
      star.approximation_epsilon = options.approximation_epsilon;
      return GtmStarMotif(s, metric, star, stats);
    }
  }
  return Status::InvalidArgument("unknown motif algorithm");
}

StatusOr<MotifResult> FindMotif(const Trajectory& s, const Trajectory& t,
                                const GroundMetric& metric,
                                const FindMotifOptions& options,
                                MotifStats* stats) {
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument("approximation_epsilon must be >= 0");
  }
  const MotifOptions motif =
      MakeMotifOptions(options, MotifVariant::kCrossTrajectory);
  switch (options.algorithm) {
    case MotifAlgorithm::kBruteDp:
      return BruteDpMotif(s, t, metric, motif, stats);
    case MotifAlgorithm::kBtm: {
      BtmOptions btm;
      btm.motif = motif;
      btm.approximation_epsilon = options.approximation_epsilon;
      return BtmMotif(s, t, metric, btm, stats);
    }
    case MotifAlgorithm::kGtm: {
      GtmOptions gtm;
      gtm.motif = motif;
      gtm.group_size_tau = options.group_size_tau;
      gtm.approximation_epsilon = options.approximation_epsilon;
      return GtmMotif(s, t, metric, gtm, stats);
    }
    case MotifAlgorithm::kGtmStar: {
      GtmStarOptions star;
      star.motif = motif;
      star.group_size_tau = options.group_size_tau;
      star.approximation_epsilon = options.approximation_epsilon;
      return GtmStarMotif(s, t, metric, star, stats);
    }
  }
  return Status::InvalidArgument("unknown motif algorithm");
}

}  // namespace frechet_motif
