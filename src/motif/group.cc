#include "motif/group.h"

#include <algorithm>
#include <limits>

#include "motif/relaxed_bounds.h"

namespace frechet_motif {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Grouping Grouping::Build(const DistanceProvider& dist,
                         const MotifOptions& options, Index tau) {
  Grouping g;
  g.tau_ = tau;
  g.n_ = dist.rows();
  g.m_ = dist.cols();
  g.nu_ = (g.n_ + tau - 1) / tau;
  g.nv_ = (g.m_ + tau - 1) / tau;
  g.options_ = options;
  g.window_ = (options.min_length_xi + 1) / tau;

  // Ground-distance envelopes: one block scan per group pair (O(n·m) total).
  g.dmin_.assign(static_cast<std::size_t>(g.nu_) * g.nv_, kInf);
  g.dmax_.assign(static_cast<std::size_t>(g.nu_) * g.nv_, -kInf);
  for (Index u = 0; u < g.nu_; ++u) {
    for (Index v = 0; v < g.nv_; ++v) {
      double lo = kInf;
      double hi = -kInf;
      for (Index i = g.RowFirst(u); i <= g.RowLast(u); ++i) {
        for (Index j = g.ColFirst(v); j <= g.ColLast(v); ++j) {
          const double d = dist.Distance(i, j);
          lo = std::min(lo, d);
          hi = std::max(hi, d);
        }
      }
      g.dmin_[static_cast<std::size_t>(u) * g.nv_ + v] = lo;
      g.dmax_[static_cast<std::size_t>(u) * g.nv_ + v] = hi;
    }
  }

  // Group-level relaxed cross bounds over the dmin envelope, mirroring
  // RelaxedBounds at point granularity (Section 5.2 "relaxed lower bounds
  // for groups").
  const bool single = options.variant == MotifVariant::kSingleTrajectory;
  g.grmin_.assign(g.nv_, kInf);
  for (Index v = 0; v + 1 <= g.nv_ - 1; ++v) {
    const Index u_hi = single ? v : g.nu_ - 1;
    double best = kInf;
    for (Index u = 0; u <= std::min(u_hi, g.nu_ - 1); ++u) {
      best = std::min(best, g.Dmin(u, v + 1));
    }
    g.grmin_[v] = best;
  }
  g.gcmin_.assign(g.nu_, kInf);
  for (Index u = 0; u + 1 <= g.nu_ - 1; ++u) {
    double best = kInf;
    for (Index v = 0; v <= g.nv_ - 1; ++v) {
      best = std::min(best, g.Dmin(u + 1, v));
    }
    g.gcmin_[u] = best;
  }
  if (g.window_ >= 1) {
    g.gband_row_ = SlidingWindowMax(g.grmin_, g.window_);
    g.gband_col_ = SlidingWindowMax(g.gcmin_, g.window_);
  }
  return g;
}

double Grouping::CrossLb(Index u, Index v) const {
  // A candidate's alignment path is only guaranteed to enter the
  // neighbouring group when the minimum length ξ spans at least one full
  // group, i.e. window_ >= 1 (see class comment).
  if (window_ < 1) return -kInf;
  return std::max(gcmin_[u], grmin_[v]);
}

double Grouping::BandLb(Index u, Index v) const {
  if (window_ < 1) return -kInf;
  return std::max(gband_row_[v], gband_col_[u]);
}

double Grouping::PatternLb(Index u, Index v) const {
  return std::max(CellLb(u, v), std::max(CrossLb(u, v), BandLb(u, v)));
}

bool Grouping::AdmitsCandidate(Index u, Index v) const {
  const Index xi = options_.min_length_xi;
  if (options_.variant == MotifVariant::kSingleTrajectory) {
    const Index i_lo = RowFirst(u);
    const Index i_hi = std::min(RowLast(u), m_ - 2 * xi - 4);
    if (i_hi < i_lo) return false;
    const Index j_hi = std::min(ColLast(v), m_ - xi - 2);
    const Index j_lo = std::max(ColFirst(v), i_lo + xi + 2);
    return j_hi >= j_lo;
  }
  const Index i_hi = std::min(RowLast(u), n_ - xi - 2);
  const Index j_hi = std::min(ColLast(v), m_ - xi - 2);
  return i_hi >= RowFirst(u) && j_hi >= ColFirst(v);
}

void Grouping::DfdBounds(Index u, Index v, double threshold, double* glb,
                         double* gub) const {
  const bool single = options_.variant == MotifVariant::kSingleTrajectory;
  const Index xi = options_.min_length_xi;
  const Index ue_hi = single ? std::min(v, nu_ - 1) : nu_ - 1;
  const Index width = nv_ - v;  // ve in [v, nv_-1]

  *glb = kInf;
  *gub = kInf;
  if (ue_hi < u || width <= 0) return;

  // Qualification rules (see header): GLB cells must be reachable end
  // groups of *some* valid candidate; GUB cells must guarantee a valid
  // candidate for *every* start in g_u x g_v.
  auto glb_qualifies = [&](Index ue, Index ve) {
    return ue >= u + window_ && ve >= v + window_;
  };
  // Witness candidate for the upper bound: (i=RowFirst(u), ie=RowLast(ue),
  // j=ColFirst(v), je=ColLast(ve)); by Lemma 3 its DFD is <= fmax(ue,ve),
  // so fmax is a legitimate threshold whenever that witness is valid.
  auto gub_qualifies = [&](Index ue, Index ve) {
    if (RowLast(ue) - RowFirst(u) < xi + 1) return false;
    if (ColLast(ve) - ColFirst(v) < xi + 1) return false;
    if (single && ue > v - 1) return false;
    return true;
  };

  // Rolling rows for the twin dynamic programs over dmin / dmax
  // (Definition 5).
  std::vector<double> fmin_prev(width);
  std::vector<double> fmin_curr(width);
  std::vector<double> fmax_prev(width);
  std::vector<double> fmax_curr(width);

  fmin_prev[0] = Dmin(u, v);
  fmax_prev[0] = Dmax(u, v);
  for (Index q = 1; q < width; ++q) {
    fmin_prev[q] = std::max(fmin_prev[q - 1], Dmin(u, v + q));
    fmax_prev[q] = std::max(fmax_prev[q - 1], Dmax(u, v + q));
  }
  double row_min = kInf;
  for (Index q = 0; q < width; ++q) {
    if (glb_qualifies(u, v + q)) *glb = std::min(*glb, fmin_prev[q]);
    if (gub_qualifies(u, v + q)) *gub = std::min(*gub, fmax_prev[q]);
    row_min = std::min(row_min, fmin_prev[q]);
  }
  // Early termination: every dFmin cell dominates the min of its
  // predecessors, so once a whole frontier row exceeds the threshold all
  // deeper cells do too — they can neither flip the pruning decision nor
  // produce a qualifying cell below the threshold.
  if (row_min > threshold) return;

  for (Index ue = u + 1; ue <= ue_hi; ++ue) {
    fmin_curr[0] = std::max(fmin_prev[0], Dmin(ue, v));
    fmax_curr[0] = std::max(fmax_prev[0], Dmax(ue, v));
    for (Index q = 1; q < width; ++q) {
      fmin_curr[q] =
          std::max(Dmin(ue, v + q), std::min({fmin_prev[q], fmin_prev[q - 1],
                                              fmin_curr[q - 1]}));
      fmax_curr[q] =
          std::max(Dmax(ue, v + q), std::min({fmax_prev[q], fmax_prev[q - 1],
                                              fmax_curr[q - 1]}));
    }
    row_min = kInf;
    for (Index q = 0; q < width; ++q) {
      if (glb_qualifies(ue, v + q)) *glb = std::min(*glb, fmin_curr[q]);
      if (gub_qualifies(ue, v + q)) *gub = std::min(*gub, fmax_curr[q]);
      row_min = std::min(row_min, fmin_curr[q]);
    }
    if (row_min > threshold) return;
    std::swap(fmin_prev, fmin_curr);
    std::swap(fmax_prev, fmax_curr);
  }
}

std::size_t Grouping::MemoryBytes() const {
  return (dmin_.capacity() + dmax_.capacity() + grmin_.capacity() +
          gcmin_.capacity() + gband_row_.capacity() + gband_col_.capacity()) *
         sizeof(double);
}

}  // namespace frechet_motif
