#ifndef FRECHET_MOTIF_MOTIF_GTM_H_
#define FRECHET_MOTIF_MOTIF_GTM_H_

/// GTM, the grouping-based trajectory motif algorithm (the paper's
/// Algorithm 3 and its fastest): multi-level grouping of candidate subsets
/// with O(1) pattern bounds and group-level DFD bounds (GLB_DFD/GUB_DFD),
/// halving the group size τ each round until the surviving subsets are
/// processed point-level with Algorithm 2's best-first search. Exact.
/// Most applications should call FindMotif (motif/motif.h) instead of
/// GtmMotif directly.

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/stats.h"
#include "util/status.h"

namespace frechet_motif {

/// Configuration of the grouping-based trajectory motif algorithm
/// (Algorithm 3).
struct GtmOptions {
  MotifOptions motif;

  /// Initial group size τ (paper default: 32; Figure 17 sweeps 8..128).
  /// Halved every round until it reaches 1. Must be >= 1.
  Index group_size_tau = 32;

  /// Enables end-cell cross pruning in the final point-level phase.
  bool use_end_cross = true;

  /// Approximation knob (the paper's Section 7 future-work direction),
  /// with the same contract as BtmOptions: every lower-bound prune —
  /// group pattern bounds, GLB_DFD, and the point-level subset queue —
  /// fires as soon as lb·(1+ε) exceeds the threshold, and the returned
  /// distance is guaranteed to be at most (1+ε) times the optimum. A
  /// GUB_DFD tightening contributes gub·(1+ε) instead of gub, which is
  /// what keeps the guarantee: the candidate witnessing the upper bound
  /// satisfies every scaled prune (its bounds never exceed gub), so a
  /// result no worse than gub is always found. 0 (default) keeps GTM
  /// exact and bit-identical to today's output. Must be >= 0.
  double approximation_epsilon = 0.0;
};

/// GTM (Algorithm 3): multi-level grouping. Each round groups the
/// trajectory at the current τ, prunes group pairs with O(1) pattern bounds
/// and with the group DFD bounds GLB_DFD/GUB_DFD (tightening the threshold
/// with the upper bounds), then halves τ and recurses on the surviving
/// pairs. At τ = 1 the surviving candidate subsets are processed with the
/// best-first bounded search of Algorithm 2. Exact: returns the same
/// distance as BruteDpMotif.
StatusOr<MotifResult> GtmMotif(const DistanceProvider& dist,
                               const GtmOptions& options,
                               MotifStats* stats = nullptr);

/// Convenience overload: precomputes the dG matrix for `s` and solves
/// Problem 1.
StatusOr<MotifResult> GtmMotif(const Trajectory& s, const GroundMetric& metric,
                               const GtmOptions& options,
                               MotifStats* stats = nullptr);

/// Convenience overload for the two-trajectory variant.
StatusOr<MotifResult> GtmMotif(const Trajectory& s, const Trajectory& t,
                               const GroundMetric& metric,
                               const GtmOptions& options,
                               MotifStats* stats = nullptr);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_GTM_H_
