#ifndef FRECHET_MOTIF_MOTIF_MOTIF_H_
#define FRECHET_MOTIF_MOTIF_MOTIF_H_

/// Umbrella header and convenience front door for trajectory motif
/// discovery. Most applications only need FindMotif(); the individual
/// algorithm headers remain available for fine-grained control.

#include <string>

#include "core/options.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/brute_dp.h"
#include "motif/btm.h"
#include "motif/gtm.h"
#include "motif/gtm_star.h"
#include "motif/stats.h"
#include "util/status.h"

namespace frechet_motif {

/// The algorithms of the paper, in increasing sophistication.
enum class MotifAlgorithm {
  kBruteDp,  ///< Algorithm 1, the O(n^4) baseline.
  kBtm,      ///< Algorithm 2, bounding-based best-first search.
  kGtm,      ///< Algorithm 3, multi-level grouping (fastest).
  kGtmStar,  ///< Section 5.5, space-efficient grouping.
};

/// Short stable name ("BruteDP", "BTM", "GTM", "GTM*").
std::string AlgorithmName(MotifAlgorithm algorithm);

/// One-stop configuration for FindMotif.
struct FindMotifOptions {
  /// Which algorithm to run. GTM is the paper's fastest; GTM* trades a
  /// little time for O(max{(n/τ)², n}) space on very long trajectories.
  MotifAlgorithm algorithm = MotifAlgorithm::kGtm;

  /// Minimum motif length ξ (paper default 100).
  Index min_length_xi = 100;

  /// Initial group size τ for the grouping algorithms (paper default 32).
  Index group_size_tau = 32;

  /// Worker threads for bound precomputation and subset verification,
  /// forwarded to MotifOptions::threads: 1 (default) is the canonical
  /// serial path, 0 means "all hardware threads". Results are bit-identical
  /// for every setting.
  int threads = 1;

  /// Approximation tolerance ε, forwarded to BTM / GTM / GTM*: the
  /// reported motif distance is at most (1+ε) times the exact optimum,
  /// in exchange for more aggressive bound pruning. 0 (default) keeps
  /// every algorithm exact and bit-identical to its ε-less behaviour.
  /// BruteDP ignores this knob (it evaluates every subset and is always
  /// exact). Must be >= 0.
  double approximation_epsilon = 0.0;
};

/// Finds the motif of `s` (Problem 1): the pair of non-overlapping
/// subtrajectories, each spanning more than ξ index steps, with the
/// smallest discrete Fréchet distance. Exact for every algorithm choice
/// when approximation_epsilon == 0; otherwise within (1+ε) of optimal.
///
/// `stats` may be null.
StatusOr<MotifResult> FindMotif(const Trajectory& s, const GroundMetric& metric,
                                const FindMotifOptions& options,
                                MotifStats* stats = nullptr);

/// Finds the best motif pair between two different trajectories
/// (the cross-trajectory variant of Section 3).
StatusOr<MotifResult> FindMotif(const Trajectory& s, const Trajectory& t,
                                const GroundMetric& metric,
                                const FindMotifOptions& options,
                                MotifStats* stats = nullptr);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_MOTIF_H_
