#ifndef FRECHET_MOTIF_MOTIF_BRUTE_DP_H_
#define FRECHET_MOTIF_MOTIF_BRUTE_DP_H_

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/stats.h"
#include "util/status.h"

namespace frechet_motif {

/// BruteDP (Algorithm 1): the O(n^4) baseline. For every candidate subset
/// CS(i,j) it runs one shared dynamic program that yields the DFD of all
/// candidates starting at (i,j), tracking the best pair. No pruning.
///
/// `stats` may be null. Returns InvalidArgument when the input admits no
/// valid candidate (see ValidateMotifInput).
StatusOr<MotifResult> BruteDpMotif(const DistanceProvider& dist,
                                   const MotifOptions& options,
                                   MotifStats* stats = nullptr);

/// Convenience overload: precomputes the dG matrix for `s` (the paper's
/// "store them in matrix dG[·][·]" optimization) and solves Problem 1.
StatusOr<MotifResult> BruteDpMotif(const Trajectory& s,
                                   const GroundMetric& metric,
                                   const MotifOptions& options,
                                   MotifStats* stats = nullptr);

/// Convenience overload for the two-trajectory variant.
StatusOr<MotifResult> BruteDpMotif(const Trajectory& s, const Trajectory& t,
                                   const GroundMetric& metric,
                                   const MotifOptions& options,
                                   MotifStats* stats = nullptr);

/// Exactness oracle for tests: enumerates every valid candidate and
/// computes its DFD independently with DiscreteFrechetOnRange — O(n^6),
/// usable only for tiny inputs, but sharing no code path with the
/// algorithms under test.
StatusOr<MotifResult> NaiveMotif(const DistanceProvider& dist,
                                 const MotifOptions& options);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_BRUTE_DP_H_
