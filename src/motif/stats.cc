#include "motif/stats.h"

#include <cstdio>

namespace frechet_motif {

std::string MotifStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "subsets: total=%lld cell=%lld cross=%lld band=%lld evaluated=%lld "
      "(pruning %.2f%%)\n"
      "dp cells=%lld bsf updates=%lld\n"
      "groups: total=%lld pattern-pruned=%lld dfd-pruned=%lld "
      "gub-tightenings=%lld\n"
      "time: precompute=%.3fs search=%.3fs total=%.3fs\n"
      "memory peak: %s",
      static_cast<long long>(total_subsets),
      static_cast<long long>(pruned_by_cell),
      static_cast<long long>(pruned_by_cross),
      static_cast<long long>(pruned_by_band),
      static_cast<long long>(subsets_evaluated), pruning_ratio() * 100.0,
      static_cast<long long>(dfd_cells_computed),
      static_cast<long long>(bsf_updates),
      static_cast<long long>(group_pairs_total),
      static_cast<long long>(group_pairs_pruned_pattern),
      static_cast<long long>(group_pairs_pruned_dfd_bound),
      static_cast<long long>(gub_tightenings), precompute_seconds,
      search_seconds, total_seconds(),
      FormatBytes(memory.peak_bytes()).c_str());
  return buf;
}

}  // namespace frechet_motif
