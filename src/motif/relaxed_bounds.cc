#include "motif/relaxed_bounds.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace frechet_motif {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<double> SlidingWindowMax(const std::vector<double>& values,
                                     Index window) {
  const Index n = static_cast<Index>(values.size());
  std::vector<double> out(values.size(), kInf);
  if (window <= 0 || window > n) return out;
  // Monotone deque of indices with decreasing values.
  std::deque<Index> dq;
  for (Index k = 0; k < n; ++k) {
    while (!dq.empty() && values[dq.back()] <= values[k]) dq.pop_back();
    dq.push_back(k);
    const Index start = k - window + 1;
    if (start >= 0) {
      if (dq.front() < start) dq.pop_front();
      out[start] = values[dq.front()];
    }
  }
  return out;
}

RelaxedBounds RelaxedBounds::Build(const DistanceProvider& dist,
                                   const MotifOptions& options,
                                   ThreadPool* pool) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  const bool single = options.variant == MotifVariant::kSingleTrajectory;

  RelaxedBounds rb;
  rb.rmin_.assign(m, kInf);
  rb.rmin_full_.assign(m, kInf);
  rb.cmin_.assign(n, kInf);
  rb.cmin_full_.assign(n, kInf);
  rb.cmin_start_.assign(n, kInf);

  // Rmin[j]: scan column j+1 over the admissible first-index prefix. Each
  // j writes only its own output slots, so the sweep shards freely.
  const auto rmin_sweep = [&](Index j_lo, Index j_hi) {
    for (Index j = j_lo; j < j_hi; ++j) {
      if (j + 1 > m - 1) continue;
      const Index c_restricted_hi = single ? j - 1 : n - 1;
      double full = kInf;
      double restricted = kInf;
      for (Index c = 0; c <= n - 1; ++c) {
        const double d = dist.Distance(c, j + 1);
        full = std::min(full, d);
        if (c <= c_restricted_hi) restricted = std::min(restricted, d);
      }
      rb.rmin_full_[j] = full;
      rb.rmin_[j] = restricted;
    }
  };

  // Cmin[i]: scan row i+1 over the admissible second-index suffix. Two
  // restrictions coexist (see header): end-cell queries admit j >= i+1,
  // start-cell and band queries admit j >= i+3.
  const auto cmin_sweep = [&](Index i_lo, Index i_hi) {
    for (Index i = i_lo; i < i_hi; ++i) {
      if (i + 1 > n - 1) continue;
      const Index r_end_lo = single ? i + 1 : 0;
      const Index r_start_lo = single ? i + 3 : 0;
      double full = kInf;
      double end_restricted = kInf;
      double start_restricted = kInf;
      for (Index r = 0; r <= m - 1; ++r) {
        const double d = dist.Distance(i + 1, r);
        full = std::min(full, d);
        if (r >= r_end_lo) end_restricted = std::min(end_restricted, d);
        if (r >= r_start_lo) start_restricted = std::min(start_restricted, d);
      }
      rb.cmin_full_[i] = full;
      rb.cmin_[i] = end_restricted;
      rb.cmin_start_[i] = start_restricted;
    }
  };

  if (pool != nullptr && pool->threads() > 1) {
    pool->ParallelFor(m, [&](int, std::int64_t lo, std::int64_t hi) {
      rmin_sweep(static_cast<Index>(lo), static_cast<Index>(hi));
    });
    pool->ParallelFor(n, [&](int, std::int64_t lo, std::int64_t hi) {
      cmin_sweep(static_cast<Index>(lo), static_cast<Index>(hi));
    });
  } else {
    rmin_sweep(0, m);
    cmin_sweep(0, n);
  }

  rb.band_row_ = SlidingWindowMax(rb.rmin_, options.min_length_xi);
  rb.band_col_ = SlidingWindowMax(rb.cmin_start_, options.min_length_xi);
  return rb;
}

RelaxedBounds RelaxedBounds::FromComponents(std::vector<double> rmin,
                                            std::vector<double> cmin,
                                            std::vector<double> cmin_start,
                                            std::vector<double> rmin_full,
                                            std::vector<double> cmin_full,
                                            Index min_length_xi) {
  RelaxedBounds rb;
  rb.rmin_ = std::move(rmin);
  rb.cmin_ = std::move(cmin);
  rb.cmin_start_ = std::move(cmin_start);
  rb.rmin_full_ = std::move(rmin_full);
  rb.cmin_full_ = std::move(cmin_full);
  rb.band_row_ = SlidingWindowMax(rb.rmin_, min_length_xi);
  rb.band_col_ = SlidingWindowMax(rb.cmin_start_, min_length_xi);
  return rb;
}

std::size_t RelaxedBounds::MemoryBytes() const {
  return (rmin_.capacity() + cmin_.capacity() + cmin_start_.capacity() +
          rmin_full_.capacity() +
          cmin_full_.capacity() + band_row_.capacity() +
          band_col_.capacity()) *
         sizeof(double);
}

}  // namespace frechet_motif
