#include "motif/brute_dp.h"

#include <vector>

#include "motif/subset_search.h"
#include "similarity/frechet.h"
#include "util/timer.h"

namespace frechet_motif {

StatusOr<MotifResult> BruteDpMotif(const DistanceProvider& dist,
                                   const MotifOptions& options,
                                   MotifStats* stats) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  FM_RETURN_IF_ERROR(ValidateMotifInput(options, n, m));

  Timer timer;
  if (stats != nullptr) {
    stats->memory.Add(dist.MemoryBytes());
    stats->total_subsets = CountValidSubsets(options, n, m);
  }

  SearchState state;
  FrechetScratch scratch;
  if (stats != nullptr) {
    stats->memory.Add(2 * static_cast<std::size_t>(m) * sizeof(double));
  }
  ForEachValidSubset(options, n, m, [&](Index i, Index j) {
    EvaluateSubset(dist, options, i, j, /*relaxed=*/nullptr,
                   /*use_end_cross=*/false, EndpointCaps{}, &state, stats,
                   &scratch);
  });

  if (stats != nullptr) stats->search_seconds += timer.ElapsedSeconds();

  MotifResult result;
  result.best = state.best;
  result.distance = state.best_distance;
  result.found = state.found;
  return result;
}

StatusOr<MotifResult> BruteDpMotif(const Trajectory& s,
                                   const GroundMetric& metric,
                                   const MotifOptions& options,
                                   MotifStats* stats) {
  Timer timer;
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, metric);
  if (!dg.ok()) return dg.status();
  if (stats != nullptr) stats->precompute_seconds += timer.ElapsedSeconds();
  return BruteDpMotif(dg.value(), options, stats);
}

StatusOr<MotifResult> BruteDpMotif(const Trajectory& s, const Trajectory& t,
                                   const GroundMetric& metric,
                                   const MotifOptions& options,
                                   MotifStats* stats) {
  Timer timer;
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, t, metric);
  if (!dg.ok()) return dg.status();
  if (stats != nullptr) stats->precompute_seconds += timer.ElapsedSeconds();
  return BruteDpMotif(dg.value(), options, stats);
}

StatusOr<MotifResult> NaiveMotif(const DistanceProvider& dist,
                                 const MotifOptions& options) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  FM_RETURN_IF_ERROR(ValidateMotifInput(options, n, m));
  const Index xi = options.min_length_xi;
  const bool single = options.variant == MotifVariant::kSingleTrajectory;

  MotifResult result;
  for (Index i = 0; i < n; ++i) {
    for (Index ie = i + xi + 1; ie < n; ++ie) {
      for (Index j = single ? ie + 1 : 0; j < m; ++j) {
        for (Index je = j + xi + 1; je < m; ++je) {
          StatusOr<double> d = DiscreteFrechetOnRange(dist, i, ie, j, je);
          if (!d.ok()) return d.status();
          if (d.value() < result.distance) {
            result.distance = d.value();
            result.best = Candidate{i, ie, j, je};
            result.found = true;
          }
        }
      }
    }
  }
  return result;
}

}  // namespace frechet_motif
