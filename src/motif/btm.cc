#include "motif/btm.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <vector>

#include "motif/bounds.h"
#include "motif/relaxed_bounds.h"
#include "motif/subset_search.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace frechet_motif {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Relaxed-bound path: all bounds are O(1) after the precomputation pass,
/// so the combined bound of every subset is computed up front, the list is
/// sorted and handed to the shared best-first loop (Algorithm 2 verbatim).
MotifResult RunRelaxed(const DistanceProvider& dist, const BtmOptions& options,
                       const RelaxedBounds& rb, MotifStats* stats,
                       ThreadPool* pool) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  Timer timer;

  auto components = [&](Index i, Index j) {
    double cell = -kInf;
    double cross = -kInf;
    double band = -kInf;
    if (options.use_cell) cell = LbCell(dist, i, j);
    if (options.use_cross) cross = rb.StartCross(i, j);
    if (options.use_band) band = std::max(rb.BandRow(j), rb.BandCol(i));
    return std::array<double, 3>{cell, cross, band};
  };

  std::vector<SubsetEntry> entries;
  entries.reserve(
      static_cast<std::size_t>(CountValidSubsets(options.motif, n, m)));
  ForEachValidSubset(options.motif, n, m, [&](Index i, Index j) {
    entries.push_back(SubsetEntry{0.0, i, j});
  });
  FillSubsetBounds(&entries, pool, [&](Index i, Index j) {
    const auto c = components(i, j);
    return std::max({c[0], c[1], c[2]});
  });
  if (stats != nullptr) {
    stats->total_subsets = static_cast<std::int64_t>(entries.size());
    stats->memory.Add(entries.capacity() * sizeof(SubsetEntry));
    stats->memory.Add(2 * static_cast<std::size_t>(m) * sizeof(double));
    stats->precompute_seconds += timer.ElapsedSeconds();
  }

  timer.Restart();
  SearchState state;
  RunSubsetQueue(dist, options.motif, &entries, &rb, options.use_end_cross,
                 options.sort_subsets, &state, stats, /*caps=*/nullptr,
                 1.0 + options.approximation_epsilon, pool);
  if (stats != nullptr) stats->search_seconds += timer.ElapsedSeconds();

  // Figure 15 accounting: classify each subset by the first bound in the
  // cascade (cell -> cross -> band) exceeding the final threshold.
  if (stats != nullptr && options.collect_breakdown) {
    ForEachValidSubset(options.motif, n, m, [&](Index i, Index j) {
      const auto c = components(i, j);
      if (c[0] > state.threshold) {
        ++stats->pruned_by_cell;
      } else if (c[1] > state.threshold) {
        ++stats->pruned_by_cross;
      } else if (c[2] > state.threshold) {
        ++stats->pruned_by_band;
      }
    });
  }

  MotifResult result;
  result.best = state.best;
  result.distance = state.best_distance;
  result.found = state.found;
  return result;
}

/// Tight-bound path (the Section 4.2 variant benchmarked in Figures 13/14):
/// a tight cross bound costs O(n) and a tight band bound O(ξn), so they
/// cannot be computed for all O(n²) subsets up front. Instead the queue is
/// ordered by the O(1) cell bound and the expensive bounds are evaluated
/// lazily, per subset, in the cascade order — each either prunes the subset
/// or is followed by the shared DP.
MotifResult RunTight(const DistanceProvider& dist, const BtmOptions& options,
                     const RelaxedBounds* rb, MotifStats* stats,
                     ThreadPool* pool) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  Timer timer;

  std::vector<SubsetEntry> entries;
  entries.reserve(
      static_cast<std::size_t>(CountValidSubsets(options.motif, n, m)));
  ForEachValidSubset(options.motif, n, m, [&](Index i, Index j) {
    entries.push_back(SubsetEntry{0.0, i, j});
  });
  FillSubsetBounds(&entries, pool, [&](Index i, Index j) {
    return options.use_cell ? LbCell(dist, i, j) : -kInf;
  });
  if (options.sort_subsets) {
    std::sort(entries.begin(), entries.end(),
              [](const SubsetEntry& a, const SubsetEntry& b) {
                return a.lb < b.lb;
              });
  }
  if (stats != nullptr) {
    stats->total_subsets = static_cast<std::int64_t>(entries.size());
    stats->memory.Add(entries.capacity() * sizeof(SubsetEntry));
    stats->memory.Add(2 * static_cast<std::size_t>(m) * sizeof(double));
    stats->precompute_seconds += timer.ElapsedSeconds();
  }

  timer.Restart();
  SearchState state;
  const double lb_scale = 1.0 + options.approximation_epsilon;
  FrechetScratch scratch;
  for (std::size_t k = 0; k < entries.size(); ++k) {
    const SubsetEntry& e = entries[k];
    if (e.lb * lb_scale > state.threshold) {
      if (options.sort_subsets) {
        // Everything after this point has a cell bound above the threshold.
        if (stats != nullptr) {
          stats->pruned_by_cell +=
              static_cast<std::int64_t>(entries.size() - k);
        }
        break;
      }
      if (stats != nullptr) ++stats->pruned_by_cell;
      continue;
    }
    if (options.use_cross &&
        LbStartCross(dist, options.motif, e.i, e.j) * lb_scale >
            state.threshold) {
      if (stats != nullptr) ++stats->pruned_by_cross;
      continue;
    }
    if (options.use_band &&
        std::max(LbRowBand(dist, options.motif, e.i, e.j),
                 LbColBand(dist, options.motif, e.i, e.j)) *
                lb_scale >
            state.threshold) {
      if (stats != nullptr) ++stats->pruned_by_band;
      continue;
    }
    EvaluateSubset(dist, options.motif, e.i, e.j, rb, options.use_end_cross,
                   EndpointCaps{}, &state, stats, &scratch);
  }
  if (stats != nullptr) stats->search_seconds += timer.ElapsedSeconds();

  MotifResult result;
  result.best = state.best;
  result.distance = state.best_distance;
  result.found = state.found;
  return result;
}

}  // namespace

StatusOr<MotifResult> BtmMotif(const DistanceProvider& dist,
                               const BtmOptions& options, MotifStats* stats) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  FM_RETURN_IF_ERROR(ValidateMotifInput(options.motif, n, m));
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument("approximation_epsilon must be >= 0");
  }

  if (stats != nullptr) stats->memory.Add(dist.MemoryBytes());

  // Worker pool for the bound sweep and the verification batches; absent
  // (null) on the default threads=1 serial path.
  std::optional<ThreadPool> pool_storage;
  ThreadPool* pool = nullptr;
  const int threads = ResolveThreadCount(options.motif.threads);
  if (threads > 1) {
    pool_storage.emplace(threads);
    pool = &*pool_storage;
  }

  // Relaxed-bound arrays serve both the relaxed subset bounds and the
  // end-cross / endpoint-cap pruning inside the DP.
  const bool need_relaxed = options.relaxed || options.use_end_cross;
  RelaxedBounds rb;
  if (need_relaxed) {
    Timer timer;
    rb = RelaxedBounds::Build(dist, options.motif, pool);
    if (stats != nullptr) {
      stats->memory.Add(rb.MemoryBytes());
      stats->precompute_seconds += timer.ElapsedSeconds();
    }
  }

  if (options.relaxed) {
    return RunRelaxed(dist, options, rb, stats, pool);
  }
  return RunTight(dist, options, need_relaxed ? &rb : nullptr, stats, pool);
}

StatusOr<MotifResult> BtmMotif(const Trajectory& s, const GroundMetric& metric,
                               const BtmOptions& options, MotifStats* stats) {
  Timer timer;
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, metric);
  if (!dg.ok()) return dg.status();
  if (stats != nullptr) stats->precompute_seconds += timer.ElapsedSeconds();
  return BtmMotif(dg.value(), options, stats);
}

StatusOr<MotifResult> BtmMotif(const Trajectory& s, const Trajectory& t,
                               const GroundMetric& metric,
                               const BtmOptions& options, MotifStats* stats) {
  Timer timer;
  StatusOr<DistanceMatrix> dg = DistanceMatrix::Build(s, t, metric);
  if (!dg.ok()) return dg.status();
  if (stats != nullptr) stats->precompute_seconds += timer.ElapsedSeconds();
  BtmOptions cross_options = options;
  cross_options.motif.variant = MotifVariant::kCrossTrajectory;
  return BtmMotif(dg.value(), cross_options, stats);
}

}  // namespace frechet_motif
