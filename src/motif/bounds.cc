#include "motif/bounds.h"

#include <algorithm>
#include <limits>

namespace frechet_motif {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Largest admissible first-index (column of the dG-matrix path picture) a
/// candidate of CS(i,j) can reach: j-1 under the single-trajectory overlap
/// constraint ie < j, the last point otherwise.
Index MaxFirstIndex(const DistanceProvider& dist, const MotifOptions& options,
                    Index j) {
  return options.variant == MotifVariant::kSingleTrajectory ? j - 1
                                                            : dist.rows() - 1;
}

}  // namespace

double LbCell(const DistanceProvider& dist, Index i, Index j) {
  return dist.Distance(i, j);
}

double LbRow(const DistanceProvider& dist, const MotifOptions& options,
             Index i, Index j) {
  // Every path from (i,j) to a candidate endpoint crosses row j+1 at some
  // first-index c in [i, ic] ⊆ [i, MaxFirstIndex].
  if (j + 1 > dist.cols() - 1) return kInf;
  const Index c_hi = MaxFirstIndex(dist, options, j);
  if (c_hi < i) return kInf;
  double best = kInf;
  for (Index c = i; c <= c_hi; ++c) {
    best = std::min(best, dist.Distance(c, j + 1));
  }
  return best;
}

double LbCol(const DistanceProvider& dist, const MotifOptions& options,
             Index i, Index j) {
  // Every path from (i,j) crosses column i+1 at some second-index r in
  // [j, je] ⊆ [j, m-1].
  (void)options;
  if (i + 1 > dist.rows() - 1) return kInf;
  double best = kInf;
  for (Index r = j; r <= dist.cols() - 1; ++r) {
    best = std::min(best, dist.Distance(i + 1, r));
  }
  return best;
}

double LbStartCross(const DistanceProvider& dist, const MotifOptions& options,
                    Index i, Index j) {
  return std::max(LbRow(dist, options, i, j), LbCol(dist, options, i, j));
}

double LbRowBand(const DistanceProvider& dist, const MotifOptions& options,
                 Index i, Index j) {
  // Valid candidates satisfy je > j+ξ, so the path crosses each of rows
  // j+1 .. j+ξ; take the strongest of those row bounds.
  const Index xi = options.min_length_xi;
  if (j + xi > dist.cols() - 1) return kInf;  // no valid candidate
  double best = 0.0;
  for (Index jp = j; jp <= j + xi - 1; ++jp) {
    best = std::max(best, LbRow(dist, options, i, jp));
  }
  return best;
}

double LbColBand(const DistanceProvider& dist, const MotifOptions& options,
                 Index i, Index j) {
  const Index xi = options.min_length_xi;
  if (i + xi > dist.rows() - 1) return kInf;  // no valid candidate
  double best = 0.0;
  for (Index ip = i; ip <= i + xi - 1; ++ip) {
    best = std::max(best, LbCol(dist, options, ip, j));
  }
  return best;
}

double LbEndCross(const DistanceProvider& dist, const MotifOptions& options,
                  Index i, Index j, Index ie, Index je) {
  // Candidates of CS(i,j) with ic > ie and jc > je must cross row je+1
  // (at first-index in [i, MaxFirstIndex]) and column ie+1 (at second-index
  // in [j, m-1]).
  double row_part = kInf;
  if (je + 1 <= dist.cols() - 1) {
    const Index c_hi = MaxFirstIndex(dist, options, j);
    row_part = kInf;
    for (Index c = i; c <= c_hi; ++c) {
      row_part = std::min(row_part, dist.Distance(c, je + 1));
    }
  }
  double col_part = kInf;
  if (ie + 1 <= dist.rows() - 1) {
    col_part = kInf;
    for (Index r = j; r <= dist.cols() - 1; ++r) {
      col_part = std::min(col_part, dist.Distance(ie + 1, r));
    }
  }
  return std::max(row_part, col_part);
}

}  // namespace frechet_motif
