#ifndef FRECHET_MOTIF_MOTIF_TOP_K_H_
#define FRECHET_MOTIF_MOTIF_TOP_K_H_

/// Top-k motif discovery: the k most similar subtrajectory pairs instead
/// of only the best one, with an optional diversity constraint between
/// results. Most applications only need one of the TopKMotifs() overloads.

#include <vector>

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/stats.h"
#include "util/status.h"

namespace frechet_motif {

/// Options for top-k motif discovery.
struct TopKOptions {
  /// Shared motif constraints (minimum length ξ, problem variant).
  MotifOptions motif;

  /// Number of motifs to return (>= 1).
  int k = 5;

  /// Diversity control between returned motifs: the start cells (i, j) of
  /// any two results must differ by at least this much in Chebyshev
  /// distance. 1 (default) only requires distinct candidate subsets and
  /// keeps the search exact; larger values spread the results over the
  /// trajectory but make the selection a greedy heuristic (see TopKMotifs).
  Index min_start_separation = 1;

  /// Approximation knob with the per-rank contract: a candidate subset is
  /// skipped once its lower bound times (1+ε) exceeds the running k-th
  /// best subset optimum, and (with min_start_separation == 1) the r-th
  /// reported distance is guaranteed to be at most (1+ε) times the exact
  /// r-th smallest subset optimum, for every rank r. 0 (default) keeps
  /// the search exact and bit-identical. Must be >= 0.
  double approximation_epsilon = 0.0;
};

/// Finds the k most similar subtrajectory pairs, at most one per candidate
/// subset CS(i,j) (each subset is represented by its best pair — otherwise
/// the answer would be k near-duplicates of the single best motif).
///
/// Exactness: with min_start_separation == 1 the result is exactly the k
/// smallest subset optima, found with the same bound-based pruning as BTM
/// against the running k-th best distance. With larger separations the
/// same candidate pool is selected greedily in ascending distance order
/// (skipping conflicts) — the classic motif-set heuristic; results are
/// guaranteed pairwise separated and ascending, but a different
/// equally-separated set with smaller distances may exist.
///
/// Results are sorted ascending by distance; fewer than k are returned
/// when the trajectory does not admit that many. `stats` may be null.
StatusOr<std::vector<MotifResult>> TopKMotifs(const DistanceProvider& dist,
                                              const TopKOptions& options,
                                              MotifStats* stats = nullptr);

/// Convenience overload for Problem 1 over a single trajectory.
StatusOr<std::vector<MotifResult>> TopKMotifs(const Trajectory& s,
                                              const GroundMetric& metric,
                                              const TopKOptions& options,
                                              MotifStats* stats = nullptr);

/// Convenience overload for the two-trajectory variant.
StatusOr<std::vector<MotifResult>> TopKMotifs(const Trajectory& s,
                                              const Trajectory& t,
                                              const GroundMetric& metric,
                                              const TopKOptions& options,
                                              MotifStats* stats = nullptr);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_MOTIF_TOP_K_H_
