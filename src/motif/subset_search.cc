#include "motif/subset_search.h"

#include <algorithm>
#include <limits>

namespace frechet_motif {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void EvaluateSubset(const DistanceProvider& dist, const MotifOptions& options,
                    Index i, Index j, const RelaxedBounds* relaxed,
                    bool use_end_cross, const EndpointCaps& caps,
                    SearchState* state, MotifStats* stats,
                    std::vector<double>* prev_scratch,
                    std::vector<double>* row_scratch) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  const Index xi = options.min_length_xi;
  const bool single = options.variant == MotifVariant::kSingleTrajectory;
  const Index ie_max =
      std::min(single ? j - 1 : n - 1, std::min(n - 1, caps.ie_cap));
  const Index je_max = std::min(m - 1, caps.je_cap);
  const Index width = je_max - j + 1;  // DP columns cover je in [j, je_max]

  if (ie_max <= i || width <= 0) return;

  std::vector<double>& prev = *prev_scratch;
  std::vector<double>& curr = *row_scratch;
  if (static_cast<Index>(prev.size()) < width) {
    prev.resize(width);
    curr.resize(width);
  }

  std::int64_t cells = 0;

  // Init row ie = i: dF(i, i, j, je) = running max of dG(i, j..je).
  prev[0] = dist.Distance(i, j);
  for (Index q = 1; q < width; ++q) {
    prev[q] = std::max(prev[q - 1], dist.Distance(i, j + q));
  }
  cells += width;

  const bool pruning = use_end_cross && relaxed != nullptr;

  for (Index ie = i + 1; ie <= ie_max; ++ie) {
    const bool endpoint_row = ie >= i + xi + 1;
    Index live = 0;  // cells of this row that are not frozen
    // First column je = j (never a valid endpoint: je must exceed j+xi).
    curr[0] = prev[0] == kInf ? kInf : std::max(prev[0], dist.Distance(ie, j));
    if (curr[0] != kInf && pruning && relaxed->Cmin(ie) > state->threshold &&
        relaxed->Rmin(j) > state->threshold) {
      curr[0] = kInf;
    }
    if (curr[0] != kInf) ++live;
    for (Index q = 1; q < width; ++q) {
      const double best_predecessor =
          std::min({prev[q], prev[q - 1], curr[q - 1]});
      double v;
      if (best_predecessor == kInf) {
        v = kInf;  // unreachable through frozen frontier
      } else {
        v = std::max(dist.Distance(ie, j + q), best_predecessor);
      }
      const Index je = j + q;
      if (v != kInf) {
        if (endpoint_row && q >= xi + 1) {
          // (i, ie, j, je) is a valid candidate with exact DFD v.
          if (v < state->best_distance && stats != nullptr) {
            ++stats->bsf_updates;
          }
          state->Record(Candidate{i, ie, j, je}, v);
        }
        // End-cell cross bound (Eq. 9): freeze the cell when every
        // continuation is provably worse than the threshold.
        if (pruning && relaxed->Cmin(ie) > state->threshold &&
            relaxed->Rmin(je) > state->threshold) {
          v = kInf;
        }
      }
      if (v != kInf) ++live;
      curr[q] = v;
    }
    cells += width;
    if (live == 0) {
      // The whole frontier is frozen; no deeper row can be reached.
      break;
    }
    std::swap(prev, curr);
  }

  if (stats != nullptr) {
    stats->dfd_cells_computed += cells;
    ++stats->subsets_evaluated;
  }
}

void RunSubsetQueue(const DistanceProvider& dist, const MotifOptions& options,
                    std::vector<SubsetEntry>* entries,
                    const RelaxedBounds* relaxed, bool use_end_cross,
                    bool sort_entries, SearchState* state, MotifStats* stats,
                    EndpointCaps* caps_io, double lb_scale) {
  if (sort_entries) {
    std::sort(entries->begin(), entries->end(),
              [](const SubsetEntry& a, const SubsetEntry& b) {
                return a.lb < b.lb;
              });
  }
  const Index xi = options.min_length_xi;
  EndpointCaps local_caps;
  EndpointCaps& caps = caps_io != nullptr ? *caps_io : local_caps;
  std::vector<double> prev;
  std::vector<double> curr;
  for (const SubsetEntry& entry : *entries) {
    if (entry.lb * lb_scale > state->threshold) {
      // With a sorted queue every remaining bound is at least as large, so
      // the search is complete (best-first paradigm of Algorithm 2).
      if (sort_entries) break;
      continue;
    }
    // Global endpoint caps: skip subsets that cannot reach a valid endpoint.
    if (entry.j > caps.je_cap - xi - 1 || entry.i > caps.ie_cap - xi - 1) {
      continue;
    }
    const double threshold_before = state->threshold;
    EvaluateSubset(dist, options, entry.i, entry.j, relaxed, use_end_cross,
                   caps, state, stats, &prev, &curr);
    if (relaxed != nullptr && state->found &&
        state->threshold < threshold_before) {
      // Algorithm 2 lines 12-13 (both axes), justified by whole-row/column
      // minima: candidates ending beyond the capped index cross a row or
      // column whose best ground distance already exceeds the threshold.
      if (relaxed->RminFull(state->best.je) > state->threshold) {
        caps.je_cap = std::min(caps.je_cap, state->best.je);
      }
      if (relaxed->CminFull(state->best.ie) > state->threshold) {
        caps.ie_cap = std::min(caps.ie_cap, state->best.ie);
      }
    }
  }
}

void ForEachValidSubset(const MotifOptions& options, Index n, Index m,
                        const std::function<void(Index, Index)>& fn) {
  const Index xi = options.min_length_xi;
  if (options.variant == MotifVariant::kSingleTrajectory) {
    for (Index i = 0; i <= m - 2 * xi - 4; ++i) {
      for (Index j = i + xi + 2; j <= m - xi - 2; ++j) {
        fn(i, j);
      }
    }
  } else {
    for (Index i = 0; i <= n - xi - 2; ++i) {
      for (Index j = 0; j <= m - xi - 2; ++j) {
        fn(i, j);
      }
    }
  }
}

std::int64_t CountValidSubsets(const MotifOptions& options, Index n, Index m) {
  const Index xi = options.min_length_xi;
  if (options.variant == MotifVariant::kSingleTrajectory) {
    // i in [0, m-2xi-4], j in [i+xi+2, m-xi-2].
    std::int64_t count = 0;
    for (Index i = 0; i <= m - 2 * xi - 4; ++i) {
      count += (m - xi - 2) - (i + xi + 2) + 1;
    }
    return count;
  }
  const std::int64_t rows = std::max<Index>(0, n - xi - 1);
  const std::int64_t cols = std::max<Index>(0, m - xi - 1);
  return rows * cols;
}

bool IsValidSubsetStart(const MotifOptions& options, Index n, Index m, Index i,
                        Index j) {
  const Index xi = options.min_length_xi;
  if (i < 0 || j < 0) return false;
  if (options.variant == MotifVariant::kSingleTrajectory) {
    return i <= m - 2 * xi - 4 && j >= i + xi + 2 && j <= m - xi - 2;
  }
  return i <= n - xi - 2 && j <= m - xi - 2;
}

}  // namespace frechet_motif
