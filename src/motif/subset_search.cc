#include "motif/subset_search.h"

#include <algorithm>
#include <cstddef>
#include <limits>

namespace frechet_motif {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The shared subset DP, templated on the ground-distance accessor so that
/// the matrix-backed instantiation inlines to raw row-major loads (the
/// devirtualized hot path) while any other provider keeps the generic
/// virtual-call instantiation. `dist_at(r, c)` uses absolute indices.
template <typename DistFn>
void EvaluateSubsetImpl(const DistFn& dist_at, Index n, Index m,
                        const MotifOptions& options, Index i, Index j,
                        const RelaxedBounds* relaxed, bool use_end_cross,
                        const EndpointCaps& caps, SearchState* state,
                        MotifStats* stats, FrechetScratch* scratch) {
  const Index xi = options.min_length_xi;
  const bool single = options.variant == MotifVariant::kSingleTrajectory;
  // An endpoint cap is a wall: row ie_cap+1 / column je_cap+1 is too
  // expensive for any path to cross. It therefore binds only subsets
  // starting at or left of the wall (i <= cap+1); a subset starting past
  // it lies entirely on the far side and never crosses.
  const Index ie_cap = i - 1 <= caps.ie_cap ? caps.ie_cap : n - 1;
  const Index je_cap = j - 1 <= caps.je_cap ? caps.je_cap : m - 1;
  const Index ie_max = std::min(single ? j - 1 : n - 1, std::min(n - 1, ie_cap));
  const Index je_max = std::min(m - 1, je_cap);
  const Index width = je_max - j + 1;  // DP columns cover je in [j, je_max]

  if (ie_max <= i || width <= 0) return;

  std::vector<double>& prev = scratch->prev;
  std::vector<double>& curr = scratch->row;
  // Guard the two rows independently: other kernels grow scratch->row on
  // their own, and the swap below exchanges the members, so their sizes
  // can legitimately differ on entry.
  if (static_cast<Index>(prev.size()) < width) prev.resize(width);
  if (static_cast<Index>(curr.size()) < width) curr.resize(width);

  std::int64_t cells = 0;

  // Init row ie = i: dF(i, i, j, je) = running max of dG(i, j..je).
  double running = dist_at(i, j);
  prev[0] = running;
  for (Index q = 1; q < width; ++q) {
    const double d = dist_at(i, j + q);
    if (d > running) running = d;
    prev[q] = running;
  }
  cells += width;

  const bool pruning = use_end_cross && relaxed != nullptr;

  for (Index ie = i + 1; ie <= ie_max; ++ie) {
    const bool endpoint_row = ie >= i + xi + 1;
    Index live = 0;  // cells of this row that are not frozen
    // First column je = j (never a valid endpoint: je must exceed j+xi).
    curr[0] = prev[0] == kInf ? kInf : std::max(prev[0], dist_at(ie, j));
    if (curr[0] != kInf && pruning && relaxed->Cmin(ie) > state->threshold &&
        relaxed->Rmin(j) > state->threshold) {
      curr[0] = kInf;
    }
    if (curr[0] != kInf) ++live;
    for (Index q = 1; q < width; ++q) {
      const double best_predecessor =
          std::min({prev[q], prev[q - 1], curr[q - 1]});
      double v;
      if (best_predecessor == kInf) {
        v = kInf;  // unreachable through frozen frontier
      } else {
        v = std::max(dist_at(ie, j + q), best_predecessor);
      }
      const Index je = j + q;
      if (v != kInf) {
        if (endpoint_row && q >= xi + 1) {
          // (i, ie, j, je) is a valid candidate with exact DFD v.
          if (v < state->best_distance && stats != nullptr) {
            ++stats->bsf_updates;
          }
          state->Record(Candidate{i, ie, j, je}, v);
        }
        // End-cell cross bound (Eq. 9): freeze the cell when every
        // continuation is provably worse than the threshold.
        if (pruning && relaxed->Cmin(ie) > state->threshold &&
            relaxed->Rmin(je) > state->threshold) {
          v = kInf;
        }
      }
      if (v != kInf) ++live;
      curr[q] = v;
    }
    cells += width;
    if (live == 0) {
      // The whole frontier is frozen; no deeper row can be reached.
      break;
    }
    std::swap(prev, curr);
  }

  if (stats != nullptr) {
    stats->dfd_cells_computed += cells;
    ++stats->subsets_evaluated;
  }
}

/// Devirtualized absolute-index accessor over a materialized matrix.
struct MatrixDist {
  const double* base;
  std::size_t stride;
  double operator()(Index r, Index c) const {
    return base[static_cast<std::size_t>(r) * stride +
                static_cast<std::size_t>(c)];
  }
};

/// Devirtualized accessor over the sliding-window ring matrix: same
/// row-major loads, plus the logical-to-physical head rotation (a
/// branchless-friendly compare per axis, no modulo).
struct RingDist {
  const double* base;
  std::size_t stride;
  Index row_head;
  Index col_head;
  Index row_capacity;
  Index col_capacity;
  double operator()(Index r, Index c) const {
    Index pr = row_head + r;
    if (pr >= row_capacity) pr -= row_capacity;
    Index pc = col_head + c;
    if (pc >= col_capacity) pc -= col_capacity;
    return base[static_cast<std::size_t>(pr) * stride +
                static_cast<std::size_t>(pc)];
  }
};

/// Accumulates the counters EvaluateSubset touches, for the deterministic
/// in-order merge of parallel batches.
void MergeEvaluationStats(const MotifStats& from, MotifStats* into) {
  into->subsets_evaluated += from.subsets_evaluated;
  into->dfd_cells_computed += from.dfd_cells_computed;
  into->bsf_updates += from.bsf_updates;
}

}  // namespace

void EvaluateSubset(const DistanceProvider& dist, const MotifOptions& options,
                    Index i, Index j, const RelaxedBounds* relaxed,
                    bool use_end_cross, const EndpointCaps& caps,
                    SearchState* state, MotifStats* stats,
                    FrechetScratch* scratch) {
  const Index n = dist.rows();
  const Index m = dist.cols();
  if (const auto* matrix = dynamic_cast<const DistanceMatrix*>(&dist)) {
    const MatrixDist at{matrix->Row(0), static_cast<std::size_t>(m)};
    EvaluateSubsetImpl(at, n, m, options, i, j, relaxed, use_end_cross, caps,
                       state, stats, scratch);
    return;
  }
  if (const auto* ring = dynamic_cast<const RingDistanceMatrix*>(&dist)) {
    const RingDist at{ring->data(),
                      static_cast<std::size_t>(ring->col_capacity()),
                      ring->row_head(),
                      ring->col_head(),
                      ring->row_capacity(),
                      ring->col_capacity()};
    EvaluateSubsetImpl(at, n, m, options, i, j, relaxed, use_end_cross, caps,
                       state, stats, scratch);
    return;
  }
  const auto at = [&dist](Index r, Index c) { return dist.Distance(r, c); };
  EvaluateSubsetImpl(at, n, m, options, i, j, relaxed, use_end_cross, caps,
                     state, stats, scratch);
}

namespace {

/// Shrinks the global endpoint caps after a best-so-far improvement
/// (Algorithm 2 lines 12-13, both axes), justified by whole-row/column
/// minima: a candidate that *crosses* the capped row/column pays at least
/// its whole-line minimum, which already exceeds the threshold. The cap is
/// a wall, not a blanket endpoint bound — subsets starting past it are
/// exempt (see EndpointCaps), which keeps the search order-independent.
void TightenCaps(const RelaxedBounds& relaxed, const SearchState& state,
                 EndpointCaps* caps) {
  if (relaxed.RminFull(state.best.je) > state.threshold) {
    caps->je_cap = std::min(caps->je_cap, state.best.je);
  }
  if (relaxed.CminFull(state.best.ie) > state.threshold) {
    caps->ie_cap = std::min(caps->ie_cap, state.best.ie);
  }
}

void RunSubsetQueueSerial(const DistanceProvider& dist,
                          const MotifOptions& options,
                          const std::vector<SubsetEntry>& entries,
                          const RelaxedBounds* relaxed, bool use_end_cross,
                          bool sort_entries, SearchState* state,
                          MotifStats* stats, EndpointCaps& caps,
                          double lb_scale) {
  const Index xi = options.min_length_xi;
  FrechetScratch scratch;
  for (const SubsetEntry& entry : entries) {
    if (entry.lb * lb_scale > state->threshold) {
      // With a sorted queue every remaining bound is at least as large, so
      // the search is complete (best-first paradigm of Algorithm 2).
      if (sort_entries) break;
      continue;
    }
    // Global endpoint caps: skip subsets that start at or left of a wall
    // but too close to reach a valid endpoint before it. Subsets starting
    // past a wall (entry.j > cap+1) are on its far side and unaffected.
    if ((entry.j - 1 <= caps.je_cap && entry.j > caps.je_cap - xi - 1) ||
        (entry.i - 1 <= caps.ie_cap && entry.i > caps.ie_cap - xi - 1)) {
      continue;
    }
    const double threshold_before = state->threshold;
    EvaluateSubset(dist, options, entry.i, entry.j, relaxed, use_end_cross,
                   caps, state, stats, &scratch);
    if (relaxed != nullptr && state->found &&
        state->threshold < threshold_before) {
      TightenCaps(*relaxed, *state, &caps);
    }
  }
}

void RunSubsetQueueParallel(const DistanceProvider& dist,
                            const MotifOptions& options,
                            const std::vector<SubsetEntry>& entries,
                            const RelaxedBounds* relaxed, bool use_end_cross,
                            bool sort_entries, SearchState* state,
                            MotifStats* stats, EndpointCaps& caps,
                            double lb_scale, ThreadPool* pool) {
  const Index xi = options.min_length_xi;
  const int lanes = pool->threads();
  std::vector<FrechetScratch> scratch(lanes);
  std::vector<SearchState> lane_state(lanes);
  std::vector<MotifStats> lane_stats(lanes);
  std::vector<std::size_t> batch;
  batch.reserve(lanes);

  std::size_t k = 0;
  bool done = false;
  while (!done && k < entries.size()) {
    // Admit the next up-to-`lanes` subsets the serial loop could not have
    // skipped for sure: the lb and cap tests use the batch-start state, so
    // the batch may contain a few subsets the serial order would have
    // pruned — harmless, they only re-derive candidates above the
    // threshold (see header contract).
    batch.clear();
    while (k < entries.size() && static_cast<int>(batch.size()) < lanes) {
      const SubsetEntry& entry = entries[k];
      if (entry.lb * lb_scale > state->threshold) {
        if (sort_entries) {
          done = true;
          break;
        }
        ++k;
        continue;
      }
      if ((entry.j - 1 <= caps.je_cap && entry.j > caps.je_cap - xi - 1) ||
          (entry.i - 1 <= caps.ie_cap && entry.i > caps.ie_cap - xi - 1)) {
        ++k;
        continue;
      }
      batch.push_back(k);
      ++k;
    }
    if (batch.empty()) continue;

    const double threshold_before = state->threshold;
    pool->RunOnAllLanes([&](int lane) {
      if (lane >= static_cast<int>(batch.size())) return;
      lane_state[lane] = *state;  // frozen snapshot of threshold/best
      lane_stats[lane] = MotifStats{};
      const SubsetEntry& entry = entries[batch[static_cast<std::size_t>(
          lane)]];
      EvaluateSubset(dist, options, entry.i, entry.j, relaxed, use_end_cross,
                     caps, &lane_state[lane],
                     stats != nullptr ? &lane_stats[lane] : nullptr,
                     &scratch[lane]);
    });

    // Deterministic merge in queue order. Record resolves equal-distance
    // candidates to the canonical (i, j, ie, je) minimum, so the merged
    // best is the same candidate the serial loop records no matter how
    // the batch partitioned the evaluations.
    for (std::size_t b = 0; b < batch.size(); ++b) {
      SearchState& ls = lane_state[b];
      if (ls.found) {
        state->Record(ls.best, ls.best_distance);
      }
      if (ls.threshold < state->threshold) state->threshold = ls.threshold;
      if (stats != nullptr) MergeEvaluationStats(lane_stats[b], stats);
    }
    if (relaxed != nullptr && state->found &&
        state->threshold < threshold_before) {
      TightenCaps(*relaxed, *state, &caps);
    }
  }
}

}  // namespace

void RunSubsetQueue(const DistanceProvider& dist, const MotifOptions& options,
                    std::vector<SubsetEntry>* entries,
                    const RelaxedBounds* relaxed, bool use_end_cross,
                    bool sort_entries, SearchState* state, MotifStats* stats,
                    EndpointCaps* caps_io, double lb_scale, ThreadPool* pool) {
  if (sort_entries) {
    // Deterministic total order: ties on the bound break by (i, j), so
    // the processing order does not depend on std::sort's treatment of
    // equal keys — and, crucially for the streaming engine, filtering
    // entries out of the array beforehand cannot reorder the survivors
    // relative to the unfiltered queue.
    std::sort(entries->begin(), entries->end(),
              [](const SubsetEntry& a, const SubsetEntry& b) {
                if (a.lb != b.lb) return a.lb < b.lb;
                if (a.i != b.i) return a.i < b.i;
                return a.j < b.j;
              });
  }
  EndpointCaps local_caps;
  EndpointCaps& caps = caps_io != nullptr ? *caps_io : local_caps;
  // Approximate mode (lb_scale > 1) must stay serial: a subset the serial
  // loop skips under the scaled bound may hold a candidate *better* than
  // the running best, so a batch admitted against a stale threshold could
  // legitimately return a different (1+ε)-valid answer. Exact mode has no
  // such subsets — skipped means provably worse — which is what makes the
  // parallel path bit-identical.
  if (pool != nullptr && pool->threads() > 1 && lb_scale == 1.0) {
    RunSubsetQueueParallel(dist, options, *entries, relaxed, use_end_cross,
                           sort_entries, state, stats, caps, lb_scale, pool);
    return;
  }
  RunSubsetQueueSerial(dist, options, *entries, relaxed, use_end_cross,
                       sort_entries, state, stats, caps, lb_scale);
}

void FillSubsetBounds(std::vector<SubsetEntry>* entries, ThreadPool* pool,
                      const std::function<double(Index, Index)>& bound) {
  const auto fill = [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t k = lo; k < hi; ++k) {
      SubsetEntry& e = (*entries)[static_cast<std::size_t>(k)];
      e.lb = bound(e.i, e.j);
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->ParallelFor(
        static_cast<std::int64_t>(entries->size()),
        [&](int, std::int64_t lo, std::int64_t hi) { fill(lo, hi); });
  } else {
    fill(0, static_cast<std::int64_t>(entries->size()));
  }
}

void ForEachValidSubset(const MotifOptions& options, Index n, Index m,
                        const std::function<void(Index, Index)>& fn) {
  const Index xi = options.min_length_xi;
  if (options.variant == MotifVariant::kSingleTrajectory) {
    for (Index i = 0; i <= m - 2 * xi - 4; ++i) {
      for (Index j = i + xi + 2; j <= m - xi - 2; ++j) {
        fn(i, j);
      }
    }
  } else {
    for (Index i = 0; i <= n - xi - 2; ++i) {
      for (Index j = 0; j <= m - xi - 2; ++j) {
        fn(i, j);
      }
    }
  }
}

std::int64_t CountValidSubsets(const MotifOptions& options, Index n, Index m) {
  const Index xi = options.min_length_xi;
  if (options.variant == MotifVariant::kSingleTrajectory) {
    // i in [0, m-2xi-4], j in [i+xi+2, m-xi-2].
    std::int64_t count = 0;
    for (Index i = 0; i <= m - 2 * xi - 4; ++i) {
      count += (m - xi - 2) - (i + xi + 2) + 1;
    }
    return count;
  }
  const std::int64_t rows = std::max<Index>(0, n - xi - 1);
  const std::int64_t cols = std::max<Index>(0, m - xi - 1);
  return rows * cols;
}

bool IsValidSubsetStart(const MotifOptions& options, Index n, Index m, Index i,
                        Index j) {
  const Index xi = options.min_length_xi;
  if (i < 0 || j < 0) return false;
  if (options.variant == MotifVariant::kSingleTrajectory) {
    return i <= m - 2 * xi - 4 && j >= i + xi + 2 && j <= m - xi - 2;
  }
  return i <= n - xi - 2 && j <= m - xi - 2;
}

}  // namespace frechet_motif
