#ifndef FRECHET_MOTIF_DATA_SIMPLIFY_H_
#define FRECHET_MOTIF_DATA_SIMPLIFY_H_

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// Douglas-Peucker trajectory simplification with a tolerance in meters.
///
/// Keeps the first and last point and recursively retains the point
/// furthest from the current chord whenever that distance exceeds the
/// tolerance. Distances are measured in a local meter frame anchored at
/// the trajectory's first point (adequate for the city-scale extents this
/// library targets). Timestamps of retained points are preserved.
///
/// Guarantee (tested): every dropped point lies within `tolerance_m` of
/// the segment between its surrounding retained points, so the discrete
/// Fréchet distance between the original and a densified rendering of the
/// simplification is O(tolerance).
///
/// Common preprocessing before motif discovery: a 5-10 m tolerance removes
/// GPS jitter without disturbing the motif structure, shrinking n (and the
/// O(n^2)+ costs) considerably.
///
/// Returns InvalidArgument when the input is empty or tolerance < 0.
StatusOr<Trajectory> SimplifyDouglasPeucker(const Trajectory& t,
                                            double tolerance_m);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DATA_SIMPLIFY_H_
