#include "data/simplify.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "geo/great_circle.h"

namespace frechet_motif {

namespace {

/// Distance (meters) from point p to the segment (a, b), all given in the
/// local meter frame.
double PointToSegment(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len_sq = abx * abx + aby * aby;
  double t = 0.0;
  if (len_sq > 0.0) {
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len_sq;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double dx = p.x - (a.x + t * abx);
  const double dy = p.y - (a.y + t * aby);
  return std::sqrt(dx * dx + dy * dy);
}

/// Iterative Douglas-Peucker over the meter-frame points; marks keepers.
void MarkKeepers(const std::vector<Point>& pts, double tolerance,
                 std::vector<char>* keep) {
  std::vector<std::pair<Index, Index>> stack;
  stack.emplace_back(0, static_cast<Index>(pts.size()) - 1);
  while (!stack.empty()) {
    const auto [first, last] = stack.back();
    stack.pop_back();
    if (last - first < 2) continue;
    double worst = -1.0;
    Index worst_idx = first;
    for (Index k = first + 1; k < last; ++k) {
      const double d = PointToSegment(pts[k], pts[first], pts[last]);
      if (d > worst) {
        worst = d;
        worst_idx = k;
      }
    }
    if (worst > tolerance) {
      (*keep)[worst_idx] = 1;
      stack.emplace_back(first, worst_idx);
      stack.emplace_back(worst_idx, last);
    }
  }
}

}  // namespace

StatusOr<Trajectory> SimplifyDouglasPeucker(const Trajectory& t,
                                            double tolerance_m) {
  if (t.empty()) {
    return Status::InvalidArgument("cannot simplify an empty trajectory");
  }
  if (tolerance_m < 0.0) {
    return Status::InvalidArgument("tolerance must be non-negative");
  }
  if (t.size() <= 2) return t;

  // Project into the local meter frame once.
  std::vector<Point> meters;
  meters.reserve(t.size());
  const Point origin = t[0];
  for (Index i = 0; i < t.size(); ++i) {
    meters.push_back(MetersFromOrigin(origin, t[i]));
  }

  std::vector<char> keep(t.size(), 0);
  keep.front() = 1;
  keep.back() = 1;
  MarkKeepers(meters, tolerance_m, &keep);

  std::vector<Point> points;
  std::vector<double> timestamps;
  for (Index i = 0; i < t.size(); ++i) {
    if (keep[i] == 0) continue;
    points.push_back(t[i]);
    if (t.has_timestamps()) timestamps.push_back(t.timestamp(i));
  }
  return Trajectory(std::move(points), std::move(timestamps));
}

}  // namespace frechet_motif
