#include "data/planted.h"

#include <cmath>

#include "data/generator.h"
#include "geo/great_circle.h"
#include "util/random.h"

namespace frechet_motif {

StatusOr<PlantedMotif> PlantMotif(const Trajectory& base, Index segment_start,
                                  Index segment_length, Index gap_length,
                                  double noise_m, std::uint64_t seed) {
  if (segment_length <= 0 || gap_length <= 0) {
    return Status::InvalidArgument("segment and gap lengths must be positive");
  }
  if (noise_m < 0.0) {
    return Status::InvalidArgument("noise_m must be non-negative");
  }
  if (segment_start < 0 || segment_start + segment_length > base.size()) {
    return Status::InvalidArgument("segment does not fit in the base");
  }
  if (!base.has_timestamps()) {
    return Status::InvalidArgument("base trajectory must carry timestamps");
  }

  Rng rng(seed);
  PlantedMotif out;
  out.trajectory = base;
  out.original = {segment_start, segment_start + segment_length - 1};

  // Bridge: a fresh wander starting where the base ends, so the copy does
  // not trivially overlap the original in time.
  WalkParams wander;
  wander.origin = base[base.size() - 1];
  wander.mean_speed_mps = 1.2;
  StatusOr<Trajectory> bridge =
      GenerateWalk(wander, gap_length,
                   base.timestamp(base.size() - 1) + 30.0, &rng);
  if (!bridge.ok()) return bridge.status();
  out.trajectory.Concatenate(bridge.value());

  // Noisy copy of the segment: displace each point by a uniform offset in
  // a disc of radius noise_m. A lock-step coupling of original and copy
  // then matches point k with its perturbed twin, so DFD <= noise_m.
  const Index copy_first = out.trajectory.size();
  double clock =
      out.trajectory.timestamp(out.trajectory.size() - 1) + 30.0;
  for (Index k = 0; k < segment_length; ++k) {
    const Point& p = base[segment_start + k];
    const double angle = rng.NextDouble(0.0, 2.0 * M_PI);
    const double radius = noise_m * std::sqrt(rng.NextDouble());
    const Point noisy = OffsetByMeters(p, radius * std::cos(angle),
                                       radius * std::sin(angle));
    clock += 1.0 + rng.NextDouble();
    out.trajectory.Append(noisy, clock);
  }
  out.copy = {copy_first, copy_first + segment_length - 1};
  // 2% margin over the displacement radius absorbs the (sub-0.1%) error of
  // the local equirectangular meter frame used to apply the offsets.
  out.dfd_upper_bound_m = noise_m * 1.02;
  return out;
}

}  // namespace frechet_motif
