#ifndef FRECHET_MOTIF_DATA_DATASETS_H_
#define FRECHET_MOTIF_DATA_DATASETS_H_

/// Synthetic dataset emulators for the paper's three evaluation corpora
/// (Section 6.1). One call — MakeDataset(kind, {length, seed}) — yields a
/// trajectory with the right motion profile, sampling behaviour and route
/// re-use for that corpus, bit-identical per seed. The `fmotif gen`
/// subcommand and most benches/tests sit on top of this header.

#include <cstdint>
#include <string>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// Synthetic stand-ins for the paper's three real datasets (Section 6.1).
///
/// The originals (GeoLife, the Athens Truck dataset, the Mpala Wild-Baboon
/// collars) are not redistributable with this repository, so each emulator
/// reproduces the characteristics the motif algorithms are sensitive to:
/// spatial autocorrelation, per-dataset speed and turning profiles,
/// non-uniform sampling rates, missing samples, and — crucially for motif
/// discovery — route re-use, so genuine motifs exist. Longer trajectories
/// are built by concatenating independent "recordings", exactly as the
/// paper concatenates raw trajectories.
enum class DatasetKind {
  /// Pedestrian GPS a la GeoLife: ~1.4 m/s, mixed 2-40 s logger periods,
  /// commute routes revisited on different days.
  kGeoLifeLike,
  /// Concrete trucks in a metropolitan grid a la the Athens Truck data:
  /// ~11 m/s on grid-snapped roads, depot -> site -> depot round trips.
  kTruckLike,
  /// Wild olive baboons a la the Mpala collars: 1 Hz dense sampling,
  /// foraging loops around a sleeping site.
  kBaboonLike,
};

/// All three kinds, for dataset sweeps in benches/tests.
inline constexpr DatasetKind kAllDatasetKinds[] = {
    DatasetKind::kGeoLifeLike, DatasetKind::kTruckLike,
    DatasetKind::kBaboonLike};

/// Stable display name ("GeoLife-like", ...).
std::string DatasetName(DatasetKind kind);

/// Generation options.
struct DatasetOptions {
  /// Number of points n in the produced trajectory.
  Index length = 5000;

  /// PRNG seed; equal seeds give bit-identical trajectories.
  std::uint64_t seed = 42;
};

/// Generates one trajectory of exactly `options.length` points.
/// Returns InvalidArgument for non-positive lengths.
StatusOr<Trajectory> MakeDataset(DatasetKind kind,
                                 const DatasetOptions& options);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DATA_DATASETS_H_
