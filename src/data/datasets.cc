#include "data/datasets.h"

#include <vector>

#include "data/generator.h"
#include "util/random.h"

namespace frechet_motif {

namespace {

/// Common recipe: build a small library of routes, then emit "recordings"
/// that replay randomly chosen routes with noise (plus occasional free
/// wander), concatenating until the requested length is reached. Route
/// replays are what plants genuine motifs.
Trajectory AssembleFromRoutes(const WalkParams& params,
                              const std::vector<Route>& routes,
                              double arrival_radius_m, Index length,
                              double wander_fraction, Rng* rng) {
  Trajectory out;
  double clock_s = 0.0;
  while (out.size() < length) {
    const Index remaining = length - out.size();
    Trajectory segment;
    if (rng->NextBernoulli(wander_fraction)) {
      const Index want = std::min<Index>(remaining, 80);
      StatusOr<Trajectory> walk = GenerateWalk(params, want, clock_s, rng);
      segment = std::move(walk).value();
    } else {
      const std::size_t pick =
          static_cast<std::size_t>(rng->NextUint64(routes.size()));
      StatusOr<Trajectory> run = FollowRoute(
          params, routes[pick], arrival_radius_m, remaining, clock_s, rng);
      segment = std::move(run).value();
    }
    clock_s = segment.timestamps().back() + 60.0;  // gap between recordings
    out.Concatenate(segment);
  }
  // Concatenation may overshoot by at most one segment; trim exactly.
  if (out.size() > length) out = out.Slice(0, length - 1);
  return out;
}

Trajectory MakeGeoLifeLike(Index length, Rng* rng) {
  WalkParams params;
  params.origin = LatLon(39.9042, 116.4074);  // Beijing
  params.mean_speed_mps = 1.4;                // walking
  params.speed_jitter = 0.35;
  params.turn_stddev_rad = 0.25;
  params.base_period_s = 8.0;
  params.period_jitter = 0.6;  // GPS-phone vs logger rate spread
  params.dropout_probability = 0.03;
  params.dropout_max_run = 6;
  params.gps_noise_m = 4.0;  // GPS-phone grade receivers

  // A commuter's route library: home-office, office-market, home-park.
  std::vector<Route> routes;
  for (int r = 0; r < 3; ++r) {
    routes.push_back(MakeRandomRoute(10, 350.0, /*snap_to_grid_m=*/0.0, rng));
  }
  return AssembleFromRoutes(params, routes, /*arrival_radius_m=*/25.0, length,
                            /*wander_fraction=*/0.25, rng);
}

Trajectory MakeTruckLike(Index length, Rng* rng) {
  WalkParams params;
  params.origin = LatLon(37.9838, 23.7275);  // Athens
  params.mean_speed_mps = 11.0;              // urban truck
  params.speed_jitter = 0.45;                // traffic
  params.turn_stddev_rad = 0.08;             // road-constrained
  params.base_period_s = 30.0;
  params.period_jitter = 0.3;
  params.dropout_probability = 0.015;
  params.dropout_max_run = 4;
  params.gps_noise_m = 6.0;  // urban canyons

  // Depot to construction sites: routes share the depot end, so replays
  // overlap heavily (strong motifs), like the 33-day delivery schedule.
  std::vector<Route> routes;
  for (int r = 0; r < 4; ++r) {
    Route out_leg = MakeRandomRoute(8, 1500.0, /*snap_to_grid_m=*/500.0, rng);
    routes.push_back(out_leg);
    // The return leg retraces the outbound leg back to the depot.
    Route back_leg(out_leg.rbegin(), out_leg.rend());
    routes.push_back(back_leg);
  }
  return AssembleFromRoutes(params, routes, /*arrival_radius_m=*/120.0,
                            length, /*wander_fraction=*/0.1, rng);
}

Trajectory MakeBaboonLike(Index length, Rng* rng) {
  WalkParams params;
  params.origin = LatLon(0.2922, 36.8986);  // Mpala Research Centre
  params.mean_speed_mps = 0.9;              // troop movement
  params.speed_jitter = 0.5;
  params.turn_stddev_rad = 0.45;            // foraging wander
  params.base_period_s = 1.0;               // 1 Hz collars
  params.period_jitter = 0.05;
  params.dropout_probability = 0.01;
  params.dropout_max_run = 10;
  params.gps_noise_m = 1.5;  // custom collars, open savanna

  // Foraging loops leaving and returning to the sleeping site.
  std::vector<Route> routes;
  for (int r = 0; r < 3; ++r) {
    Route loop = MakeRandomRoute(6, 120.0, /*snap_to_grid_m=*/0.0, rng);
    loop.push_back(loop.front());  // close the loop at the sleeping site
    routes.push_back(loop);
  }
  return AssembleFromRoutes(params, routes, /*arrival_radius_m=*/15.0, length,
                            /*wander_fraction=*/0.35, rng);
}

}  // namespace

std::string DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kGeoLifeLike:
      return "GeoLife-like";
    case DatasetKind::kTruckLike:
      return "Truck-like";
    case DatasetKind::kBaboonLike:
      return "Wild-Baboon-like";
  }
  return "unknown";
}

StatusOr<Trajectory> MakeDataset(DatasetKind kind,
                                 const DatasetOptions& options) {
  if (options.length <= 0) {
    return Status::InvalidArgument("dataset length must be positive");
  }
  Rng rng(options.seed);
  switch (kind) {
    case DatasetKind::kGeoLifeLike:
      return MakeGeoLifeLike(options.length, &rng);
    case DatasetKind::kTruckLike:
      return MakeTruckLike(options.length, &rng);
    case DatasetKind::kBaboonLike:
      return MakeBaboonLike(options.length, &rng);
  }
  return Status::InvalidArgument("unknown dataset kind");
}

}  // namespace frechet_motif
