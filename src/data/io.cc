#include "data/io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

namespace frechet_motif {

namespace {

/// Seconds per day, for the PLT fractional-days timestamp field.
constexpr double kSecondsPerDay = 86400.0;

/// Splits a line on commas, trimming surrounding whitespace.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    std::size_t begin = 0;
    std::size_t end = field.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              field[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(field[end - 1]))) {
      --end;
    }
    fields.push_back(field.substr(begin, end - begin));
  }
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

Status WriteCsv(const Trajectory& trajectory, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const bool timed = trajectory.has_timestamps();
  out << (timed ? "lat,lon,timestamp\n" : "lat,lon\n");
  char buf[128];
  for (Index i = 0; i < trajectory.size(); ++i) {
    const Point& p = trajectory[i];
    if (timed) {
      std::snprintf(buf, sizeof(buf), "%.8f,%.8f,%.3f\n", p.lat(), p.lon(),
                    trajectory.timestamp(i));
    } else {
      std::snprintf(buf, sizeof(buf), "%.8f,%.8f\n", p.lat(), p.lon());
    }
    out << buf;
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Trajectory> ReadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<Point> points;
  std::vector<double> timestamps;
  std::string line;
  std::size_t line_no = 0;
  bool saw_timestamps = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    double lat = 0.0;
    double lon = 0.0;
    if (fields.size() < 2 || !ParseDouble(fields[0], &lat) ||
        !ParseDouble(fields[1], &lon)) {
      if (line_no == 1) continue;  // header row
      return Status::InvalidArgument("malformed CSV row " +
                                     std::to_string(line_no) + " in " + path);
    }
    points.push_back(LatLon(lat, lon));
    if (fields.size() >= 3) {
      double ts = 0.0;
      if (!ParseDouble(fields[2], &ts)) {
        return Status::InvalidArgument("malformed timestamp on row " +
                                       std::to_string(line_no) + " in " +
                                       path);
      }
      timestamps.push_back(ts);
      saw_timestamps = true;
    } else if (saw_timestamps) {
      return Status::InvalidArgument("row " + std::to_string(line_no) +
                                     " is missing a timestamp in " + path);
    }
  }
  if (points.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  return Trajectory::Create(std::move(points), std::move(timestamps));
}

StatusOr<Trajectory> ReadPlt(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<Point> points;
  std::vector<double> timestamps;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no <= 6) continue;  // PLT preamble
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    double lat = 0.0;
    double lon = 0.0;
    double days = 0.0;
    if (fields.size() < 5 || !ParseDouble(fields[0], &lat) ||
        !ParseDouble(fields[1], &lon) || !ParseDouble(fields[4], &days)) {
      return Status::InvalidArgument("malformed PLT row " +
                                     std::to_string(line_no) + " in " + path);
    }
    points.push_back(LatLon(lat, lon));
    timestamps.push_back(days * kSecondsPerDay);
  }
  if (points.empty()) {
    return Status::InvalidArgument("no data rows in " + path);
  }
  return Trajectory::Create(std::move(points), std::move(timestamps));
}

Status WritePlt(const Trajectory& trajectory, const std::string& path) {
  if (!trajectory.has_timestamps()) {
    return Status::InvalidArgument(
        "PLT format requires per-point timestamps");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      << "0,2,255,My Track,0,0,2,8421376\n0\n";
  char buf[160];
  for (Index i = 0; i < trajectory.size(); ++i) {
    const Point& p = trajectory[i];
    const double days = trajectory.timestamp(i) / kSecondsPerDay;
    std::snprintf(buf, sizeof(buf), "%.8f,%.8f,0,0,%.9f,1899-12-30,00:00:00\n",
                  p.lat(), p.lon(), days);
    out << buf;
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace frechet_motif
