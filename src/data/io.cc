#include "data/io.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/json_writer.h"
#include "util/numeric.h"

namespace frechet_motif {

namespace {

/// Seconds per day, for the PLT fractional-days timestamp field.
constexpr double kSecondsPerDay = 86400.0;

/// Strips one trailing '\r', so files authored on Windows (CRLF line
/// endings) parse identically to their LF twins. std::getline only
/// consumes the '\n'; without this a CRLF blank line looks like a
/// one-field data row and fails the whole parse.
void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

/// Splits a line on commas, trimming surrounding whitespace.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) {
    std::size_t begin = 0;
    std::size_t end = field.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              field[begin]))) {
      ++begin;
    }
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(field[end - 1]))) {
      --end;
    }
    fields.push_back(field.substr(begin, end - begin));
  }
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  // C-locale parse: a host application may have called setlocale(), under
  // which strtod("39.9") would stop at the decimal point and corrupt
  // every coordinate.
  return !s.empty() && ParseDoubleC(s, out);
}

/// Slurps `path` into `*content`; the shared front half of every
/// Read* wrapper around its *FromString parser.
Status SlurpFile(const std::string& path, std::string* content) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  *content = buffer.str();
  return Status::Ok();
}

}  // namespace

CsvRow ParseCsvPointRow(const std::string& line, double* lat, double* lon,
                        double* timestamp, bool* has_timestamp) {
  std::string stripped = line;
  StripTrailingCr(&stripped);
  if (stripped.empty()) return CsvRow::kBlank;
  const std::vector<std::string> fields = SplitCsvLine(stripped);
  if (fields.size() == 1 && fields[0].empty()) return CsvRow::kBlank;
  if (fields.size() < 2 || !ParseDouble(fields[0], lat) ||
      !ParseDouble(fields[1], lon)) {
    return CsvRow::kMalformed;
  }
  *has_timestamp = fields.size() >= 3;
  if (*has_timestamp && !ParseDouble(fields[2], timestamp)) {
    return CsvRow::kMalformedTimestamp;
  }
  return CsvRow::kPoint;
}

CsvRow ParseFleetCsvRow(const std::string& line, std::size_t* stream,
                        double* lat, double* lon, double* timestamp,
                        bool* has_timestamp) {
  std::size_t at = 0;
  while (at < line.size() &&
         (line[at] == ' ' || line[at] == '\t' || line[at] == '\r')) {
    ++at;
  }
  if (at == line.size()) return CsvRow::kBlank;
  const std::size_t comma = line.find(',', at);
  if (comma == std::string::npos) return CsvRow::kMalformed;
  // Validate before the cast: converting a negative, non-integral,
  // out-of-range or non-finite double to size_t is undefined behavior.
  double id = 0.0;
  if (!ParseDoubleC(line.substr(at, comma - at), &id) ||
      !(id >= 0.0 && id <= 1e9) || id != std::floor(id)) {
    return CsvRow::kMalformed;
  }
  *stream = static_cast<std::size_t>(id);
  return ParseCsvPointRow(line.substr(comma + 1), lat, lon, timestamp,
                          has_timestamp);
}

Status WriteCsv(const Trajectory& trajectory, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const bool timed = trajectory.has_timestamps();
  out << (timed ? "lat,lon,timestamp\n" : "lat,lon\n");
  for (Index i = 0; i < trajectory.size(); ++i) {
    const Point& p = trajectory[i];
    // Locale-independent formatting ("39.9" never "39,9"); precision
    // matches the historical %.8f / %.3f exactly.
    out << DoubleToStringFixed(p.lat(), 8) << ','
        << DoubleToStringFixed(p.lon(), 8);
    if (timed) out << ',' << DoubleToStringFixed(trajectory.timestamp(i), 3);
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Trajectory> ReadCsv(const std::string& path) {
  std::string content;
  FM_RETURN_IF_ERROR(SlurpFile(path, &content));
  return ReadCsvFromString(content, path);
}

StatusOr<Trajectory> ReadCsvFromString(const std::string& content,
                                       const std::string& origin) {
  std::istringstream in(content);
  std::vector<Point> points;
  std::vector<double> timestamps;
  std::string line;
  std::size_t line_no = 0;
  bool saw_timestamps = false;
  while (std::getline(in, line)) {
    ++line_no;
    double lat = 0.0;
    double lon = 0.0;
    double ts = 0.0;
    bool has_ts = false;
    switch (ParseCsvPointRow(line, &lat, &lon, &ts, &has_ts)) {
      case CsvRow::kBlank:
        continue;
      case CsvRow::kMalformed:
        if (line_no == 1) continue;  // header row
        return Status::InvalidArgument("malformed CSV row " +
                                       std::to_string(line_no) + " in " +
                                       origin);
      case CsvRow::kMalformedTimestamp:
        return Status::InvalidArgument("malformed timestamp on row " +
                                       std::to_string(line_no) + " in " +
                                       origin);
      case CsvRow::kPoint:
        break;
    }
    points.push_back(LatLon(lat, lon));
    if (has_ts) {
      timestamps.push_back(ts);
      saw_timestamps = true;
    } else if (saw_timestamps) {
      return Status::InvalidArgument("row " + std::to_string(line_no) +
                                     " is missing a timestamp in " + origin);
    }
  }
  if (points.empty()) {
    return Status::InvalidArgument("no data rows in " + origin);
  }
  return Trajectory::Create(std::move(points), std::move(timestamps));
}

StatusOr<Trajectory> ReadPlt(const std::string& path) {
  std::string content;
  FM_RETURN_IF_ERROR(SlurpFile(path, &content));
  return ReadPltFromString(content, path);
}

StatusOr<Trajectory> ReadPltFromString(const std::string& content,
                                       const std::string& origin) {
  std::istringstream in(content);
  std::vector<Point> points;
  std::vector<double> timestamps;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    StripTrailingCr(&line);
    if (line_no <= 6) continue;  // PLT preamble
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    double lat = 0.0;
    double lon = 0.0;
    double days = 0.0;
    if (fields.size() < 5 || !ParseDouble(fields[0], &lat) ||
        !ParseDouble(fields[1], &lon) || !ParseDouble(fields[4], &days)) {
      return Status::InvalidArgument("malformed PLT row " +
                                     std::to_string(line_no) + " in " + origin);
    }
    points.push_back(LatLon(lat, lon));
    timestamps.push_back(days * kSecondsPerDay);
  }
  if (points.empty()) {
    return Status::InvalidArgument("no data rows in " + origin);
  }
  return Trajectory::Create(std::move(points), std::move(timestamps));
}

namespace {

/// Advances *pos past JSON whitespace.
void SkipJsonWs(const std::string& s, std::size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

/// Parses a JSON number at *pos, advancing past it. C-locale semantics:
/// JSON mandates '.' decimals no matter what the global locale says.
bool ParseJsonNumber(const std::string& s, std::size_t* pos, double* out) {
  if (*pos >= s.size()) return false;
  const char* start = s.c_str() + *pos;
  const char* end = ParseDoublePrefixC(start, s.c_str() + s.size(), out);
  if (end == start) return false;
  *pos += static_cast<std::size_t>(end - start);
  return true;
}

/// Parses the flat number array at *pos (positioned at '['): `[a, b, ...]`.
bool ParseJsonNumberArray(const std::string& s, std::size_t* pos,
                          std::vector<double>* out) {
  SkipJsonWs(s, pos);
  if (*pos >= s.size() || s[*pos] != '[') return false;
  ++*pos;
  SkipJsonWs(s, pos);
  if (*pos < s.size() && s[*pos] == ']') {
    ++*pos;
    return true;
  }
  while (true) {
    double value = 0.0;
    SkipJsonWs(s, pos);
    if (!ParseJsonNumber(s, pos, &value)) return false;
    out->push_back(value);
    SkipJsonWs(s, pos);
    if (*pos >= s.size()) return false;
    if (s[*pos] == ']') {
      ++*pos;
      return true;
    }
    if (s[*pos] != ',') return false;
    ++*pos;
  }
}

/// Locates `"key"` followed by ':' and returns the position just past the
/// colon, or npos. Good enough for the fixed document shapes this reader
/// accepts; the subsequent value parse rejects anything unexpected.
std::size_t FindJsonKey(const std::string& s, const std::string& key) {
  const std::string quoted = "\"" + key + "\"";
  std::size_t at = 0;
  while ((at = s.find(quoted, at)) != std::string::npos) {
    std::size_t pos = at + quoted.size();
    SkipJsonWs(s, &pos);
    if (pos < s.size() && s[pos] == ':') return pos + 1;
    at += quoted.size();
  }
  return std::string::npos;
}

}  // namespace

StatusOr<Trajectory> ReadGeoJson(const std::string& path) {
  std::string content;
  FM_RETURN_IF_ERROR(SlurpFile(path, &content));
  return ReadGeoJsonFromString(content, path);
}

StatusOr<Trajectory> ReadGeoJsonFromString(const std::string& content,
                                           const std::string& origin) {
  std::size_t pos = FindJsonKey(content, "coordinates");
  if (pos == std::string::npos) {
    return Status::InvalidArgument("no \"coordinates\" member in " + origin);
  }
  SkipJsonWs(content, &pos);
  if (pos >= content.size() || content[pos] != '[') {
    return Status::InvalidArgument("\"coordinates\" is not an array in " +
                                   origin);
  }
  ++pos;  // into the LineString's position list

  std::vector<Point> points;
  SkipJsonWs(content, &pos);
  if (pos < content.size() && content[pos] == ']') {
    return Status::InvalidArgument("empty \"coordinates\" in " + origin);
  }
  while (true) {
    SkipJsonWs(content, &pos);
    if (pos >= content.size()) {
      return Status::InvalidArgument("unterminated \"coordinates\" in " +
                                     origin);
    }
    if (content[pos] != '[') {
      return Status::InvalidArgument(
          "expected a [lon, lat] position at offset " + std::to_string(pos) +
          " in " + origin);
    }
    std::vector<double> position;
    std::size_t probe = pos;
    if (!ParseJsonNumberArray(content, &probe, &position)) {
      // A '[' whose first element is not a number means deeper nesting —
      // MultiLineString/Polygon documents, which we reject explicitly.
      return Status::InvalidArgument(
          "only LineString geometries are supported (nested coordinate "
          "arrays at offset " +
          std::to_string(pos) + " in " + origin + ")");
    }
    pos = probe;
    if (position.size() < 2 || position.size() > 3) {
      return Status::InvalidArgument(
          "GeoJSON positions must be [lon, lat] or [lon, lat, alt] in " +
          origin);
    }
    // RFC 7946: positions are longitude first.
    points.push_back(LatLon(position[1], position[0]));
    SkipJsonWs(content, &pos);
    if (pos >= content.size()) {
      return Status::InvalidArgument("unterminated \"coordinates\" in " +
                                     origin);
    }
    if (content[pos] == ']') break;  // end of the position list
    if (content[pos] != ',') {
      return Status::InvalidArgument("malformed \"coordinates\" near offset " +
                                     std::to_string(pos) + " in " + origin);
    }
    ++pos;
  }

  std::vector<double> timestamps;
  std::size_t times_pos = FindJsonKey(content, "times");
  if (times_pos != std::string::npos) {
    if (!ParseJsonNumberArray(content, &times_pos, &timestamps) ||
        timestamps.size() != points.size()) {
      return Status::InvalidArgument(
          "\"times\" must be a number array matching the position count in " +
          origin);
    }
  }
  return Trajectory::Create(std::move(points), std::move(timestamps));
}

Status WriteGeoJson(const Trajectory& trajectory, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  JsonWriter w;
  w.BeginObject();
  w.Key("type");
  w.String("Feature");
  w.Key("properties");
  w.BeginObject();
  w.Key("points");
  w.Int(trajectory.size());
  if (trajectory.has_timestamps()) {
    w.Key("times");
    w.BeginArray();
    for (Index i = 0; i < trajectory.size(); ++i) {
      // Millisecond precision, same as WriteCsv — %g-style shortest
      // rendering would truncate epoch-scale times to whole seconds.
      w.Double(trajectory.timestamp(i), 3);
    }
    w.EndArray();
  }
  w.EndObject();
  w.Key("geometry");
  w.BeginObject();
  w.Key("type");
  w.String("LineString");
  w.Key("coordinates");
  w.BeginArray();
  for (Index i = 0; i < trajectory.size(); ++i) {
    w.BeginArray();
    w.Double(trajectory[i].lon(), 8);  // ~1 mm, matching WriteCsv
    w.Double(trajectory[i].lat(), 8);
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
  w.EndObject();
  out << w.str();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status WritePlt(const Trajectory& trajectory, const std::string& path) {
  if (!trajectory.has_timestamps()) {
    return Status::InvalidArgument(
        "PLT format requires per-point timestamps");
  }
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
      << "0,2,255,My Track,0,0,2,8421376\n0\n";
  for (Index i = 0; i < trajectory.size(); ++i) {
    const Point& p = trajectory[i];
    const double days = trajectory.timestamp(i) / kSecondsPerDay;
    out << DoubleToStringFixed(p.lat(), 8) << ','
        << DoubleToStringFixed(p.lon(), 8) << ",0,0,"
        << DoubleToStringFixed(days, 9) << ",1899-12-30,00:00:00\n";
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace frechet_motif
