#include "data/generator.h"

#include <algorithm>
#include <cmath>

#include "geo/great_circle.h"

namespace frechet_motif {

namespace {

/// Shared stepping state for the walk models.
struct WalkState {
  double east_m = 0.0;
  double north_m = 0.0;
  double heading_rad = 0.0;
  double time_s = 0.0;
};

/// Advances time by one (jittered) sampling period; returns the dt used.
double AdvanceTime(const WalkParams& params, Rng* rng, WalkState* state) {
  const double jitter =
      rng->NextDouble(1.0 - params.period_jitter, 1.0 + params.period_jitter);
  const double dt = std::max(0.2, params.base_period_s * jitter);
  state->time_s += dt;
  return dt;
}

/// Steps the position along the current heading for `dt` seconds.
void StepPosition(const WalkParams& params, double dt, Rng* rng,
                  WalkState* state) {
  double speed =
      params.mean_speed_mps *
      (1.0 + params.speed_jitter * rng->NextGaussian());
  speed = std::max(0.05 * params.mean_speed_mps, speed);
  state->east_m += std::cos(state->heading_rad) * speed * dt;
  state->north_m += std::sin(state->heading_rad) * speed * dt;
}

/// True when this sample should start a dropout run.
bool ShouldDrop(const WalkParams& params, Rng* rng) {
  return rng->NextBernoulli(params.dropout_probability);
}

void Emit(const WalkParams& params, const WalkState& state, Rng* rng,
          Trajectory* out) {
  double east = state.east_m;
  double north = state.north_m;
  if (params.gps_noise_m > 0.0) {
    east += rng->NextGaussian(0.0, params.gps_noise_m);
    north += rng->NextGaussian(0.0, params.gps_noise_m);
  }
  out->Append(OffsetByMeters(params.origin, east, north), state.time_s);
}

}  // namespace

StatusOr<Trajectory> GenerateWalk(const WalkParams& params, Index num_points,
                                  double start_time_s, Rng* rng) {
  if (num_points <= 0) {
    return Status::InvalidArgument("num_points must be positive");
  }
  WalkState state;
  state.time_s = start_time_s;
  state.heading_rad = rng->NextDouble(0.0, 2.0 * M_PI);

  Trajectory out;
  Emit(params, state, rng, &out);
  while (out.size() < num_points) {
    // A dropout run advances the simulation without emitting samples.
    if (ShouldDrop(params, rng)) {
      const int run = static_cast<int>(
          rng->NextInt(1, std::max(1, params.dropout_max_run)));
      for (int k = 0; k < run; ++k) {
        const double dt = AdvanceTime(params, rng, &state);
        state.heading_rad += rng->NextGaussian(0.0, params.turn_stddev_rad);
        StepPosition(params, dt, rng, &state);
      }
    }
    const double dt = AdvanceTime(params, rng, &state);
    state.heading_rad += rng->NextGaussian(0.0, params.turn_stddev_rad);
    StepPosition(params, dt, rng, &state);
    Emit(params, state, rng, &out);
  }
  return out;
}

StatusOr<Trajectory> FollowRoute(const WalkParams& params, const Route& route,
                                 double arrival_radius_m, Index max_points,
                                 double start_time_s, Rng* rng) {
  if (route.empty()) {
    return Status::InvalidArgument("route must contain waypoints");
  }
  if (max_points <= 0) {
    return Status::InvalidArgument("max_points must be positive");
  }
  WalkState state;
  state.time_s = start_time_s;
  state.east_m = route.front().x;
  state.north_m = route.front().y;
  std::size_t next_waypoint = route.size() > 1 ? 1 : 0;
  state.heading_rad =
      std::atan2(route[next_waypoint].y - state.north_m,
                 route[next_waypoint].x - state.east_m);

  Trajectory out;
  Emit(params, state, rng, &out);
  // Safety valve against degenerate parameters (e.g. dropout probability 1):
  // bound the number of simulation steps, not just emitted samples.
  std::int64_t steps = 0;
  const std::int64_t max_steps = static_cast<std::int64_t>(max_points) * 64;
  while (out.size() < max_points && steps++ < max_steps) {
    const Point& target = route[next_waypoint];
    const double dx = target.x - state.east_m;
    const double dy = target.y - state.north_m;
    if (std::sqrt(dx * dx + dy * dy) <= arrival_radius_m) {
      if (next_waypoint + 1 >= route.size()) break;  // arrived
      ++next_waypoint;
      continue;
    }
    // Steer toward the waypoint, with heading noise on top.
    state.heading_rad =
        std::atan2(dy, dx) + rng->NextGaussian(0.0, params.turn_stddev_rad);

    if (ShouldDrop(params, rng)) {
      const int run = static_cast<int>(
          rng->NextInt(1, std::max(1, params.dropout_max_run)));
      for (int k = 0; k < run; ++k) {
        const double dt = AdvanceTime(params, rng, &state);
        StepPosition(params, dt, rng, &state);
      }
      continue;  // re-aim before emitting the next sample
    }
    const double dt = AdvanceTime(params, rng, &state);
    StepPosition(params, dt, rng, &state);
    Emit(params, state, rng, &out);
  }
  return out;
}

Route MakeRandomRoute(Index num_waypoints, double leg_length_m,
                      double snap_to_grid_m, Rng* rng) {
  Route route;
  route.reserve(static_cast<std::size_t>(std::max<Index>(num_waypoints, 1)));
  double east = 0.0;
  double north = 0.0;
  double heading = rng->NextDouble(0.0, 2.0 * M_PI);
  route.push_back(Point(east, north));
  for (Index k = 1; k < num_waypoints; ++k) {
    heading += rng->NextGaussian(0.0, 0.8);
    const double leg = leg_length_m * rng->NextDouble(0.5, 1.5);
    east += std::cos(heading) * leg;
    north += std::sin(heading) * leg;
    double wx = east;
    double wy = north;
    if (snap_to_grid_m > 0.0) {
      wx = std::round(wx / snap_to_grid_m) * snap_to_grid_m;
      wy = std::round(wy / snap_to_grid_m) * snap_to_grid_m;
    }
    route.push_back(Point(wx, wy));
  }
  return route;
}

}  // namespace frechet_motif
