#ifndef FRECHET_MOTIF_DATA_PLANTED_H_
#define FRECHET_MOTIF_DATA_PLANTED_H_

#include <cstdint>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// A trajectory with a known ground-truth motif: a contiguous segment of
/// the base trajectory re-appears near the end as a noisy copy.
struct PlantedMotif {
  Trajectory trajectory;

  /// Index range of the original segment within `trajectory`.
  SubtrajectoryRef original;

  /// Index range of the noisy replanted copy.
  SubtrajectoryRef copy;

  /// Upper bound (meters) on the DFD between the two ranges: every copied
  /// point was perturbed by at most this much, and DFD under a lock-step
  /// coupling is at most the worst per-point displacement.
  double dfd_upper_bound_m = 0.0;
};

/// Plants a motif in `base`: picks the segment
/// [segment_start, segment_start + segment_length - 1], appends a bridge of
/// `gap_length` fresh wandering points and then a copy of the segment whose
/// points are displaced by at most `noise_m` meters each.
///
/// The returned upper bound lets integration tests assert that the motif
/// search returns a distance <= bound without knowing the exact optimum.
///
/// Returns InvalidArgument when the segment does not fit in `base` or
/// lengths are non-positive.
StatusOr<PlantedMotif> PlantMotif(const Trajectory& base, Index segment_start,
                                  Index segment_length, Index gap_length,
                                  double noise_m, std::uint64_t seed);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DATA_PLANTED_H_
