#ifndef FRECHET_MOTIF_DATA_IO_H_
#define FRECHET_MOTIF_DATA_IO_H_

#include <string>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// CSV persistence: header "lat,lon,timestamp" followed by one row per
/// point; the timestamp column is omitted when the trajectory carries none.
Status WriteCsv(const Trajectory& trajectory, const std::string& path);

/// Reads a CSV produced by WriteCsv (or any two/three numeric-column file
/// with an optional header row). Returns IoError on filesystem problems and
/// InvalidArgument on malformed rows.
StatusOr<Trajectory> ReadCsv(const std::string& path);

/// GeoLife PLT reader: skips the 6-line preamble, then parses rows of
///   latitude,longitude,0,altitude_ft,days,date,time
/// converting the fractional `days` field (days since 1899-12-30) into
/// seconds. This makes the library a drop-in consumer of the real GeoLife
/// corpus when it is available locally.
StatusOr<Trajectory> ReadPlt(const std::string& path);

/// Writes the GeoLife PLT format (preamble + rows), so emulated datasets
/// can be fed to existing GeoLife tooling.
Status WritePlt(const Trajectory& trajectory, const std::string& path);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DATA_IO_H_
