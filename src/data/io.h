#ifndef FRECHET_MOTIF_DATA_IO_H_
#define FRECHET_MOTIF_DATA_IO_H_

#include <string>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// CSV persistence: header "lat,lon,timestamp" followed by one row per
/// point; the timestamp column is omitted when the trajectory carries none.
Status WriteCsv(const Trajectory& trajectory, const std::string& path);

/// Reads a CSV produced by WriteCsv (or any two/three numeric-column file
/// with an optional header row). Returns IoError on filesystem problems and
/// InvalidArgument on malformed rows. CRLF files parse identically to
/// their LF twins, and parsing is locale-independent.
StatusOr<Trajectory> ReadCsv(const std::string& path);

/// ReadCsv on in-memory bytes instead of a file. `origin` labels error
/// messages (ReadCsv passes the path). This is the byte-level entry the
/// fuzz harnesses drive (tests/fuzz/fuzz_csv.cc); keeping it public
/// also serves callers whose documents never touch a filesystem.
StatusOr<Trajectory> ReadCsvFromString(const std::string& content,
                                       const std::string& origin = "<memory>");

/// Classification of one CSV line by ParseCsvPointRow.
enum class CsvRow {
  kBlank,               ///< Empty (possibly just "\r") or whitespace-only.
  kMalformed,           ///< Not `lat,lon[,...]` — a header or a bad row.
  kMalformedTimestamp,  ///< Coordinates fine, third field unparsable.
  kPoint,               ///< Parsed; outputs are set.
};

/// Parses a single CSV line of the WriteCsv dialect
/// (`lat,lon[,timestamp]`, whitespace- and CRLF-tolerant, C-locale
/// numbers). This is the line-level primitive behind ReadCsv, exposed so
/// streaming consumers (`fmotif stream`) can ingest rows as they arrive
/// without buffering a whole file. On kPoint, `*lat`/`*lon` are set and
/// `*timestamp` is set iff `*has_timestamp`.
CsvRow ParseCsvPointRow(const std::string& line, double* lat, double* lon,
                        double* timestamp, bool* has_timestamp);

/// Parses a multiplexed fleet row `stream,lat,lon[,timestamp]` (the
/// dialect of `fmotif fleet -` stdin and the serve tier's ingest lines):
/// splits a leading non-negative integer stream id (<= 1e9), then
/// delegates to ParseCsvPointRow for the point fields. A missing or
/// malformed id classifies the row kMalformed.
CsvRow ParseFleetCsvRow(const std::string& line, std::size_t* stream,
                        double* lat, double* lon, double* timestamp,
                        bool* has_timestamp);

/// GeoLife PLT reader: skips the 6-line preamble, then parses rows of
///   latitude,longitude,0,altitude_ft,days,date,time
/// converting the fractional `days` field (days since 1899-12-30) into
/// seconds. This makes the library a drop-in consumer of the real GeoLife
/// corpus when it is available locally.
StatusOr<Trajectory> ReadPlt(const std::string& path);

/// ReadPlt on in-memory bytes (see ReadCsvFromString).
StatusOr<Trajectory> ReadPltFromString(const std::string& content,
                                       const std::string& origin = "<memory>");

/// Writes the GeoLife PLT format (preamble + rows), so emulated datasets
/// can be fed to existing GeoLife tooling.
Status WritePlt(const Trajectory& trajectory, const std::string& path);

/// Reads a GeoJSON file holding a single LineString geometry (bare
/// geometry, Feature, or the first geometry of a FeatureCollection):
/// positions are `[lon, lat]` (an optional third element is ignored, per
/// RFC 7946 altitude). When the document carries a `"times"` array of the
/// same length (the convention WriteGeoJson emits), it is read back as
/// per-point timestamps in seconds.
///
/// Returns IoError on filesystem problems, InvalidArgument for documents
/// without a parsable LineString `"coordinates"` member (including
/// MultiLineString/Polygon nesting, which is not supported).
StatusOr<Trajectory> ReadGeoJson(const std::string& path);

/// ReadGeoJson on in-memory bytes (see ReadCsvFromString).
StatusOr<Trajectory> ReadGeoJsonFromString(
    const std::string& content, const std::string& origin = "<memory>");

/// Writes a GeoJSON Feature with a LineString geometry. Timestamps (when
/// present) go to `properties.times`, which ReadGeoJson restores — so
/// CSV/PLT/GeoJSON are interchangeable interchange formats for the
/// `fmotif` pipeline.
Status WriteGeoJson(const Trajectory& trajectory, const std::string& path);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DATA_IO_H_
