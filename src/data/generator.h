#ifndef FRECHET_MOTIF_DATA_GENERATOR_H_
#define FRECHET_MOTIF_DATA_GENERATOR_H_

#include <vector>

#include "core/trajectory.h"
#include "geo/point.h"
#include "util/random.h"
#include "util/status.h"

namespace frechet_motif {

/// Parameters of the correlated-random-walk sampler that underlies all
/// synthetic trajectory generation.
///
/// Real GPS traces (the paper's GeoLife/Truck/Wild-Baboon datasets) are
/// spatially autocorrelated, sampled at non-uniform rates, and have missing
/// samples; the walk model reproduces each property explicitly so that the
/// pruning behaviour of the motif algorithms matches the shapes reported in
/// the paper's evaluation.
struct WalkParams {
  /// Geographic anchor; the walk is simulated in a local meter frame around
  /// it and converted back to latitude/longitude.
  Point origin = LatLon(39.9042, 116.4074);

  /// Mean movement speed in meters/second.
  double mean_speed_mps = 1.4;

  /// Multiplicative speed jitter (standard deviation as a fraction of the
  /// mean; samples are clamped to stay positive).
  double speed_jitter = 0.25;

  /// Standard deviation (radians) of the per-step heading change. Small
  /// values give straight, road-like movement; large values give foraging
  /// wander.
  double turn_stddev_rad = 0.15;

  /// Nominal sampling period in seconds.
  double base_period_s = 5.0;

  /// Multiplicative jitter on the sampling period (uniform in
  /// [1-j, 1+j]), modeling varying GPS logger rates.
  double period_jitter = 0.4;

  /// Probability that a sample is missing; a missing event drops a run of
  /// 1..dropout_max_run consecutive samples (time still advances).
  double dropout_probability = 0.02;
  int dropout_max_run = 5;

  /// GPS measurement noise: each *emitted* sample is displaced by an
  /// isotropic Gaussian of this standard deviation (meters) without
  /// affecting the underlying walk. Real receivers sit at 3-10 m; this is
  /// what keeps repeated routes from matching unrealistically exactly.
  double gps_noise_m = 3.0;
};

/// Generates a free correlated random walk of `num_points` samples starting
/// at `params.origin` and time `start_time_s`. Deterministic given `rng`
/// state. Returns InvalidArgument for num_points <= 0.
StatusOr<Trajectory> GenerateWalk(const WalkParams& params, Index num_points,
                                  double start_time_s, Rng* rng);

/// A route is an ordered list of waypoints in the local meter frame
/// (east, north offsets from the origin).
using Route = std::vector<Point>;

/// Generates a trajectory that follows `route`'s waypoints under the walk
/// model (heading steers toward the next waypoint, plus noise). Emits
/// samples until the final waypoint is reached within `arrival_radius_m`
/// or `max_points` samples were produced. Route re-use across calls is what
/// creates genuine motifs in the synthetic datasets.
StatusOr<Trajectory> FollowRoute(const WalkParams& params, const Route& route,
                                 double arrival_radius_m, Index max_points,
                                 double start_time_s, Rng* rng);

/// Builds a random route of `num_waypoints` waypoints, each
/// `leg_length_m` +- 50% away from the previous one, starting at the meter
/// frame origin. With `snap_to_grid_m` > 0 the waypoints are snapped to a
/// road-grid of that pitch (vehicle-like movement).
Route MakeRandomRoute(Index num_waypoints, double leg_length_m,
                      double snap_to_grid_m, Rng* rng);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DATA_GENERATOR_H_
