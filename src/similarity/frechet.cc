#include "similarity/frechet.h"

#include <algorithm>

namespace frechet_motif {

namespace {

/// Core rolling-row DP over an abstract distance accessor.
/// dist(p, q) must return the ground distance between the p-th point of the
/// first sequence (length la) and the q-th point of the second (length lb).
template <typename DistFn>
double FrechetDp(Index la, Index lb, const DistFn& dist) {
  // One DP row over the second sequence; prev[q] = dF(prefix p-1, prefix q).
  std::vector<double> row(static_cast<std::size_t>(lb));
  // First row: dF(a[0..0], b[0..q]) = max over the first q+1 ground
  // distances (the dog stands still while the man walks).
  row[0] = dist(0, 0);
  for (Index q = 1; q < lb; ++q) {
    row[q] = std::max(row[q - 1], dist(0, q));
  }
  for (Index p = 1; p < la; ++p) {
    double diag = row[0];  // dF(p-1, 0)
    row[0] = std::max(row[0], dist(p, 0));
    for (Index q = 1; q < lb; ++q) {
      const double up = row[q];        // dF(p-1, q)
      const double left = row[q - 1];  // dF(p, q-1)
      const double best_predecessor = std::min({up, left, diag});
      row[q] = std::max(dist(p, q), best_predecessor);
      diag = up;
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}

}  // namespace

StatusOr<double> DiscreteFrechet(const Trajectory& a, const Trajectory& b,
                                 const GroundMetric& metric) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet distance of an empty trajectory is undefined");
  }
  return FrechetDp(a.size(), b.size(), [&](Index p, Index q) {
    return metric.Distance(a[p], b[q]);
  });
}

StatusOr<double> DiscreteFrechetOnRange(const DistanceProvider& dist, Index i,
                                        Index ie, Index j, Index je) {
  if (i < 0 || j < 0 || i > ie || j > je || ie >= dist.rows() ||
      je >= dist.cols()) {
    return Status::InvalidArgument("invalid subtrajectory range");
  }
  return FrechetDp(ie - i + 1, je - j + 1, [&](Index p, Index q) {
    return dist.Distance(i + p, j + q);
  });
}

StatusOr<std::vector<double>> DiscreteFrechetMatrix(
    const Trajectory& a, const Trajectory& b, const GroundMetric& metric) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet matrix of an empty trajectory is undefined");
  }
  const Index la = a.size();
  const Index lb = b.size();
  std::vector<double> df(static_cast<std::size_t>(la) * lb);
  auto at = [&](Index p, Index q) -> double& {
    return df[static_cast<std::size_t>(p) * lb + q];
  };
  at(0, 0) = metric.Distance(a[0], b[0]);
  for (Index q = 1; q < lb; ++q) {
    at(0, q) = std::max(at(0, q - 1), metric.Distance(a[0], b[q]));
  }
  for (Index p = 1; p < la; ++p) {
    at(p, 0) = std::max(at(p - 1, 0), metric.Distance(a[p], b[0]));
    for (Index q = 1; q < lb; ++q) {
      const double best_predecessor =
          std::min({at(p - 1, q), at(p, q - 1), at(p - 1, q - 1)});
      at(p, q) = std::max(metric.Distance(a[p], b[q]), best_predecessor);
    }
  }
  return df;
}

StatusOr<bool> DiscreteFrechetAtMost(const Trajectory& a, const Trajectory& b,
                                     const GroundMetric& metric,
                                     double threshold) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet distance of an empty trajectory is undefined");
  }
  if (threshold < 0.0) return false;
  const Index la = a.size();
  const Index lb = b.size();
  // reach[q]: prefix b[0..q] is reachable with leash <= threshold.
  std::vector<char> reach(static_cast<std::size_t>(lb), 0);
  reach[0] = metric.Distance(a[0], b[0]) <= threshold ? 1 : 0;
  for (Index q = 1; q < lb; ++q) {
    reach[q] = (reach[q - 1] != 0 &&
                metric.Distance(a[0], b[q]) <= threshold)
                   ? 1
                   : 0;
  }
  for (Index p = 1; p < la; ++p) {
    char diag = reach[0];  // reach(p-1, 0)
    reach[0] = (reach[0] != 0 && metric.Distance(a[p], b[0]) <= threshold)
                   ? 1
                   : 0;
    bool any = reach[0] != 0;
    for (Index q = 1; q < lb; ++q) {
      const char up = reach[q];
      const char left = reach[q - 1];
      const bool predecessor_ok = up != 0 || left != 0 || diag != 0;
      reach[q] = (predecessor_ok &&
                  metric.Distance(a[p], b[q]) <= threshold)
                     ? 1
                     : 0;
      any = any || reach[q] != 0;
      diag = up;
    }
    // Early abandon: an unreachable frontier can never recover.
    if (!any) return false;
  }
  return reach[static_cast<std::size_t>(lb) - 1] != 0;
}

StatusOr<Coupling> DiscreteFrechetCoupling(const Trajectory& a,
                                           const Trajectory& b,
                                           const GroundMetric& metric) {
  StatusOr<std::vector<double>> df = DiscreteFrechetMatrix(a, b, metric);
  if (!df.ok()) return df.status();
  const std::vector<double>& m = df.value();
  const Index la = a.size();
  const Index lb = b.size();
  auto at = [&](Index p, Index q) {
    return m[static_cast<std::size_t>(p) * lb + q];
  };

  Coupling out;
  out.distance = at(la - 1, lb - 1);
  // Backtrack: from (la-1, lb-1) repeatedly move to the predecessor with
  // the smallest dF value (ties broken toward the diagonal for the
  // shortest coupling).
  std::vector<CouplingStep> reversed;
  Index p = la - 1;
  Index q = lb - 1;
  reversed.push_back(CouplingStep{p, q});
  while (p > 0 || q > 0) {
    if (p == 0) {
      --q;
    } else if (q == 0) {
      --p;
    } else {
      const double diag = at(p - 1, q - 1);
      const double up = at(p - 1, q);
      const double left = at(p, q - 1);
      if (diag <= up && diag <= left) {
        --p;
        --q;
      } else if (up <= left) {
        --p;
      } else {
        --q;
      }
    }
    reversed.push_back(CouplingStep{p, q});
  }
  out.steps.assign(reversed.rbegin(), reversed.rend());
  return out;
}

}  // namespace frechet_motif
