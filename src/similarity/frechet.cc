#include "similarity/frechet.h"

#include <algorithm>
#include <cstddef>

#include "util/simd.h"

#if defined(FRECHET_MOTIF_SIMD_X86)
#include <immintrin.h>
#endif

namespace frechet_motif {

namespace {

// ---------------------------------------------------------------------------
// Threshold early-exit schedule, shared by every kernel variant.
//
// After finishing row p, the frontier minimum min_q dF(p, q) lower-bounds
// the final value (every monotone coupling path crosses row p somewhere and
// DP values only grow along a path); once it exceeds the threshold the
// remaining rows cannot matter. Evaluating the bound on *every* row is what
// made the old threshold kernel slower than the plain one at mid sizes
// (the fused bookkeeping taxed every row whether or not an exit ever
// fired), so the bound is now checked on a sparse, size-adaptive schedule:
// every row while p < kDenseCheckRows (cheap exits fire overwhelmingly in
// the first rows), then every CheckStride(la)-th row. Non-checkpoint rows
// run the identical loop as the unbounded kernel.
//
// The schedule MUST be a pure function of (p, la) shared by the scalar,
// generic and SIMD kernels: the first checkpoint whose frontier minimum
// exceeds the threshold determines which lower bound an above-threshold
// call returns, so cross-variant bit-identity (enforced by
// tests/kernel_parity_fuzz_test.cc) requires one schedule.
// ---------------------------------------------------------------------------

constexpr Index kDenseCheckRows = 8;

/// Checkpoint period past the dense prefix: 8 rows up to la = 128, then
/// doubling with la so the bookkeeping stays a vanishing fraction of the
/// DP work. Always a power of two (checkpoint test is a mask test).
inline Index CheckStride(Index la) {
  Index stride = 8;
  while (stride * 16 < la) stride *= 2;
  return stride;
}

inline bool IsCheckpointRow(Index p, Index stride_mask) {
  return p < kDenseCheckRows || (p & stride_mask) == 0;
}

/// O(1) lower bound evaluated before any DP row: every coupling matches
/// both endpoint pairs, so dF >= max(d(0,0), d(la-1,lb-1)). When that
/// already exceeds the threshold the whole DP is skipped. Shared by every
/// bounded kernel variant (same cross-variant identity argument as the
/// checkpoint schedule).
template <typename DistFn>
inline double CornerBound(Index la, Index lb, const DistFn& dist) {
  const double d00 = dist(0, 0);
  const double dnn = dist(la - 1, lb - 1);
  return d00 > dnn ? d00 : dnn;
}

/// Core rolling-row DP over an abstract distance accessor.
/// dist(p, q) must return the ground distance between the p-th point of the
/// first sequence (length la) and the q-th point of the second (length lb).
///
/// This template is the single source of truth for the recurrence; it is
/// instantiated once per accessor so that cheap accessors (the row-major
/// matrix functor below) inline into the loop with no virtual dispatch.
/// The explicit-SIMD matrix kernels below compute bit-identical values
/// (their reassociation is min/max-only, which is exact).
template <typename DistFn>
double FrechetDpKernel(Index la, Index lb, const DistFn& dist,
                       double threshold, std::vector<double>& row) {
  if (static_cast<Index>(row.size()) < lb) {
    row.resize(static_cast<std::size_t>(lb));
  }
  const bool bounded = threshold != kNoFrechetThreshold;
  if (bounded) {
    const double corner = CornerBound(la, lb, dist);
    if (corner > threshold) return corner;
  }
  // First row: dF(a[0..0], b[0..q]) = max over the first q+1 ground
  // distances (the dog stands still while the man walks). The running max
  // is carried in a register instead of re-read from row[q-1]. Its
  // frontier minimum is row[0] = d(0,0) <= corner <= threshold, so no
  // exit is possible here.
  double running = dist(0, 0);
  row[0] = running;
  for (Index q = 1; q < lb; ++q) {
    const double d = dist(0, q);
    if (d > running) running = d;
    row[q] = running;
  }
  const Index stride_mask = CheckStride(la) - 1;
  for (Index p = 1; p < la; ++p) {
    double diag = row[0];  // dF(p-1, 0)
    double left = std::max(row[0], dist(p, 0));
    row[0] = left;
    if (bounded && IsCheckpointRow(p, stride_mask)) {
      // Checkpoint row: fuse the frontier-minimum bookkeeping into the
      // recurrence and abandon when the bound proves the rest moot.
      double frontier_min = left;
      for (Index q = 1; q < lb; ++q) {
        const double up = row[q];  // dF(p-1, q)
        double best_predecessor = diag < up ? diag : up;
        if (left < best_predecessor) best_predecessor = left;
        const double d = dist(p, q);
        left = d > best_predecessor ? d : best_predecessor;
        row[q] = left;
        if (left < frontier_min) frontier_min = left;
        diag = up;
      }
      if (frontier_min > threshold) return frontier_min;
    } else {
      // Plain row: only the recurrence's own dependency chain.
      for (Index q = 1; q < lb; ++q) {
        const double up = row[q];  // dF(p-1, q)
        double best_predecessor = diag < up ? diag : up;
        if (left < best_predecessor) best_predecessor = left;
        const double d = dist(p, q);
        left = d > best_predecessor ? d : best_predecessor;
        row[q] = left;
        diag = up;
      }
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}

/// Devirtualized accessor into a row-major matrix block whose (0, 0) cell
/// sits at `base`: pure pointer arithmetic, trivially inlined.
struct MatrixBlockDist {
  const double* base;
  std::size_t stride;
  double operator()(Index p, Index q) const {
    return base[static_cast<std::size_t>(p) * stride +
                static_cast<std::size_t>(q)];
  }
};

#if defined(FRECHET_MOTIF_SIMD_X86)

// ---------------------------------------------------------------------------
// Explicit-SIMD row kernels over a row-major matrix block.
//
// The recurrence row[q] = max(d, min(up, diag, left)) carries `left`
// serially across the row. With m = min(up, diag):
//
//   left' = max(d, min(m, left)) = min(max(d, m), max(d, left))
//         = clamp(left; lo = d, hi = max(d, m))
//
// because max distributes over min. Clamps compose — applying (lo1, hi1)
// then (lo2, hi2) equals one clamp with lo = max(lo1, lo2) and
// hi = min(hi2, max(lo2, hi1)) — so the serial chain becomes an inclusive
// prefix scan of (lo, hi) pairs per vector (log2(lanes) shift/min/max
// steps), after which the carry from the previous vector is applied with
// one clamp: result = min(hi, max(lo, carry)). Every operation is a min or
// max of the same operands the scalar kernel combines, just reassociated —
// and min/max reassociation is exact for NaN-free inputs, so the vector
// kernels return bit-identical values to the scalar one (the parity fuzz
// tier asserts exactly that).
//
// The carry and the saved diagonal seed are kept in registers as broadcast
// vectors (lane-3/7 permutes) rather than round-tripped through scalar
// code: the broadcast is the only op on the loop-carried critical path.
// ---------------------------------------------------------------------------

/// SSE2 (always available on x86-64): two lanes, one scan step.
double DfdKernelSse2(Index la, Index lb, const double* base,
                     std::size_t stride, double threshold, double* row) {
  const bool bounded = threshold != kNoFrechetThreshold;
  if (bounded) {
    const double d00 = base[0];
    const double dnn =
        base[static_cast<std::size_t>(la - 1) * stride + (lb - 1)];
    const double corner = d00 > dnn ? d00 : dnn;
    if (corner > threshold) return corner;
  }
  double running = base[0];
  row[0] = running;
  for (Index q = 1; q < lb; ++q) {
    const double d = base[q];
    if (d > running) running = d;
    row[q] = running;
  }
  const Index stride_mask = CheckStride(la) - 1;
  const __m128d vninf = _mm_set1_pd(-std::numeric_limits<double>::infinity());
  const __m128d vpinf = _mm_set1_pd(std::numeric_limits<double>::infinity());
  for (Index p = 1; p < la; ++p) {
    const double* drow = base + static_cast<std::size_t>(p) * stride;
    __m128d saved_b = _mm_set1_pd(row[0]);  // old row[0]: diag for q = 1
    const double carry0 = row[0] > drow[0] ? row[0] : drow[0];
    row[0] = carry0;
    __m128d carry_b = _mm_set1_pd(carry0);
    Index q = 1;
    for (; q + 2 <= lb; q += 2) {
      const __m128d up = _mm_loadu_pd(&row[q]);
      // diag = [saved, up0]
      const __m128d diag = _mm_shuffle_pd(saved_b, up, 0x0);
      const __m128d m = _mm_min_pd(up, diag);
      const __m128d d = _mm_loadu_pd(&drow[q]);
      __m128d lo = d;
      __m128d hi = _mm_max_pd(d, m);
      {
        const __m128d lo_s = _mm_shuffle_pd(vninf, lo, 0x0);
        const __m128d hi_s = _mm_shuffle_pd(vpinf, hi, 0x0);
        const __m128d nlo = _mm_max_pd(lo, lo_s);
        const __m128d nhi = _mm_min_pd(hi, _mm_max_pd(lo, hi_s));
        lo = nlo;
        hi = nhi;
      }
      const __m128d result = _mm_min_pd(hi, _mm_max_pd(lo, carry_b));
      _mm_storeu_pd(&row[q], result);
      carry_b = _mm_unpackhi_pd(result, result);
      saved_b = _mm_unpackhi_pd(up, up);
    }
    double diag = _mm_cvtsd_f64(saved_b);
    double left = _mm_cvtsd_f64(carry_b);
    for (; q < lb; ++q) {
      const double up = row[q];
      double best = diag < up ? diag : up;
      if (left < best) best = left;
      const double d = drow[q];
      left = d > best ? d : best;
      row[q] = left;
      diag = up;
    }
    if (bounded && IsCheckpointRow(p, stride_mask)) {
      __m128d acc = vpinf;
      Index r = 0;
      for (; r + 2 <= lb; r += 2) acc = _mm_min_pd(acc, _mm_loadu_pd(&row[r]));
      acc = _mm_min_pd(acc, _mm_unpackhi_pd(acc, acc));
      double frontier_min = _mm_cvtsd_f64(acc);
      for (; r < lb; ++r) {
        if (row[r] < frontier_min) frontier_min = row[r];
      }
      if (frontier_min > threshold) return frontier_min;
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}

/// AVX2: four lanes, two scan steps.
__attribute__((target("avx2"))) double DfdKernelAvx2(Index la, Index lb,
                                                     const double* base,
                                                     std::size_t stride,
                                                     double threshold,
                                                     double* row) {
  const bool bounded = threshold != kNoFrechetThreshold;
  if (bounded) {
    const double d00 = base[0];
    const double dnn =
        base[static_cast<std::size_t>(la - 1) * stride + (lb - 1)];
    const double corner = d00 > dnn ? d00 : dnn;
    if (corner > threshold) return corner;
  }
  double running = base[0];
  row[0] = running;
  for (Index q = 1; q < lb; ++q) {
    const double d = base[q];
    if (d > running) running = d;
    row[q] = running;
  }
  const Index stride_mask = CheckStride(la) - 1;
  const __m256d vninf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256d vpinf =
      _mm256_set1_pd(std::numeric_limits<double>::infinity());
  for (Index p = 1; p < la; ++p) {
    const double* drow = base + static_cast<std::size_t>(p) * stride;
    __m256d saved_b = _mm256_set1_pd(row[0]);  // old row[0]: diag for q = 1
    const double carry0 = row[0] > drow[0] ? row[0] : drow[0];
    row[0] = carry0;
    __m256d carry_b = _mm256_set1_pd(carry0);
    Index q = 1;
    for (; q + 4 <= lb; q += 4) {
      const __m256d up = _mm256_loadu_pd(&row[q]);
      // diag = [saved, up0, up1, up2]
      __m256d diag = _mm256_permute4x64_pd(up, _MM_SHUFFLE(2, 1, 0, 0));
      diag = _mm256_blend_pd(diag, saved_b, 0x1);
      const __m256d m = _mm256_min_pd(up, diag);
      const __m256d d = _mm256_loadu_pd(&drow[q]);
      __m256d lo = d;
      __m256d hi = _mm256_max_pd(d, m);
      {  // scan step, shift 1
        __m256d lo_s = _mm256_permute4x64_pd(lo, _MM_SHUFFLE(2, 1, 0, 0));
        lo_s = _mm256_blend_pd(lo_s, vninf, 0x1);
        __m256d hi_s = _mm256_permute4x64_pd(hi, _MM_SHUFFLE(2, 1, 0, 0));
        hi_s = _mm256_blend_pd(hi_s, vpinf, 0x1);
        const __m256d nlo = _mm256_max_pd(lo, lo_s);
        const __m256d nhi = _mm256_min_pd(hi, _mm256_max_pd(lo, hi_s));
        lo = nlo;
        hi = nhi;
      }
      {  // scan step, shift 2
        __m256d lo_s = _mm256_permute4x64_pd(lo, _MM_SHUFFLE(1, 0, 0, 0));
        lo_s = _mm256_blend_pd(lo_s, vninf, 0x3);
        __m256d hi_s = _mm256_permute4x64_pd(hi, _MM_SHUFFLE(1, 0, 0, 0));
        hi_s = _mm256_blend_pd(hi_s, vpinf, 0x3);
        const __m256d nlo = _mm256_max_pd(lo, lo_s);
        const __m256d nhi = _mm256_min_pd(hi, _mm256_max_pd(lo, hi_s));
        lo = nlo;
        hi = nhi;
      }
      const __m256d result = _mm256_min_pd(hi, _mm256_max_pd(lo, carry_b));
      _mm256_storeu_pd(&row[q], result);
      carry_b = _mm256_permute4x64_pd(result, 0xFF);
      saved_b = _mm256_permute4x64_pd(up, 0xFF);
    }
    double diag = _mm256_cvtsd_f64(saved_b);
    double left = _mm256_cvtsd_f64(carry_b);
    for (; q < lb; ++q) {
      const double up = row[q];
      double best = diag < up ? diag : up;
      if (left < best) best = left;
      const double d = drow[q];
      left = d > best ? d : best;
      row[q] = left;
      diag = up;
    }
    if (bounded && IsCheckpointRow(p, stride_mask)) {
      __m256d acc = vpinf;
      Index r = 0;
      for (; r + 4 <= lb; r += 4) {
        acc = _mm256_min_pd(acc, _mm256_loadu_pd(&row[r]));
      }
      __m128d acc128 = _mm_min_pd(_mm256_castpd256_pd128(acc),
                                  _mm256_extractf128_pd(acc, 1));
      acc128 = _mm_min_pd(acc128, _mm_unpackhi_pd(acc128, acc128));
      double frontier_min = _mm_cvtsd_f64(acc128);
      for (; r < lb; ++r) {
        if (row[r] < frontier_min) frontier_min = row[r];
      }
      if (frontier_min > threshold) return frontier_min;
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}

#if defined(FRECHET_MOTIF_WIDE_SIMD)
/// AVX-512 (FRECHET_MOTIF_NATIVE builds only): eight lanes, three scan
/// steps.
__attribute__((target("avx512f"))) double DfdKernelAvx512(Index la, Index lb,
                                                          const double* base,
                                                          std::size_t stride,
                                                          double threshold,
                                                          double* row) {
  const bool bounded = threshold != kNoFrechetThreshold;
  if (bounded) {
    const double d00 = base[0];
    const double dnn =
        base[static_cast<std::size_t>(la - 1) * stride + (lb - 1)];
    const double corner = d00 > dnn ? d00 : dnn;
    if (corner > threshold) return corner;
  }
  double running = base[0];
  row[0] = running;
  for (Index q = 1; q < lb; ++q) {
    const double d = base[q];
    if (d > running) running = d;
    row[q] = running;
  }
  const Index stride_mask = CheckStride(la) - 1;
  const __m512d vninf =
      _mm512_set1_pd(-std::numeric_limits<double>::infinity());
  const __m512d vpinf =
      _mm512_set1_pd(std::numeric_limits<double>::infinity());
  const __m512i shift1 = _mm512_set_epi64(6, 5, 4, 3, 2, 1, 0, 0);
  const __m512i shift2 = _mm512_set_epi64(5, 4, 3, 2, 1, 0, 0, 0);
  const __m512i shift4 = _mm512_set_epi64(3, 2, 1, 0, 0, 0, 0, 0);
  const __m512i bcast7 = _mm512_set1_epi64(7);
  for (Index p = 1; p < la; ++p) {
    const double* drow = base + static_cast<std::size_t>(p) * stride;
    __m512d saved_b = _mm512_set1_pd(row[0]);  // old row[0]: diag for q = 1
    const double carry0 = row[0] > drow[0] ? row[0] : drow[0];
    row[0] = carry0;
    __m512d carry_b = _mm512_set1_pd(carry0);
    Index q = 1;
    for (; q + 8 <= lb; q += 8) {
      const __m512d up = _mm512_loadu_pd(&row[q]);
      __m512d diag = _mm512_permutexvar_pd(shift1, up);
      diag = _mm512_mask_mov_pd(diag, 0x1, saved_b);
      const __m512d m = _mm512_min_pd(up, diag);
      const __m512d d = _mm512_loadu_pd(&drow[q]);
      __m512d lo = d;
      __m512d hi = _mm512_max_pd(d, m);
      {  // scan step, shift 1
        __m512d lo_s = _mm512_permutexvar_pd(shift1, lo);
        lo_s = _mm512_mask_mov_pd(lo_s, 0x1, vninf);
        __m512d hi_s = _mm512_permutexvar_pd(shift1, hi);
        hi_s = _mm512_mask_mov_pd(hi_s, 0x1, vpinf);
        const __m512d nlo = _mm512_max_pd(lo, lo_s);
        const __m512d nhi = _mm512_min_pd(hi, _mm512_max_pd(lo, hi_s));
        lo = nlo;
        hi = nhi;
      }
      {  // scan step, shift 2
        __m512d lo_s = _mm512_permutexvar_pd(shift2, lo);
        lo_s = _mm512_mask_mov_pd(lo_s, 0x3, vninf);
        __m512d hi_s = _mm512_permutexvar_pd(shift2, hi);
        hi_s = _mm512_mask_mov_pd(hi_s, 0x3, vpinf);
        const __m512d nlo = _mm512_max_pd(lo, lo_s);
        const __m512d nhi = _mm512_min_pd(hi, _mm512_max_pd(lo, hi_s));
        lo = nlo;
        hi = nhi;
      }
      {  // scan step, shift 4
        __m512d lo_s = _mm512_permutexvar_pd(shift4, lo);
        lo_s = _mm512_mask_mov_pd(lo_s, 0xF, vninf);
        __m512d hi_s = _mm512_permutexvar_pd(shift4, hi);
        hi_s = _mm512_mask_mov_pd(hi_s, 0xF, vpinf);
        const __m512d nlo = _mm512_max_pd(lo, lo_s);
        const __m512d nhi = _mm512_min_pd(hi, _mm512_max_pd(lo, hi_s));
        lo = nlo;
        hi = nhi;
      }
      const __m512d result = _mm512_min_pd(hi, _mm512_max_pd(lo, carry_b));
      _mm512_storeu_pd(&row[q], result);
      carry_b = _mm512_permutexvar_pd(bcast7, result);
      saved_b = _mm512_permutexvar_pd(bcast7, up);
    }
    double diag = _mm512_cvtsd_f64(saved_b);
    double left = _mm512_cvtsd_f64(carry_b);
    for (; q < lb; ++q) {
      const double up = row[q];
      double best = diag < up ? diag : up;
      if (left < best) best = left;
      const double d = drow[q];
      left = d > best ? d : best;
      row[q] = left;
      diag = up;
    }
    if (bounded && IsCheckpointRow(p, stride_mask)) {
      __m512d acc = vpinf;
      Index r = 0;
      for (; r + 8 <= lb; r += 8) {
        acc = _mm512_min_pd(acc, _mm512_loadu_pd(&row[r]));
      }
      double frontier_min = _mm512_reduce_min_pd(acc);
      for (; r < lb; ++r) {
        if (row[r] < frontier_min) frontier_min = row[r];
      }
      if (frontier_min > threshold) return frontier_min;
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}
#endif  // FRECHET_MOTIF_WIDE_SIMD

#endif  // FRECHET_MOTIF_SIMD_X86

/// Runs the widest compiled-and-active matrix kernel. All variants are
/// bit-identical, so the dispatch level is an invisible runtime choice.
double DispatchMatrixKernel(Index la, Index lb, const double* base,
                            std::size_t stride, double threshold,
                            std::vector<double>& row) {
#if defined(FRECHET_MOTIF_SIMD_X86)
  const SimdLevel level = ActiveSimdLevel();
  if (level != SimdLevel::kScalar) {
    if (static_cast<Index>(row.size()) < lb) {
      row.resize(static_cast<std::size_t>(lb));
    }
#if defined(FRECHET_MOTIF_WIDE_SIMD)
    if (level >= SimdLevel::kAvx512) {
      return DfdKernelAvx512(la, lb, base, stride, threshold, row.data());
    }
#endif
    if (level >= SimdLevel::kAvx2) {
      return DfdKernelAvx2(la, lb, base, stride, threshold, row.data());
    }
    return DfdKernelSse2(la, lb, base, stride, threshold, row.data());
  }
#endif
  return FrechetDpKernel(la, lb, MatrixBlockDist{base, stride}, threshold,
                         row);
}

Status ValidateRange(const DistanceProvider& dist, Index i, Index ie, Index j,
                     Index je) {
  if (i < 0 || j < 0 || i > ie || j > je || ie >= dist.rows() ||
      je >= dist.cols()) {
    return Status::InvalidArgument("invalid subtrajectory range");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> DiscreteFrechet(const Trajectory& a, const Trajectory& b,
                                 const GroundMetric& metric,
                                 FrechetScratch* scratch) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet distance of an empty trajectory is undefined");
  }
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  return FrechetDpKernel(
      a.size(), b.size(),
      [&](Index p, Index q) { return metric.Distance(a[p], b[q]); },
      kNoFrechetThreshold, s.row);
}

StatusOr<double> DiscreteFrechetOnRange(const DistanceMatrix& dist, Index i,
                                        Index ie, Index j, Index je,
                                        double threshold,
                                        FrechetScratch* scratch) {
  FM_RETURN_IF_ERROR(ValidateRange(dist, i, ie, j, je));
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  return DispatchMatrixKernel(ie - i + 1, je - j + 1, dist.Row(i) + j,
                              static_cast<std::size_t>(dist.cols()), threshold,
                              s.row);
}

StatusOr<double> DiscreteFrechetOnRangeGeneric(const DistanceProvider& dist,
                                               Index i, Index ie, Index j,
                                               Index je, double threshold,
                                               FrechetScratch* scratch) {
  FM_RETURN_IF_ERROR(ValidateRange(dist, i, ie, j, je));
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  return FrechetDpKernel(
      ie - i + 1, je - j + 1,
      [&](Index p, Index q) { return dist.Distance(i + p, j + q); },
      threshold, s.row);
}

StatusOr<double> DiscreteFrechetOnRange(const DistanceProvider& dist, Index i,
                                        Index ie, Index j, Index je,
                                        double threshold,
                                        FrechetScratch* scratch) {
  if (const auto* matrix = dynamic_cast<const DistanceMatrix*>(&dist)) {
    return DiscreteFrechetOnRange(*matrix, i, ie, j, je, threshold, scratch);
  }
  return DiscreteFrechetOnRangeGeneric(dist, i, ie, j, je, threshold, scratch);
}

StatusOr<std::vector<double>> DiscreteFrechetMatrix(
    const Trajectory& a, const Trajectory& b, const GroundMetric& metric) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet matrix of an empty trajectory is undefined");
  }
  const Index la = a.size();
  const Index lb = b.size();
  std::vector<double> df(static_cast<std::size_t>(la) * lb);
  auto at = [&](Index p, Index q) -> double& {
    return df[static_cast<std::size_t>(p) * lb + q];
  };
  at(0, 0) = metric.Distance(a[0], b[0]);
  for (Index q = 1; q < lb; ++q) {
    at(0, q) = std::max(at(0, q - 1), metric.Distance(a[0], b[q]));
  }
  for (Index p = 1; p < la; ++p) {
    at(p, 0) = std::max(at(p - 1, 0), metric.Distance(a[p], b[0]));
    for (Index q = 1; q < lb; ++q) {
      const double best_predecessor =
          std::min({at(p - 1, q), at(p, q - 1), at(p - 1, q - 1)});
      at(p, q) = std::max(metric.Distance(a[p], b[q]), best_predecessor);
    }
  }
  return df;
}

StatusOr<bool> DiscreteFrechetAtMost(const Trajectory& a, const Trajectory& b,
                                     const GroundMetric& metric,
                                     double threshold,
                                     FrechetScratch* scratch) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet distance of an empty trajectory is undefined");
  }
  if (threshold < 0.0) return false;
  const Index la = a.size();
  const Index lb = b.size();
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  // reach[q]: prefix b[0..q] is reachable with leash <= threshold.
  std::vector<char>& reach = s.reach;
  reach.assign(static_cast<std::size_t>(lb), 0);
  reach[0] = metric.Distance(a[0], b[0]) <= threshold ? 1 : 0;
  for (Index q = 1; q < lb; ++q) {
    reach[q] = (reach[q - 1] != 0 &&
                metric.Distance(a[0], b[q]) <= threshold)
                   ? 1
                   : 0;
  }
  for (Index p = 1; p < la; ++p) {
    char diag = reach[0];  // reach(p-1, 0)
    reach[0] = (reach[0] != 0 && metric.Distance(a[p], b[0]) <= threshold)
                   ? 1
                   : 0;
    bool any = reach[0] != 0;
    for (Index q = 1; q < lb; ++q) {
      const char up = reach[q];
      const char left = reach[q - 1];
      const bool predecessor_ok = up != 0 || left != 0 || diag != 0;
      reach[q] = (predecessor_ok &&
                  metric.Distance(a[p], b[q]) <= threshold)
                     ? 1
                     : 0;
      any = any || reach[q] != 0;
      diag = up;
    }
    // Early abandon: an unreachable frontier can never recover.
    if (!any) return false;
  }
  return reach[static_cast<std::size_t>(lb) - 1] != 0;
}

StatusOr<Coupling> DiscreteFrechetCoupling(const Trajectory& a,
                                           const Trajectory& b,
                                           const GroundMetric& metric) {
  StatusOr<std::vector<double>> df = DiscreteFrechetMatrix(a, b, metric);
  if (!df.ok()) return df.status();
  const std::vector<double>& m = df.value();
  const Index la = a.size();
  const Index lb = b.size();
  auto at = [&](Index p, Index q) {
    return m[static_cast<std::size_t>(p) * lb + q];
  };

  Coupling out;
  out.distance = at(la - 1, lb - 1);
  // Backtrack: from (la-1, lb-1) repeatedly move to the predecessor with
  // the smallest dF value (ties broken toward the diagonal for the
  // shortest coupling).
  std::vector<CouplingStep> reversed;
  Index p = la - 1;
  Index q = lb - 1;
  reversed.push_back(CouplingStep{p, q});
  while (p > 0 || q > 0) {
    if (p == 0) {
      --q;
    } else if (q == 0) {
      --p;
    } else {
      const double diag = at(p - 1, q - 1);
      const double up = at(p - 1, q);
      const double left = at(p, q - 1);
      if (diag <= up && diag <= left) {
        --p;
        --q;
      } else if (up <= left) {
        --p;
      } else {
        --q;
      }
    }
    reversed.push_back(CouplingStep{p, q});
  }
  out.steps.assign(reversed.rbegin(), reversed.rend());
  return out;
}

}  // namespace frechet_motif
