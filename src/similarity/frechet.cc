#include "similarity/frechet.h"

#include <algorithm>

namespace frechet_motif {

namespace {

/// Core rolling-row DP over an abstract distance accessor.
/// dist(p, q) must return the ground distance between the p-th point of the
/// first sequence (length la) and the q-th point of the second (length lb).
///
/// This template is the single source of truth for the recurrence; it is
/// instantiated once per accessor so that cheap accessors (the row-major
/// matrix functor below) inline into the loop with no virtual dispatch.
///
/// Threshold early exit: after finishing row p, the frontier minimum
/// min_q dF(p, q) lower-bounds the final value (every monotone coupling
/// path crosses row p somewhere and DP values only grow along a path).
/// When that minimum exceeds `threshold` the function returns it — a lower
/// bound above the threshold — without touching the remaining rows.
template <typename DistFn>
double FrechetDpKernel(Index la, Index lb, const DistFn& dist,
                       double threshold, std::vector<double>& row) {
  if (static_cast<Index>(row.size()) < lb) {
    row.resize(static_cast<std::size_t>(lb));
  }
  // First row: dF(a[0..0], b[0..q]) = max over the first q+1 ground
  // distances (the dog stands still while the man walks). The running max
  // is carried in a register instead of re-read from row[q-1].
  double running = dist(0, 0);
  row[0] = running;
  for (Index q = 1; q < lb; ++q) {
    const double d = dist(0, q);
    if (d > running) running = d;
    row[q] = running;
  }
  const bool bounded = threshold != kNoFrechetThreshold;
  for (Index p = 1; p < la; ++p) {
    double diag = row[0];  // dF(p-1, 0)
    double left = std::max(row[0], dist(p, 0));
    row[0] = left;
    if (bounded) {
      double frontier_min = left;
      for (Index q = 1; q < lb; ++q) {
        const double up = row[q];  // dF(p-1, q)
        double best_predecessor = diag < up ? diag : up;
        if (left < best_predecessor) best_predecessor = left;
        const double d = dist(p, q);
        left = d > best_predecessor ? d : best_predecessor;
        row[q] = left;
        if (left < frontier_min) frontier_min = left;
        diag = up;
      }
      if (frontier_min > threshold) return frontier_min;
    } else {
      // No threshold: skip the frontier-minimum bookkeeping so the inner
      // loop carries only the recurrence's own dependency chain.
      for (Index q = 1; q < lb; ++q) {
        const double up = row[q];  // dF(p-1, q)
        double best_predecessor = diag < up ? diag : up;
        if (left < best_predecessor) best_predecessor = left;
        const double d = dist(p, q);
        left = d > best_predecessor ? d : best_predecessor;
        row[q] = left;
        diag = up;
      }
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}

/// Devirtualized accessor into a row-major matrix block whose (0, 0) cell
/// sits at `base`: pure pointer arithmetic, trivially inlined.
struct MatrixBlockDist {
  const double* base;
  std::size_t stride;
  double operator()(Index p, Index q) const {
    return base[static_cast<std::size_t>(p) * stride +
                static_cast<std::size_t>(q)];
  }
};

Status ValidateRange(const DistanceProvider& dist, Index i, Index ie, Index j,
                     Index je) {
  if (i < 0 || j < 0 || i > ie || j > je || ie >= dist.rows() ||
      je >= dist.cols()) {
    return Status::InvalidArgument("invalid subtrajectory range");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> DiscreteFrechet(const Trajectory& a, const Trajectory& b,
                                 const GroundMetric& metric,
                                 FrechetScratch* scratch) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet distance of an empty trajectory is undefined");
  }
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  return FrechetDpKernel(
      a.size(), b.size(),
      [&](Index p, Index q) { return metric.Distance(a[p], b[q]); },
      kNoFrechetThreshold, s.row);
}

StatusOr<double> DiscreteFrechetOnRange(const DistanceMatrix& dist, Index i,
                                        Index ie, Index j, Index je,
                                        double threshold,
                                        FrechetScratch* scratch) {
  FM_RETURN_IF_ERROR(ValidateRange(dist, i, ie, j, je));
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  const MatrixBlockDist at{dist.Row(i) + j,
                           static_cast<std::size_t>(dist.cols())};
  return FrechetDpKernel(ie - i + 1, je - j + 1, at, threshold, s.row);
}

StatusOr<double> DiscreteFrechetOnRangeGeneric(const DistanceProvider& dist,
                                               Index i, Index ie, Index j,
                                               Index je, double threshold,
                                               FrechetScratch* scratch) {
  FM_RETURN_IF_ERROR(ValidateRange(dist, i, ie, j, je));
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  return FrechetDpKernel(
      ie - i + 1, je - j + 1,
      [&](Index p, Index q) { return dist.Distance(i + p, j + q); },
      threshold, s.row);
}

StatusOr<double> DiscreteFrechetOnRange(const DistanceProvider& dist, Index i,
                                        Index ie, Index j, Index je,
                                        double threshold,
                                        FrechetScratch* scratch) {
  if (const auto* matrix = dynamic_cast<const DistanceMatrix*>(&dist)) {
    return DiscreteFrechetOnRange(*matrix, i, ie, j, je, threshold, scratch);
  }
  return DiscreteFrechetOnRangeGeneric(dist, i, ie, j, je, threshold, scratch);
}

StatusOr<std::vector<double>> DiscreteFrechetMatrix(
    const Trajectory& a, const Trajectory& b, const GroundMetric& metric) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet matrix of an empty trajectory is undefined");
  }
  const Index la = a.size();
  const Index lb = b.size();
  std::vector<double> df(static_cast<std::size_t>(la) * lb);
  auto at = [&](Index p, Index q) -> double& {
    return df[static_cast<std::size_t>(p) * lb + q];
  };
  at(0, 0) = metric.Distance(a[0], b[0]);
  for (Index q = 1; q < lb; ++q) {
    at(0, q) = std::max(at(0, q - 1), metric.Distance(a[0], b[q]));
  }
  for (Index p = 1; p < la; ++p) {
    at(p, 0) = std::max(at(p - 1, 0), metric.Distance(a[p], b[0]));
    for (Index q = 1; q < lb; ++q) {
      const double best_predecessor =
          std::min({at(p - 1, q), at(p, q - 1), at(p - 1, q - 1)});
      at(p, q) = std::max(metric.Distance(a[p], b[q]), best_predecessor);
    }
  }
  return df;
}

StatusOr<bool> DiscreteFrechetAtMost(const Trajectory& a, const Trajectory& b,
                                     const GroundMetric& metric,
                                     double threshold,
                                     FrechetScratch* scratch) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "discrete Fréchet distance of an empty trajectory is undefined");
  }
  if (threshold < 0.0) return false;
  const Index la = a.size();
  const Index lb = b.size();
  FrechetScratch local;
  FrechetScratch& s = scratch != nullptr ? *scratch : local;
  // reach[q]: prefix b[0..q] is reachable with leash <= threshold.
  std::vector<char>& reach = s.reach;
  reach.assign(static_cast<std::size_t>(lb), 0);
  reach[0] = metric.Distance(a[0], b[0]) <= threshold ? 1 : 0;
  for (Index q = 1; q < lb; ++q) {
    reach[q] = (reach[q - 1] != 0 &&
                metric.Distance(a[0], b[q]) <= threshold)
                   ? 1
                   : 0;
  }
  for (Index p = 1; p < la; ++p) {
    char diag = reach[0];  // reach(p-1, 0)
    reach[0] = (reach[0] != 0 && metric.Distance(a[p], b[0]) <= threshold)
                   ? 1
                   : 0;
    bool any = reach[0] != 0;
    for (Index q = 1; q < lb; ++q) {
      const char up = reach[q];
      const char left = reach[q - 1];
      const bool predecessor_ok = up != 0 || left != 0 || diag != 0;
      reach[q] = (predecessor_ok &&
                  metric.Distance(a[p], b[q]) <= threshold)
                     ? 1
                     : 0;
      any = any || reach[q] != 0;
      diag = up;
    }
    // Early abandon: an unreachable frontier can never recover.
    if (!any) return false;
  }
  return reach[static_cast<std::size_t>(lb) - 1] != 0;
}

StatusOr<Coupling> DiscreteFrechetCoupling(const Trajectory& a,
                                           const Trajectory& b,
                                           const GroundMetric& metric) {
  StatusOr<std::vector<double>> df = DiscreteFrechetMatrix(a, b, metric);
  if (!df.ok()) return df.status();
  const std::vector<double>& m = df.value();
  const Index la = a.size();
  const Index lb = b.size();
  auto at = [&](Index p, Index q) {
    return m[static_cast<std::size_t>(p) * lb + q];
  };

  Coupling out;
  out.distance = at(la - 1, lb - 1);
  // Backtrack: from (la-1, lb-1) repeatedly move to the predecessor with
  // the smallest dF value (ties broken toward the diagonal for the
  // shortest coupling).
  std::vector<CouplingStep> reversed;
  Index p = la - 1;
  Index q = lb - 1;
  reversed.push_back(CouplingStep{p, q});
  while (p > 0 || q > 0) {
    if (p == 0) {
      --q;
    } else if (q == 0) {
      --p;
    } else {
      const double diag = at(p - 1, q - 1);
      const double up = at(p - 1, q);
      const double left = at(p, q - 1);
      if (diag <= up && diag <= left) {
        --p;
        --q;
      } else if (up <= left) {
        --p;
      } else {
        --q;
      }
    }
    reversed.push_back(CouplingStep{p, q});
  }
  out.steps.assign(reversed.rbegin(), reversed.rend());
  return out;
}

}  // namespace frechet_motif
