#include "similarity/lcss.h"

#include <algorithm>
#include <vector>

namespace frechet_motif {

StatusOr<Index> LcssLength(const Trajectory& a, const Trajectory& b,
                           const GroundMetric& metric, double epsilon) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "LCSS of an empty trajectory is undefined");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("LCSS epsilon must be non-negative");
  }
  const Index la = a.size();
  const Index lb = b.size();
  // Classic LCS DP with a matching predicate; rolling rows.
  std::vector<Index> prev(static_cast<std::size_t>(lb) + 1, 0);
  std::vector<Index> curr(static_cast<std::size_t>(lb) + 1, 0);
  for (Index p = 1; p <= la; ++p) {
    for (Index q = 1; q <= lb; ++q) {
      if (metric.Distance(a[p - 1], b[q - 1]) <= epsilon) {
        curr[q] = prev[q - 1] + 1;
      } else {
        curr[q] = std::max(prev[q], curr[q - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<std::size_t>(lb)];
}

StatusOr<double> LcssDistance(const Trajectory& a, const Trajectory& b,
                              const GroundMetric& metric, double epsilon) {
  StatusOr<Index> len = LcssLength(a, b, metric, epsilon);
  if (!len.ok()) return len.status();
  const double denom = static_cast<double>(std::min(a.size(), b.size()));
  return 1.0 - static_cast<double>(len.value()) / denom;
}

}  // namespace frechet_motif
