#include "similarity/euclidean.h"

#include <algorithm>

namespace frechet_motif {

namespace {

Status CheckLockStep(const Trajectory& a, const Trajectory& b) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "lock-step distance of an empty trajectory is undefined");
  }
  if (a.size() != b.size()) {
    return Status::InvalidArgument(
        "lock-step Euclidean distance requires equal lengths (" +
        std::to_string(a.size()) + " vs " + std::to_string(b.size()) + ")");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<double> EuclideanSumDistance(const Trajectory& a, const Trajectory& b,
                                      const GroundMetric& metric) {
  FM_RETURN_IF_ERROR(CheckLockStep(a, b));
  double sum = 0.0;
  for (Index i = 0; i < a.size(); ++i) {
    sum += metric.Distance(a[i], b[i]);
  }
  return sum;
}

StatusOr<double> EuclideanMeanDistance(const Trajectory& a,
                                       const Trajectory& b,
                                       const GroundMetric& metric) {
  StatusOr<double> sum = EuclideanSumDistance(a, b, metric);
  if (!sum.ok()) return sum.status();
  return sum.value() / static_cast<double>(a.size());
}

StatusOr<double> EuclideanMaxDistance(const Trajectory& a, const Trajectory& b,
                                      const GroundMetric& metric) {
  FM_RETURN_IF_ERROR(CheckLockStep(a, b));
  double worst = 0.0;
  for (Index i = 0; i < a.size(); ++i) {
    worst = std::max(worst, metric.Distance(a[i], b[i]));
  }
  return worst;
}

}  // namespace frechet_motif
