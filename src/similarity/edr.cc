#include "similarity/edr.h"

#include <algorithm>
#include <vector>

namespace frechet_motif {

StatusOr<Index> EdrDistance(const Trajectory& a, const Trajectory& b,
                            const GroundMetric& metric, double epsilon) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument("EDR of an empty trajectory is undefined");
  }
  if (epsilon < 0.0) {
    return Status::InvalidArgument("EDR epsilon must be non-negative");
  }
  const Index la = a.size();
  const Index lb = b.size();
  std::vector<Index> prev(static_cast<std::size_t>(lb) + 1);
  std::vector<Index> curr(static_cast<std::size_t>(lb) + 1);
  for (Index q = 0; q <= lb; ++q) prev[q] = q;  // delete all of b's prefix
  for (Index p = 1; p <= la; ++p) {
    curr[0] = p;  // delete all of a's prefix
    for (Index q = 1; q <= lb; ++q) {
      const Index subst_cost =
          metric.Distance(a[p - 1], b[q - 1]) <= epsilon ? 0 : 1;
      curr[q] = std::min({static_cast<Index>(prev[q - 1] + subst_cost),
                          static_cast<Index>(prev[q] + 1),
                          static_cast<Index>(curr[q - 1] + 1)});
    }
    std::swap(prev, curr);
  }
  return prev[static_cast<std::size_t>(lb)];
}

StatusOr<double> EdrNormalized(const Trajectory& a, const Trajectory& b,
                               const GroundMetric& metric, double epsilon) {
  StatusOr<Index> d = EdrDistance(a, b, metric, epsilon);
  if (!d.ok()) return d.status();
  return static_cast<double>(d.value()) /
         static_cast<double>(std::max(a.size(), b.size()));
}

}  // namespace frechet_motif
