#ifndef FRECHET_MOTIF_SIMILARITY_EUCLIDEAN_H_
#define FRECHET_MOTIF_SIMILARITY_EUCLIDEAN_H_

#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Lock-step Euclidean distance between two equal-length trajectories
/// (Table 1's "ED"): the i-th point of `a` is paired with the i-th point of
/// `b`. O(ℓ) time.
///
/// The paper uses ED as the fast-but-naive baseline in Figure 2; it measures
/// spatial proximity only and has no tolerance for local time shifting.
///
/// Returns InvalidArgument when lengths differ or either input is empty.

/// Sum of the paired ground distances.
StatusOr<double> EuclideanSumDistance(const Trajectory& a, const Trajectory& b,
                                      const GroundMetric& metric);

/// Mean of the paired ground distances — the per-point form reported in
/// meters by Figure 2.
StatusOr<double> EuclideanMeanDistance(const Trajectory& a,
                                       const Trajectory& b,
                                       const GroundMetric& metric);

/// Maximum paired ground distance (the L∞ lock-step variant; an upper bound
/// on DFD for equal-length inputs, which the tests exploit).
StatusOr<double> EuclideanMaxDistance(const Trajectory& a, const Trajectory& b,
                                      const GroundMetric& metric);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SIMILARITY_EUCLIDEAN_H_
