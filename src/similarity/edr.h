#ifndef FRECHET_MOTIF_SIMILARITY_EDR_H_
#define FRECHET_MOTIF_SIMILARITY_EDR_H_

#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Edit Distance on Real sequence (Table 1's "EDR"; Chen, Özsu & Oria,
/// SIGMOD'05).
///
/// Edit distance where substituting a pair of points costs 0 when their
/// ground distance is <= `epsilon` and 1 otherwise, and insert/delete cost 1.
/// O(ℓa·ℓb) time, O(min) space. Robust to local time shifting; sensitive to
/// sampling rate (each unmatched sample pays a full unit).
///
/// Returns InvalidArgument when either input is empty or epsilon < 0.
StatusOr<Index> EdrDistance(const Trajectory& a, const Trajectory& b,
                            const GroundMetric& metric, double epsilon);

/// EDR normalized by max(ℓa, ℓb) into [0, 1].
StatusOr<double> EdrNormalized(const Trajectory& a, const Trajectory& b,
                               const GroundMetric& metric, double epsilon);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SIMILARITY_EDR_H_
