#include "similarity/dtw.h"

#include <algorithm>
#include <vector>

namespace frechet_motif {

StatusOr<double> DtwDistance(const Trajectory& a, const Trajectory& b,
                             const GroundMetric& metric) {
  if (a.empty() || b.empty()) {
    return Status::InvalidArgument(
        "DTW distance of an empty trajectory is undefined");
  }
  const Index la = a.size();
  const Index lb = b.size();
  std::vector<double> row(static_cast<std::size_t>(lb));
  row[0] = metric.Distance(a[0], b[0]);
  for (Index q = 1; q < lb; ++q) {
    row[q] = row[q - 1] + metric.Distance(a[0], b[q]);
  }
  for (Index p = 1; p < la; ++p) {
    double diag = row[0];
    row[0] = row[0] + metric.Distance(a[p], b[0]);
    for (Index q = 1; q < lb; ++q) {
      const double up = row[q];
      const double left = row[q - 1];
      row[q] = metric.Distance(a[p], b[q]) + std::min({up, left, diag});
      diag = up;
    }
  }
  return row[static_cast<std::size_t>(lb) - 1];
}

}  // namespace frechet_motif
