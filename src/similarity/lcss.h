#ifndef FRECHET_MOTIF_SIMILARITY_LCSS_H_
#define FRECHET_MOTIF_SIMILARITY_LCSS_H_

#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Longest Common Subsequence similarity for trajectories (Table 1's "LCSS";
/// Vlachos et al., ICDE'02).
///
/// Two points match when their ground distance is <= `epsilon`. Returns the
/// length of the longest common subsequence under that matching predicate.
/// O(ℓa·ℓb) time, O(min) space. Robust to local time shifting but, like all
/// count-based measures, sensitive to sampling rate.
///
/// Returns InvalidArgument when either input is empty or epsilon < 0.
StatusOr<Index> LcssLength(const Trajectory& a, const Trajectory& b,
                           const GroundMetric& metric, double epsilon);

/// Normalized LCSS distance in [0, 1]:
///   1 - LcssLength(a, b) / min(ℓa, ℓb).
/// 0 means one trajectory is (within epsilon) a subsequence of the other.
StatusOr<double> LcssDistance(const Trajectory& a, const Trajectory& b,
                              const GroundMetric& metric, double epsilon);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SIMILARITY_LCSS_H_
