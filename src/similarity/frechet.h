#ifndef FRECHET_MOTIF_SIMILARITY_FRECHET_H_
#define FRECHET_MOTIF_SIMILARITY_FRECHET_H_

/// Discrete Fréchet distance (DFD) kernels — the computational heart of
/// the library. The paper's d_F (Section 2, Eiter & Mannila 1994) comes in
/// four forms: the exact whole-trajectory distance, the subtrajectory-range
/// DP with a threshold early-exit contract (what every motif algorithm
/// calls), the boolean decision kernel the join/clustering use, and the
/// coupling backtrack for visualization. All kernels accept an optional
/// FrechetScratch so steady-state evaluations allocate nothing; see
/// docs/PERFORMANCE.md for the monomorphization and early-exit design.

#include <limits>
#include <vector>

#include "core/distance_matrix.h"
#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Reusable DP buffers for the Fréchet kernels. Every kernel resizes the
/// buffers it needs on demand and never shrinks them, so a scratch object
/// held across calls (one per thread) makes all DP evaluations
/// allocation-free after warm-up. Default-constructed scratch is valid.
struct FrechetScratch {
  /// Rolling DP row of the exact kernels.
  std::vector<double> row;

  /// Second rolling row for the subset-search DP (EvaluateSubset).
  std::vector<double> prev;

  /// Reachability row of the decision kernel (DiscreteFrechetAtMost).
  std::vector<char> reach;
};

/// Sentinel "no threshold": with this value the kernels never early-exit
/// and always return the exact DFD.
inline constexpr double kNoFrechetThreshold =
    std::numeric_limits<double>::infinity();

/// Discrete Fréchet distance (DFD) between two whole trajectories under the
/// given ground metric — the paper's d_F, also known as the coupling or
/// "dog-man" distance (Eiter & Mannila 1994).
///
/// Runs the standard O(ℓa·ℓb)-time dynamic program with O(min(ℓa,ℓb)) space.
/// Returns InvalidArgument when either trajectory is empty.
/// `scratch` (optional) makes the call allocation-free.
StatusOr<double> DiscreteFrechet(const Trajectory& a, const Trajectory& b,
                                 const GroundMetric& metric,
                                 FrechetScratch* scratch = nullptr);

/// DFD of the candidate subtrajectory pair (rows i..ie, columns j..je) over
/// a ground-distance provider. Indices must satisfy
/// 0 <= i <= ie < dist.rows() and 0 <= j <= je < dist.cols(); violations
/// return InvalidArgument.
///
/// This is the exactness oracle: every motif algorithm's answer is verified
/// against it in the tests.
///
/// Threshold contract (early exit): when the returned value is <=
/// `threshold` it is the exact DFD. When it exceeds `threshold` it is only
/// guaranteed to be a *lower bound* on the DFD that itself exceeds the
/// threshold — the DP abandons as soon as an entire frontier row proves the
/// final value above the threshold (every monotone path crosses each row,
/// so the frontier minimum lower-bounds the result). Callers that prune on
/// "DFD > threshold" therefore lose nothing. Pass kNoFrechetThreshold
/// (default) for the always-exact behavior.
///
/// When `dist` is a DistanceMatrix the call dispatches to the
/// monomorphized overload below; otherwise it runs the generic
/// virtual-dispatch kernel.
StatusOr<double> DiscreteFrechetOnRange(
    const DistanceProvider& dist, Index i, Index ie, Index j, Index je,
    double threshold = kNoFrechetThreshold, FrechetScratch* scratch = nullptr);

/// Monomorphized fast path over the materialized matrix: the inner loop
/// reads ground distances with row-major pointer arithmetic (no virtual
/// dispatch), which is what makes BruteDP/BTM/GTM hot loops fast. Same
/// contract as the provider overload; results are bit-identical.
StatusOr<double> DiscreteFrechetOnRange(
    const DistanceMatrix& dist, Index i, Index ie, Index j, Index je,
    double threshold = kNoFrechetThreshold, FrechetScratch* scratch = nullptr);

/// Reference generic kernel: always pays one virtual DistanceProvider call
/// per DP cell, even for a DistanceMatrix. Exists so benchmarks and parity
/// tests can compare the monomorphized path against the PR-1 baseline.
StatusOr<double> DiscreteFrechetOnRangeGeneric(
    const DistanceProvider& dist, Index i, Index ie, Index j, Index je,
    double threshold = kNoFrechetThreshold, FrechetScratch* scratch = nullptr);

/// Computes the full dF matrix for the pair (a, b): entry (p, q) holds the
/// DFD between prefixes a[0..p] and b[0..q] (the path-in-matrix view of the
/// paper's Observation 1). Row-major, size ℓa x ℓb. Intended for tests,
/// visualization and teaching; costs O(ℓa·ℓb) memory.
StatusOr<std::vector<double>> DiscreteFrechetMatrix(const Trajectory& a,
                                                    const Trajectory& b,
                                                    const GroundMetric& metric);

/// Decision version: is DFD(a, b) <= `threshold`?
///
/// Runs the same dynamic program but treats every cell whose ground
/// distance exceeds the threshold as unreachable and abandons as soon as a
/// whole frontier row is unreachable — typically far faster than the exact
/// computation for negative answers. This is the kernel a DFD similarity
/// join needs (the paper's Section 7 outlook). O(ℓa·ℓb) worst case,
/// O(min) space. `scratch` (optional) makes the call allocation-free.
StatusOr<bool> DiscreteFrechetAtMost(const Trajectory& a, const Trajectory& b,
                                     const GroundMetric& metric,
                                     double threshold,
                                     FrechetScratch* scratch = nullptr);

/// One aligned step of a coupling: point ap of the first trajectory is
/// matched with point bq of the second.
struct CouplingStep {
  Index ap = 0;
  Index bq = 0;

  friend bool operator==(const CouplingStep& x, const CouplingStep& y) {
    return x.ap == y.ap && x.bq == y.bq;
  }
};

/// An optimal coupling: the monotone point alignment realizing the DFD
/// (the gray-cell path of the paper's Figure 6).
struct Coupling {
  /// The DFD value — the largest ground distance along `steps`.
  double distance = 0.0;

  /// Alignment from (0,0) to (ℓa-1, ℓb-1); each step advances ap, bq or
  /// both by one.
  std::vector<CouplingStep> steps;
};

/// Computes DFD together with an optimal coupling by backtracking through
/// the full dF matrix. O(ℓa·ℓb) time and memory. Useful for visualizing
/// *why* two subtrajectories match (e.g. rendering the leash).
StatusOr<Coupling> DiscreteFrechetCoupling(const Trajectory& a,
                                           const Trajectory& b,
                                           const GroundMetric& metric);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SIMILARITY_FRECHET_H_
