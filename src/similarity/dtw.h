#ifndef FRECHET_MOTIF_SIMILARITY_DTW_H_
#define FRECHET_MOTIF_SIMILARITY_DTW_H_

#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Dynamic Time Warping distance (Table 1's "DTW"; Yi et al., ICDE'98).
///
/// Sums ground distances along the optimal monotone alignment:
///   dtw(p, q) = d(a_p, b_q) + min(dtw(p-1,q), dtw(p,q-1), dtw(p-1,q-1)).
///
/// DTW tolerates local time shifting but — because every point must be
/// matched and all matched distances are summed — it is sensitive to
/// non-uniform sampling rates, which is the failure mode Figure 3 of the
/// paper demonstrates against DFD. O(ℓa·ℓb) time, O(min) space.
///
/// Returns InvalidArgument when either input is empty.
StatusOr<double> DtwDistance(const Trajectory& a, const Trajectory& b,
                             const GroundMetric& metric);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SIMILARITY_DTW_H_
