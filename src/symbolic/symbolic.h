#ifndef FRECHET_MOTIF_SYMBOLIC_SYMBOLIC_H_
#define FRECHET_MOTIF_SYMBOLIC_SYMBOLIC_H_

/// The symbolic (movement-pattern-string) motif baseline the paper
/// dismisses in Section 2: trajectories become strings over a five-letter
/// movement alphabet and motifs become repeated substrings. Fast, but
/// blind to spatial distance — kept as the comparison subject for
/// Figure 4 (tests and bench_fig4_symbolic demonstrate the failure mode).

#include <string>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// The symbolic motif-discovery baseline the paper dismisses in Section 2
/// (Figure 4): trajectories are partitioned into fragments, each fragment
/// is mapped to a pre-defined movement-pattern symbol, and motifs are found
/// by substring matching on the resulting string. The approach is fast but
/// cannot capture spatial distance — two trajectories in different cities
/// can map to the same string — which this module exists to demonstrate
/// (tests and bench_fig4_symbolic).
///
/// Symbol alphabet, following Figure 4(a):
///   'V' vertical long straight    (heading within tolerance of north/south)
///   'H' horizontal long straight  (heading within tolerance of east/west)
///   'L' left turn                 (heading change <= -turn threshold)
///   'R' right turn                (heading change >= +turn threshold)
///   'D' diagonal straight         (anything else that moves)
struct SymbolizerOptions {
  /// Points per fragment (>= 2). Each fragment contributes one symbol.
  Index fragment_length = 8;

  /// Heading change (radians) between consecutive fragments above which
  /// the fragment is classified as a turn.
  double turn_threshold_rad = 0.6;

  /// Tolerance (radians) around the cardinal axes for V/H classification.
  double axis_tolerance_rad = 0.35;
};

/// Converts a trajectory to its movement-pattern string. Returns
/// InvalidArgument when the trajectory has fewer than 2*fragment_length
/// points or the options are degenerate.
StatusOr<std::string> SymbolizeTrajectory(const Trajectory& t,
                                          const SymbolizerOptions& options);

/// A symbolic motif: the longest pair of identical non-overlapping
/// substrings of the symbol string, reported as fragment index ranges.
struct SymbolicMotif {
  /// Matched substring (movement-pattern word, e.g. "RVLH").
  std::string word;

  /// Fragment index of each occurrence (occurrence length = word.size()).
  Index first_fragment = 0;
  Index second_fragment = 0;

  /// Point ranges covered by the two occurrences.
  SubtrajectoryRef first_points;
  SubtrajectoryRef second_points;
};

/// Finds the longest repeated non-overlapping substring of `symbols` by
/// binary search over the match length with rolling-hash candidate
/// generation and exact verification — O(L log L) expected. Requires at
/// least `min_length` symbols per occurrence; returns NotFound when no
/// repeat of that length exists.
StatusOr<SymbolicMotif> SymbolicMotifDiscovery(const Trajectory& t,
                                               const SymbolizerOptions& options,
                                               Index min_length);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SYMBOLIC_SYMBOLIC_H_
