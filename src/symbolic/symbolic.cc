#include "symbolic/symbolic.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "geo/great_circle.h"

namespace frechet_motif {

namespace {

/// Mean heading (radians, east = 0) of the fragment [first, last].
double FragmentHeading(const Trajectory& t, Index first, Index last) {
  const Point a = MetersFromOrigin(t[0], t[first]);
  const Point b = MetersFromOrigin(t[0], t[last]);
  return std::atan2(b.y - a.y, b.x - a.x);
}

/// Wraps an angle difference into (-pi, pi].
double WrapAngle(double rad) {
  while (rad > M_PI) rad -= 2.0 * M_PI;
  while (rad <= -M_PI) rad += 2.0 * M_PI;
  return rad;
}

char ClassifyFragment(double heading, double heading_change,
                      const SymbolizerOptions& options) {
  if (heading_change >= options.turn_threshold_rad) return 'L';
  if (heading_change <= -options.turn_threshold_rad) return 'R';
  const double to_axis = std::abs(WrapAngle(heading));
  // Distance of the heading to the east-west axis (0 or pi) and to the
  // north-south axis (+-pi/2).
  const double horizontal = std::min(to_axis, M_PI - to_axis);
  const double vertical = std::abs(to_axis - M_PI / 2.0);
  if (horizontal <= options.axis_tolerance_rad) return 'H';
  if (vertical <= options.axis_tolerance_rad) return 'V';
  return 'D';
}

/// All start positions of repeated non-overlapping substrings of length
/// `len`, verified exactly; returns one witness pair or false.
bool FindRepeat(const std::string& s, Index len, Index* first,
                Index* second) {
  if (len <= 0 || static_cast<std::size_t>(2 * len) > s.size()) return false;
  // Polynomial rolling hash over a 64-bit ring; collisions are resolved by
  // exact comparison.
  constexpr std::uint64_t kBase = 1000003ULL;
  std::uint64_t power = 1;
  for (Index k = 1; k < len; ++k) power *= kBase;
  std::unordered_map<std::uint64_t, std::vector<Index>> buckets;
  std::uint64_t hash = 0;
  for (Index k = 0; k < len; ++k) {
    hash = hash * kBase + static_cast<unsigned char>(s[k]);
  }
  const Index last_start = static_cast<Index>(s.size()) - len;
  for (Index start = 0; start <= last_start; ++start) {
    if (start != 0) {
      hash = (hash - static_cast<unsigned char>(s[start - 1]) * power) *
                 kBase +
             static_cast<unsigned char>(s[start + len - 1]);
    }
    for (const Index earlier : buckets[hash]) {
      // Non-overlapping occurrences and exact match.
      if (earlier + len <= start &&
          s.compare(earlier, len, s, start, len) == 0) {
        *first = earlier;
        *second = start;
        return true;
      }
    }
    buckets[hash].push_back(start);
  }
  return false;
}

}  // namespace

StatusOr<std::string> SymbolizeTrajectory(const Trajectory& t,
                                          const SymbolizerOptions& options) {
  if (options.fragment_length < 2) {
    return Status::InvalidArgument("fragment_length must be >= 2");
  }
  const Index num_fragments = t.size() / options.fragment_length;
  if (num_fragments < 2) {
    return Status::InvalidArgument(
        "trajectory too short to symbolize: need at least two fragments");
  }
  std::string symbols;
  symbols.reserve(num_fragments);
  double previous_heading = 0.0;
  for (Index f = 0; f < num_fragments; ++f) {
    const Index first = f * options.fragment_length;
    const Index last = first + options.fragment_length - 1;
    const double heading = FragmentHeading(t, first, last);
    const double change =
        f == 0 ? 0.0 : WrapAngle(heading - previous_heading);
    symbols.push_back(ClassifyFragment(heading, change, options));
    previous_heading = heading;
  }
  return symbols;
}

StatusOr<SymbolicMotif> SymbolicMotifDiscovery(const Trajectory& t,
                                               const SymbolizerOptions& options,
                                               Index min_length) {
  if (min_length < 1) {
    return Status::InvalidArgument("min_length must be >= 1");
  }
  StatusOr<std::string> symbols = SymbolizeTrajectory(t, options);
  if (!symbols.ok()) return symbols.status();
  const std::string& s = symbols.value();

  // Binary search the longest repeat length; repeat existence is monotone
  // decreasing in length.
  Index lo = min_length;
  Index hi = static_cast<Index>(s.size()) / 2;
  Index best_len = 0;
  Index best_first = 0;
  Index best_second = 0;
  while (lo <= hi) {
    const Index mid = lo + (hi - lo) / 2;
    Index first = 0;
    Index second = 0;
    if (FindRepeat(s, mid, &first, &second)) {
      best_len = mid;
      best_first = first;
      best_second = second;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  if (best_len == 0) {
    return Status::NotFound("no repeated movement-pattern word of length " +
                            std::to_string(min_length));
  }

  SymbolicMotif out;
  out.word = s.substr(best_first, best_len);
  out.first_fragment = best_first;
  out.second_fragment = best_second;
  const Index fl = options.fragment_length;
  out.first_points = {best_first * fl, (best_first + best_len) * fl - 1};
  out.second_points = {best_second * fl, (best_second + best_len) * fl - 1};
  return out;
}

}  // namespace frechet_motif
