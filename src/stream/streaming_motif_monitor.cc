#include "stream/streaming_motif_monitor.h"

#include <utility>

namespace frechet_motif {

StreamingMotifMonitor::StreamingMotifMonitor(WindowState state)
    : state_(std::move(state)) {}

StatusOr<StreamingMotifMonitor> StreamingMotifMonitor::Create(
    const StreamOptions& options, const GroundMetric& metric) {
  StatusOr<WindowState> state =
      WindowState::Create(options, metric, /*cross=*/false);
  if (!state.ok()) return state.status();
  return StreamingMotifMonitor(std::move(state).value());
}

StatusOr<StreamingMotifMonitor> StreamingMotifMonitor::CreateCross(
    const StreamOptions& options, const GroundMetric& metric) {
  StatusOr<WindowState> state =
      WindowState::Create(options, metric, /*cross=*/true);
  if (!state.ok()) return state.status();
  return StreamingMotifMonitor(std::move(state).value());
}

StatusOr<std::optional<StreamUpdate>> StreamingMotifMonitor::MaybeSearch() {
  if (!state_.SearchDue()) return std::optional<StreamUpdate>();
  // The pool persists across slides (workers parked between searches) —
  // a per-slide spawn/join would recur for the monitor's lifetime.
  const int threads = ResolveThreadCount(state_.options().threads);
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  StatusOr<StreamUpdate> update =
      state_.RunSearch(threads > 1 ? pool_.get() : nullptr);
  if (!update.ok()) return update.status();
  return std::optional<StreamUpdate>(std::move(update).value());
}

StatusOr<std::optional<StreamUpdate>> StreamingMotifMonitor::Push(
    const Point& p) {
  FM_RETURN_IF_ERROR(state_.Append(0, p, nullptr));
  return MaybeSearch();
}

StatusOr<std::optional<StreamUpdate>> StreamingMotifMonitor::Push(
    const Point& p, double timestamp) {
  FM_RETURN_IF_ERROR(state_.Append(0, p, &timestamp));
  return MaybeSearch();
}

StatusOr<std::optional<StreamUpdate>> StreamingMotifMonitor::PushSecond(
    const Point& p) {
  if (!state_.cross()) {
    return Status::FailedPrecondition(
        "PushSecond requires a CreateCross monitor");
  }
  FM_RETURN_IF_ERROR(state_.Append(1, p, nullptr));
  return MaybeSearch();
}

StatusOr<std::optional<StreamUpdate>> StreamingMotifMonitor::PushSecond(
    const Point& p, double timestamp) {
  if (!state_.cross()) {
    return Status::FailedPrecondition(
        "PushSecond requires a CreateCross monitor");
  }
  FM_RETURN_IF_ERROR(state_.Append(1, p, &timestamp));
  return MaybeSearch();
}

StatusOr<std::vector<StreamUpdate>> StreamingMotifMonitor::PushBatch(
    const std::vector<Point>& points) {
  std::vector<StreamUpdate> updates;
  for (const Point& p : points) {
    StatusOr<std::optional<StreamUpdate>> u = Push(p);
    if (!u.ok()) return u.status();
    if (u.value().has_value()) updates.push_back(std::move(*u.value()));
  }
  return updates;
}

}  // namespace frechet_motif
