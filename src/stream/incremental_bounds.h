#ifndef FRECHET_MOTIF_STREAM_INCREMENTAL_BOUNDS_H_
#define FRECHET_MOTIF_STREAM_INCREMENTAL_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "core/distance_matrix.h"
#include "core/trajectory.h"
#include "motif/relaxed_bounds.h"
#include "util/binary_codec.h"
#include "util/status.h"

namespace frechet_motif {

/// Incremental maintenance of the RelaxedBounds component arrays over a
/// sliding window, backed by a RingDistanceMatrix. Both problem variants
/// are supported: the single-trajectory square window (Reset/Slide) and
/// the cross-trajectory window pair (ResetCross/SlideCross), which slides
/// the two axes independently.
///
/// The five component arrays (see motif/relaxed_bounds.h) are prefix or
/// suffix minima of matrix rows/columns. When the window slides by `s`,
/// each surviving entry's index range shifts with the window:
///
///  * The suffix-type minima (`Cmin[i]`, `CminStart[i]`: column ranges
///    `[i+1, W-1]` / `[i+3, W-1]` of row i+1) lose nothing to eviction —
///    the old value at index i+s covers exactly the surviving old
///    columns — so the new value is `min(old value, min over the s new
///    columns)`. O(1) per entry plus the fresh-cell scan.
///  * The prefix-containing minima (`Rmin[j]` over rows `[0, j-1]`, and
///    the full-row/column minima) can lose their minimizer to eviction.
///    Each entry tracks the index of one achiever ("argmin"); when the
///    achiever survives the shift the value carries over verbatim, and
///    only when it was evicted is the (rare) O(W) rescan paid.
///
/// In cross mode the restricted arrays coincide with the unrestricted
/// ones (RelaxedBounds::Build uses the full index ranges there), so only
/// `RminFull` (per column, evicted from the row side) and `CminFull`
/// (per row, evicted from the column side) are maintained — both of the
/// prefix-containing kind, with the achiever-carry rule above applied
/// against the *opposing* axis's shift.
///
/// Values are *bit-identical* to a fresh RelaxedBounds::Build over the
/// same window: a minimum of a set of doubles does not depend on the
/// reduction order, and every carried value is justified by a surviving
/// achiever. The band arrays are rebuilt from the maintained components
/// by Snapshot() (via RelaxedBounds::FromComponents), exactly as Build
/// derives them.
///
/// Cost per slide: O(s·W) reads for the fresh rows/columns, O(W) for the
/// carries, plus O(W) per evicted-achiever rescan (expected O(s·log W)
/// rescans per slide on non-adversarial data).
class IncrementalRelaxedBounds {
 public:
  IncrementalRelaxedBounds() = default;

  /// Cold build over the full single-trajectory window
  /// (dg.rows() == dg.cols()).
  void Reset(const RingDistanceMatrix& dg, Index min_length_xi);

  /// Advances the single-trajectory window by `shift` evicted/appended
  /// points. The ring must already hold the post-slide window, at the
  /// same size as the last Reset/Slide. A shift of >= the window size
  /// (or a mode/size change) degenerates to Reset.
  void Slide(const RingDistanceMatrix& dg, Index min_length_xi, Index shift);

  /// Cold build over a cross-trajectory window pair (rows = first
  /// trajectory's window, cols = second's; need not be equal).
  void ResetCross(const RingDistanceMatrix& dg);

  /// Advances the cross window pair: `shift_row` points evicted/appended
  /// on the first trajectory, `shift_col` on the second — the two sides
  /// slide independently. Degenerates to ResetCross when either shift
  /// reaches its axis length or the ring dimensions changed.
  void SlideCross(const RingDistanceMatrix& dg, Index shift_row,
                  Index shift_col);

  /// Assembles the RelaxedBounds (including the derived band arrays) the
  /// search consumes. O(W) copies.
  RelaxedBounds Snapshot(Index min_length_xi) const;

  /// Number of achiever-evicted rescans paid so far (engine statistics).
  std::int64_t rescans() const { return rescans_; }

  /// Serializes the complete maintenance state — the mode and window
  /// dimensions, the component arrays, the achiever indices, and the
  /// rescan counter — so a restored instance continues bit-identically:
  /// values carry over verbatim, and future carry-vs-rescan decisions
  /// (which feed the `bound_rescans` engine counter) depend on the
  /// achievers, which are restored exactly rather than recomputed.
  void SaveTo(BinaryWriter* writer) const;

  /// Restores the state written by SaveTo, replacing this instance's.
  Status LoadFrom(BinaryReader* reader);

 private:
  bool cross_ = false;
  Index rows_ = 0;
  Index cols_ = 0;

  std::vector<double> rmin_;
  std::vector<double> rmin_full_;
  std::vector<double> cmin_;
  std::vector<double> cmin_start_;
  std::vector<double> cmin_full_;

  /// Logical row index achieving rmin_[j] / rmin_full_[j] (-1 when the
  /// range is empty), and column index achieving cmin_full_[i]. In cross
  /// mode only the full-range achievers are maintained.
  std::vector<Index> rmin_arg_;
  std::vector<Index> rmin_full_arg_;
  std::vector<Index> cmin_full_arg_;

  std::int64_t rescans_ = 0;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_INCREMENTAL_BOUNDS_H_
