#include "stream/window_state.h"

#include <algorithm>
#include <utility>

#include "motif/bounds.h"
#include "motif/subset_search.h"
#include "util/timer.h"

namespace frechet_motif {

WindowState::WindowState(const StreamOptions& options,
                         const GroundMetric& metric, bool cross)
    : options_(options),
      metric_(&metric),
      cross_(cross),
      haversine_(dynamic_cast<const HaversineMetric*>(&metric) != nullptr),
      ring_(options.window_length, options.window_length) {}

StatusOr<WindowState> WindowState::Create(const StreamOptions& options,
                                          const GroundMetric& metric,
                                          bool cross) {
  if (options.slide_step < 1) {
    return Status::InvalidArgument("StreamOptions::slide_step must be >= 1");
  }
  if (options.approximation_epsilon < 0.0) {
    return Status::InvalidArgument(
        "StreamOptions::approximation_epsilon must be >= 0");
  }
  MotifOptions motif;
  motif.min_length_xi = options.min_length_xi;
  motif.variant = cross ? MotifVariant::kCrossTrajectory
                        : MotifVariant::kSingleTrajectory;
  FM_RETURN_IF_ERROR(
      ValidateMotifInput(motif, options.window_length, options.window_length));
  return WindowState(options, metric, cross);
}

MotifOptions WindowState::SearchMotifOptions() const {
  MotifOptions motif;
  motif.min_length_xi = options_.min_length_xi;
  motif.variant = cross_ ? MotifVariant::kCrossTrajectory
                         : MotifVariant::kSingleTrajectory;
  motif.threads = options_.threads;
  return motif;
}

Status WindowState::Append(int side, const Point& p, const double* timestamp) {
  std::deque<Point>& window = side == 0 ? window_ : second_window_;
  std::deque<SphereVec>& vecs = side == 0 ? vecs_ : second_vecs_;
  std::deque<double>& times = side == 0 ? times_ : second_times_;
  bool& timestamped = side == 0 ? timestamped_ : second_timestamped_;

  if (window.empty()) {
    timestamped = timestamp != nullptr;
  } else if (timestamped != (timestamp != nullptr)) {
    return Status::InvalidArgument(
        "cannot mix timestamped and bare pushes on one stream");
  }

  const bool full =
      static_cast<Index>(window.size()) == options_.window_length;
  // The ring evicts the matching row/column itself inside
  // AppendRow/AppendCol/AppendPoint; only the point-side caches are
  // advanced here.
  if (full) {
    window.pop_front();
    if (haversine_) vecs.pop_front();
    if (timestamped) times.pop_front();
  }

  SphereVec pv;
  if (haversine_) pv = ToSphereVec(p);

  // Fresh ground distances, computed exactly as DistanceMatrix::Build
  // computes them (cached sphere vectors for haversine, metric calls
  // otherwise) so ring cells are bit-identical to a fresh matrix. The
  // haversine path batches each append: the opposite side's vectors are
  // staged into a contiguous scratch buffer, the fresh cells computed with
  // one SphereVecDistanceBatch call, and the ring bulk-copies the buffer —
  // no per-cell std::function dispatch. SphereVecDistanceMeters is exactly
  // symmetric (the chord terms are squared), so one buffer serves both the
  // new row and the new column of the self-matrix.
  if (!cross_) {
    if (haversine_) {
      batch_vecs_.assign(vecs_.begin(), vecs_.end());
      batch_dists_.resize(batch_vecs_.size());
      SphereVecDistanceBatch(pv, batch_vecs_.data(), batch_vecs_.size(),
                             batch_dists_.data());
      ring_.AppendPointFromBuffers(batch_dists_.data(), batch_dists_.data(),
                                   SphereVecDistanceMeters(pv, pv));
    } else {
      ring_.AppendPoint(
          [&](Index k) { return metric_->Distance(p, window_[k]); },
          [&](Index k) { return metric_->Distance(window_[k], p); },
          metric_->Distance(p, p));
    }
    engine_stats_.ground_distances_computed +=
        2 * static_cast<std::int64_t>(window_.size()) + 1;
  } else if (side == 0) {
    if (haversine_) {
      batch_vecs_.assign(second_vecs_.begin(), second_vecs_.end());
      batch_dists_.resize(batch_vecs_.size());
      SphereVecDistanceBatch(pv, batch_vecs_.data(), batch_vecs_.size(),
                             batch_dists_.data());
      ring_.AppendRowFromBuffer(batch_dists_.data());
    } else {
      ring_.AppendRow(
          [&](Index j) { return metric_->Distance(p, second_window_[j]); });
    }
    engine_stats_.ground_distances_computed +=
        static_cast<std::int64_t>(second_window_.size());
  } else {
    if (haversine_) {
      batch_vecs_.assign(vecs_.begin(), vecs_.end());
      batch_dists_.resize(batch_vecs_.size());
      SphereVecDistanceBatch(pv, batch_vecs_.data(), batch_vecs_.size(),
                             batch_dists_.data());
      ring_.AppendColFromBuffer(batch_dists_.data());
    } else {
      ring_.AppendCol(
          [&](Index i) { return metric_->Distance(window_[i], p); });
    }
    engine_stats_.ground_distances_computed +=
        static_cast<std::int64_t>(window_.size());
  }

  window.push_back(p);
  if (haversine_) vecs.push_back(pv);
  if (timestamped) times.push_back(*timestamp);

  if (side == 0) {
    ++pushed_first_;
    ++appended_since_search_first_;
  } else {
    ++pushed_second_;
    ++appended_since_search_second_;
  }
  ++engine_stats_.points_ingested;
  return Status::Ok();
}

bool WindowState::SearchDue() const {
  const bool first_full =
      static_cast<Index>(window_.size()) == options_.window_length;
  if (!cross_) {
    if (!first_full) return false;
    return !searched_once_ ||
           appended_since_search_first_ >= options_.slide_step;
  }
  const bool second_full =
      static_cast<Index>(second_window_.size()) == options_.window_length;
  if (!first_full || !second_full) return false;
  return !searched_once_ ||
         appended_since_search_first_ + appended_since_search_second_ >=
             options_.slide_step;
}

StatusOr<StreamUpdate> WindowState::RunSearch(ThreadPool* pool) {
  const Index n = static_cast<Index>(window_.size());
  const Index m = cross_ ? static_cast<Index>(second_window_.size()) : n;
  const MotifOptions motif = SearchMotifOptions();
  const Index xi = motif.min_length_xi;

  StreamUpdate update;
  update.window_start = pushed_first_ - n;
  update.window_start_second = cross_ ? pushed_second_ - m : 0;
  update.window_points = n;
  update.approximation_epsilon = options_.approximation_epsilon;

  Timer timer;

  // Bounds: maintained incrementally in both modes — the single window
  // slides one axis, the cross window pair slides its two axes
  // independently (IncrementalRelaxedBounds carries each minimum across
  // the slide unless its achiever was evicted). No ground distance is
  // recomputed and no per-slide Build is paid; the snapshot is
  // bit-identical to a fresh Build over the same ring.
  RelaxedBounds rb;
  if (!cross_) {
    if (!searched_once_) {
      bounds_.Reset(ring_, xi);
    } else {
      bounds_.Slide(ring_, xi, appended_since_search_first_);
    }
  } else {
    if (!searched_once_) {
      bounds_.ResetCross(ring_);
    } else {
      bounds_.SlideCross(ring_, appended_since_search_first_,
                         appended_since_search_second_);
    }
  }
  rb = bounds_.Snapshot(xi);
  engine_stats_.bound_rescans = bounds_.rescans();

  // Threshold carry: sound iff the previous best pair is still inside the
  // window after the slide (its distance is then achievable, so pruning
  // against it can never discard the optimum — see the proof in
  // streaming_motif_monitor.h).
  const Index shift_row = appended_since_search_first_;
  const Index shift_col = cross_ ? appended_since_search_second_ : shift_row;
  if (searched_once_ && have_previous_ && previous_best_.i >= shift_row &&
      (cross_ ? previous_best_.j >= shift_col : true)) {
    update.seeded = true;
    update.seed_threshold = previous_distance_;
  }

  // The relaxed bounding search of BtmMotif (Algorithm 2 with the
  // Section 4.3 bounds), mirrored verbatim so the result is bit-identical
  // to the from-scratch baseline — the only difference is the seeded
  // initial threshold.
  std::vector<SubsetEntry> entries;
  entries.reserve(static_cast<std::size_t>(CountValidSubsets(motif, n, m)));
  ForEachValidSubset(motif, n, m, [&](Index i, Index j) {
    entries.push_back(SubsetEntry{0.0, i, j});
  });
  FillSubsetBounds(&entries, pool, [&](Index i, Index j) {
    const double cell = LbCell(ring_, i, j);
    const double cross_lb = rb.StartCross(i, j);
    const double band = std::max(rb.BandRow(j), rb.BandCol(i));
    return std::max({cell, cross_lb, band});
  });
  update.stats.total_subsets = static_cast<std::int64_t>(entries.size());

  // Dirty-region restriction (seeded slides only). Clean candidates —
  // those whose points all survive from the previous window — were valid
  // candidates there, so their DFD is >= the previous optimum and they
  // cannot beat the carried threshold. Only *dirty* candidates can, and a
  // dirty candidate must extend to the dirty frontier: in the single-
  // trajectory problem its second subtrajectory ends at je >= D (the
  // first freshly appended index), so its coupling path crosses every
  // column y in [j+1, D] and its DFD is >= max of Rmin over [j, D-1]
  // (Lemma 2 per crossed column). That bound grows with the subset's
  // distance from the frontier, which is what makes per-slide work scale
  // with the dirty region instead of the window: subsets far from the
  // new points are dropped from the queue before any DP work. In cross
  // mode a dirty candidate reaches either frontier, so the two one-sided
  // bounds combine by min. Dropping a subset here never loses a strict
  // improvement (clean >= threshold by the argument above, dirty >
  // threshold by the bound) nor a tie that would win the canonical
  // order (the bound prunes only strictly-above-threshold subsets, so
  // every threshold-achiever survives into the queue); when nothing
  // precedes the previous pair, the slide falls back to it, shifted.
  // (1+ε) pruning: every lower-bound comparison against the threshold is
  // scaled by lb_scale. Soundness per window: an evaluated candidate's
  // distance is exact, and a pruned candidate has d > T/(1+ε) where T is
  // either an exactly-achievable in-window distance (the carry) or the
  // running best — so the reported distance is at most (1+ε) times the
  // window optimum, and the guarantee does not compound across slides.
  const double lb_scale = 1.0 + options_.approximation_epsilon;

  if (update.seeded) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const double threshold = update.seed_threshold;
    const std::size_t before = entries.size();
    if (!cross_) {
      // Single-trajectory frontier bound, per second-start j:
      //   G[j] = max over y in [j+1, D] of  min over c in [0, j-1] dG(c, y)
      // (D = first dirty column). Valid because a dirty candidate's
      // path crosses every column y in [j+1, D] on some row c <= j-1
      // (rows never exceed ie < j). The j-restricted prefix minimum is
      // what gives the bound teeth: the unrestricted column minimum is
      // dominated by tiny near-diagonal self-distances. O(W²) matrix
      // reads per seeded slide — cheap next to the DP cells it removes.
      const Index d_col = m - shift_col;
      std::vector<double> g(m, -kInf);
      std::vector<double> prefix(m, kInf);  // min over rows [0, j-1]
      for (Index y = 0; y < m; ++y) prefix[y] = ring_.Distance(0, y);
      // j >= d_col has an empty frontier range (g stays -inf), so the
      // scan — and the prefix maintenance feeding it — stops there.
      for (Index j = 1; j < d_col; ++j) {
        double running = -kInf;
        for (Index y = d_col; y > j; --y) {
          if (prefix[y] > running) running = prefix[y];
        }
        g[j] = running;
        for (Index y = 0; y <= d_col; ++y) {
          const double d = ring_.Distance(j, y);
          if (d < prefix[y]) prefix[y] = d;
        }
      }
      entries.erase(std::remove_if(entries.begin(), entries.end(),
                                   [&](const SubsetEntry& e) {
                                     return g[e.j] * lb_scale > threshold;
                                   }),
                    entries.end());
    } else {
      // Cross-trajectory: a dirty candidate reaches either frontier, so
      // the one-sided crossing bounds (suffix-max of the full-range
      // Rmin/Cmin, which have no diagonal weakness here) combine by min.
      const Index d_col = m - shift_col;
      const Index d_row = n - shift_row;
      std::vector<double> dirty_row(m, kInf);
      if (shift_col > 0) {
        double running = -kInf;
        for (Index y = d_col - 1; y >= 0; --y) {
          running = std::max(running, rb.Rmin(y));
          dirty_row[y] = running;
        }
        for (Index y = d_col; y < m; ++y) dirty_row[y] = -kInf;
      }
      std::vector<double> dirty_col(n, kInf);
      if (shift_row > 0) {
        double running = -kInf;
        for (Index x = d_row - 1; x >= 0; --x) {
          running = std::max(running, rb.Cmin(x));
          dirty_col[x] = running;
        }
        for (Index x = d_row; x < n; ++x) dirty_col[x] = -kInf;
      }
      entries.erase(
          std::remove_if(entries.begin(), entries.end(),
                         [&](const SubsetEntry& e) {
                           return std::min(dirty_col[e.i], dirty_row[e.j]) *
                                      lb_scale >
                                  threshold;
                         }),
          entries.end());
    }
    update.stats.pruned_by_band +=
        static_cast<std::int64_t>(before - entries.size());
  }

  update.stats.memory.Add(ring_.MemoryBytes());
  update.stats.memory.Add(rb.MemoryBytes());
  update.stats.memory.Add(entries.capacity() * sizeof(SubsetEntry));
  update.stats.memory.Add(2 * static_cast<std::size_t>(m) * sizeof(double));
  update.stats.precompute_seconds += timer.ElapsedSeconds();

  timer.Restart();
  SearchState state;
  state.threshold = update.seed_threshold;
  RunSubsetQueue(ring_, motif, &entries, &rb, /*use_end_cross=*/true,
                 /*sort_entries=*/true, &state, &update.stats,
                 /*caps=*/nullptr, lb_scale, pool);
  update.stats.search_seconds += timer.ElapsedSeconds();

  // Resolve the seeded search against the previous optimum under the
  // canonical (distance, candidate) order. The previous pair — shifted
  // into the new coordinates — is the order-minimum among *clean*
  // achievers (it was the whole previous window's minimum and candidate
  // order is shift-invariant); the search saw every dirty achiever. The
  // smaller of the two is therefore exactly what a from-scratch run
  // reports, ties included.
  Candidate shifted = previous_best_;
  shifted.i -= shift_row;
  shifted.ie -= shift_row;
  shifted.j -= cross_ ? shift_col : shift_row;
  shifted.je -= cross_ ? shift_col : shift_row;
  const bool improved =
      state.found &&
      (state.best_distance < previous_distance_ ||
       (state.best_distance == previous_distance_ &&
        CandidateOrderedBefore(state.best, shifted)));
  if (update.seeded && !improved) {
    update.carried = true;
    update.motif.best = shifted;
    update.motif.distance = previous_distance_;
    update.motif.found = true;
  } else {
    update.motif.best = state.best;
    update.motif.distance = state.best_distance;
    update.motif.found = state.found;
  }

  previous_best_ = update.motif.best;
  previous_distance_ = update.motif.distance;
  have_previous_ = update.motif.found;
  searched_once_ = true;
  appended_since_search_first_ = 0;
  appended_since_search_second_ = 0;

  ++engine_stats_.searches;
  if (update.seeded) ++engine_stats_.seeded_searches;
  engine_stats_.dfd_cells_computed += update.stats.dfd_cells_computed;
  return update;
}

namespace {

Trajectory AssembleWindow(const std::deque<Point>& window,
                          const std::deque<double>& times, bool timestamped) {
  std::vector<Point> points(window.begin(), window.end());
  if (!timestamped) return Trajectory(std::move(points));
  return Trajectory(std::move(points),
                    std::vector<double>(times.begin(), times.end()));
}

}  // namespace

Trajectory WindowState::WindowTrajectory() const {
  return AssembleWindow(window_, times_, timestamped_);
}

Trajectory WindowState::SecondWindowTrajectory() const {
  return AssembleWindow(second_window_, second_times_, second_timestamped_);
}

RelaxedBounds WindowState::CurrentBounds() const {
  return bounds_.Snapshot(options_.min_length_xi);
}

namespace {

void SavePointDeque(BinaryWriter* writer, const std::deque<Point>& points) {
  writer->PutU64(points.size());
  for (const Point& p : points) {
    writer->PutDouble(p.x);
    writer->PutDouble(p.y);
  }
}

Status LoadPointDeque(BinaryReader* reader, std::deque<Point>* points) {
  std::uint64_t size = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&size));
  points->clear();
  for (std::uint64_t k = 0; k < size; ++k) {
    Point p;
    FM_RETURN_IF_ERROR(reader->GetDouble(&p.x));
    FM_RETURN_IF_ERROR(reader->GetDouble(&p.y));
    points->push_back(p);
  }
  return Status::Ok();
}

void SaveTimeDeque(BinaryWriter* writer, const std::deque<double>& times) {
  writer->PutU64(times.size());
  for (const double t : times) writer->PutDouble(t);
}

Status LoadTimeDeque(BinaryReader* reader, std::deque<double>* times) {
  std::uint64_t size = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&size));
  times->clear();
  for (std::uint64_t k = 0; k < size; ++k) {
    double t = 0.0;
    FM_RETURN_IF_ERROR(reader->GetDouble(&t));
    times->push_back(t);
  }
  return Status::Ok();
}

}  // namespace

void WindowState::SaveTo(BinaryWriter* writer) const {
  // Options echo: RestoreFrom rejects a snapshot taken under a
  // different window geometry. The thread count is deliberately not
  // echoed — it is a runtime choice with bit-identical results.
  writer->PutBool(cross_);
  writer->PutI32(options_.window_length);
  writer->PutI32(options_.slide_step);
  writer->PutI32(options_.min_length_xi);
  writer->PutDouble(options_.approximation_epsilon);

  SavePointDeque(writer, window_);
  SavePointDeque(writer, second_window_);
  writer->PutBool(timestamped_);
  writer->PutBool(second_timestamped_);
  SaveTimeDeque(writer, times_);
  SaveTimeDeque(writer, second_times_);

  writer->PutI64(pushed_first_);
  writer->PutI64(pushed_second_);
  writer->PutI32(appended_since_search_first_);
  writer->PutI32(appended_since_search_second_);
  writer->PutBool(searched_once_);
  writer->PutBool(have_previous_);
  writer->PutI32(previous_best_.i);
  writer->PutI32(previous_best_.ie);
  writer->PutI32(previous_best_.j);
  writer->PutI32(previous_best_.je);
  writer->PutDouble(previous_distance_);

  writer->PutI64(engine_stats_.points_ingested);
  writer->PutI64(engine_stats_.searches);
  writer->PutI64(engine_stats_.seeded_searches);
  writer->PutI64(engine_stats_.ground_distances_computed);
  writer->PutI64(engine_stats_.dfd_cells_computed);
  writer->PutI64(engine_stats_.bound_rescans);

  // Ring matrix contents, logical row-major. The physical head
  // positions are invisible through the logical API, so only the
  // logical cells need to survive; RestoreFrom re-appends them.
  const Index rows = ring_.rows();
  const Index cols = ring_.cols();
  writer->PutI32(rows);
  writer->PutI32(cols);
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) writer->PutDouble(ring_.Distance(i, j));
  }

  bounds_.SaveTo(writer);
}

StatusOr<WindowState> WindowState::RestoreFrom(BinaryReader* reader,
                                               const StreamOptions& options,
                                               const GroundMetric& metric) {
  bool cross = false;
  Index window_length = 0;
  Index slide_step = 0;
  Index xi = 0;
  double epsilon = 0.0;
  FM_RETURN_IF_ERROR(reader->GetBool(&cross));
  FM_RETURN_IF_ERROR(reader->GetI32(&window_length));
  FM_RETURN_IF_ERROR(reader->GetI32(&slide_step));
  FM_RETURN_IF_ERROR(reader->GetI32(&xi));
  FM_RETURN_IF_ERROR(reader->GetDouble(&epsilon));
  if (window_length != options.window_length ||
      slide_step != options.slide_step || xi != options.min_length_xi ||
      epsilon != options.approximation_epsilon) {
    return Status::FailedPrecondition(
        "window snapshot was taken under different stream options "
        "(window length / slide step / xi / approximation epsilon)");
  }

  StatusOr<WindowState> created = Create(options, metric, cross);
  if (!created.ok()) return created.status();
  WindowState state = std::move(created).value();

  FM_RETURN_IF_ERROR(LoadPointDeque(reader, &state.window_));
  FM_RETURN_IF_ERROR(LoadPointDeque(reader, &state.second_window_));
  FM_RETURN_IF_ERROR(reader->GetBool(&state.timestamped_));
  FM_RETURN_IF_ERROR(reader->GetBool(&state.second_timestamped_));
  FM_RETURN_IF_ERROR(LoadTimeDeque(reader, &state.times_));
  FM_RETURN_IF_ERROR(LoadTimeDeque(reader, &state.second_times_));
  if (static_cast<Index>(state.window_.size()) > options.window_length ||
      static_cast<Index>(state.second_window_.size()) >
          options.window_length) {
    return Status::DataLoss("window snapshot exceeds the window capacity");
  }
  if ((state.timestamped_ && state.times_.size() != state.window_.size()) ||
      (!state.timestamped_ && !state.times_.empty()) ||
      (state.second_timestamped_ &&
       state.second_times_.size() != state.second_window_.size()) ||
      (!state.second_timestamped_ && !state.second_times_.empty())) {
    return Status::DataLoss(
        "window snapshot timestamps do not match its points");
  }

  FM_RETURN_IF_ERROR(reader->GetI64(&state.pushed_first_));
  FM_RETURN_IF_ERROR(reader->GetI64(&state.pushed_second_));
  FM_RETURN_IF_ERROR(reader->GetI32(&state.appended_since_search_first_));
  FM_RETURN_IF_ERROR(reader->GetI32(&state.appended_since_search_second_));
  FM_RETURN_IF_ERROR(reader->GetBool(&state.searched_once_));
  FM_RETURN_IF_ERROR(reader->GetBool(&state.have_previous_));
  FM_RETURN_IF_ERROR(reader->GetI32(&state.previous_best_.i));
  FM_RETURN_IF_ERROR(reader->GetI32(&state.previous_best_.ie));
  FM_RETURN_IF_ERROR(reader->GetI32(&state.previous_best_.j));
  FM_RETURN_IF_ERROR(reader->GetI32(&state.previous_best_.je));
  FM_RETURN_IF_ERROR(reader->GetDouble(&state.previous_distance_));

  FM_RETURN_IF_ERROR(reader->GetI64(&state.engine_stats_.points_ingested));
  FM_RETURN_IF_ERROR(reader->GetI64(&state.engine_stats_.searches));
  FM_RETURN_IF_ERROR(reader->GetI64(&state.engine_stats_.seeded_searches));
  FM_RETURN_IF_ERROR(
      reader->GetI64(&state.engine_stats_.ground_distances_computed));
  FM_RETURN_IF_ERROR(
      reader->GetI64(&state.engine_stats_.dfd_cells_computed));
  FM_RETURN_IF_ERROR(reader->GetI64(&state.engine_stats_.bound_rescans));

  // Derived caches: recomputed, not stored — ToSphereVec is a pure
  // function of the point, so the cache is bit-identical to the one the
  // saved instance held.
  if (state.haversine_) {
    for (const Point& p : state.window_) {
      state.vecs_.push_back(ToSphereVec(p));
    }
    for (const Point& p : state.second_window_) {
      state.second_vecs_.push_back(ToSphereVec(p));
    }
  }

  // Ring rebuild: re-append the saved logical cells. The fresh ring's
  // physical heads start at zero, which is invisible through the
  // logical (i, j) API — contents and future eviction behavior are
  // identical.
  Index rows = 0;
  Index cols = 0;
  FM_RETURN_IF_ERROR(reader->GetI32(&rows));
  FM_RETURN_IF_ERROR(reader->GetI32(&cols));
  const Index expect_rows = static_cast<Index>(state.window_.size());
  const Index expect_cols =
      cross ? static_cast<Index>(state.second_window_.size()) : expect_rows;
  if (rows != expect_rows || cols != expect_cols) {
    return Status::DataLoss(
        "window snapshot ring dimensions do not match its points");
  }
  std::vector<double> cells(static_cast<std::size_t>(rows) * cols);
  for (double& cell : cells) FM_RETURN_IF_ERROR(reader->GetDouble(&cell));
  const auto cell_at = [&](Index i, Index j) {
    return cells[static_cast<std::size_t>(i) * cols + j];
  };
  if (!cross) {
    for (Index k = 0; k < rows; ++k) {
      state.ring_.AppendPoint([&](Index j) { return cell_at(k, j); },
                              [&](Index i) { return cell_at(i, k); },
                              cell_at(k, k));
    }
  } else {
    // Columns first (no rows yet, so no cells are written), then each
    // row fills its full extent from the saved matrix.
    for (Index j = 0; j < cols; ++j) {
      state.ring_.AppendCol([&](Index) { return 0.0; });
    }
    for (Index i = 0; i < rows; ++i) {
      state.ring_.AppendRow([&](Index j) { return cell_at(i, j); });
    }
  }

  FM_RETURN_IF_ERROR(state.bounds_.LoadFrom(reader));
  return state;
}

}  // namespace frechet_motif
