#ifndef FRECHET_MOTIF_STREAM_INGEST_FRONTEND_H_
#define FRECHET_MOTIF_STREAM_INGEST_FRONTEND_H_

/// Arrival-side frontend for one streaming window: timestamps, batching,
/// and a watermark-based reorder buffer for out-of-order feeds.
///
/// The window engines (`WindowState`, and through it the monitor and the
/// fleet) require in-order arrivals — an appended point is immediately
/// part of the ring matrix and can never be re-ordered. Real feeds
/// (mobile uplinks, message queues) deliver slightly out of order, so
/// the frontend buffers up to `reorder_capacity` timestamped points in a
/// min-timestamp queue and releases them in timestamp order, exactly the
/// bounded-disorder watermark scheme of stream processors: the watermark
/// is the largest timestamp already *released* downstream, and a point
/// arriving below it is provably too late to reorder within the buffer
/// bound — it is dropped and counted (`IngestStats::late_dropped`)
/// rather than corrupting the window's in-order contract.
///
/// Capacity 0 (the default) and bare (untimestamped) arrivals pass
/// straight through. Points with equal timestamps release in arrival
/// order, so an in-order feed always passes through unchanged — the
/// frontend is invisible unless the feed actually reorders.
///
/// ## Tie semantics at the watermark
///
/// The boundary cases are deliberate and pinned by unit tests
/// (tests/ingest_frontend_test.cc):
///
///  * **"Late" means strictly below the watermark.** An arrival stamped
///    *exactly at* the watermark is accepted: releasing it immediately
///    after the equal-stamped point already released preserves
///    timestamp order, so dropping it would lose data for no ordering
///    benefit. Only `timestamp < watermark` drops (late_dropped).
///  * **Duplicate timestamps preserve arrival order**, both straight
///    through the buffer (the multimap inserts equal keys after
///    existing ones) and across the watermark (each equal-stamped
///    arrival re-sets the watermark to the same value and is released
///    after its predecessors). A run of equal stamps therefore comes
///    out exactly as it went in.
///  * **Duplicates are not "reordered"**: the `reordered` counter
///    increments only for an arrival strictly below the largest
///    buffered timestamp — an equal arrival keeps its place and needed
///    no fixing.
///  * The watermark only ever advances on *release*; buffering a point
///    does not move it.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>

#include "core/trajectory.h"
#include "geo/point.h"
#include "util/binary_codec.h"
#include "util/status.h"

namespace frechet_motif {

/// Arrival accounting of one frontend.
struct IngestStats {
  /// Points released downstream (in timestamp order).
  std::int64_t released = 0;
  /// Points that arrived with a timestamp below an already-released one
  /// but were re-ordered successfully inside the buffer.
  std::int64_t reordered = 0;
  /// Points dropped because they arrived below the watermark — too late
  /// for the buffer capacity to fix.
  std::int64_t late_dropped = 0;
  /// High-water mark of the reorder buffer's occupancy — how much of
  /// `reorder_capacity` the feed's disorder actually needed.
  std::int64_t buffered_peak = 0;
};

class IngestFrontend {
 public:
  /// `reorder_capacity`: maximum timestamped points held back for
  /// reordering; 0 disables buffering entirely.
  explicit IngestFrontend(Index reorder_capacity = 0)
      : capacity_(reorder_capacity) {}

  /// Downstream sink: receives released points in order. `timestamp` is
  /// null for bare arrivals.
  using Sink = std::function<Status(const Point& p, const double* timestamp)>;

  /// Feeds one arrival. Released points (possibly none, possibly
  /// several) are handed to `sink` before the call returns. Bare
  /// arrivals bypass the buffer — reordering needs timestamps — but
  /// must not be mixed with timestamped ones while the buffer is
  /// non-empty.
  Status Offer(const Point& p, const double* timestamp, const Sink& sink);

  /// Releases everything still buffered, in timestamp order (end of
  /// stream, or a forced flush before a synchronous query).
  Status Flush(const Sink& sink);

  Index buffered() const { return static_cast<Index>(buffer_.size()); }
  const IngestStats& stats() const { return stats_; }

  /// The largest timestamp released downstream so far (-inf before the
  /// first timestamped release).
  double watermark() const { return watermark_; }

  /// Journal-replay bookkeeping (src/durable/): records that a point
  /// with this timestamp was released downstream *without* going
  /// through Offer — recovery feeds journaled (already post-reorder)
  /// points directly to the windows and keeps the frontend's watermark
  /// and release accounting consistent via this hook, so later live
  /// arrivals see exactly the late-drop behavior of the original run.
  void NoteReplayedRelease(const double* timestamp) {
    if (timestamp != nullptr) {
      watermark_ = *timestamp;
      released_any_ = true;
    }
    ++stats_.released;
  }

  /// Adopts an externally recovered watermark without counting a
  /// release — the durable layer seeds its journal-side frontends with
  /// the engine's restored watermark so post-recovery live arrivals see
  /// exactly the original run's late-drop boundary.
  void SeedWatermark(double watermark) {
    watermark_ = watermark;
    released_any_ = true;
  }

  /// Serializes watermark, flags, counters, and the buffered points
  /// (in timestamp order, preserving arrival order among equal stamps).
  void SaveTo(BinaryWriter* writer) const;

  /// Restores SaveTo's encoding into this frontend, replacing its
  /// state. The capacity is the constructor's business, not the
  /// snapshot's: a restored frontend keeps its configured capacity.
  Status LoadFrom(BinaryReader* reader);

 private:
  Index capacity_ = 0;
  /// Min-timestamp buffer; multimap keeps arrival order among equal keys.
  std::multimap<double, Point> buffer_;
  /// Largest timestamp released downstream so far.
  double watermark_ = -std::numeric_limits<double>::infinity();
  bool released_any_ = false;
  IngestStats stats_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_INGEST_FRONTEND_H_
