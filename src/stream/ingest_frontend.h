#ifndef FRECHET_MOTIF_STREAM_INGEST_FRONTEND_H_
#define FRECHET_MOTIF_STREAM_INGEST_FRONTEND_H_

/// Arrival-side frontend for one streaming window: timestamps, batching,
/// and a watermark-based reorder buffer for out-of-order feeds.
///
/// The window engines (`WindowState`, and through it the monitor and the
/// fleet) require in-order arrivals — an appended point is immediately
/// part of the ring matrix and can never be re-ordered. Real feeds
/// (mobile uplinks, message queues) deliver slightly out of order, so
/// the frontend buffers up to `reorder_capacity` timestamped points in a
/// min-timestamp queue and releases them in timestamp order, exactly the
/// bounded-disorder watermark scheme of stream processors: the watermark
/// is the largest timestamp already *released* downstream, and a point
/// arriving below it is provably too late to reorder within the buffer
/// bound — it is dropped and counted (`IngestStats::late_dropped`)
/// rather than corrupting the window's in-order contract.
///
/// Capacity 0 (the default) and bare (untimestamped) arrivals pass
/// straight through. Points with equal timestamps release in arrival
/// order, so an in-order feed always passes through unchanged — the
/// frontend is invisible unless the feed actually reorders.

#include <cstdint>
#include <functional>
#include <limits>
#include <map>

#include "core/trajectory.h"
#include "geo/point.h"
#include "util/status.h"

namespace frechet_motif {

/// Arrival accounting of one frontend.
struct IngestStats {
  /// Points released downstream (in timestamp order).
  std::int64_t released = 0;
  /// Points that arrived with a timestamp below an already-released one
  /// but were re-ordered successfully inside the buffer.
  std::int64_t reordered = 0;
  /// Points dropped because they arrived below the watermark — too late
  /// for the buffer capacity to fix.
  std::int64_t late_dropped = 0;
};

class IngestFrontend {
 public:
  /// `reorder_capacity`: maximum timestamped points held back for
  /// reordering; 0 disables buffering entirely.
  explicit IngestFrontend(Index reorder_capacity = 0)
      : capacity_(reorder_capacity) {}

  /// Downstream sink: receives released points in order. `timestamp` is
  /// null for bare arrivals.
  using Sink = std::function<Status(const Point& p, const double* timestamp)>;

  /// Feeds one arrival. Released points (possibly none, possibly
  /// several) are handed to `sink` before the call returns. Bare
  /// arrivals bypass the buffer — reordering needs timestamps — but
  /// must not be mixed with timestamped ones while the buffer is
  /// non-empty.
  Status Offer(const Point& p, const double* timestamp, const Sink& sink);

  /// Releases everything still buffered, in timestamp order (end of
  /// stream, or a forced flush before a synchronous query).
  Status Flush(const Sink& sink);

  Index buffered() const { return static_cast<Index>(buffer_.size()); }
  const IngestStats& stats() const { return stats_; }

 private:
  Index capacity_ = 0;
  /// Min-timestamp buffer; multimap keeps arrival order among equal keys.
  std::multimap<double, Point> buffer_;
  /// Largest timestamp released downstream so far.
  double watermark_ = -std::numeric_limits<double>::infinity();
  bool released_any_ = false;
  IngestStats stats_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_INGEST_FRONTEND_H_
