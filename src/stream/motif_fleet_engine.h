#ifndef FRECHET_MOTIF_STREAM_MOTIF_FLEET_ENGINE_H_
#define FRECHET_MOTIF_STREAM_MOTIF_FLEET_ENGINE_H_

/// Fleet-scale streaming: N sliding-window motif monitors' worth of
/// state behind **one** arrival loop, one scheduler, one worker pool —
/// with an incrementally maintained DFD ε-join across the fleet's
/// windows.
///
/// One `StreamingMotifMonitor` per stream does not scale to a fleet:
/// every monitor re-searches on its own fixed cadence the moment it
/// becomes due, owns its own thread pool, and knows nothing about the
/// other streams. `MotifFleetEngine` instead composes the reusable
/// streaming components:
///
///  * a `WindowState` per **member** (ring matrix + incremental bounds +
///    carried threshold — stream/window_state.h). A member is either a
///    single-trajectory stream or a cross-trajectory window *pair*, and
///    each member may carry its own StreamOptions (window length, slide
///    step, ξ, approximation ε) — the fleet can be fully heterogeneous;
///  * an `IngestFrontend` per stream id (timestamps, and the watermark
///    reorder buffer for out-of-order feeds — stream/ingest_frontend.h).
///    A cross member exposes two stream ids, one per side;
///  * one `SearchScheduler` ordering due re-searches by dirty-cell count
///    and staleness (stream/search_scheduler.h);
///  * one lazily created `ThreadPool` shared by every search. A drain
///    with several due windows fans out across it **one window per
///    lane** (independent windows, searches run whole on a lane, side
///    effects merged serially in drain order — bit-identical to the
///    serial drain); a drain with a single due window spends the same
///    pool on intra-search parallelism instead;
///  * optionally one `IncrementalDfdJoin` (join/incremental_join.h)
///    maintaining which window pairs are within ε, emitting per-slide
///    join deltas.
///
/// ## Scheduling modes
///
/// With `max_searches_per_drain == 0` (default) the engine is
/// **parity-exact**: every due search runs within the `Ingest` call that
/// made it due (and before any further append to that stream), so each
/// stream's report sequence is bit-identical — candidate, distance,
/// seeded/carried flags, DP-cell counters — to an independent
/// `StreamingMotifMonitor` fed the same points. The scheduler still
/// orders the batch-end drain (dirtiest window first), which is where a
/// multi-stream batch amortizes: one tight append loop, then one
/// prioritized search pass sharing a single pool.
///
/// With `max_searches_per_drain == k > 0` the engine trades per-slide
/// latency for throughput: at most k searches run per Ingest/Drain call,
/// dirtiest-first, and a window left waiting simply **coalesces** its
/// pending slides — the eventual search covers a larger shift in one
/// pass (the carried threshold checks eviction itself, so it stays
/// sound). Every individual answer is still bit-identical to a
/// from-scratch `FindMotif` on the window at search time; the fleet just
/// answers for fewer intermediate windows. `bench_fleet_throughput`
/// measures the resulting DP-cells-per-slide ratio against N independent
/// monitors.
///
/// ## Join deltas
///
/// With `join_epsilon >= 0`, every search refreshes that stream's window
/// snapshot in the incremental join, and the report carries the delta —
/// stream pairs entering/leaving ε — whose accumulation is provably
/// identical to a from-scratch `DfdSelfJoin` over the current snapshots
/// (see join/incremental_join.h for the argument).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "geo/metric.h"
#include "join/incremental_join.h"
#include "stream/ingest_frontend.h"
#include "stream/search_scheduler.h"
#include "stream/window_state.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace frechet_motif {

/// Configuration of a MotifFleetEngine.
struct FleetOptions {
  /// Default per-stream window configuration (window length W, slide
  /// step, ξ, approximation ε). Members added with the plain AddStream()
  /// / AddCrossPair() overloads use it; the explicit-options overloads
  /// let every member carry its own geometry and tolerance — the fleet
  /// may be fully heterogeneous. The `threads` field doubles as the
  /// engine-level worker-pool size shared by every search.
  StreamOptions stream;

  /// ε (meters) for the cross-fleet window join; negative disables it.
  double join_epsilon = -1.0;

  /// Watermark reorder-buffer capacity per stream (see IngestFrontend);
  /// 0 expects in-order feeds.
  Index reorder_capacity = 0;

  /// Search admission per Ingest/Drain call: 0 = run every due search
  /// (parity-exact with independent monitors); k > 0 = at most k,
  /// dirtiest-first, deferring (and coalescing) the rest.
  int max_searches_per_drain = 0;

  /// The join configuration derived from `join_epsilon` (cascade knobs at
  /// their defaults).
  JoinOptions JoinConfig() const {
    JoinOptions join;
    join.threshold = join_epsilon;
    return join;
  }
};

/// One arrival routed to one stream of the fleet.
struct FleetArrival {
  std::size_t stream = 0;
  Point point;
  bool has_timestamp = false;
  double timestamp = 0.0;
};

/// One per-slide report of one member, keyed by the member's primary
/// stream id (its only id for a single-trajectory member; the side-0 id
/// for a cross pair — the update's candidate then spans both windows,
/// second-window indices in `update.motif.best.j/je`).
struct FleetStreamUpdate {
  std::size_t stream = 0;
  StreamUpdate update;
};

/// Everything one Ingest/Drain call produced: slide reports in execution
/// order (mid-batch parity searches first, then the scheduler's drain
/// order) and the join delta across all of them.
struct FleetReport {
  std::vector<FleetStreamUpdate> updates;
  JoinDelta join_delta;

  bool empty() const { return updates.empty() && join_delta.empty(); }
};

/// Fleet-wide counter snapshot (aggregated over streams, frontends and
/// the engine's own scheduling).
struct FleetStats {
  std::int64_t streams = 0;
  std::int64_t points_ingested = 0;
  std::int64_t searches = 0;
  std::int64_t seeded_searches = 0;
  std::int64_t ground_distances_computed = 0;
  std::int64_t dfd_cells_computed = 0;
  /// Slides merged into deferred searches under a search budget (a
  /// search covering 3 slide-steps' worth of appends counts 2).
  std::int64_t coalesced_slides = 0;
  /// Out-of-order arrivals fixed by the reorder buffers / dropped below
  /// the watermark.
  std::int64_t reordered = 0;
  std::int64_t late_dropped = 0;
  /// Points currently held back in reorder buffers (sum over streams)
  /// and the worst single-stream occupancy ever reached — how much of
  /// `reorder_capacity` the feeds' disorder actually needed.
  std::int64_t reorder_buffered = 0;
  std::int64_t reorder_buffered_peak = 0;
};

class MotifFleetEngine {
 public:
  /// Validates the options; streams are added afterwards. The metric
  /// must outlive the engine.
  static StatusOr<MotifFleetEngine> Create(const FleetOptions& options,
                                           const GroundMetric& metric);

  MotifFleetEngine(MotifFleetEngine&&) = default;
  MotifFleetEngine& operator=(MotifFleetEngine&&) = default;

  /// Adds one single-trajectory stream with the fleet's default
  /// StreamOptions; ids are dense, starting at 0. While only this
  /// overload is used, stream ids and member indices coincide — the
  /// original homogeneous-fleet behavior.
  StatusOr<std::size_t> AddStream();

  /// Adds one single-trajectory stream with its own window configuration
  /// (heterogeneous fleets: members may differ in window length, slide
  /// step, ξ and approximation ε). The `threads` field of per-member
  /// options is ignored — the engine-level pool (sized by
  /// FleetOptions::stream.threads) is shared by every search.
  StatusOr<std::size_t> AddStream(const StreamOptions& stream_options);

  /// Adds one cross-trajectory member: a window *pair* searched for the
  /// best motif between the two trajectories, drained by the same
  /// scheduler as the single-trajectory members. Returns the two dense
  /// stream ids created — first (side 0) and second (side 1); arrivals
  /// are routed per side through their own ingest frontends. Reports for
  /// this member carry the side-0 id as their `stream`.
  StatusOr<std::pair<std::size_t, std::size_t>> AddCrossPair();
  StatusOr<std::pair<std::size_t, std::size_t>> AddCrossPair(
      const StreamOptions& stream_options);

  /// Number of addressable streams (a cross member contributes two).
  std::size_t stream_count() const { return stream_map_.size(); }

  /// Number of members (windows) — the scheduler's and join's key space.
  std::size_t member_count() const { return windows_.size(); }

  /// The window configuration of the member owning `stream`.
  const StreamOptions& stream_options(std::size_t stream) const {
    return member_options_[stream_map_[stream].member];
  }

  /// Ingests a batch through one arrival loop: appends every point (via
  /// its stream's frontend), then drains due searches per the scheduling
  /// mode and ticks the join. See the file comment for the two modes'
  /// guarantees.
  StatusOr<FleetReport> Ingest(const std::vector<FleetArrival>& batch);

  /// Single-arrival conveniences (one-element Ingest).
  StatusOr<FleetReport> Push(std::size_t stream, const Point& p);
  StatusOr<FleetReport> Push(std::size_t stream, const Point& p,
                             double timestamp);

  /// Runs pending due searches (budget applies) without ingesting, and
  /// ticks the join. Under a budget, call repeatedly to work off a
  /// backlog.
  StatusOr<FleetReport> Drain();

  /// Flushes every reorder buffer (end of feed) and drains whatever that
  /// released. A no-op when nothing is buffered.
  StatusOr<FleetReport> Flush();

  /// Journal-replay entry (src/durable/): re-applies a batch of
  /// **already released** (post-reorder) points directly to the
  /// windows, bypassing the frontends but keeping their watermark and
  /// release accounting consistent, then drains exactly as Ingest
  /// would. Feeding a journal's records batch-by-batch (one call per
  /// journaled commit) reproduces the original engine's reports and
  /// state bit for bit — that is the recovery parity contract proved by
  /// tests/durable_recovery_fuzz_test.cc.
  StatusOr<FleetReport> ReplayReleased(const std::vector<FleetArrival>& batch);

  /// True when `stream`'s member has a search due but not yet run (only
  /// possible between calls under a search budget).
  bool SearchPending(std::size_t stream) const {
    return scheduler_.IsDue(stream_map_[stream].member);
  }

  /// The window contents feeding `stream` — the member's second window
  /// for a cross pair's side-1 id.
  Trajectory WindowTrajectory(std::size_t stream) const {
    const StreamRef& ref = stream_map_[stream];
    return ref.side == 0 ? windows_[ref.member].WindowTrajectory()
                         : windows_[ref.member].SecondWindowTrajectory();
  }
  Index window_size(std::size_t stream) const {
    const StreamRef& ref = stream_map_[stream];
    return ref.side == 0 ? windows_[ref.member].window_size()
                         : windows_[ref.member].second_window_size();
  }
  /// Engine counters of the member owning `stream` (a cross pair's two
  /// ids share one window state, hence one counter set).
  const StreamEngineStats& stream_stats(std::size_t stream) const {
    return windows_[stream_map_[stream].member].engine_stats();
  }
  const IngestStats& ingest_stats(std::size_t stream) const {
    return frontends_[stream].stats();
  }
  /// Points currently held in `stream`'s reorder buffer.
  Index stream_buffered(std::size_t stream) const {
    return frontends_[stream].buffered();
  }
  /// The stream's release watermark (see IngestFrontend::watermark) —
  /// the durable layer reads it after Restore to seed its journal-side
  /// frontends.
  double stream_watermark(std::size_t stream) const {
    return frontends_[stream].watermark();
  }

  /// Aggregated counters (computed on demand).
  FleetStats stats() const;

  /// The incremental join's counters; null when the join is disabled.
  const IncrementalJoinStats* join_stats() const {
    return join_.has_value() ? &join_->stats() : nullptr;
  }

  /// The join's accumulated match set (empty when disabled) — for parity
  /// checks against a from-scratch DfdSelfJoin.
  std::vector<JoinPair> CurrentJoinMatches() const {
    return join_.has_value() ? join_->CurrentMatches() : std::vector<JoinPair>();
  }

  const FleetOptions& options() const { return options_; }

  /// Serializes the fleet manifest into `out`: an options echo, every
  /// stream's WindowState and frontend, the scheduler (drain order is
  /// deterministic state), the coalesced-slide counter, and the join's
  /// verdict-cache epoch. Restore() on the result continues
  /// bit-identically — see WindowState::SaveTo for the per-window
  /// contract. The blob is raw state, not a file format; the durable
  /// layer (src/durable/) adds versioning, checksums, and rotation.
  Status Snapshot(std::string* out) const;

  /// Rebuilds an engine from Snapshot()'s bytes. `options` must match
  /// the snapshot's echoed configuration except for
  /// `stream.threads` (a runtime choice with bit-identical results).
  static StatusOr<MotifFleetEngine> Restore(const FleetOptions& options,
                                            const GroundMetric& metric,
                                            std::string_view snapshot);

 private:
  /// One addressable stream: which member's window it feeds, and on
  /// which side (side 1 only for a cross member's second trajectory).
  struct StreamRef {
    std::size_t member = 0;
    int side = 0;
  };

  MotifFleetEngine(const FleetOptions& options, const GroundMetric& metric);

  Status CheckStream(std::size_t stream) const;

  /// Shared tail of the AddStream/AddCrossPair overloads: creates the
  /// window, registers it with the scheduler, and allocates its one or
  /// two stream ids. Returns the member index.
  StatusOr<std::size_t> AddMember(const StreamOptions& stream_options,
                                  bool cross);

  /// Appends one released (post-frontend) point, bookkeeping the
  /// scheduler; runs the parity-guard search first when required.
  Status Deliver(std::size_t stream, const Point& p, const double* timestamp,
                 FleetReport* report);

  /// Runs `member`'s search now and appends its report (keyed by the
  /// member's side-0 stream id).
  Status RunOne(std::size_t member, FleetReport* report);

  /// Drain-phase fan-out: runs the searches of the first `budget` windows
  /// of `order` concurrently — one whole window per pool lane (windows
  /// are independent; each search runs serially inside its lane) — then
  /// applies every side effect (coalescing accounting, scheduler
  /// bookkeeping, join refresh, report append) serially in drain order.
  /// Because the side-effect sequence is exactly the serial loop's and
  /// each search is deterministic, the report stream is bit-identical to
  /// running RunOne over the prefix one window at a time.
  Status RunManyParallel(const std::vector<std::size_t>& order,
                         std::size_t budget, FleetReport* report);

  /// Drains due searches per the scheduling mode, then ticks the join if
  /// anything changed.
  Status DrainInternal(FleetReport* report);

  FleetOptions options_;
  const GroundMetric* metric_;

  /// Members (one WindowState each — a cross member's state holds the
  /// window pair), with each member's own options and its side-0
  /// ("primary") stream id. The scheduler and the join are keyed by
  /// member index; `stream_map_` resolves a public stream id to its
  /// member and side. Frontends are per stream id — each side of a
  /// cross pair reorders and watermarks independently.
  std::vector<WindowState> windows_;
  std::vector<StreamOptions> member_options_;
  std::vector<std::size_t> member_primary_;
  std::vector<StreamRef> stream_map_;
  std::vector<IngestFrontend> frontends_;
  SearchScheduler scheduler_;
  std::optional<IncrementalDfdJoin> join_;

  /// Shared worker pool, created on first threaded search and reused
  /// (workers park between searches).
  std::unique_ptr<ThreadPool> pool_;

  std::int64_t coalesced_slides_ = 0;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_MOTIF_FLEET_ENGINE_H_
