#ifndef FRECHET_MOTIF_STREAM_WINDOW_STATE_H_
#define FRECHET_MOTIF_STREAM_WINDOW_STATE_H_

/// Per-stream sliding-window state: the reusable core of the streaming
/// engines.
///
/// A WindowState owns everything one bounded window needs to answer
/// motif queries incrementally — the ring ground-distance matrix (one
/// fresh row/column per append, O(1) eviction), the incrementally
/// maintained RelaxedBounds minima, the window point/timestamp caches,
/// and the previous optimum carried as the next search's pruning
/// threshold. It deliberately contains **no scheduling policy**: when to
/// run a search is the caller's decision (`StreamingMotifMonitor` runs
/// one the moment `SearchDue()` turns true; `MotifFleetEngine` batches
/// due windows through a `SearchScheduler`). Because a search's answer
/// depends only on the window contents at search time, any caller that
/// runs the search before the next append to this window reproduces the
/// single-monitor behavior bit for bit.
///
/// The exactness contract of `RunSearch()` — bit-identical candidate and
/// distance to a from-scratch `FindMotif` with
/// `StreamOptions::BaselineOptions()` on the identical window — is
/// stated and proved in streaming_motif_monitor.h.

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>
#include <vector>

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "motif/relaxed_bounds.h"
#include "motif/stats.h"
#include "stream/incremental_bounds.h"
#include "util/binary_codec.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace frechet_motif {

/// Configuration of one streaming window. Deliberately
/// FindMotifOptions-compatible: BaselineOptions() returns the exact
/// from-scratch configuration the streaming answers are bit-identical to.
struct StreamOptions {
  /// Window length W: the motif is maintained over the last W points.
  /// Must admit a valid candidate (W >= 2ξ + 4 for the single-trajectory
  /// problem).
  Index window_length = 512;

  /// Re-search cadence: a search becomes due once the window is full and
  /// then after every `slide_step` further appended points (the window
  /// having slid by that amount). Must be >= 1.
  Index slide_step = 32;

  /// Minimum motif length ξ (paper default 100).
  Index min_length_xi = 100;

  /// Worker threads for the per-slide search, as FindMotifOptions::threads
  /// (1 = serial, 0 = all hardware threads; results are bit-identical for
  /// every setting).
  int threads = 1;

  /// Approximation tolerance ε for the per-slide search: every reported
  /// window distance is at most (1+ε) times that window's exact optimum.
  /// The guarantee is per window and does not compound across slides —
  /// the carried threshold is always an exactly-achievable distance of an
  /// in-window candidate, so each search independently prunes against
  /// bounds scaled by (1+ε) of a valid value. 0 (default) keeps the
  /// stream exact and bit-identical to the from-scratch baseline.
  /// Must be >= 0.
  double approximation_epsilon = 0.0;

  /// The from-scratch FindMotif configuration every streaming answer is
  /// bit-identical to (at approximation_epsilon == 0; within (1+ε)
  /// otherwise): the relaxed bounding search (MotifAlgorithm::kBtm) with
  /// this ξ, thread count and ε.
  FindMotifOptions BaselineOptions() const {
    FindMotifOptions o;
    o.algorithm = MotifAlgorithm::kBtm;
    o.min_length_xi = min_length_xi;
    o.threads = threads;
    o.approximation_epsilon = approximation_epsilon;
    return o;
  }
};

/// One per-slide report emitted by a streaming search.
struct StreamUpdate {
  /// Global stream index of window point 0 (and, in cross mode, of the
  /// second window's point 0): window-relative index k corresponds to
  /// stream point window_start + k.
  std::int64_t window_start = 0;
  std::int64_t window_start_second = 0;

  /// Points in the window(s) at search time (== StreamOptions::window_length).
  Index window_points = 0;

  /// Whether the search was seeded with the previous window's distance
  /// (false on the first search and when the previous best was evicted).
  bool seeded = false;

  /// The seed threshold (+infinity when unseeded).
  double seed_threshold = std::numeric_limits<double>::infinity();

  /// True when no dirty candidate preceded the previous optimum (shifted
  /// into the new window) under the canonical (distance, candidate)
  /// order, so the motif is that shifted previous pair. Carried or not,
  /// the reported candidate and distance are bit-identical to the
  /// from-scratch answer (ties included — see the tie-stability contract
  /// in streaming_motif_monitor.h).
  bool carried = false;

  /// The approximation tolerance the search ran with
  /// (StreamOptions::approximation_epsilon; 0 = exact). Echoed so every
  /// report frame names the guarantee its distance carries.
  double approximation_epsilon = 0.0;

  /// The window's motif, in window-relative indices.
  MotifResult motif;

  /// Search counters for this slide alone. `dfd_cells_computed` is the
  /// number the acceptance comparison against a from-scratch search uses.
  MotifStats stats;
};

/// Cumulative engine counters across one window's lifetime.
struct StreamEngineStats {
  std::int64_t points_ingested = 0;
  std::int64_t searches = 0;
  std::int64_t seeded_searches = 0;
  /// Fresh ground-metric evaluations paid for matrix maintenance — the
  /// streaming replacement for Build's O(W²) per query.
  std::int64_t ground_distances_computed = 0;
  /// Total DP cells across all searches.
  std::int64_t dfd_cells_computed = 0;
  /// Bound-maintenance rescans caused by evicted minimizers.
  std::int64_t bound_rescans = 0;
};

/// See the file comment. Create() validates the options exactly as the
/// from-scratch search would; the metric must outlive the state.
class WindowState {
 public:
  /// `cross` selects the two-trajectory window pair (points appended per
  /// side, searches meaningful once both windows are full).
  static StatusOr<WindowState> Create(const StreamOptions& options,
                                      const GroundMetric& metric, bool cross);

  WindowState(WindowState&&) = default;
  WindowState& operator=(WindowState&&) = default;

  /// Appends one point to side 0 (first trajectory) or 1 (second, cross
  /// mode only): evicts when full, extends the ring matrix with the fresh
  /// ground distances, and advances the slide accounting. `timestamp` may
  /// be null; mixing timestamped and bare appends on one side is an error.
  Status Append(int side, const Point& p, const double* timestamp);

  /// True when the cadence (window full; `slide_step` appends since the
  /// last search — or no search yet) says a search should run now.
  bool SearchDue() const;

  /// The seeded (or cold) relaxed subset search over the current window.
  /// `pool` (optional) parallelizes it; results are bit-identical either
  /// way. Callers normally gate on SearchDue(), but any moment with a
  /// full window is valid — a deferred search simply covers a larger
  /// slide (the threshold carry checks eviction itself).
  StatusOr<StreamUpdate> RunSearch(ThreadPool* pool);

  /// The current window contents (with timestamps when pushed), in
  /// window-relative order — exactly the trajectory a from-scratch
  /// FindMotif parity check should run on.
  Trajectory WindowTrajectory() const;
  Trajectory SecondWindowTrajectory() const;

  Index window_size() const { return static_cast<Index>(window_.size()); }
  Index second_window_size() const {
    return static_cast<Index>(second_window_.size());
  }
  std::int64_t points_seen() const { return pushed_first_; }

  /// Appends (across both sides) since the last search — the scheduler's
  /// dirty measure: each append dirties one ring row+column, i.e. O(W)
  /// matrix cells.
  Index appended_since_search() const {
    return appended_since_search_first_ + appended_since_search_second_;
  }
  bool searched_once() const { return searched_once_; }

  bool cross() const { return cross_; }
  const StreamOptions& options() const { return options_; }
  const StreamEngineStats& engine_stats() const { return engine_stats_; }

  /// Test hook (both modes): the relaxed-bound arrays the next search
  /// would use, for equality checks against a fresh RelaxedBounds::Build
  /// over the window. Only meaningful after at least one search.
  RelaxedBounds CurrentBounds() const;

  /// Serializes the complete window state — ring matrix contents,
  /// incremental bounds (values and achievers), the carried optimum and
  /// threshold, slide accounting and engine counters — such that a
  /// RestoreFrom'd instance continues **bit-identically** to this one:
  /// every future report (candidate, distance, seeded/carried flags)
  /// and every engine counter evolves exactly as if the process had
  /// never stopped. Doubles are stored as raw IEEE-754 bit patterns;
  /// derived caches (sphere vectors) are recomputed deterministically
  /// on restore. The encoding starts with an options echo that
  /// RestoreFrom validates.
  void SaveTo(BinaryWriter* writer) const;

  /// Rebuilds a WindowState from SaveTo's encoding. `options` must
  /// match the saved geometry (window length, slide step, ξ — the
  /// thread count is a runtime choice and may differ; results are
  /// bit-identical for every thread count). The metric must be the same
  /// metric the state was built with — ring cells are restored verbatim
  /// and future appends must extend them consistently.
  static StatusOr<WindowState> RestoreFrom(BinaryReader* reader,
                                           const StreamOptions& options,
                                           const GroundMetric& metric);

 private:
  WindowState(const StreamOptions& options, const GroundMetric& metric,
              bool cross);

  MotifOptions SearchMotifOptions() const;

  StreamOptions options_;
  const GroundMetric* metric_;
  bool cross_ = false;
  bool haversine_ = false;

  RingDistanceMatrix ring_;
  IncrementalRelaxedBounds bounds_;

  std::deque<Point> window_;
  std::deque<Point> second_window_;
  std::deque<SphereVec> vecs_;
  std::deque<SphereVec> second_vecs_;
  std::deque<double> times_;
  std::deque<double> second_times_;
  bool timestamped_ = false;
  bool second_timestamped_ = false;

  std::int64_t pushed_first_ = 0;
  std::int64_t pushed_second_ = 0;
  /// Appends (per side) since the last search, for slide accounting.
  Index appended_since_search_first_ = 0;
  Index appended_since_search_second_ = 0;
  bool searched_once_ = false;

  /// Previous search's answer, window-relative at that time.
  bool have_previous_ = false;
  Candidate previous_best_;
  double previous_distance_ = std::numeric_limits<double>::infinity();

  /// Scratch for the batched haversine append path: the opposite side's
  /// sphere vectors staged contiguously, and the fresh cells computed by
  /// SphereVecDistanceBatch. Reused across appends (capacity stabilizes at
  /// the window length); never serialized.
  std::vector<SphereVec> batch_vecs_;
  std::vector<double> batch_dists_;

  StreamEngineStats engine_stats_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_WINDOW_STATE_H_
