#ifndef FRECHET_MOTIF_STREAM_STREAMING_MOTIF_MONITOR_H_
#define FRECHET_MOTIF_STREAM_STREAMING_MOTIF_MONITOR_H_

/// Incremental sliding-window motif maintenance for live trajectory
/// streams.
///
/// The paper treats motif discovery as an offline search over a fixed
/// trajectory; a serving system must instead keep the motif current as
/// points *arrive*. StreamingMotifMonitor ingests points one at a time
/// (or in batches) into a bounded window, maintains the ground-distance
/// matrix incrementally (RingDistanceMatrix: one fresh row/column per
/// append, O(1) eviction), keeps the RelaxedBounds row/column minima up
/// to date under eviction (IncrementalRelaxedBounds), and re-runs the
/// bounding-based subset search per slide with the previous window's
/// motif distance carried forward as the pruning threshold.
///
/// ## Exactness
///
/// After every slide the reported motif is **bit-identical** — candidate
/// and distance — to a from-scratch `FindMotif` over the same window with
/// `StreamOptions::BaselineOptions()` (the relaxed BTM configuration),
/// whenever the window's optimum is uniquely attained; on exact
/// distance ties between distinct pairs only the reported *pair* may
/// differ from the from-scratch tie-break, never the distance. The
/// argument, in brief:
///
///  * Ring-matrix cells are the same doubles a fresh
///    DistanceMatrix::Build computes, and the maintained bound arrays
///    equal a fresh RelaxedBounds::Build (minima of identical values).
///  * On a seeded slide the search walks the baseline's sorted subset
///    queue (identical (lb, i, j) order) with two sound restrictions.
///    (1) Its initial threshold is T = the previous window's motif
///    distance, achievable because the previous best pair still lies in
///    the window — so the optimum d* <= T. (2) *Clean* candidates
///    (every point surviving from the previous window) were valid
///    candidates there, hence have DFD >= T; only *dirty* candidates —
///    reaching into the freshly appended points — can strictly improve,
///    and a dirty candidate's coupling path crosses every column from
///    its start to the dirty frontier, so subsets whose frontier
///    crossing bound (a suffix-max of Rmin) exceeds T are dropped before
///    any DP work.
///  * Every remaining pruning rule (queue skip, endpoint caps, end-cross
///    freeze) discards only candidates strictly worse than the running
///    threshold >= d*. When some dirty candidate beats T, both searches
///    therefore evaluate every d*-achiever, in the same order, and
///    record the same first one — ties included. When nothing beats T,
///    the slide reports the previous pair shifted into the new window
///    (the stable choice; a from-scratch run re-breaks the tie among
///    equal-distance pairs from its own enumeration, which is the only
///    divergence possible).
///
/// When the previous best pair was evicted (or on the first full
/// window), the slide falls back to an unseeded, unrestricted search —
/// identical to the from-scratch baseline by construction.
///
/// ## Cost per slide
///
/// O(s·W) ground-metric evaluations (s = slide step, W = window) for the
/// fresh matrix cells instead of Build's O(W²), O(s·W) amortized reads
/// for bound maintenance, plus — on seeded slides — one O(W²) pass of
/// plain matrix *reads* (no metric evaluations, no DP arithmetic) to
/// compute the dirty-frontier bounds; the subset enumeration itself is
/// already Θ(W²), so this does not change the slide's asymptotic read
/// cost. In exchange the subset search's DP work
/// (`StreamUpdate::stats.dfd_cells_computed`) is never more than the
/// from-scratch search's: the dirty-frontier restriction drops the
/// subsets far from the new points and the carried threshold prunes the
/// rest from the first evaluation on.

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "core/distance_matrix.h"
#include "core/options.h"
#include "core/trajectory.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "motif/relaxed_bounds.h"
#include "motif/stats.h"
#include "stream/incremental_bounds.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace frechet_motif {

/// Configuration of a StreamingMotifMonitor. Deliberately
/// FindMotifOptions-compatible: BaselineOptions() returns the exact
/// from-scratch configuration the streaming answers are bit-identical to.
struct StreamOptions {
  /// Window length W: the motif is maintained over the last W points.
  /// Must admit a valid candidate (W >= 2ξ + 4 for the single-trajectory
  /// problem).
  Index window_length = 512;

  /// Re-search cadence: a search runs once the window is full and then
  /// after every `slide_step` further appended points (the window having
  /// slid by that amount). Must be >= 1.
  Index slide_step = 32;

  /// Minimum motif length ξ (paper default 100).
  Index min_length_xi = 100;

  /// Worker threads for the per-slide search, as FindMotifOptions::threads
  /// (1 = serial, 0 = all hardware threads; results are bit-identical for
  /// every setting).
  int threads = 1;

  /// The from-scratch FindMotif configuration every streaming answer is
  /// bit-identical to: the relaxed bounding search (MotifAlgorithm::kBtm)
  /// with this ξ and thread count.
  FindMotifOptions BaselineOptions() const {
    FindMotifOptions o;
    o.algorithm = MotifAlgorithm::kBtm;
    o.min_length_xi = min_length_xi;
    o.threads = threads;
    return o;
  }
};

/// One per-slide report emitted by the monitor.
struct StreamUpdate {
  /// Global stream index of window point 0 (and, in cross mode, of the
  /// second window's point 0): window-relative index k corresponds to
  /// stream point window_start + k.
  std::int64_t window_start = 0;
  std::int64_t window_start_second = 0;

  /// Points in the window(s) at search time (== StreamOptions::window_length).
  Index window_points = 0;

  /// Whether the search was seeded with the previous window's distance
  /// (false on the first search and when the previous best was evicted).
  bool seeded = false;

  /// The seed threshold (+infinity when unseeded).
  double seed_threshold = std::numeric_limits<double>::infinity();

  /// True when no dirty candidate beat the carried threshold, so the
  /// motif is the previous window's pair shifted into the new
  /// coordinates. On carried slides the distance still equals the
  /// from-scratch answer exactly; only the tie-break among equal-distance
  /// pairs can differ (see the exactness contract above).
  bool carried = false;

  /// The window's motif, in window-relative indices.
  MotifResult motif;

  /// Search counters for this slide alone. `dfd_cells_computed` is the
  /// number the acceptance comparison against a from-scratch search uses.
  MotifStats stats;
};

/// Cumulative engine counters across the monitor's lifetime.
struct StreamEngineStats {
  std::int64_t points_ingested = 0;
  std::int64_t searches = 0;
  std::int64_t seeded_searches = 0;
  /// Fresh ground-metric evaluations paid for matrix maintenance — the
  /// streaming replacement for Build's O(W²) per query.
  std::int64_t ground_distances_computed = 0;
  /// Total DP cells across all searches.
  std::int64_t dfd_cells_computed = 0;
  /// Bound-maintenance rescans caused by evicted minimizers.
  std::int64_t bound_rescans = 0;
};

/// See the file comment. Create() builds a single-trajectory monitor,
/// CreateCross() a two-trajectory one (points pushed per side via
/// Push/PushSecond; searches trigger once both windows are full). The
/// metric must outlive the monitor.
class StreamingMotifMonitor {
 public:
  static StatusOr<StreamingMotifMonitor> Create(const StreamOptions& options,
                                                const GroundMetric& metric);
  static StatusOr<StreamingMotifMonitor> CreateCross(
      const StreamOptions& options, const GroundMetric& metric);

  StreamingMotifMonitor(StreamingMotifMonitor&&) = default;
  StreamingMotifMonitor& operator=(StreamingMotifMonitor&&) = default;

  /// Appends one point (to the first trajectory) and runs a search when
  /// one is due. Returns the slide report when a search ran, std::nullopt
  /// otherwise. The timestamped overloads carry per-point timestamps into
  /// WindowTrajectory(); mixing timestamped and bare pushes on one side
  /// is an error.
  StatusOr<std::optional<StreamUpdate>> Push(const Point& p);
  StatusOr<std::optional<StreamUpdate>> Push(const Point& p, double timestamp);

  /// Cross-mode: appends to the second trajectory.
  StatusOr<std::optional<StreamUpdate>> PushSecond(const Point& p);
  StatusOr<std::optional<StreamUpdate>> PushSecond(const Point& p,
                                                   double timestamp);

  /// Pushes a batch, returning every report the batch triggered.
  StatusOr<std::vector<StreamUpdate>> PushBatch(
      const std::vector<Point>& points);

  /// The current window contents (with timestamps when pushed), in
  /// window-relative order — exactly the trajectory a from-scratch
  /// FindMotif parity check should run on.
  Trajectory WindowTrajectory() const;
  Trajectory SecondWindowTrajectory() const;

  Index window_size() const { return static_cast<Index>(window_.size()); }
  Index second_window_size() const {
    return static_cast<Index>(second_window_.size());
  }
  std::int64_t points_seen() const { return pushed_first_; }

  bool cross_mode() const { return cross_; }
  const StreamOptions& options() const { return options_; }
  const StreamEngineStats& engine_stats() const { return engine_stats_; }

  /// Test hook (single-trajectory mode): the relaxed-bound arrays the
  /// next search would use, for equality checks against a fresh
  /// RelaxedBounds::Build over the window. Only meaningful after at
  /// least one search.
  RelaxedBounds CurrentBounds() const;

 private:
  StreamingMotifMonitor(const StreamOptions& options,
                        const GroundMetric& metric, bool cross);

  /// Appends to one side's window/ring/caches.
  Status Append(int side, const Point& p, const double* timestamp);

  /// True when the cadence (and, in cross mode, both windows being full)
  /// says a search should run now.
  bool SearchDue() const;

  /// The seeded (or cold) relaxed subset search over the current window.
  StatusOr<StreamUpdate> RunSearch();

  MotifOptions SearchMotifOptions() const;

  StreamOptions options_;
  const GroundMetric* metric_;
  bool cross_ = false;
  bool haversine_ = false;

  RingDistanceMatrix ring_;
  IncrementalRelaxedBounds bounds_;

  std::deque<Point> window_;
  std::deque<Point> second_window_;
  std::deque<SphereVec> vecs_;
  std::deque<SphereVec> second_vecs_;
  std::deque<double> times_;
  std::deque<double> second_times_;
  bool timestamped_ = false;
  bool second_timestamped_ = false;

  std::int64_t pushed_first_ = 0;
  std::int64_t pushed_second_ = 0;
  /// Appends (per side) since the last search, for slide accounting.
  Index appended_since_search_first_ = 0;
  Index appended_since_search_second_ = 0;
  bool searched_once_ = false;

  /// Worker pool for threaded searches, created on first use and reused
  /// across slides (workers park between searches).
  std::unique_ptr<ThreadPool> pool_;

  /// Previous search's answer, window-relative at that time.
  bool have_previous_ = false;
  Candidate previous_best_;
  double previous_distance_ = std::numeric_limits<double>::infinity();

  StreamEngineStats engine_stats_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_STREAMING_MOTIF_MONITOR_H_
