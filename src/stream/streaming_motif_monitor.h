#ifndef FRECHET_MOTIF_STREAM_STREAMING_MOTIF_MONITOR_H_
#define FRECHET_MOTIF_STREAM_STREAMING_MOTIF_MONITOR_H_

/// Incremental sliding-window motif maintenance for live trajectory
/// streams.
///
/// The paper treats motif discovery as an offline search over a fixed
/// trajectory; a serving system must instead keep the motif current as
/// points *arrive*. StreamingMotifMonitor ingests points one at a time
/// (or in batches) into a bounded window, maintains the ground-distance
/// matrix incrementally (RingDistanceMatrix: one fresh row/column per
/// append, O(1) eviction), keeps the RelaxedBounds row/column minima up
/// to date under eviction (IncrementalRelaxedBounds), and re-runs the
/// bounding-based subset search per slide with the previous window's
/// motif distance carried forward as the pruning threshold.
///
/// The monitor is a thin policy shell: all per-window state and the
/// search itself live in `WindowState` (stream/window_state.h), which
/// `MotifFleetEngine` reuses to maintain N windows over one arrival
/// loop. The monitor's policy is the simplest one — run the search the
/// moment `WindowState::SearchDue()` turns true.
///
/// ## Exactness
///
/// After every slide the reported motif is **bit-identical** — candidate
/// and distance, ties included — to a from-scratch `FindMotif` over the
/// same window with `StreamOptions::BaselineOptions()` (the relaxed BTM
/// configuration). The argument, in brief:
///
///  * Ring-matrix cells are the same doubles a fresh
///    DistanceMatrix::Build computes, and the maintained bound arrays
///    equal a fresh RelaxedBounds::Build (minima of identical values).
///  * On a seeded slide the search walks the baseline's sorted subset
///    queue (identical (lb, i, j) order) with two sound restrictions.
///    (1) Its initial threshold is T = the previous window's motif
///    distance, achievable because the previous best pair still lies in
///    the window — so the optimum d* <= T. (2) *Clean* candidates
///    (every point surviving from the previous window) were valid
///    candidates there, hence have DFD >= T; only *dirty* candidates —
///    reaching into the freshly appended points — can strictly improve,
///    and a dirty candidate's coupling path crosses every column from
///    its start to the dirty frontier, so subsets whose frontier
///    crossing bound (a suffix-max of Rmin) exceeds T are dropped before
///    any DP work.
///  * Every pruning rule anywhere in the search (queue skip, dirty-
///    frontier drop, endpoint caps, end-cross freeze) discards only
///    candidates *strictly* worse than the running threshold >= d*, so
///    both searches evaluate every d*-achiever that is dirty, and
///    `SearchState::Record` resolves achievers to the canonical
///    (i, j, ie, je) minimum regardless of evaluation order.
///  * Ties across the clean/dirty split resolve by comparing the
///    search's best against the previous optimum shifted into the new
///    window: candidate order is shift-invariant, so the shifted
///    previous pair — the canonical minimum of the *whole* previous
///    window, by induction — is the canonical minimum among clean
///    achievers, and the smaller of the two under (distance, candidate)
///    order is exactly the from-scratch answer. When the previous pair
///    wins, the slide reports it as `carried` without re-deriving it.
///
/// When the previous best pair was evicted (or on the first full
/// window), the slide falls back to an unseeded, unrestricted search —
/// identical to the from-scratch baseline by construction.
///
/// ## Cost per slide
///
/// O(s·W) ground-metric evaluations (s = slide step, W = window) for the
/// fresh matrix cells instead of Build's O(W²), O(s·W) amortized reads
/// for bound maintenance, plus — on seeded slides — one O(W²) pass of
/// plain matrix *reads* (no metric evaluations, no DP arithmetic) to
/// compute the dirty-frontier bounds; the subset enumeration itself is
/// already Θ(W²), so this does not change the slide's asymptotic read
/// cost. In exchange the subset search's DP work
/// (`StreamUpdate::stats.dfd_cells_computed`) is never more than the
/// from-scratch search's: the dirty-frontier restriction drops the
/// subsets far from the new points and the carried threshold prunes the
/// rest from the first evaluation on.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/trajectory.h"
#include "geo/metric.h"
#include "motif/relaxed_bounds.h"
#include "stream/window_state.h"
#include "util/binary_codec.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace frechet_motif {

/// See the file comment. Create() builds a single-trajectory monitor,
/// CreateCross() a two-trajectory one (points pushed per side via
/// Push/PushSecond; searches trigger once both windows are full). The
/// metric must outlive the monitor.
class StreamingMotifMonitor {
 public:
  static StatusOr<StreamingMotifMonitor> Create(const StreamOptions& options,
                                                const GroundMetric& metric);
  static StatusOr<StreamingMotifMonitor> CreateCross(
      const StreamOptions& options, const GroundMetric& metric);

  StreamingMotifMonitor(StreamingMotifMonitor&&) = default;
  StreamingMotifMonitor& operator=(StreamingMotifMonitor&&) = default;

  /// Appends one point (to the first trajectory) and runs a search when
  /// one is due. Returns the slide report when a search ran, std::nullopt
  /// otherwise. The timestamped overloads carry per-point timestamps into
  /// WindowTrajectory(); mixing timestamped and bare pushes on one side
  /// is an error.
  StatusOr<std::optional<StreamUpdate>> Push(const Point& p);
  StatusOr<std::optional<StreamUpdate>> Push(const Point& p, double timestamp);

  /// Cross-mode: appends to the second trajectory.
  StatusOr<std::optional<StreamUpdate>> PushSecond(const Point& p);
  StatusOr<std::optional<StreamUpdate>> PushSecond(const Point& p,
                                                   double timestamp);

  /// Pushes a batch, returning every report the batch triggered.
  StatusOr<std::vector<StreamUpdate>> PushBatch(
      const std::vector<Point>& points);

  /// The current window contents (with timestamps when pushed), in
  /// window-relative order — exactly the trajectory a from-scratch
  /// FindMotif parity check should run on.
  Trajectory WindowTrajectory() const { return state_.WindowTrajectory(); }
  Trajectory SecondWindowTrajectory() const {
    return state_.SecondWindowTrajectory();
  }

  Index window_size() const { return state_.window_size(); }
  Index second_window_size() const { return state_.second_window_size(); }
  std::int64_t points_seen() const { return state_.points_seen(); }

  bool cross_mode() const { return state_.cross(); }
  const StreamOptions& options() const { return state_.options(); }
  const StreamEngineStats& engine_stats() const {
    return state_.engine_stats();
  }

  /// Test hook (single-trajectory mode): the relaxed-bound arrays the
  /// next search would use, for equality checks against a fresh
  /// RelaxedBounds::Build over the window. Only meaningful after at
  /// least one search.
  RelaxedBounds CurrentBounds() const { return state_.CurrentBounds(); }

  /// Serializes the monitor's complete window state (see
  /// WindowState::SaveTo for the bit-exactness contract).
  Status Snapshot(std::string* out) const {
    BinaryWriter writer;
    state_.SaveTo(&writer);
    *out = writer.Take();
    return Status::Ok();
  }

  /// Rebuilds a monitor from Snapshot()'s bytes; `options` must match
  /// the saved geometry (threads may differ). The restored monitor's
  /// future reports are bit-identical to the saved one's.
  static StatusOr<StreamingMotifMonitor> Restore(const StreamOptions& options,
                                                 const GroundMetric& metric,
                                                 std::string_view snapshot) {
    BinaryReader reader(snapshot);
    StatusOr<WindowState> state =
        WindowState::RestoreFrom(&reader, options, metric);
    if (!state.ok()) return state.status();
    if (!reader.AtEnd()) {
      return Status::DataLoss("monitor snapshot has trailing bytes");
    }
    return StreamingMotifMonitor(std::move(state).value());
  }

 private:
  explicit StreamingMotifMonitor(WindowState state);

  /// Runs a search if one is due, wrapping the report in an optional.
  StatusOr<std::optional<StreamUpdate>> MaybeSearch();

  WindowState state_;

  /// Worker pool for threaded searches, created on first use and reused
  /// across slides (workers park between searches).
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_STREAMING_MOTIF_MONITOR_H_
