#ifndef FRECHET_MOTIF_STREAM_SEARCH_SCHEDULER_H_
#define FRECHET_MOTIF_STREAM_SEARCH_SCHEDULER_H_

/// Staleness/dirty-cell search scheduling for a fleet of streaming
/// windows.
///
/// One monitor per stream re-searches on a fixed per-stream cadence; a
/// shared engine instead accumulates *due* windows and decides which to
/// re-search first (and, under a search budget, which to defer — a
/// deferred window simply coalesces its pending slides into one larger
/// search). The scheduler tracks, per stream, the appends since the last
/// search (each append dirties one ring row+column, i.e. Θ(W) matrix
/// cells, so appends order streams exactly as dirty-cell counts do) and
/// a last-searched tick for staleness.
///
/// Priority is deterministic: most dirty appends first, then least
/// recently searched, then smallest stream id. Determinism matters — the
/// fleet's answers are compared bit-for-bit against independent
/// monitors, and a stable drain order keeps every report sequence
/// reproducible.
///
/// The scheduler is pure bookkeeping: it never touches window state, so
/// callers are free to run the searches it orders on any thread.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/trajectory.h"
#include "util/binary_codec.h"
#include "util/status.h"

namespace frechet_motif {

class SearchScheduler {
 public:
  /// Adds a stream; ids are assigned densely (0, 1, ...).
  std::size_t Register();

  std::size_t size() const { return entries_.size(); }

  /// Records one append to `stream` (advances its dirty measure).
  void NoteAppend(std::size_t stream);

  /// Marks `stream` as needing a search. Idempotent.
  void MarkDue(std::size_t stream);

  bool IsDue(std::size_t stream) const { return entries_[stream].due; }
  std::size_t due_count() const { return due_count_; }

  /// The due streams in drain priority order: most dirty appends first,
  /// ties by least recently searched, then by id. Does not clear the due
  /// marks — callers call NoteSearched per stream actually searched (a
  /// budgeted drain searches only a prefix).
  std::vector<std::size_t> DrainOrder() const;

  /// Clears `stream`'s due mark and dirty count and stamps its
  /// staleness tick.
  void NoteSearched(std::size_t stream);

  /// Serializes entries and the staleness tick — drain order is part of
  /// the fleet's determinism contract, so recovery restores it exactly.
  void SaveTo(BinaryWriter* writer) const;

  /// Restores SaveTo's encoding, replacing this scheduler's state.
  Status LoadFrom(BinaryReader* reader);

 private:
  struct Entry {
    Index dirty_appends = 0;
    /// Tick of the last NoteSearched (-1 = never searched: maximally
    /// stale).
    std::int64_t last_searched = -1;
    bool due = false;
  };

  std::vector<Entry> entries_;
  std::size_t due_count_ = 0;
  std::int64_t tick_ = 0;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_STREAM_SEARCH_SCHEDULER_H_
