#include "stream/motif_fleet_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace frechet_motif {

MotifFleetEngine::MotifFleetEngine(const FleetOptions& options,
                                   const GroundMetric& metric)
    : options_(options), metric_(&metric) {}

StatusOr<MotifFleetEngine> MotifFleetEngine::Create(
    const FleetOptions& options, const GroundMetric& metric) {
  // Validate the shared per-stream configuration once, with a throwaway
  // WindowState — AddStream reuses the same path.
  FM_RETURN_IF_ERROR(
      WindowState::Create(options.stream, metric, /*cross=*/false).status());
  if (options.reorder_capacity < 0) {
    return Status::InvalidArgument(
        "FleetOptions::reorder_capacity must be >= 0");
  }
  if (options.max_searches_per_drain < 0) {
    return Status::InvalidArgument(
        "FleetOptions::max_searches_per_drain must be >= 0");
  }
  MotifFleetEngine engine(options, metric);
  if (options.join_epsilon >= 0.0) {
    StatusOr<IncrementalDfdJoin> join =
        IncrementalDfdJoin::Create(options.JoinConfig(), metric);
    if (!join.ok()) return join.status();
    engine.join_.emplace(std::move(join).value());
  }
  return engine;
}

StatusOr<std::size_t> MotifFleetEngine::AddStream() {
  StatusOr<WindowState> state =
      WindowState::Create(options_.stream, *metric_, /*cross=*/false);
  if (!state.ok()) return state.status();
  windows_.push_back(std::move(state).value());
  frontends_.emplace_back(options_.reorder_capacity);
  const std::size_t id = scheduler_.Register();
  return id;
}

Status MotifFleetEngine::CheckStream(std::size_t stream) const {
  if (stream >= windows_.size()) {
    return Status::InvalidArgument("unknown fleet stream id " +
                                   std::to_string(stream));
  }
  return Status::Ok();
}

Status MotifFleetEngine::Deliver(std::size_t stream, const Point& p,
                                 const double* timestamp,
                                 FleetReport* report) {
  // Parity guard (unbudgeted mode only): a due window must be searched
  // before it slides any further, so its search sees exactly the window
  // an independent monitor's would have.
  if (options_.max_searches_per_drain == 0 && scheduler_.IsDue(stream)) {
    FM_RETURN_IF_ERROR(RunOne(stream, report));
  }
  FM_RETURN_IF_ERROR(windows_[stream].Append(0, p, timestamp));
  scheduler_.NoteAppend(stream);
  if (windows_[stream].SearchDue()) scheduler_.MarkDue(stream);
  return Status::Ok();
}

Status MotifFleetEngine::RunOne(std::size_t stream, FleetReport* report) {
  const int threads = ResolveThreadCount(options_.stream.threads);
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  WindowState& window = windows_[stream];
  // A deferred search covers every slide that accumulated while it
  // waited; count the merged ones.
  if (window.searched_once()) {
    const Index pending =
        window.appended_since_search() / options_.stream.slide_step;
    if (pending > 1) coalesced_slides_ += pending - 1;
  }
  StatusOr<StreamUpdate> update =
      window.RunSearch(threads > 1 ? pool_.get() : nullptr);
  if (!update.ok()) return update.status();
  scheduler_.NoteSearched(stream);
  if (join_.has_value()) {
    FM_RETURN_IF_ERROR(join_->Update(stream, window.WindowTrajectory()));
  }
  report->updates.push_back(
      FleetStreamUpdate{stream, std::move(update).value()});
  return Status::Ok();
}

Status MotifFleetEngine::DrainInternal(FleetReport* report) {
  if (scheduler_.due_count() > 0) {
    const std::vector<std::size_t> order = scheduler_.DrainOrder();
    const std::size_t budget =
        options_.max_searches_per_drain > 0
            ? std::min<std::size_t>(
                  order.size(),
                  static_cast<std::size_t>(options_.max_searches_per_drain))
            : order.size();
    for (std::size_t k = 0; k < budget; ++k) {
      FM_RETURN_IF_ERROR(RunOne(order[k], report));
    }
  }
  // One join tick per call: every searched stream — parity-guard
  // searches included — refreshed its snapshot, so the delta covers the
  // whole report.
  if (join_.has_value() && !report->updates.empty()) {
    StatusOr<JoinDelta> delta = join_->Tick();
    if (!delta.ok()) return delta.status();
    report->join_delta = std::move(delta).value();
  }
  return Status::Ok();
}

StatusOr<FleetReport> MotifFleetEngine::Ingest(
    const std::vector<FleetArrival>& batch) {
  FleetReport report;
  // One sink for the whole batch (a std::function per point would heap-
  // allocate on the hot arrival loop); the captured stream id is advanced
  // per arrival.
  std::size_t stream = 0;
  const IngestFrontend::Sink sink = [&](const Point& p,
                                        const double* ts) -> Status {
    return Deliver(stream, p, ts, &report);
  };
  for (const FleetArrival& arrival : batch) {
    FM_RETURN_IF_ERROR(CheckStream(arrival.stream));
    stream = arrival.stream;
    FM_RETURN_IF_ERROR(frontends_[stream].Offer(
        arrival.point, arrival.has_timestamp ? &arrival.timestamp : nullptr,
        sink));
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::Push(std::size_t stream,
                                             const Point& p) {
  return Ingest({FleetArrival{stream, p, false, 0.0}});
}

StatusOr<FleetReport> MotifFleetEngine::Push(std::size_t stream,
                                             const Point& p,
                                             double timestamp) {
  return Ingest({FleetArrival{stream, p, true, timestamp}});
}

StatusOr<FleetReport> MotifFleetEngine::Drain() {
  FleetReport report;
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::Flush() {
  FleetReport report;
  std::size_t stream = 0;
  const IngestFrontend::Sink sink = [&](const Point& p,
                                        const double* ts) -> Status {
    return Deliver(stream, p, ts, &report);
  };
  for (stream = 0; stream < frontends_.size(); ++stream) {
    FM_RETURN_IF_ERROR(frontends_[stream].Flush(sink));
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

FleetStats MotifFleetEngine::stats() const {
  FleetStats stats;
  stats.streams = static_cast<std::int64_t>(windows_.size());
  for (const WindowState& window : windows_) {
    const StreamEngineStats& e = window.engine_stats();
    stats.points_ingested += e.points_ingested;
    stats.searches += e.searches;
    stats.seeded_searches += e.seeded_searches;
    stats.ground_distances_computed += e.ground_distances_computed;
    stats.dfd_cells_computed += e.dfd_cells_computed;
  }
  for (const IngestFrontend& frontend : frontends_) {
    stats.reordered += frontend.stats().reordered;
    stats.late_dropped += frontend.stats().late_dropped;
  }
  stats.coalesced_slides = coalesced_slides_;
  return stats;
}

}  // namespace frechet_motif
