#include "stream/motif_fleet_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace frechet_motif {

MotifFleetEngine::MotifFleetEngine(const FleetOptions& options,
                                   const GroundMetric& metric)
    : options_(options), metric_(&metric) {}

StatusOr<MotifFleetEngine> MotifFleetEngine::Create(
    const FleetOptions& options, const GroundMetric& metric) {
  // Validate the shared per-stream configuration once, with a throwaway
  // WindowState — AddStream reuses the same path.
  FM_RETURN_IF_ERROR(
      WindowState::Create(options.stream, metric, /*cross=*/false).status());
  if (options.reorder_capacity < 0) {
    return Status::InvalidArgument(
        "FleetOptions::reorder_capacity must be >= 0");
  }
  if (options.max_searches_per_drain < 0) {
    return Status::InvalidArgument(
        "FleetOptions::max_searches_per_drain must be >= 0");
  }
  MotifFleetEngine engine(options, metric);
  if (options.join_epsilon >= 0.0) {
    StatusOr<IncrementalDfdJoin> join =
        IncrementalDfdJoin::Create(options.JoinConfig(), metric);
    if (!join.ok()) return join.status();
    engine.join_.emplace(std::move(join).value());
  }
  return engine;
}

StatusOr<std::size_t> MotifFleetEngine::AddStream() {
  StatusOr<WindowState> state =
      WindowState::Create(options_.stream, *metric_, /*cross=*/false);
  if (!state.ok()) return state.status();
  windows_.push_back(std::move(state).value());
  frontends_.emplace_back(options_.reorder_capacity);
  const std::size_t id = scheduler_.Register();
  return id;
}

Status MotifFleetEngine::CheckStream(std::size_t stream) const {
  if (stream >= windows_.size()) {
    return Status::InvalidArgument("unknown fleet stream id " +
                                   std::to_string(stream));
  }
  return Status::Ok();
}

Status MotifFleetEngine::Deliver(std::size_t stream, const Point& p,
                                 const double* timestamp,
                                 FleetReport* report) {
  // Parity guard (unbudgeted mode only): a due window must be searched
  // before it slides any further, so its search sees exactly the window
  // an independent monitor's would have.
  if (options_.max_searches_per_drain == 0 && scheduler_.IsDue(stream)) {
    FM_RETURN_IF_ERROR(RunOne(stream, report));
  }
  FM_RETURN_IF_ERROR(windows_[stream].Append(0, p, timestamp));
  scheduler_.NoteAppend(stream);
  if (windows_[stream].SearchDue()) scheduler_.MarkDue(stream);
  return Status::Ok();
}

Status MotifFleetEngine::RunOne(std::size_t stream, FleetReport* report) {
  const int threads = ResolveThreadCount(options_.stream.threads);
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  WindowState& window = windows_[stream];
  // A deferred search covers every slide that accumulated while it
  // waited; count the merged ones.
  if (window.searched_once()) {
    const Index pending =
        window.appended_since_search() / options_.stream.slide_step;
    if (pending > 1) coalesced_slides_ += pending - 1;
  }
  StatusOr<StreamUpdate> update =
      window.RunSearch(threads > 1 ? pool_.get() : nullptr);
  if (!update.ok()) return update.status();
  scheduler_.NoteSearched(stream);
  if (join_.has_value()) {
    FM_RETURN_IF_ERROR(join_->Update(stream, window.WindowTrajectory()));
  }
  report->updates.push_back(
      FleetStreamUpdate{stream, std::move(update).value()});
  return Status::Ok();
}

Status MotifFleetEngine::RunManyParallel(const std::vector<std::size_t>& order,
                                         std::size_t budget,
                                         FleetReport* report) {
  const int threads = ResolveThreadCount(options_.stream.threads);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads);
  // Coalescing accounting reads appended_since_search(), which RunSearch
  // resets — capture it for every window before any search runs.
  std::vector<Index> pending(budget, 0);
  for (std::size_t k = 0; k < budget; ++k) {
    const WindowState& window = windows_[order[k]];
    if (window.searched_once()) {
      pending[k] =
          window.appended_since_search() / options_.stream.slide_step;
    }
  }
  // Compute phase: lane k searches its static chunk of the drain order,
  // one whole window at a time. Each search runs serially inside its lane
  // (the pool is occupied by the fan-out itself and is not re-entrant)
  // and touches only its own window's state, so lanes share nothing.
  //
  // Synchronization here is the RunOnAllLanes barrier, not a lock:
  // lanes write disjoint `updates` slots, and the merge below starts
  // only after every lane has returned (ThreadPool joins on its
  // GUARDED_BY state, see util/thread_pool.h). Clang's thread-safety
  // analysis has no barrier concept, so this invariant stays enforced
  // dynamically by the TSan leg over tests/fleet_drain_test.cc.
  std::vector<std::optional<StatusOr<StreamUpdate>>> updates(budget);
  pool_->RunOnAllLanes([&](int lane) {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    ThreadPool::ChunkRange(static_cast<std::int64_t>(budget),
                           pool_->threads(), lane, &begin, &end);
    for (std::int64_t k = begin; k < end; ++k) {
      updates[static_cast<std::size_t>(k)].emplace(
          windows_[order[static_cast<std::size_t>(k)]].RunSearch(nullptr));
    }
  });
  // Merge phase: the serial loop's side effects, in drain order. Errors
  // surface at the same deterministic position the serial loop would
  // report them.
  for (std::size_t k = 0; k < budget; ++k) {
    StatusOr<StreamUpdate>& update = *updates[k];
    if (!update.ok()) return update.status();
    if (pending[k] > 1) coalesced_slides_ += pending[k] - 1;
    scheduler_.NoteSearched(order[k]);
    if (join_.has_value()) {
      FM_RETURN_IF_ERROR(
          join_->Update(order[k], windows_[order[k]].WindowTrajectory()));
    }
    report->updates.push_back(
        FleetStreamUpdate{order[k], std::move(update).value()});
  }
  return Status::Ok();
}

Status MotifFleetEngine::DrainInternal(FleetReport* report) {
  if (scheduler_.due_count() > 0) {
    const std::vector<std::size_t> order = scheduler_.DrainOrder();
    const std::size_t budget =
        options_.max_searches_per_drain > 0
            ? std::min<std::size_t>(
                  order.size(),
                  static_cast<std::size_t>(options_.max_searches_per_drain))
            : order.size();
    // Two ways to spend the worker pool on a drain: several due windows
    // amortize best with one window per lane (independent searches, no
    // intra-search synchronization); a single due window keeps the
    // intra-search parallelism RunOne provides.
    if (ResolveThreadCount(options_.stream.threads) > 1 && budget > 1) {
      FM_RETURN_IF_ERROR(RunManyParallel(order, budget, report));
    } else {
      for (std::size_t k = 0; k < budget; ++k) {
        FM_RETURN_IF_ERROR(RunOne(order[k], report));
      }
    }
  }
  // One join tick per call: every searched stream — parity-guard
  // searches included — refreshed its snapshot, so the delta covers the
  // whole report.
  if (join_.has_value() && !report->updates.empty()) {
    StatusOr<JoinDelta> delta = join_->Tick();
    if (!delta.ok()) return delta.status();
    report->join_delta = std::move(delta).value();
  }
  return Status::Ok();
}

StatusOr<FleetReport> MotifFleetEngine::Ingest(
    const std::vector<FleetArrival>& batch) {
  FleetReport report;
  // One sink for the whole batch (a std::function per point would heap-
  // allocate on the hot arrival loop); the captured stream id is advanced
  // per arrival.
  std::size_t stream = 0;
  const IngestFrontend::Sink sink = [&](const Point& p,
                                        const double* ts) -> Status {
    return Deliver(stream, p, ts, &report);
  };
  for (const FleetArrival& arrival : batch) {
    FM_RETURN_IF_ERROR(CheckStream(arrival.stream));
    stream = arrival.stream;
    FM_RETURN_IF_ERROR(frontends_[stream].Offer(
        arrival.point, arrival.has_timestamp ? &arrival.timestamp : nullptr,
        sink));
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::Push(std::size_t stream,
                                             const Point& p) {
  return Ingest({FleetArrival{stream, p, false, 0.0}});
}

StatusOr<FleetReport> MotifFleetEngine::Push(std::size_t stream,
                                             const Point& p,
                                             double timestamp) {
  return Ingest({FleetArrival{stream, p, true, timestamp}});
}

StatusOr<FleetReport> MotifFleetEngine::Drain() {
  FleetReport report;
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::Flush() {
  FleetReport report;
  std::size_t stream = 0;
  const IngestFrontend::Sink sink = [&](const Point& p,
                                        const double* ts) -> Status {
    return Deliver(stream, p, ts, &report);
  };
  for (stream = 0; stream < frontends_.size(); ++stream) {
    FM_RETURN_IF_ERROR(frontends_[stream].Flush(sink));
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::ReplayReleased(
    const std::vector<FleetArrival>& batch) {
  FleetReport report;
  for (const FleetArrival& arrival : batch) {
    FM_RETURN_IF_ERROR(CheckStream(arrival.stream));
    const double* ts = arrival.has_timestamp ? &arrival.timestamp : nullptr;
    FM_RETURN_IF_ERROR(Deliver(arrival.stream, arrival.point, ts, &report));
    frontends_[arrival.stream].NoteReplayedRelease(ts);
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

namespace {

/// Fleet-manifest version; bump on layout change. The durable layer
/// wraps this blob in its own versioned, checksummed container — this
/// inner tag is a cheap defense against a manifest reaching Restore
/// through some other path.
constexpr std::uint32_t kFleetManifestVersion = 1;

}  // namespace

Status MotifFleetEngine::Snapshot(std::string* out) const {
  BinaryWriter writer;
  writer.PutU32(kFleetManifestVersion);
  // Options echo: everything that shapes state evolution. Thread count
  // is excluded (bit-identical results either way); the search budget
  // is included — it changes which searches defer, i.e. the state.
  writer.PutI32(options_.stream.window_length);
  writer.PutI32(options_.stream.slide_step);
  writer.PutI32(options_.stream.min_length_xi);
  writer.PutDouble(options_.join_epsilon);
  writer.PutI32(options_.reorder_capacity);
  writer.PutI32(options_.max_searches_per_drain);

  writer.PutU64(windows_.size());
  for (std::size_t id = 0; id < windows_.size(); ++id) {
    windows_[id].SaveTo(&writer);
    frontends_[id].SaveTo(&writer);
  }
  scheduler_.SaveTo(&writer);
  writer.PutI64(coalesced_slides_);
  writer.PutBool(join_.has_value());
  if (join_.has_value()) join_->SaveTo(&writer);
  *out = writer.Take();
  return Status::Ok();
}

StatusOr<MotifFleetEngine> MotifFleetEngine::Restore(
    const FleetOptions& options, const GroundMetric& metric,
    std::string_view snapshot) {
  BinaryReader reader(snapshot);
  std::uint32_t version = 0;
  FM_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kFleetManifestVersion) {
    return Status::DataLoss("unsupported fleet manifest version " +
                            std::to_string(version));
  }
  Index window_length = 0;
  Index slide_step = 0;
  Index xi = 0;
  double join_epsilon = 0.0;
  Index reorder_capacity = 0;
  std::int32_t max_searches = 0;
  FM_RETURN_IF_ERROR(reader.GetI32(&window_length));
  FM_RETURN_IF_ERROR(reader.GetI32(&slide_step));
  FM_RETURN_IF_ERROR(reader.GetI32(&xi));
  FM_RETURN_IF_ERROR(reader.GetDouble(&join_epsilon));
  FM_RETURN_IF_ERROR(reader.GetI32(&reorder_capacity));
  FM_RETURN_IF_ERROR(reader.GetI32(&max_searches));
  const bool join_enabled_saved = join_epsilon >= 0.0;
  const bool join_enabled_now = options.join_epsilon >= 0.0;
  if (window_length != options.stream.window_length ||
      slide_step != options.stream.slide_step ||
      xi != options.stream.min_length_xi ||
      join_epsilon != options.join_epsilon ||
      join_enabled_saved != join_enabled_now ||
      reorder_capacity != options.reorder_capacity ||
      max_searches != options.max_searches_per_drain) {
    return Status::FailedPrecondition(
        "fleet snapshot was taken under a different configuration");
  }

  StatusOr<MotifFleetEngine> created = Create(options, metric);
  if (!created.ok()) return created.status();
  MotifFleetEngine engine = std::move(created).value();

  std::uint64_t streams = 0;
  FM_RETURN_IF_ERROR(reader.GetU64(&streams));
  for (std::uint64_t id = 0; id < streams; ++id) {
    StatusOr<WindowState> window =
        WindowState::RestoreFrom(&reader, options.stream, metric);
    if (!window.ok()) return window.status();
    if (window.value().cross()) {
      return Status::DataLoss("fleet manifest holds a cross-mode window");
    }
    engine.windows_.push_back(std::move(window).value());
    engine.frontends_.emplace_back(options.reorder_capacity);
    FM_RETURN_IF_ERROR(engine.frontends_.back().LoadFrom(&reader));
  }
  FM_RETURN_IF_ERROR(engine.scheduler_.LoadFrom(&reader));
  if (engine.scheduler_.size() != engine.windows_.size()) {
    return Status::DataLoss(
        "fleet manifest scheduler does not cover its streams");
  }
  FM_RETURN_IF_ERROR(reader.GetI64(&engine.coalesced_slides_));
  bool join_present = false;
  FM_RETURN_IF_ERROR(reader.GetBool(&join_present));
  if (join_present != engine.join_.has_value()) {
    return Status::DataLoss(
        "fleet manifest join presence contradicts its options echo");
  }
  if (join_present) FM_RETURN_IF_ERROR(engine.join_->LoadFrom(&reader));
  if (!reader.AtEnd()) {
    return Status::DataLoss("fleet manifest has trailing bytes");
  }
  return engine;
}

FleetStats MotifFleetEngine::stats() const {
  FleetStats stats;
  stats.streams = static_cast<std::int64_t>(windows_.size());
  for (const WindowState& window : windows_) {
    const StreamEngineStats& e = window.engine_stats();
    stats.points_ingested += e.points_ingested;
    stats.searches += e.searches;
    stats.seeded_searches += e.seeded_searches;
    stats.ground_distances_computed += e.ground_distances_computed;
    stats.dfd_cells_computed += e.dfd_cells_computed;
  }
  for (const IngestFrontend& frontend : frontends_) {
    stats.reordered += frontend.stats().reordered;
    stats.late_dropped += frontend.stats().late_dropped;
    stats.reorder_buffered += static_cast<std::int64_t>(frontend.buffered());
    stats.reorder_buffered_peak =
        std::max(stats.reorder_buffered_peak, frontend.stats().buffered_peak);
  }
  stats.coalesced_slides = coalesced_slides_;
  return stats;
}

}  // namespace frechet_motif
