#include "stream/motif_fleet_engine.h"

#include <algorithm>
#include <string>
#include <utility>

namespace frechet_motif {

MotifFleetEngine::MotifFleetEngine(const FleetOptions& options,
                                   const GroundMetric& metric)
    : options_(options), metric_(&metric) {}

StatusOr<MotifFleetEngine> MotifFleetEngine::Create(
    const FleetOptions& options, const GroundMetric& metric) {
  // Validate the shared per-stream configuration once, with a throwaway
  // WindowState — AddStream reuses the same path.
  FM_RETURN_IF_ERROR(
      WindowState::Create(options.stream, metric, /*cross=*/false).status());
  if (options.reorder_capacity < 0) {
    return Status::InvalidArgument(
        "FleetOptions::reorder_capacity must be >= 0");
  }
  if (options.max_searches_per_drain < 0) {
    return Status::InvalidArgument(
        "FleetOptions::max_searches_per_drain must be >= 0");
  }
  MotifFleetEngine engine(options, metric);
  if (options.join_epsilon >= 0.0) {
    StatusOr<IncrementalDfdJoin> join =
        IncrementalDfdJoin::Create(options.JoinConfig(), metric);
    if (!join.ok()) return join.status();
    engine.join_.emplace(std::move(join).value());
  }
  return engine;
}

StatusOr<std::size_t> MotifFleetEngine::AddMember(
    const StreamOptions& stream_options, bool cross) {
  StatusOr<WindowState> state =
      WindowState::Create(stream_options, *metric_, cross);
  if (!state.ok()) return state.status();
  const std::size_t member = windows_.size();
  const std::size_t primary = stream_map_.size();
  windows_.push_back(std::move(state).value());
  member_options_.push_back(stream_options);
  member_primary_.push_back(primary);
  stream_map_.push_back(StreamRef{member, 0});
  frontends_.emplace_back(options_.reorder_capacity);
  if (cross) {
    stream_map_.push_back(StreamRef{member, 1});
    frontends_.emplace_back(options_.reorder_capacity);
  }
  scheduler_.Register();
  return member;
}

StatusOr<std::size_t> MotifFleetEngine::AddStream() {
  return AddStream(options_.stream);
}

StatusOr<std::size_t> MotifFleetEngine::AddStream(
    const StreamOptions& stream_options) {
  StatusOr<std::size_t> member = AddMember(stream_options, /*cross=*/false);
  if (!member.ok()) return member.status();
  return member_primary_[member.value()];
}

StatusOr<std::pair<std::size_t, std::size_t>> MotifFleetEngine::AddCrossPair() {
  return AddCrossPair(options_.stream);
}

StatusOr<std::pair<std::size_t, std::size_t>> MotifFleetEngine::AddCrossPair(
    const StreamOptions& stream_options) {
  StatusOr<std::size_t> member = AddMember(stream_options, /*cross=*/true);
  if (!member.ok()) return member.status();
  const std::size_t primary = member_primary_[member.value()];
  return std::make_pair(primary, primary + 1);
}

Status MotifFleetEngine::CheckStream(std::size_t stream) const {
  if (stream >= stream_map_.size()) {
    return Status::InvalidArgument("unknown fleet stream id " +
                                   std::to_string(stream));
  }
  return Status::Ok();
}

Status MotifFleetEngine::Deliver(std::size_t stream, const Point& p,
                                 const double* timestamp,
                                 FleetReport* report) {
  const StreamRef ref = stream_map_[stream];
  // Parity guard (unbudgeted mode only): a due window must be searched
  // before it slides any further, so its search sees exactly the window
  // an independent monitor's would have.
  if (options_.max_searches_per_drain == 0 && scheduler_.IsDue(ref.member)) {
    FM_RETURN_IF_ERROR(RunOne(ref.member, report));
  }
  FM_RETURN_IF_ERROR(windows_[ref.member].Append(ref.side, p, timestamp));
  scheduler_.NoteAppend(ref.member);
  if (windows_[ref.member].SearchDue()) scheduler_.MarkDue(ref.member);
  return Status::Ok();
}

Status MotifFleetEngine::RunOne(std::size_t member, FleetReport* report) {
  const int threads = ResolveThreadCount(options_.stream.threads);
  if (threads > 1 && pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(threads);
  }
  WindowState& window = windows_[member];
  // A deferred search covers every slide that accumulated while it
  // waited; count the merged ones.
  if (window.searched_once()) {
    const Index pending =
        window.appended_since_search() / member_options_[member].slide_step;
    if (pending > 1) coalesced_slides_ += pending - 1;
  }
  StatusOr<StreamUpdate> update =
      window.RunSearch(threads > 1 ? pool_.get() : nullptr);
  if (!update.ok()) return update.status();
  scheduler_.NoteSearched(member);
  if (join_.has_value()) {
    FM_RETURN_IF_ERROR(join_->Update(member, window.WindowTrajectory()));
  }
  report->updates.push_back(
      FleetStreamUpdate{member_primary_[member], std::move(update).value()});
  return Status::Ok();
}

Status MotifFleetEngine::RunManyParallel(const std::vector<std::size_t>& order,
                                         std::size_t budget,
                                         FleetReport* report) {
  const int threads = ResolveThreadCount(options_.stream.threads);
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(threads);
  // Coalescing accounting reads appended_since_search(), which RunSearch
  // resets — capture it for every window before any search runs.
  std::vector<Index> pending(budget, 0);
  for (std::size_t k = 0; k < budget; ++k) {
    const WindowState& window = windows_[order[k]];
    if (window.searched_once()) {
      pending[k] =
          window.appended_since_search() / member_options_[order[k]].slide_step;
    }
  }
  // Compute phase: lane k searches its static chunk of the drain order,
  // one whole window at a time. Each search runs serially inside its lane
  // (the pool is occupied by the fan-out itself and is not re-entrant)
  // and touches only its own window's state, so lanes share nothing.
  //
  // Synchronization here is the RunOnAllLanes barrier, not a lock:
  // lanes write disjoint `updates` slots, and the merge below starts
  // only after every lane has returned (ThreadPool joins on its
  // GUARDED_BY state, see util/thread_pool.h). Clang's thread-safety
  // analysis has no barrier concept, so this invariant stays enforced
  // dynamically by the TSan leg over tests/fleet_drain_test.cc.
  std::vector<std::optional<StatusOr<StreamUpdate>>> updates(budget);
  pool_->RunOnAllLanes([&](int lane) {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    ThreadPool::ChunkRange(static_cast<std::int64_t>(budget),
                           pool_->threads(), lane, &begin, &end);
    for (std::int64_t k = begin; k < end; ++k) {
      updates[static_cast<std::size_t>(k)].emplace(
          windows_[order[static_cast<std::size_t>(k)]].RunSearch(nullptr));
    }
  });
  // Merge phase: the serial loop's side effects, in drain order. Errors
  // surface at the same deterministic position the serial loop would
  // report them.
  for (std::size_t k = 0; k < budget; ++k) {
    StatusOr<StreamUpdate>& update = *updates[k];
    if (!update.ok()) return update.status();
    if (pending[k] > 1) coalesced_slides_ += pending[k] - 1;
    scheduler_.NoteSearched(order[k]);
    if (join_.has_value()) {
      FM_RETURN_IF_ERROR(
          join_->Update(order[k], windows_[order[k]].WindowTrajectory()));
    }
    report->updates.push_back(FleetStreamUpdate{member_primary_[order[k]],
                                                std::move(update).value()});
  }
  return Status::Ok();
}

Status MotifFleetEngine::DrainInternal(FleetReport* report) {
  if (scheduler_.due_count() > 0) {
    const std::vector<std::size_t> order = scheduler_.DrainOrder();
    const std::size_t budget =
        options_.max_searches_per_drain > 0
            ? std::min<std::size_t>(
                  order.size(),
                  static_cast<std::size_t>(options_.max_searches_per_drain))
            : order.size();
    // Two ways to spend the worker pool on a drain: several due windows
    // amortize best with one window per lane (independent searches, no
    // intra-search synchronization); a single due window keeps the
    // intra-search parallelism RunOne provides.
    if (ResolveThreadCount(options_.stream.threads) > 1 && budget > 1) {
      FM_RETURN_IF_ERROR(RunManyParallel(order, budget, report));
    } else {
      for (std::size_t k = 0; k < budget; ++k) {
        FM_RETURN_IF_ERROR(RunOne(order[k], report));
      }
    }
  }
  // One join tick per call: every searched stream — parity-guard
  // searches included — refreshed its snapshot, so the delta covers the
  // whole report.
  if (join_.has_value() && !report->updates.empty()) {
    StatusOr<JoinDelta> delta = join_->Tick();
    if (!delta.ok()) return delta.status();
    report->join_delta = std::move(delta).value();
  }
  return Status::Ok();
}

StatusOr<FleetReport> MotifFleetEngine::Ingest(
    const std::vector<FleetArrival>& batch) {
  FleetReport report;
  // One sink for the whole batch (a std::function per point would heap-
  // allocate on the hot arrival loop); the captured stream id is advanced
  // per arrival.
  std::size_t stream = 0;
  const IngestFrontend::Sink sink = [&](const Point& p,
                                        const double* ts) -> Status {
    return Deliver(stream, p, ts, &report);
  };
  for (const FleetArrival& arrival : batch) {
    FM_RETURN_IF_ERROR(CheckStream(arrival.stream));
    stream = arrival.stream;
    FM_RETURN_IF_ERROR(frontends_[stream].Offer(
        arrival.point, arrival.has_timestamp ? &arrival.timestamp : nullptr,
        sink));
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::Push(std::size_t stream,
                                             const Point& p) {
  return Ingest({FleetArrival{stream, p, false, 0.0}});
}

StatusOr<FleetReport> MotifFleetEngine::Push(std::size_t stream,
                                             const Point& p,
                                             double timestamp) {
  return Ingest({FleetArrival{stream, p, true, timestamp}});
}

StatusOr<FleetReport> MotifFleetEngine::Drain() {
  FleetReport report;
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::Flush() {
  FleetReport report;
  std::size_t stream = 0;
  const IngestFrontend::Sink sink = [&](const Point& p,
                                        const double* ts) -> Status {
    return Deliver(stream, p, ts, &report);
  };
  for (stream = 0; stream < frontends_.size(); ++stream) {
    FM_RETURN_IF_ERROR(frontends_[stream].Flush(sink));
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

StatusOr<FleetReport> MotifFleetEngine::ReplayReleased(
    const std::vector<FleetArrival>& batch) {
  FleetReport report;
  for (const FleetArrival& arrival : batch) {
    FM_RETURN_IF_ERROR(CheckStream(arrival.stream));
    const double* ts = arrival.has_timestamp ? &arrival.timestamp : nullptr;
    FM_RETURN_IF_ERROR(Deliver(arrival.stream, arrival.point, ts, &report));
    frontends_[arrival.stream].NoteReplayedRelease(ts);
  }
  FM_RETURN_IF_ERROR(DrainInternal(&report));
  return report;
}

namespace {

/// Fleet-manifest version; bump on layout change. The durable layer
/// wraps this blob in its own versioned, checksummed container — this
/// inner tag is a cheap defense against a manifest reaching Restore
/// through some other path. v2: heterogeneous members (per-member
/// StreamOptions echo, cross pairs, per-stream-id frontends) and the
/// approximation-ε options field.
constexpr std::uint32_t kFleetManifestVersion = 2;

}  // namespace

Status MotifFleetEngine::Snapshot(std::string* out) const {
  BinaryWriter writer;
  writer.PutU32(kFleetManifestVersion);
  // Options echo: everything that shapes state evolution. Thread count
  // is excluded (bit-identical results either way); the search budget
  // is included — it changes which searches defer, i.e. the state.
  writer.PutI32(options_.stream.window_length);
  writer.PutI32(options_.stream.slide_step);
  writer.PutI32(options_.stream.min_length_xi);
  writer.PutDouble(options_.stream.approximation_epsilon);
  writer.PutDouble(options_.join_epsilon);
  writer.PutI32(options_.reorder_capacity);
  writer.PutI32(options_.max_searches_per_drain);

  // Members: each with its own options echo (so Restore can rebuild a
  // heterogeneous fleet) followed by its window state. The stream-id
  // map is derived, not stored — ids were allocated in member order,
  // one per single member, two per cross member.
  writer.PutU64(windows_.size());
  for (std::size_t m = 0; m < windows_.size(); ++m) {
    writer.PutBool(windows_[m].cross());
    writer.PutI32(member_options_[m].window_length);
    writer.PutI32(member_options_[m].slide_step);
    writer.PutI32(member_options_[m].min_length_xi);
    writer.PutDouble(member_options_[m].approximation_epsilon);
    windows_[m].SaveTo(&writer);
  }
  writer.PutU64(frontends_.size());
  for (const IngestFrontend& frontend : frontends_) {
    frontend.SaveTo(&writer);
  }
  scheduler_.SaveTo(&writer);
  writer.PutI64(coalesced_slides_);
  writer.PutBool(join_.has_value());
  if (join_.has_value()) join_->SaveTo(&writer);
  *out = writer.Take();
  return Status::Ok();
}

StatusOr<MotifFleetEngine> MotifFleetEngine::Restore(
    const FleetOptions& options, const GroundMetric& metric,
    std::string_view snapshot) {
  BinaryReader reader(snapshot);
  std::uint32_t version = 0;
  FM_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kFleetManifestVersion) {
    return Status::DataLoss("unsupported fleet manifest version " +
                            std::to_string(version));
  }
  Index window_length = 0;
  Index slide_step = 0;
  Index xi = 0;
  double approx_eps = 0.0;
  double join_epsilon = 0.0;
  Index reorder_capacity = 0;
  std::int32_t max_searches = 0;
  FM_RETURN_IF_ERROR(reader.GetI32(&window_length));
  FM_RETURN_IF_ERROR(reader.GetI32(&slide_step));
  FM_RETURN_IF_ERROR(reader.GetI32(&xi));
  FM_RETURN_IF_ERROR(reader.GetDouble(&approx_eps));
  FM_RETURN_IF_ERROR(reader.GetDouble(&join_epsilon));
  FM_RETURN_IF_ERROR(reader.GetI32(&reorder_capacity));
  FM_RETURN_IF_ERROR(reader.GetI32(&max_searches));
  const bool join_enabled_saved = join_epsilon >= 0.0;
  const bool join_enabled_now = options.join_epsilon >= 0.0;
  if (window_length != options.stream.window_length ||
      slide_step != options.stream.slide_step ||
      xi != options.stream.min_length_xi ||
      approx_eps != options.stream.approximation_epsilon ||
      join_epsilon != options.join_epsilon ||
      join_enabled_saved != join_enabled_now ||
      reorder_capacity != options.reorder_capacity ||
      max_searches != options.max_searches_per_drain) {
    return Status::FailedPrecondition(
        "fleet snapshot was taken under a different configuration");
  }

  StatusOr<MotifFleetEngine> created = Create(options, metric);
  if (!created.ok()) return created.status();
  MotifFleetEngine engine = std::move(created).value();

  std::uint64_t members = 0;
  FM_RETURN_IF_ERROR(reader.GetU64(&members));
  for (std::uint64_t m = 0; m < members; ++m) {
    bool cross = false;
    StreamOptions member_options = options.stream;  // threads: runtime choice
    FM_RETURN_IF_ERROR(reader.GetBool(&cross));
    FM_RETURN_IF_ERROR(reader.GetI32(&member_options.window_length));
    FM_RETURN_IF_ERROR(reader.GetI32(&member_options.slide_step));
    FM_RETURN_IF_ERROR(reader.GetI32(&member_options.min_length_xi));
    FM_RETURN_IF_ERROR(
        reader.GetDouble(&member_options.approximation_epsilon));
    StatusOr<WindowState> window =
        WindowState::RestoreFrom(&reader, member_options, metric);
    if (!window.ok()) return window.status();
    if (window.value().cross() != cross) {
      return Status::DataLoss(
          "fleet manifest member mode contradicts its window state");
    }
    const std::size_t member = engine.windows_.size();
    engine.member_primary_.push_back(engine.stream_map_.size());
    engine.stream_map_.push_back(StreamRef{member, 0});
    if (cross) engine.stream_map_.push_back(StreamRef{member, 1});
    engine.windows_.push_back(std::move(window).value());
    engine.member_options_.push_back(member_options);
  }
  std::uint64_t frontend_count = 0;
  FM_RETURN_IF_ERROR(reader.GetU64(&frontend_count));
  if (frontend_count != engine.stream_map_.size()) {
    return Status::DataLoss(
        "fleet manifest frontends do not cover its stream ids");
  }
  for (std::uint64_t id = 0; id < frontend_count; ++id) {
    engine.frontends_.emplace_back(options.reorder_capacity);
    FM_RETURN_IF_ERROR(engine.frontends_.back().LoadFrom(&reader));
  }
  FM_RETURN_IF_ERROR(engine.scheduler_.LoadFrom(&reader));
  if (engine.scheduler_.size() != engine.windows_.size()) {
    return Status::DataLoss(
        "fleet manifest scheduler does not cover its members");
  }
  FM_RETURN_IF_ERROR(reader.GetI64(&engine.coalesced_slides_));
  bool join_present = false;
  FM_RETURN_IF_ERROR(reader.GetBool(&join_present));
  if (join_present != engine.join_.has_value()) {
    return Status::DataLoss(
        "fleet manifest join presence contradicts its options echo");
  }
  if (join_present) FM_RETURN_IF_ERROR(engine.join_->LoadFrom(&reader));
  if (!reader.AtEnd()) {
    return Status::DataLoss("fleet manifest has trailing bytes");
  }
  return engine;
}

FleetStats MotifFleetEngine::stats() const {
  FleetStats stats;
  stats.streams = static_cast<std::int64_t>(stream_map_.size());
  for (const WindowState& window : windows_) {
    const StreamEngineStats& e = window.engine_stats();
    stats.points_ingested += e.points_ingested;
    stats.searches += e.searches;
    stats.seeded_searches += e.seeded_searches;
    stats.ground_distances_computed += e.ground_distances_computed;
    stats.dfd_cells_computed += e.dfd_cells_computed;
  }
  for (const IngestFrontend& frontend : frontends_) {
    stats.reordered += frontend.stats().reordered;
    stats.late_dropped += frontend.stats().late_dropped;
    stats.reorder_buffered += static_cast<std::int64_t>(frontend.buffered());
    stats.reorder_buffered_peak =
        std::max(stats.reorder_buffered_peak, frontend.stats().buffered_peak);
  }
  stats.coalesced_slides = coalesced_slides_;
  return stats;
}

}  // namespace frechet_motif
