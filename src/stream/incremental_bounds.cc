#include "stream/incremental_bounds.h"

#include <algorithm>
#include <limits>

namespace frechet_motif {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Minimum (value, achiever) of column `col` over logical rows
/// [row_lo, row_hi]; (inf, -1) when the range is empty.
void ColumnMin(const RingDistanceMatrix& dg, Index col, Index row_lo,
               Index row_hi, double* value, Index* arg) {
  *value = kInf;
  *arg = -1;
  for (Index c = row_lo; c <= row_hi; ++c) {
    const double d = dg.Distance(c, col);
    if (d < *value) {
      *value = d;
      *arg = c;
    }
  }
}

/// Row counterpart of ColumnMin.
void RowMin(const RingDistanceMatrix& dg, Index row, Index col_lo,
            Index col_hi, double* value, Index* arg) {
  *value = kInf;
  *arg = -1;
  for (Index r = col_lo; r <= col_hi; ++r) {
    const double d = dg.Distance(row, r);
    if (d < *value) {
      *value = d;
      *arg = r;
    }
  }
}

}  // namespace

void IncrementalRelaxedBounds::Reset(const RingDistanceMatrix& dg,
                                     Index min_length_xi) {
  (void)min_length_xi;  // bands are derived in Snapshot()
  const Index w = dg.rows();
  cross_ = false;
  rows_ = w;
  cols_ = w;
  rmin_.assign(w, kInf);
  rmin_full_.assign(w, kInf);
  cmin_.assign(w, kInf);
  cmin_start_.assign(w, kInf);
  cmin_full_.assign(w, kInf);
  rmin_arg_.assign(w, -1);
  rmin_full_arg_.assign(w, -1);
  cmin_full_arg_.assign(w, -1);

  // Mirrors RelaxedBounds::Build for the single-trajectory variant, with
  // achiever tracking on the prefix-containing minima.
  for (Index j = 0; j + 1 <= w - 1; ++j) {
    ColumnMin(dg, j + 1, 0, w - 1, &rmin_full_[j], &rmin_full_arg_[j]);
    ColumnMin(dg, j + 1, 0, j - 1, &rmin_[j], &rmin_arg_[j]);
  }
  for (Index i = 0; i + 1 <= w - 1; ++i) {
    Index unused = -1;
    RowMin(dg, i + 1, 0, w - 1, &cmin_full_[i], &cmin_full_arg_[i]);
    RowMin(dg, i + 1, i + 1, w - 1, &cmin_[i], &unused);
    RowMin(dg, i + 1, i + 3, w - 1, &cmin_start_[i], &unused);
  }
}

void IncrementalRelaxedBounds::Slide(const RingDistanceMatrix& dg,
                                     Index min_length_xi, Index shift) {
  const Index w = dg.rows();
  if (cross_ || w != rows_ || shift >= w) {
    Reset(dg, min_length_xi);
    return;
  }
  const Index old_lo = 0;          // first surviving logical index
  const Index new_lo = w - shift;  // first freshly appended logical index
  (void)old_lo;

  std::vector<double> rmin(w, kInf), rmin_full(w, kInf), cmin(w, kInf),
      cmin_start(w, kInf), cmin_full(w, kInf);
  std::vector<Index> rmin_arg(w, -1), rmin_full_arg(w, -1),
      cmin_full_arg(w, -1);

  // ---- Rmin / RminFull: minima of column j+1 over row ranges. ----
  for (Index j = 0; j + 1 <= w - 1; ++j) {
    if (j + 1 < new_lo) {
      // Column j+1 survived the slide; its old index was j+1+shift.
      const Index oj = j + shift;
      // Restricted range [0, j-1] = old rows [shift, oj-1] — a subrange
      // of the old [0, oj-1]; the old value carries iff its achiever did.
      if (rmin_arg_[oj] >= shift) {
        rmin[j] = rmin_[oj];
        rmin_arg[j] = rmin_arg_[oj] - shift;
      } else {
        ++rescans_;
        ColumnMin(dg, j + 1, 0, j - 1, &rmin[j], &rmin_arg[j]);
      }
      // Full range [0, w-1] = surviving old rows plus the fresh rows.
      double old_part = kInf;
      Index old_arg = -1;
      if (rmin_full_arg_[oj] >= shift) {
        old_part = rmin_full_[oj];
        old_arg = rmin_full_arg_[oj] - shift;
      } else {
        ++rescans_;
        ColumnMin(dg, j + 1, 0, new_lo - 1, &old_part, &old_arg);
      }
      double fresh_part = kInf;
      Index fresh_arg = -1;
      ColumnMin(dg, j + 1, new_lo, w - 1, &fresh_part, &fresh_arg);
      if (fresh_part < old_part) {
        rmin_full[j] = fresh_part;
        rmin_full_arg[j] = fresh_arg;
      } else {
        rmin_full[j] = old_part;
        rmin_full_arg[j] = old_arg;
      }
    } else {
      // Column j+1 is fresh: scan it once.
      ColumnMin(dg, j + 1, 0, w - 1, &rmin_full[j], &rmin_full_arg[j]);
      ColumnMin(dg, j + 1, 0, j - 1, &rmin[j], &rmin_arg[j]);
    }
  }

  // ---- Cmin / CminStart / CminFull: minima of row i+1 over columns. ----
  for (Index i = 0; i + 1 <= w - 1; ++i) {
    if (i + 1 < new_lo) {
      const Index oi = i + shift;
      // Suffix ranges never lose a column to eviction: the old suffix
      // [oi+1, w-1] maps exactly onto the surviving part of the new
      // range, which additionally gains the fresh columns.
      double fresh = kInf;
      Index unused = -1;
      RowMin(dg, i + 1, std::max(new_lo, i + 1), w - 1, &fresh, &unused);
      cmin[i] = fresh < cmin_[oi] ? fresh : cmin_[oi];
      RowMin(dg, i + 1, std::max(new_lo, i + 3), w - 1, &fresh, &unused);
      cmin_start[i] = fresh < cmin_start_[oi] ? fresh : cmin_start_[oi];
      // Full range: prefix part may lose its achiever, like RminFull.
      double old_part = kInf;
      Index old_arg = -1;
      if (cmin_full_arg_[oi] >= shift) {
        old_part = cmin_full_[oi];
        old_arg = cmin_full_arg_[oi] - shift;
      } else {
        ++rescans_;
        RowMin(dg, i + 1, 0, new_lo - 1, &old_part, &old_arg);
      }
      double fresh_part = kInf;
      Index fresh_arg = -1;
      RowMin(dg, i + 1, new_lo, w - 1, &fresh_part, &fresh_arg);
      if (fresh_part < old_part) {
        cmin_full[i] = fresh_part;
        cmin_full_arg[i] = fresh_arg;
      } else {
        cmin_full[i] = old_part;
        cmin_full_arg[i] = old_arg;
      }
    } else {
      Index unused = -1;
      RowMin(dg, i + 1, 0, w - 1, &cmin_full[i], &cmin_full_arg[i]);
      RowMin(dg, i + 1, i + 1, w - 1, &cmin[i], &unused);
      RowMin(dg, i + 1, i + 3, w - 1, &cmin_start[i], &unused);
    }
  }

  rmin_.swap(rmin);
  rmin_full_.swap(rmin_full);
  cmin_.swap(cmin);
  cmin_start_.swap(cmin_start);
  cmin_full_.swap(cmin_full);
  rmin_arg_.swap(rmin_arg);
  rmin_full_arg_.swap(rmin_full_arg);
  cmin_full_arg_.swap(cmin_full_arg);
}

void IncrementalRelaxedBounds::ResetCross(const RingDistanceMatrix& dg) {
  cross_ = true;
  rows_ = dg.rows();
  cols_ = dg.cols();
  // The restricted arrays coincide with the full ones in cross mode
  // (Build uses the unrestricted index ranges); Snapshot() duplicates
  // the full arrays into the restricted slots.
  rmin_.clear();
  cmin_.clear();
  cmin_start_.clear();
  rmin_arg_.clear();
  rmin_full_.assign(cols_, kInf);
  cmin_full_.assign(rows_, kInf);
  rmin_full_arg_.assign(cols_, -1);
  cmin_full_arg_.assign(rows_, -1);

  for (Index j = 0; j + 1 <= cols_ - 1; ++j) {
    ColumnMin(dg, j + 1, 0, rows_ - 1, &rmin_full_[j], &rmin_full_arg_[j]);
  }
  for (Index i = 0; i + 1 <= rows_ - 1; ++i) {
    RowMin(dg, i + 1, 0, cols_ - 1, &cmin_full_[i], &cmin_full_arg_[i]);
  }
}

void IncrementalRelaxedBounds::SlideCross(const RingDistanceMatrix& dg,
                                          Index shift_row, Index shift_col) {
  const Index rows = dg.rows();
  const Index cols = dg.cols();
  if (!cross_ || rows != rows_ || cols != cols_ || shift_row >= rows ||
      shift_col >= cols) {
    ResetCross(dg);
    return;
  }
  const Index new_row_lo = rows - shift_row;  // first fresh logical row
  const Index new_col_lo = cols - shift_col;  // first fresh logical column

  std::vector<double> rmin_full(cols, kInf), cmin_full(rows, kInf);
  std::vector<Index> rmin_full_arg(cols, -1), cmin_full_arg(rows, -1);

  // ---- RminFull[j]: minimum of column j+1 over all rows. The column
  // axis slid by shift_col (is the entry still in the window?) while the
  // minimized range slid by shift_row (did the achiever survive?). ----
  for (Index j = 0; j + 1 <= cols - 1; ++j) {
    if (j + 1 < new_col_lo) {
      const Index oj = j + shift_col;
      double old_part = kInf;
      Index old_arg = -1;
      if (rmin_full_arg_[oj] >= shift_row) {
        old_part = rmin_full_[oj];
        old_arg = rmin_full_arg_[oj] - shift_row;
      } else {
        ++rescans_;
        ColumnMin(dg, j + 1, 0, new_row_lo - 1, &old_part, &old_arg);
      }
      double fresh_part = kInf;
      Index fresh_arg = -1;
      ColumnMin(dg, j + 1, new_row_lo, rows - 1, &fresh_part, &fresh_arg);
      if (fresh_part < old_part) {
        rmin_full[j] = fresh_part;
        rmin_full_arg[j] = fresh_arg;
      } else {
        rmin_full[j] = old_part;
        rmin_full_arg[j] = old_arg;
      }
    } else {
      ColumnMin(dg, j + 1, 0, rows - 1, &rmin_full[j], &rmin_full_arg[j]);
    }
  }

  // ---- CminFull[i]: minimum of row i+1 over all columns; the mirror
  // image (rows decide survival, columns decide the achiever). ----
  for (Index i = 0; i + 1 <= rows - 1; ++i) {
    if (i + 1 < new_row_lo) {
      const Index oi = i + shift_row;
      double old_part = kInf;
      Index old_arg = -1;
      if (cmin_full_arg_[oi] >= shift_col) {
        old_part = cmin_full_[oi];
        old_arg = cmin_full_arg_[oi] - shift_col;
      } else {
        ++rescans_;
        RowMin(dg, i + 1, 0, new_col_lo - 1, &old_part, &old_arg);
      }
      double fresh_part = kInf;
      Index fresh_arg = -1;
      RowMin(dg, i + 1, new_col_lo, cols - 1, &fresh_part, &fresh_arg);
      if (fresh_part < old_part) {
        cmin_full[i] = fresh_part;
        cmin_full_arg[i] = fresh_arg;
      } else {
        cmin_full[i] = old_part;
        cmin_full_arg[i] = old_arg;
      }
    } else {
      RowMin(dg, i + 1, 0, cols - 1, &cmin_full[i], &cmin_full_arg[i]);
    }
  }

  rmin_full_.swap(rmin_full);
  cmin_full_.swap(cmin_full);
  rmin_full_arg_.swap(rmin_full_arg);
  cmin_full_arg_.swap(cmin_full_arg);
}

RelaxedBounds IncrementalRelaxedBounds::Snapshot(Index min_length_xi) const {
  if (cross_) {
    // Build's cross variant leaves every index range unrestricted, so the
    // restricted slots are copies of the full arrays.
    return RelaxedBounds::FromComponents(rmin_full_, cmin_full_, cmin_full_,
                                         rmin_full_, cmin_full_,
                                         min_length_xi);
  }
  return RelaxedBounds::FromComponents(rmin_, cmin_, cmin_start_, rmin_full_,
                                       cmin_full_, min_length_xi);
}

void IncrementalRelaxedBounds::SaveTo(BinaryWriter* writer) const {
  writer->PutBool(cross_);
  writer->PutI32(rows_);
  writer->PutI32(cols_);
  writer->PutI64(rescans_);
  writer->PutDoubleVector(rmin_);
  writer->PutDoubleVector(rmin_full_);
  writer->PutDoubleVector(cmin_);
  writer->PutDoubleVector(cmin_start_);
  writer->PutDoubleVector(cmin_full_);
  writer->PutI32Vector(rmin_arg_);
  writer->PutI32Vector(rmin_full_arg_);
  writer->PutI32Vector(cmin_full_arg_);
}

Status IncrementalRelaxedBounds::LoadFrom(BinaryReader* reader) {
  FM_RETURN_IF_ERROR(reader->GetBool(&cross_));
  FM_RETURN_IF_ERROR(reader->GetI32(&rows_));
  FM_RETURN_IF_ERROR(reader->GetI32(&cols_));
  FM_RETURN_IF_ERROR(reader->GetI64(&rescans_));
  FM_RETURN_IF_ERROR(reader->GetDoubleVector(&rmin_));
  FM_RETURN_IF_ERROR(reader->GetDoubleVector(&rmin_full_));
  FM_RETURN_IF_ERROR(reader->GetDoubleVector(&cmin_));
  FM_RETURN_IF_ERROR(reader->GetDoubleVector(&cmin_start_));
  FM_RETURN_IF_ERROR(reader->GetDoubleVector(&cmin_full_));
  FM_RETURN_IF_ERROR(reader->GetI32Vector(&rmin_arg_));
  FM_RETURN_IF_ERROR(reader->GetI32Vector(&rmin_full_arg_));
  FM_RETURN_IF_ERROR(reader->GetI32Vector(&cmin_full_arg_));
  if (rows_ < 0 || cols_ < 0) {
    return Status::DataLoss("incremental-bounds snapshot has negative sizes");
  }
  const std::size_t rows = static_cast<std::size_t>(rows_);
  const std::size_t cols = static_cast<std::size_t>(cols_);
  const bool sizes_ok =
      cross_ ? (rmin_.empty() && cmin_.empty() && cmin_start_.empty() &&
                rmin_arg_.empty() && rmin_full_.size() == cols &&
                rmin_full_arg_.size() == cols && cmin_full_.size() == rows &&
                cmin_full_arg_.size() == rows)
             : (rows == cols && rmin_.size() == rows &&
                rmin_full_.size() == rows && cmin_.size() == rows &&
                cmin_start_.size() == rows && cmin_full_.size() == rows &&
                rmin_arg_.size() == rows && rmin_full_arg_.size() == rows &&
                cmin_full_arg_.size() == rows);
  if (!sizes_ok) {
    return Status::DataLoss(
        "incremental-bounds snapshot has inconsistent array sizes");
  }
  return Status::Ok();
}

}  // namespace frechet_motif
