#include "stream/search_scheduler.h"

#include <algorithm>

namespace frechet_motif {

std::size_t SearchScheduler::Register() {
  entries_.push_back(Entry{});
  return entries_.size() - 1;
}

void SearchScheduler::NoteAppend(std::size_t stream) {
  ++entries_[stream].dirty_appends;
}

void SearchScheduler::MarkDue(std::size_t stream) {
  if (!entries_[stream].due) {
    entries_[stream].due = true;
    ++due_count_;
  }
}

std::vector<std::size_t> SearchScheduler::DrainOrder() const {
  std::vector<std::size_t> due;
  due.reserve(due_count_);
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].due) due.push_back(id);
  }
  std::sort(due.begin(), due.end(), [&](std::size_t a, std::size_t b) {
    const Entry& ea = entries_[a];
    const Entry& eb = entries_[b];
    if (ea.dirty_appends != eb.dirty_appends) {
      return ea.dirty_appends > eb.dirty_appends;
    }
    if (ea.last_searched != eb.last_searched) {
      return ea.last_searched < eb.last_searched;
    }
    return a < b;
  });
  return due;
}

void SearchScheduler::NoteSearched(std::size_t stream) {
  Entry& entry = entries_[stream];
  if (entry.due) {
    entry.due = false;
    --due_count_;
  }
  entry.dirty_appends = 0;
  entry.last_searched = tick_++;
}

}  // namespace frechet_motif
