#include "stream/search_scheduler.h"

#include <algorithm>

namespace frechet_motif {

std::size_t SearchScheduler::Register() {
  entries_.push_back(Entry{});
  return entries_.size() - 1;
}

void SearchScheduler::NoteAppend(std::size_t stream) {
  ++entries_[stream].dirty_appends;
}

void SearchScheduler::MarkDue(std::size_t stream) {
  if (!entries_[stream].due) {
    entries_[stream].due = true;
    ++due_count_;
  }
}

std::vector<std::size_t> SearchScheduler::DrainOrder() const {
  std::vector<std::size_t> due;
  due.reserve(due_count_);
  for (std::size_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].due) due.push_back(id);
  }
  std::sort(due.begin(), due.end(), [&](std::size_t a, std::size_t b) {
    const Entry& ea = entries_[a];
    const Entry& eb = entries_[b];
    if (ea.dirty_appends != eb.dirty_appends) {
      return ea.dirty_appends > eb.dirty_appends;
    }
    if (ea.last_searched != eb.last_searched) {
      return ea.last_searched < eb.last_searched;
    }
    return a < b;
  });
  return due;
}

void SearchScheduler::NoteSearched(std::size_t stream) {
  Entry& entry = entries_[stream];
  if (entry.due) {
    entry.due = false;
    --due_count_;
  }
  entry.dirty_appends = 0;
  entry.last_searched = tick_++;
}

void SearchScheduler::SaveTo(BinaryWriter* writer) const {
  writer->PutI64(tick_);
  writer->PutU64(entries_.size());
  for (const Entry& entry : entries_) {
    writer->PutI32(entry.dirty_appends);
    writer->PutI64(entry.last_searched);
    writer->PutBool(entry.due);
  }
}

Status SearchScheduler::LoadFrom(BinaryReader* reader) {
  FM_RETURN_IF_ERROR(reader->GetI64(&tick_));
  std::uint64_t count = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&count));
  entries_.clear();
  due_count_ = 0;
  for (std::uint64_t k = 0; k < count; ++k) {
    Entry entry;
    FM_RETURN_IF_ERROR(reader->GetI32(&entry.dirty_appends));
    FM_RETURN_IF_ERROR(reader->GetI64(&entry.last_searched));
    FM_RETURN_IF_ERROR(reader->GetBool(&entry.due));
    if (entry.due) ++due_count_;
    entries_.push_back(entry);
  }
  return Status::Ok();
}

}  // namespace frechet_motif
