#include "stream/ingest_frontend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace frechet_motif {

Status IngestFrontend::Offer(const Point& p, const double* timestamp,
                             const Sink& sink) {
  // The whole point of the frontend is timestamp ordering; NaN breaks the
  // buffer's strict weak ordering (UB in the multimap) and a NaN/inf
  // watermark silently disables late-drop, so non-finite stamps are
  // rejected at the door.
  if (timestamp != nullptr && !std::isfinite(*timestamp)) {
    return Status::InvalidArgument(
        "stream timestamps must be finite (got NaN or infinity)");
  }
  if (capacity_ <= 0 || timestamp == nullptr) {
    if (!buffer_.empty()) {
      return Status::InvalidArgument(
          "cannot mix bare arrivals with a non-empty reorder buffer");
    }
    if (timestamp != nullptr) {
      if (released_any_ && *timestamp < watermark_) {
        ++stats_.late_dropped;
        return Status::Ok();
      }
      watermark_ = *timestamp;
      released_any_ = true;
    }
    ++stats_.released;
    return sink(p, timestamp);
  }

  if (released_any_ && *timestamp < watermark_) {
    // Below the watermark: even a full drain of the buffer could not
    // place this point in order.
    ++stats_.late_dropped;
    return Status::Ok();
  }
  if (!buffer_.empty() && *timestamp < buffer_.rbegin()->first) {
    ++stats_.reordered;
  }
  buffer_.emplace(*timestamp, p);
  stats_.buffered_peak = std::max(stats_.buffered_peak,
                                  static_cast<std::int64_t>(buffer_.size()));
  while (static_cast<Index>(buffer_.size()) > capacity_) {
    const auto head = buffer_.begin();
    const double ts = head->first;
    const Point point = head->second;
    buffer_.erase(head);
    watermark_ = ts;
    released_any_ = true;
    ++stats_.released;
    FM_RETURN_IF_ERROR(sink(point, &ts));
  }
  return Status::Ok();
}

void IngestFrontend::SaveTo(BinaryWriter* writer) const {
  writer->PutDouble(watermark_);
  writer->PutBool(released_any_);
  writer->PutI64(stats_.released);
  writer->PutI64(stats_.reordered);
  writer->PutI64(stats_.late_dropped);
  writer->PutI64(stats_.buffered_peak);
  writer->PutU64(buffer_.size());
  for (const auto& [ts, p] : buffer_) {
    writer->PutDouble(ts);
    writer->PutDouble(p.x);
    writer->PutDouble(p.y);
  }
}

Status IngestFrontend::LoadFrom(BinaryReader* reader) {
  FM_RETURN_IF_ERROR(reader->GetDouble(&watermark_));
  FM_RETURN_IF_ERROR(reader->GetBool(&released_any_));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.released));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.reordered));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.late_dropped));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.buffered_peak));
  std::uint64_t buffered = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&buffered));
  buffer_.clear();
  for (std::uint64_t k = 0; k < buffered; ++k) {
    double ts = 0.0;
    Point p;
    FM_RETURN_IF_ERROR(reader->GetDouble(&ts));
    FM_RETURN_IF_ERROR(reader->GetDouble(&p.x));
    FM_RETURN_IF_ERROR(reader->GetDouble(&p.y));
    if (!std::isfinite(ts)) {
      return Status::DataLoss("frontend snapshot holds a non-finite stamp");
    }
    // emplace inserts at the upper bound of equal keys, so the saved
    // order among duplicates — which was arrival order — is preserved.
    buffer_.emplace(ts, p);
  }
  return Status::Ok();
}

Status IngestFrontend::Flush(const Sink& sink) {
  while (!buffer_.empty()) {
    const auto head = buffer_.begin();
    const double ts = head->first;
    const Point point = head->second;
    buffer_.erase(head);
    watermark_ = ts;
    released_any_ = true;
    ++stats_.released;
    FM_RETURN_IF_ERROR(sink(point, &ts));
  }
  return Status::Ok();
}

}  // namespace frechet_motif
