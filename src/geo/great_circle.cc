#include "geo/great_circle.h"

#include <algorithm>
#include <cmath>

namespace frechet_motif {

double DegToRad(double degrees) { return degrees * (M_PI / 180.0); }

SphereVec ToSphereVec(const Point& p) {
  const double phi = DegToRad(p.lat());
  const double lambda = DegToRad(p.lon());
  const double cos_phi = std::cos(phi);
  return SphereVec{cos_phi * std::cos(lambda), cos_phi * std::sin(lambda),
                   std::sin(phi)};
}

double SphereVecDistanceMeters(const SphereVec& a, const SphereVec& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  const double half_chord = 0.5 * std::sqrt(dx * dx + dy * dy + dz * dz);
  // Clamp against floating-point drift before the asin.
  return 2.0 * kEarthRadiusMeters *
         std::asin(std::clamp(half_chord, 0.0, 1.0));
}

void SphereVecDistanceBatch(const SphereVec& p, const SphereVec* others,
                            std::size_t count, double* out) {
  for (std::size_t k = 0; k < count; ++k) {
    out[k] = SphereVecDistanceMeters(p, others[k]);
  }
}

double GreatCircleDistanceMeters(const Point& a, const Point& b) {
  return SphereVecDistanceMeters(ToSphereVec(a), ToSphereVec(b));
}

Point MetersFromOrigin(const Point& origin, const Point& p) {
  const double lat0 = DegToRad(origin.lat());
  const double east =
      DegToRad(p.lon() - origin.lon()) * std::cos(lat0) * kEarthRadiusMeters;
  const double north = DegToRad(p.lat() - origin.lat()) * kEarthRadiusMeters;
  return Point(east, north);
}

Point OffsetByMeters(const Point& origin, double east_m, double north_m) {
  const double lat0 = DegToRad(origin.lat());
  const double dlat = north_m / kEarthRadiusMeters;
  const double dlon = east_m / (kEarthRadiusMeters * std::cos(lat0));
  return LatLon(origin.lat() + dlat * (180.0 / M_PI),
                origin.lon() + dlon * (180.0 / M_PI));
}

}  // namespace frechet_motif
