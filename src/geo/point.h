#ifndef FRECHET_MOTIF_GEO_POINT_H_
#define FRECHET_MOTIF_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace frechet_motif {

/// A trajectory sample location.
///
/// The paper's Definition 1 treats each point as a latitude-longitude pair
/// `(ϕ, λ)` measured under the great-circle ground distance, but notes the
/// methods "are directly applicable to higher dimensions ... and other types
/// of ground distance (e.g., Euclidean)". We therefore store two coordinates
/// whose interpretation is chosen by the GroundMetric used:
///  * Haversine metric: x = latitude (degrees), y = longitude (degrees).
///  * Euclidean metric: x, y = planar coordinates (meters).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double x_in, double y_in) : x(x_in), y(y_in) {}

  /// Latitude accessor, for code paths that deal in geographic coordinates.
  double lat() const { return x; }
  /// Longitude accessor.
  double lon() const { return y; }

  /// True iff both coordinates are finite (no NaN/Inf).
  bool IsFinite() const { return std::isfinite(x) && std::isfinite(y); }

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

/// Constructs a geographic point from latitude/longitude in degrees.
inline Point LatLon(double lat_deg, double lon_deg) {
  return Point(lat_deg, lon_deg);
}

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_GEO_POINT_H_
