#include "geo/metric.h"

#include <cmath>

#include "geo/great_circle.h"

namespace frechet_motif {

double HaversineMetric::Distance(const Point& a, const Point& b) const {
  return GreatCircleDistanceMeters(a, b);
}

double EuclideanMetric::Distance(const Point& a, const Point& b) const {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

const GroundMetric& Haversine() {
  static const HaversineMetric* const kInstance = new HaversineMetric();
  return *kInstance;
}

const GroundMetric& Euclidean() {
  static const EuclideanMetric* const kInstance = new EuclideanMetric();
  return *kInstance;
}

}  // namespace frechet_motif
