#ifndef FRECHET_MOTIF_GEO_METRIC_H_
#define FRECHET_MOTIF_GEO_METRIC_H_

#include <memory>
#include <string>

#include "geo/point.h"

namespace frechet_motif {

/// Pluggable ground distance between two trajectory points.
///
/// The paper defines dG as the great-circle distance but states that any
/// ground distance (e.g. Euclidean) works; every algorithm in this library
/// is parameterized by a GroundMetric.
class GroundMetric {
 public:
  virtual ~GroundMetric() = default;

  /// Distance between `a` and `b` in meters (or the metric's natural unit).
  virtual double Distance(const Point& a, const Point& b) const = 0;

  /// Short identifier for logs and bench tables ("haversine", "euclidean").
  virtual std::string Name() const = 0;
};

/// Great-circle (haversine) distance over latitude/longitude degrees —
/// the paper's dG.
class HaversineMetric final : public GroundMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  std::string Name() const override { return "haversine"; }
};

/// Planar Euclidean distance over (x, y) coordinates.
class EuclideanMetric final : public GroundMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  std::string Name() const override { return "euclidean"; }
};

/// Singleton accessors. The returned references are valid for the program's
/// lifetime; metrics are stateless and thread-safe.
const GroundMetric& Haversine();
const GroundMetric& Euclidean();

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_GEO_METRIC_H_
