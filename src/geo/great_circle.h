#ifndef FRECHET_MOTIF_GEO_GREAT_CIRCLE_H_
#define FRECHET_MOTIF_GEO_GREAT_CIRCLE_H_

#include <cstddef>

#include "geo/point.h"

namespace frechet_motif {

/// Mean Earth radius in meters, the `R` of the paper's ground distance
/// formula (Section 3; haversine formulation after Sinnott [21]).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// 3D unit vector on the sphere for a latitude/longitude point. Exposed so
/// that distance providers can cache one vector per trajectory point and
/// evaluate great-circle distances with no per-call trigonometry beyond a
/// single asin — while remaining bit-identical to the uncached path.
struct SphereVec {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// Converts a lat/lon point (degrees) to its unit vector.
SphereVec ToSphereVec(const Point& p);

/// Great-circle distance from two precomputed unit vectors:
///   d = 2R asin(chord / 2),  chord = |ua - ub|.
/// Algebraically equal to the haversine formula of the paper's Section 3
/// and numerically stable for small separations.
double SphereVecDistanceMeters(const SphereVec& a, const SphereVec& b);

/// Batch form over a contiguous span: out[k] = SphereVecDistanceMeters(p,
/// others[k]) for k in [0, count). Per-element results are bit-identical
/// to the one-pair call; the batch exists so hot append paths (the
/// streaming window's ring fills, DistanceMatrix::Build) pay one call per
/// row instead of one indirect call per cell.
void SphereVecDistanceBatch(const SphereVec& p, const SphereVec* others,
                            std::size_t count, double* out);

/// Great-circle distance in meters between two latitude/longitude points
/// (degrees). Exactly ToSphereVec + SphereVecDistanceMeters, so cached and
/// uncached evaluations agree bit-for-bit.
double GreatCircleDistanceMeters(const Point& a, const Point& b);

/// Converts degrees to radians.
double DegToRad(double degrees);

/// Approximate local planar projection: returns the (east, north) offset in
/// meters of `p` relative to `origin` using an equirectangular projection.
/// Accurate to well under 0.1% for the kilometer-scale extents of the
/// synthetic datasets; used by generators to convert meter-space walks into
/// lat/lon trajectories.
Point MetersFromOrigin(const Point& origin, const Point& p);

/// Inverse of MetersFromOrigin: displaces `origin` by (east_m, north_m)
/// meters and returns the resulting lat/lon point.
Point OffsetByMeters(const Point& origin, double east_m, double north_m);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_GEO_GREAT_CIRCLE_H_
