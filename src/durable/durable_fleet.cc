#include "durable/durable_fleet.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/binary_codec.h"

namespace frechet_motif {

namespace {

/// Journal record kinds (first payload byte).
constexpr std::uint8_t kBatchRecord = 1;
constexpr std::uint8_t kAddStreamRecord = 2;

std::string EncodeBatch(const std::vector<FleetArrival>& released) {
  BinaryWriter writer;
  writer.PutU8(kBatchRecord);
  writer.PutU64(released.size());
  for (const FleetArrival& a : released) {
    writer.PutU32(static_cast<std::uint32_t>(a.stream));
    writer.PutBool(a.has_timestamp);
    writer.PutDouble(a.point.x);
    writer.PutDouble(a.point.y);
    if (a.has_timestamp) writer.PutDouble(a.timestamp);
  }
  return writer.Take();
}

std::string EncodeAddStream() {
  BinaryWriter writer;
  writer.PutU8(kAddStreamRecord);
  return writer.Take();
}

Status DecodeBatch(BinaryReader* reader, std::vector<FleetArrival>* out) {
  std::uint64_t count = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&count));
  out->clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    FleetArrival a;
    std::uint32_t stream = 0;
    FM_RETURN_IF_ERROR(reader->GetU32(&stream));
    a.stream = stream;
    FM_RETURN_IF_ERROR(reader->GetBool(&a.has_timestamp));
    FM_RETURN_IF_ERROR(reader->GetDouble(&a.point.x));
    FM_RETURN_IF_ERROR(reader->GetDouble(&a.point.y));
    if (a.has_timestamp) FM_RETURN_IF_ERROR(reader->GetDouble(&a.timestamp));
    out->push_back(a);
  }
  if (!reader->AtEnd()) {
    return Status::DataLoss("journal batch record has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

DurableFleet::DurableFleet(MotifFleetEngine engine, StateStore store,
                           std::unique_ptr<DurableFs> owned_fs,
                           const DurableOptions& durable)
    : engine_(std::move(engine)),
      store_(std::move(store)),
      owned_fs_(std::move(owned_fs)),
      checkpoint_interval_(durable.checkpoint_interval_records),
      sync_each_record_(durable.sync_each_record) {}

StatusOr<DurableFleet> DurableFleet::Open(const FleetOptions& options,
                                          const GroundMetric& metric,
                                          const DurableOptions& durable) {
  if (durable.state_dir.empty()) {
    return Status::InvalidArgument("DurableOptions::state_dir is empty");
  }
  std::unique_ptr<DurableFs> owned_fs;
  DurableFs* fs = durable.fs;
  if (fs == nullptr) {
    owned_fs = std::make_unique<PosixFs>();
    fs = owned_fs.get();
  }

  StatusOr<StateStore> store = StateStore::Open(fs, durable.state_dir);
  if (!store.ok()) return store.status();
  const RecoveredState& recovered = store.value().recovered();

  StatusOr<MotifFleetEngine> engine =
      recovered.has_snapshot
          ? MotifFleetEngine::Restore(options, metric, recovered.snapshot)
          : MotifFleetEngine::Create(options, metric);
  if (!engine.ok()) return engine.status();

  DurableFleet fleet(std::move(engine).value(), std::move(store).value(),
                     std::move(owned_fs), durable);
  // `recovered` dangles once `store` is moved into the fleet; report the
  // recovery from the store's own (moved-along) state.
  fleet.recovery_.restored_snapshot = fleet.store_.recovered().has_snapshot;
  fleet.recovery_.replayed_records = fleet.store_.recovered().records.size();

  // Redo the journal tail: every record is one engine call the original
  // process completed after the snapshot.
  for (const std::string& record : fleet.store_.recovered().records) {
    BinaryReader reader(record);
    std::uint8_t kind = 0;
    FM_RETURN_IF_ERROR(reader.GetU8(&kind));
    if (kind == kAddStreamRecord) {
      if (!reader.AtEnd()) {
        return Status::DataLoss("journal add-stream record has trailing bytes");
      }
      StatusOr<std::size_t> id = fleet.engine_.AddStream();
      if (!id.ok()) return id.status();
    } else if (kind == kBatchRecord) {
      std::vector<FleetArrival> batch;
      FM_RETURN_IF_ERROR(DecodeBatch(&reader, &batch));
      StatusOr<FleetReport> report = fleet.engine_.ReplayReleased(batch);
      if (!report.ok()) return report.status();
      fleet.recovery_.replay_reports.push_back(std::move(report).value());
    } else {
      return Status::DataLoss("unknown journal record kind");
    }
  }

  // Journal-side frontends: fresh buffers (in-flight points are not
  // durable by design), watermarks re-seeded so the late-drop boundary
  // matches the original run.
  fleet.frontends_.clear();
  fleet.frontends_.reserve(fleet.engine_.stream_count());
  for (std::size_t s = 0; s < fleet.engine_.stream_count(); ++s) {
    fleet.frontends_.emplace_back(options.reorder_capacity);
    const double watermark = fleet.engine_.stream_watermark(s);
    if (watermark > -std::numeric_limits<double>::infinity()) {
      fleet.frontends_.back().SeedWatermark(watermark);
    }
  }

  // Rotate immediately: new records must never extend a journal whose
  // tail was just found torn.
  FM_RETURN_IF_ERROR(fleet.Checkpoint());
  return fleet;
}

StatusOr<std::size_t> DurableFleet::AddStream() {
  StatusOr<std::size_t> id = engine_.AddStream();
  if (!id.ok()) return id.status();
  frontends_.emplace_back(engine_.options().reorder_capacity);
  FM_RETURN_IF_ERROR(store_.AppendRecord(EncodeAddStream()));
  if (sync_each_record_) FM_RETURN_IF_ERROR(store_.SyncJournal());
  return id;
}

StatusOr<FleetReport> DurableFleet::CommitBatch(
    const std::vector<FleetArrival>& released, bool force_commit) {
  if (released.empty() && !force_commit) {
    // Nothing left the reorder buffers: the engine never ran, so there
    // is nothing to journal (buffered points are volatile by contract).
    return FleetReport();
  }
  StatusOr<FleetReport> report = engine_.ReplayReleased(released);
  if (!report.ok()) return report.status();
  if (!released.empty() || !report.value().empty()) {
    FM_RETURN_IF_ERROR(store_.AppendRecord(EncodeBatch(released)));
    if (sync_each_record_) FM_RETURN_IF_ERROR(store_.SyncJournal());
    if (checkpoint_interval_ > 0 &&
        store_.records_in_journal() >= checkpoint_interval_) {
      FM_RETURN_IF_ERROR(Checkpoint());
    }
  }
  return report;
}

StatusOr<FleetReport> DurableFleet::Ingest(
    const std::vector<FleetArrival>& batch) {
  std::vector<FleetArrival> released;
  for (const FleetArrival& a : batch) {
    if (a.stream >= frontends_.size()) {
      return Status::InvalidArgument("arrival routed to unknown stream");
    }
    const double* ts = a.has_timestamp ? &a.timestamp : nullptr;
    FM_RETURN_IF_ERROR(frontends_[a.stream].Offer(
        a.point, ts, [&](const Point& p, const double* timestamp) {
          FleetArrival out;
          out.stream = a.stream;
          out.point = p;
          out.has_timestamp = timestamp != nullptr;
          out.timestamp = timestamp != nullptr ? *timestamp : 0.0;
          released.push_back(out);
          return Status::Ok();
        }));
  }
  return CommitBatch(released, /*force_commit=*/false);
}

StatusOr<FleetReport> DurableFleet::Push(std::size_t stream, const Point& p) {
  FleetArrival a;
  a.stream = stream;
  a.point = p;
  return Ingest({a});
}

StatusOr<FleetReport> DurableFleet::Push(std::size_t stream, const Point& p,
                                         double timestamp) {
  FleetArrival a;
  a.stream = stream;
  a.point = p;
  a.has_timestamp = true;
  a.timestamp = timestamp;
  return Ingest({a});
}

StatusOr<FleetReport> DurableFleet::Drain() {
  // A budgeted drain can run deferred searches with no new deliveries;
  // the call boundary itself must then be journaled so replay runs the
  // same number of drains.
  return CommitBatch({}, /*force_commit=*/true);
}

StatusOr<FleetReport> DurableFleet::Flush() {
  std::vector<FleetArrival> released;
  for (std::size_t s = 0; s < frontends_.size(); ++s) {
    FM_RETURN_IF_ERROR(
        frontends_[s].Flush([&](const Point& p, const double* timestamp) {
          FleetArrival out;
          out.stream = s;
          out.point = p;
          out.has_timestamp = timestamp != nullptr;
          out.timestamp = timestamp != nullptr ? *timestamp : 0.0;
          released.push_back(out);
          return Status::Ok();
        }));
  }
  return CommitBatch(released, /*force_commit=*/false);
}

Status DurableFleet::Checkpoint() {
  std::string snapshot;
  FM_RETURN_IF_ERROR(engine_.Snapshot(&snapshot));
  return store_.Checkpoint(snapshot);
}

Status DurableFleet::Sync() { return store_.SyncJournal(); }

FleetStats DurableFleet::stats() const {
  FleetStats stats = engine_.stats();
  stats.reordered = 0;
  stats.late_dropped = 0;
  stats.reorder_buffered = 0;
  stats.reorder_buffered_peak = 0;
  for (const IngestFrontend& frontend : frontends_) {
    stats.reordered += frontend.stats().reordered;
    stats.late_dropped += frontend.stats().late_dropped;
    stats.reorder_buffered += static_cast<std::int64_t>(frontend.buffered());
    stats.reorder_buffered_peak =
        std::max(stats.reorder_buffered_peak, frontend.stats().buffered_peak);
  }
  return stats;
}

}  // namespace frechet_motif
