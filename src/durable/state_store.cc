#include "durable/state_store.h"

#include <algorithm>
#include <cstdio>

#include "util/binary_codec.h"

namespace frechet_motif {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x4E534D46u;  // "FMSN"
constexpr std::uint32_t kJournalMagic = 0x4C574D46u;   // "FMWL"
constexpr std::uint32_t kFormatVersion = 1;

/// magic + version + gen + start_seq + header crc.
constexpr std::size_t kJournalHeaderSize = 4 + 4 + 8 + 8 + 4;
/// payload length + frame crc + seq.
constexpr std::size_t kRecordFrameSize = 4 + 4 + 8;

std::string GenName(const char* prefix, std::uint64_t gen) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%06llu", prefix,
                static_cast<unsigned long long>(gen));
  return buf;
}

/// "<prefix><digits>" -> gen; false for anything else (tmp files etc.).
bool ParseGenName(const std::string& name, const char* prefix,
                  std::uint64_t* gen) {
  const std::size_t plen = std::char_traits<char>::length(prefix);
  if (name.size() <= plen || name.compare(0, plen, prefix) != 0) return false;
  std::uint64_t value = 0;
  for (std::size_t i = plen; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *gen = value;
  return true;
}

bool HasTmpSuffix(const std::string& name) {
  constexpr std::string_view kTmp = ".tmp";
  return name.size() >= kTmp.size() &&
         name.compare(name.size() - kTmp.size(), kTmp.size(), kTmp) == 0;
}

std::string EncodeSnapshotFile(std::uint64_t gen, std::uint64_t next_seq,
                               std::string_view payload) {
  BinaryWriter writer;
  writer.PutU32(kSnapshotMagic);
  writer.PutU32(kFormatVersion);
  writer.PutU64(gen);
  writer.PutU64(next_seq);
  writer.PutU64(payload.size());
  writer.PutU32(Crc32(payload));
  writer.PutBytes(payload.data(), payload.size());
  return writer.Take();
}

Status DecodeSnapshotFile(std::string_view bytes, std::uint64_t expected_gen,
                          std::uint64_t* next_seq, std::string* payload) {
  BinaryReader reader(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t gen = 0;
  std::uint64_t size = 0;
  std::uint32_t crc = 0;
  FM_RETURN_IF_ERROR(reader.GetU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::DataLoss("snapshot magic mismatch");
  }
  FM_RETURN_IF_ERROR(reader.GetU32(&version));
  if (version != kFormatVersion) {
    return Status::DataLoss("unsupported snapshot format version");
  }
  FM_RETURN_IF_ERROR(reader.GetU64(&gen));
  if (gen != expected_gen) {
    return Status::DataLoss("snapshot generation does not match its filename");
  }
  FM_RETURN_IF_ERROR(reader.GetU64(next_seq));
  FM_RETURN_IF_ERROR(reader.GetU64(&size));
  FM_RETURN_IF_ERROR(reader.GetU32(&crc));
  if (size != reader.remaining()) {
    return Status::DataLoss("snapshot payload length mismatch");
  }
  payload->resize(static_cast<std::size_t>(size));
  FM_RETURN_IF_ERROR(reader.GetBytes(payload->data(), payload->size()));
  if (Crc32(*payload) != crc) {
    return Status::DataLoss("snapshot checksum mismatch");
  }
  return Status::Ok();
}

std::string EncodeJournalHeader(std::uint64_t gen, std::uint64_t start_seq) {
  BinaryWriter body;
  body.PutU32(kJournalMagic);
  body.PutU32(kFormatVersion);
  body.PutU64(gen);
  body.PutU64(start_seq);
  BinaryWriter writer;
  writer.PutBytes(body.bytes().data(), body.bytes().size());
  writer.PutU32(Crc32(body.bytes()));
  return writer.Take();
}

std::string EncodeRecordFrame(std::uint64_t seq, std::string_view payload) {
  BinaryWriter seq_bytes;
  seq_bytes.PutU64(seq);
  BinaryWriter writer;
  writer.PutU32(static_cast<std::uint32_t>(payload.size()));
  writer.PutU32(Crc32(payload, Crc32(seq_bytes.bytes())));
  writer.PutU64(seq);
  writer.PutBytes(payload.data(), payload.size());
  return writer.Take();
}

/// Replays one journal file. `seq` carries the expected next sequence
/// number across files and is advanced past every accepted record.
/// `tolerant` is the newest-wal mode: a torn, truncated, or corrupt
/// suffix (header included) ends the durable history cleanly instead of
/// failing — an *older* wal was fsynced before its successor snapshot
/// could exist, so there any anomaly is unrecoverable corruption.
Status ParseJournal(std::string_view bytes, std::uint64_t expected_gen,
                    bool tolerant, std::uint64_t* seq,
                    std::vector<std::string>* records) {
  const Status corrupt_header =
      Status::DataLoss("journal header failed validation");
  if (bytes.size() < kJournalHeaderSize) {
    return tolerant ? Status::Ok() : corrupt_header;
  }
  const std::uint32_t header_crc_want =
      Crc32(bytes.substr(0, kJournalHeaderSize - 4));
  BinaryReader reader(bytes);
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t gen = 0;
  std::uint64_t start_seq = 0;
  std::uint32_t header_crc = 0;
  FM_RETURN_IF_ERROR(reader.GetU32(&magic));
  FM_RETURN_IF_ERROR(reader.GetU32(&version));
  FM_RETURN_IF_ERROR(reader.GetU64(&gen));
  FM_RETURN_IF_ERROR(reader.GetU64(&start_seq));
  FM_RETURN_IF_ERROR(reader.GetU32(&header_crc));
  if (magic != kJournalMagic || version != kFormatVersion ||
      gen != expected_gen || header_crc != header_crc_want ||
      start_seq != *seq) {
    return tolerant ? Status::Ok() : corrupt_header;
  }
  while (!reader.AtEnd()) {
    const Status corrupt_record =
        Status::DataLoss("journal record failed validation");
    if (reader.remaining() < kRecordFrameSize) {
      return tolerant ? Status::Ok() : corrupt_record;
    }
    std::uint32_t length = 0;
    std::uint32_t crc = 0;
    std::uint64_t record_seq = 0;
    FM_RETURN_IF_ERROR(reader.GetU32(&length));
    FM_RETURN_IF_ERROR(reader.GetU32(&crc));
    FM_RETURN_IF_ERROR(reader.GetU64(&record_seq));
    if (length > reader.remaining()) {
      return tolerant ? Status::Ok() : corrupt_record;
    }
    std::string payload(length, '\0');
    FM_RETURN_IF_ERROR(reader.GetBytes(payload.data(), payload.size()));
    BinaryWriter seq_bytes;
    seq_bytes.PutU64(record_seq);
    if (crc != Crc32(payload, Crc32(seq_bytes.bytes())) ||
        record_seq != *seq) {
      return tolerant ? Status::Ok() : corrupt_record;
    }
    ++*seq;
    records->push_back(std::move(payload));
  }
  return Status::Ok();
}

}  // namespace

std::string StateStore::SnapshotPath(std::uint64_t gen) const {
  return dir_ + "/" + GenName("snap-", gen);
}

std::string StateStore::JournalPath(std::uint64_t gen) const {
  return dir_ + "/" + GenName("wal-", gen);
}

StatusOr<StateStore> StateStore::Open(DurableFs* fs, std::string dir) {
  StateStore store(fs, std::move(dir));
  FM_RETURN_IF_ERROR(store.Recover());
  return store;
}

Status StateStore::Recover() {
  FM_RETURN_IF_ERROR(fs_->CreateDir(dir_));
  StatusOr<std::vector<std::string>> listing = fs_->ListDir(dir_);
  if (!listing.ok()) return listing.status();

  std::vector<std::uint64_t> snapshot_gens;
  std::vector<std::uint64_t> journal_gens;
  std::uint64_t max_gen_seen = 0;
  for (const std::string& name : listing.value()) {
    std::uint64_t gen = 0;
    if (HasTmpSuffix(name)) {
      // Leftover of a checkpoint that crashed before its rename; the
      // rename is the commit point, so an orphaned tmp is dead weight.
      (void)fs_->Remove(dir_ + "/" + name);
    } else if (ParseGenName(name, "snap-", &gen)) {
      snapshot_gens.push_back(gen);
      max_gen_seen = std::max(max_gen_seen, gen);
    } else if (ParseGenName(name, "wal-", &gen)) {
      journal_gens.push_back(gen);
      max_gen_seen = std::max(max_gen_seen, gen);
    }
  }

  // Newest snapshot that validates wins; an invalid newer one (torn or
  // bit-flipped) falls back to its predecessor, whose journal chain
  // still reaches the present (see the file comment).
  std::sort(snapshot_gens.rbegin(), snapshot_gens.rend());
  std::uint64_t base_gen = 0;
  for (const std::uint64_t gen : snapshot_gens) {
    StatusOr<std::string> bytes = fs_->ReadFile(SnapshotPath(gen));
    if (!bytes.ok()) {
      if (bytes.status().code() == StatusCode::kNotFound) continue;
      return bytes.status();
    }
    std::uint64_t next_seq = 0;
    std::string payload;
    if (DecodeSnapshotFile(bytes.value(), gen, &next_seq, &payload).ok()) {
      base_gen = gen;
      next_seq_ = next_seq;
      recovered_.has_snapshot = true;
      recovered_.snapshot = std::move(payload);
      break;
    }
  }
  if (!recovered_.has_snapshot && !snapshot_gens.empty()) {
    return Status::DataLoss("no snapshot in " + dir_ + " validates");
  }

  // Replay the journal chain from the chosen base. Only the newest wal
  // may end mid-record; older ones must parse fully and chain by seq.
  std::sort(journal_gens.begin(), journal_gens.end());
  for (const std::uint64_t gen : journal_gens) {
    if (recovered_.has_snapshot && gen < base_gen) continue;
    StatusOr<std::string> bytes = fs_->ReadFile(JournalPath(gen));
    if (!bytes.ok()) {
      if (bytes.status().code() == StatusCode::kNotFound) continue;
      return bytes.status();
    }
    const bool tolerant = gen == journal_gens.back();
    FM_RETURN_IF_ERROR(ParseJournal(bytes.value(), gen, tolerant, &next_seq_,
                                    &recovered_.records));
  }

  generation_ = std::max(base_gen, max_gen_seen);
  records_in_journal_ = recovered_.records.size();
  return Status::Ok();
}

Status StateStore::Checkpoint(std::string_view snapshot) {
  const std::uint64_t new_gen = generation_ + 1;
  // Step 1: the outgoing wal's records must be durable before a newer
  // snapshot exists — generation fallback depends on it being complete.
  if (!journal_path_.empty()) {
    FM_RETURN_IF_ERROR(fs_->Sync(journal_path_));
    journal_dirty_ = false;
  }
  // Step 2: snapshot appears atomically via tmp + fsync + rename.
  const std::string snap_path = SnapshotPath(new_gen);
  const std::string tmp_path = snap_path + ".tmp";
  FM_RETURN_IF_ERROR(
      fs_->WriteFile(tmp_path, EncodeSnapshotFile(new_gen, next_seq_, snapshot)));
  FM_RETURN_IF_ERROR(fs_->Sync(tmp_path));
  FM_RETURN_IF_ERROR(fs_->Rename(tmp_path, snap_path));
  // Step 3: fresh wal for the new generation.
  const std::string wal_path = JournalPath(new_gen);
  FM_RETURN_IF_ERROR(
      fs_->WriteFile(wal_path, EncodeJournalHeader(new_gen, next_seq_)));
  FM_RETURN_IF_ERROR(fs_->Sync(wal_path));
  // Step 4: drop generations the fallback chain no longer needs (keep
  // one full predecessor).
  if (new_gen >= 2) {
    StatusOr<std::vector<std::string>> listing = fs_->ListDir(dir_);
    if (listing.ok()) {
      for (const std::string& name : listing.value()) {
        std::uint64_t gen = 0;
        if ((ParseGenName(name, "snap-", &gen) ||
             ParseGenName(name, "wal-", &gen)) &&
            gen <= new_gen - 2) {
          (void)fs_->Remove(dir_ + "/" + name);
        }
      }
    }
  }
  generation_ = new_gen;
  journal_path_ = wal_path;
  records_in_journal_ = 0;
  journal_dirty_ = false;
  return Status::Ok();
}

Status StateStore::AppendRecord(std::string_view payload) {
  if (journal_path_.empty()) {
    return Status::FailedPrecondition(
        "no open journal: Checkpoint must run before AppendRecord");
  }
  FM_RETURN_IF_ERROR(
      fs_->Append(journal_path_, EncodeRecordFrame(next_seq_, payload)));
  ++next_seq_;
  ++records_in_journal_;
  journal_dirty_ = true;
  return Status::Ok();
}

Status StateStore::SyncJournal() {
  if (journal_path_.empty() || !journal_dirty_) return Status::Ok();
  FM_RETURN_IF_ERROR(fs_->Sync(journal_path_));
  journal_dirty_ = false;
  return Status::Ok();
}

}  // namespace frechet_motif
