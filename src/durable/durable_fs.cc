#include "durable/durable_fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace frechet_motif {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " " + path + ": " + std::strerror(errno));
}

}  // namespace

PosixFs::~PosixFs() {
  MutexLock lock(mu_);
  for (const auto& [path, fd] : append_fds_) ::close(fd);
}

void PosixFs::CloseCached(const std::string& path) {
  const auto it = append_fds_.find(path);
  if (it != append_fds_.end()) {
    ::close(it->second);
    append_fds_.erase(it);
  }
}

StatusOr<std::string> PosixFs::ReadFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

Status PosixFs::WriteFile(const std::string& path, std::string_view data) {
  {
    MutexLock lock(mu_);
    CloseCached(path);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", path);
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = Errno("write", path);
      ::close(fd);
      return status;
    }
    written += static_cast<std::size_t>(n);
  }
  if (::close(fd) != 0) return Errno("close", path);
  return Status::Ok();
}

Status PosixFs::Append(const std::string& path, std::string_view data) {
  int fd = -1;
  {
    MutexLock lock(mu_);
    const auto it = append_fds_.find(path);
    if (it != append_fds_.end()) {
      fd = it->second;
    } else {
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (fd < 0) return Errno("open", path);
      append_fds_.emplace(path, fd);
    }
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status PosixFs::Sync(const std::string& path) {
  int cached = -1;
  {
    MutexLock lock(mu_);
    const auto it = append_fds_.find(path);
    if (it != append_fds_.end()) cached = it->second;
  }
  if (cached >= 0) {
    if (::fsync(cached) != 0) return Errno("fsync", path);
    return Status::Ok();
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open", path);
  if (::fsync(fd) != 0) {
    const Status status = Errno("fsync", path);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

Status PosixFs::Rename(const std::string& from, const std::string& to) {
  {
    MutexLock lock(mu_);
    CloseCached(from);
    CloseCached(to);
  }
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno("rename", from);
  return Status::Ok();
}

Status PosixFs::Remove(const std::string& path) {
  {
    MutexLock lock(mu_);
    CloseCached(path);
  }
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("unlink", path);
  }
  return Status::Ok();
}

StatusOr<bool> PosixFs::Exists(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) return true;
  if (errno == ENOENT) return false;
  return Errno("stat", path);
}

StatusOr<std::vector<std::string>> PosixFs::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    const struct dirent* entry = ::readdir(d);
    if (entry == nullptr) {
      if (errno != 0) {
        const Status status = Errno("readdir", dir);
        ::closedir(d);
        return status;
      }
      break;
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(d);
  return names;
}

Status PosixFs::CreateDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Errno("mkdir", dir);
  }
  return Status::Ok();
}

}  // namespace frechet_motif
