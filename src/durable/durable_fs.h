#ifndef FRECHET_MOTIF_DURABLE_DURABLE_FS_H_
#define FRECHET_MOTIF_DURABLE_DURABLE_FS_H_

/// Filesystem seam of the durability layer.
///
/// Everything the snapshot/journal machinery does to disk goes through
/// this narrow, path-based interface, for two reasons:
///
///  * **Fault injection.** The crash-recovery guarantees of
///    src/durable/ are only as good as the failure modes they are
///    tested against. tests/fault_fs.h implements this interface as an
///    in-memory filesystem that kills the process between any write,
///    sync, and rename, loses unsynced bytes on "reboot", tears
///    trailing writes, and flips bits — driving the recovery fuzz test
///    through failure schedules a real disk produces rarely and
///    unreproducibly.
///  * **Explicit durability points.** The interface separates writing
///    from syncing, so the store's commit protocol (append → sync →
///    rename, see state_store.h) is spelled out in calls rather than
///    implied by library defaults.
///
/// `PosixFs` is the real implementation. It keeps an open descriptor
/// per appended-to file so a journal append is one write(2), not an
/// open/write/close cycle.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace frechet_motif {

class DurableFs {
 public:
  virtual ~DurableFs() = default;

  /// Reads the whole file. NotFound when it does not exist.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;

  /// Creates/truncates `path` with `data`. No durability until Sync.
  virtual Status WriteFile(const std::string& path,
                           std::string_view data) = 0;

  /// Appends `data` to `path`, creating it when missing. No durability
  /// until Sync.
  virtual Status Append(const std::string& path, std::string_view data) = 0;

  /// Forces `path`'s written bytes to stable storage (fsync).
  virtual Status Sync(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics: after a
  /// crash the destination is either the old or the new file, never a
  /// mix).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Removes `path`. NotFound when it does not exist.
  virtual Status Remove(const std::string& path) = 0;

  virtual StatusOr<bool> Exists(const std::string& path) = 0;

  /// Entry names (not paths) in `dir`, unsorted; "." and ".." excluded.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  /// Creates `dir` (single level); ok when it already exists.
  virtual Status CreateDir(const std::string& dir) = 0;
};

/// The real filesystem. Append targets keep an open O_APPEND
/// descriptor, released on Rename/Remove of the path and in the
/// destructor; Sync fsyncs the cached descriptor when present.
///
/// The descriptor cache is guarded by a mutex (annotated for Clang's
/// thread-safety analysis), so one PosixFs may be shared across
/// threads that touch *different* paths. Calls against the same path
/// still need external ordering — the store's commit protocol depends
/// on append/sync/rename sequencing no lock can provide.
class PosixFs final : public DurableFs {
 public:
  PosixFs() = default;
  ~PosixFs() override;

  PosixFs(const PosixFs&) = delete;
  PosixFs& operator=(const PosixFs&) = delete;

  StatusOr<std::string> ReadFile(const std::string& path) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Append(const std::string& path, std::string_view data) override;
  Status Sync(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  StatusOr<bool> Exists(const std::string& path) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  Status CreateDir(const std::string& dir) override;

 private:
  void CloseCached(const std::string& path) REQUIRES(mu_);

  Mutex mu_;
  /// Open O_APPEND descriptors, one per actively appended file.
  std::map<std::string, int> append_fds_ GUARDED_BY(mu_);
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DURABLE_DURABLE_FS_H_
