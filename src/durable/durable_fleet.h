#ifndef FRECHET_MOTIF_DURABLE_DURABLE_FLEET_H_
#define FRECHET_MOTIF_DURABLE_DURABLE_FLEET_H_

/// Crash-safe wrapper around `MotifFleetEngine`: snapshot + journal
/// durability with bit-exact recovery.
///
/// ## How the journal stays deterministic
///
/// The engine's in-order core is perfectly replayable, but the reorder
/// buffers in front of it are not: replaying *raw* arrivals through a
/// frontend whose buffered contents were lost mid-crash would release a
/// different in-order sequence. The journal therefore records arrivals
/// **post-reorder** — exactly the released, in-order sequence the
/// windows consumed — and recovery feeds it straight back through
/// `MotifFleetEngine::ReplayReleased`.
///
/// DurableFleet owns the journal-side `IngestFrontend`s itself and
/// drives the inner engine *only* via ReplayReleased, live and during
/// recovery alike — one code path, so the recovery parity argument is
/// structural: the engine sees the identical call sequence either way.
/// One journal record holds one engine call's released batch (possibly
/// empty, for budgeted `Drain`s that ran deferred searches), so replay
/// reproduces call boundaries — and with them search coalescing and
/// join-tick grouping — bit for bit.
///
/// ## Durability semantics
///
/// A point is durable once it has been *released* past the watermark
/// and its record synced (`sync_each_record`, default on). Points still
/// sitting in a reorder buffer are **not** durable — a crash loses
/// them, exactly as a watermark-based pipeline loses in-flight
/// unacknowledged data. After recovery the journal-side frontends are
/// re-seeded with the engine's restored watermarks, so the late-drop
/// boundary is unchanged.
///
/// `Open` recovers (newest valid snapshot + journal tail, see
/// state_store.h), then immediately checkpoints, so new records never
/// extend a journal whose tail was just found torn.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durable/durable_fs.h"
#include "durable/state_store.h"
#include "geo/metric.h"
#include "stream/ingest_frontend.h"
#include "stream/motif_fleet_engine.h"
#include "util/status.h"

namespace frechet_motif {

/// Durability configuration, orthogonal to the engine's FleetOptions.
struct DurableOptions {
  /// State directory (created if missing) holding snapshots + journals.
  std::string state_dir;

  /// Auto-checkpoint after this many journal records (0 = only explicit
  /// Checkpoint calls).
  std::uint64_t checkpoint_interval_records = 1024;

  /// fsync the journal after every committed record. Off trades the
  /// last few records on crash for throughput (recovery still finds a
  /// valid prefix — the frames are CRC'd).
  bool sync_each_record = true;

  /// Filesystem override for fault injection (tests/fault_fs.h); null
  /// uses a process-owned PosixFs. Must outlive the fleet.
  DurableFs* fs = nullptr;
};

/// What `DurableFleet::Open` did to get back to the pre-crash state.
struct RecoveryInfo {
  bool restored_snapshot = false;
  std::uint64_t replayed_records = 0;
  /// Reports the replayed records regenerated, in journal order — the
  /// recovery fuzz harness checks them against the original run's.
  std::vector<FleetReport> replay_reports;
};

class DurableFleet {
 public:
  /// Opens (recovering if state exists) a durable fleet. `metric` and
  /// `durable.fs` (when set) must outlive the fleet. `options` must
  /// match any recovered snapshot's configuration (threads excepted).
  static StatusOr<DurableFleet> Open(const FleetOptions& options,
                                     const GroundMetric& metric,
                                     const DurableOptions& durable);

  DurableFleet(DurableFleet&&) = default;
  DurableFleet& operator=(DurableFleet&&) = default;

  const RecoveryInfo& recovery() const { return recovery_; }

  /// Adds a stream (journaled). Ids are dense, starting at 0.
  StatusOr<std::size_t> AddStream();

  /// Engine-call mirrors of MotifFleetEngine's ingest surface. Each
  /// call that changes durable state commits one journal record.
  StatusOr<FleetReport> Push(std::size_t stream, const Point& p);
  StatusOr<FleetReport> Push(std::size_t stream, const Point& p,
                             double timestamp);
  StatusOr<FleetReport> Ingest(const std::vector<FleetArrival>& batch);
  StatusOr<FleetReport> Drain();

  /// Flushes the reorder buffers (end of feed) and commits the release.
  StatusOr<FleetReport> Flush();

  /// Rotates to a fresh snapshot generation now.
  Status Checkpoint();

  /// Forces any unsynced journal records to stable storage (a no-op
  /// with `sync_each_record`).
  Status Sync();

  /// The wrapped engine, for queries and parity checks. All mutation
  /// must go through the fleet — direct engine writes would bypass the
  /// journal.
  const MotifFleetEngine& engine() const { return engine_; }

  std::size_t stream_count() const { return engine_.stream_count(); }

  /// Engine counters with the reorder/late-drop counts taken from the
  /// journal-side frontends (the engine's own frontends only ever see
  /// released points).
  FleetStats stats() const;

  /// Per-stream arrival accounting from the journal-side frontend —
  /// the counters that describe the raw feed (the engine's frontends
  /// only ever see released points).
  const IngestStats& ingest_stats(std::size_t stream) const {
    return frontends_[stream].stats();
  }
  /// Points currently held in `stream`'s journal-side reorder buffer.
  Index buffered(std::size_t stream) const {
    return frontends_[stream].buffered();
  }

  std::uint64_t generation() const { return store_.generation(); }

 private:
  DurableFleet(MotifFleetEngine engine, StateStore store,
               std::unique_ptr<DurableFs> owned_fs,
               const DurableOptions& durable);

  /// Applies one engine call's released batch and journals it. Skips
  /// the journal when the call neither delivered nor reported anything
  /// (`force_commit` overrides, for calls whose *boundary* matters).
  StatusOr<FleetReport> CommitBatch(const std::vector<FleetArrival>& released,
                                    bool force_commit);

  MotifFleetEngine engine_;
  StateStore store_;
  /// Set only when DurableOptions::fs was null.
  std::unique_ptr<DurableFs> owned_fs_;

  std::uint64_t checkpoint_interval_ = 1024;
  bool sync_each_record_ = true;

  /// Journal-side reorder frontends, one per stream. Their buffered
  /// contents are deliberately volatile (see the file comment).
  std::vector<IngestFrontend> frontends_;

  RecoveryInfo recovery_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DURABLE_DURABLE_FLEET_H_
