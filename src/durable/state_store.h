#ifndef FRECHET_MOTIF_DURABLE_STATE_STORE_H_
#define FRECHET_MOTIF_DURABLE_STATE_STORE_H_

/// Generation-based snapshot + write-ahead-journal store.
///
/// A state directory holds at most two *generations* of durable state,
/// each a pair of files:
///
///     snap-<gen>   one checksummed snapshot blob (the engine manifest)
///     wal-<gen>    the append-only journal of records since that
///                  snapshot (CRC-framed, globally sequence-numbered)
///
/// ## Commit protocol
///
/// `Checkpoint(blob)` rotates to generation g+1 in an order that keeps
/// a valid recovery chain through any crash point:
///
///   1. fsync wal-g             -- its records are durable *before* any
///                                 newer snapshot claims to cover them
///   2. write snap-(g+1).tmp, fsync, rename to snap-(g+1)
///                              -- the snapshot appears atomically
///   3. create wal-(g+1) (header only), fsync
///   4. delete generations <= g-1 (one full fallback generation stays)
///
/// `AppendRecord` frames a payload as [len | crc | seq | bytes] and
/// appends it to the current wal; `SyncJournal` is the durability
/// point (the caller decides the sync cadence).
///
/// ## Recovery
///
/// `Open` scans the directory, picks the *newest snapshot that
/// validates* (magic, version, length, CRC), and replays the journal
/// chain from there: every wal of an older generation must parse
/// completely and chain gaplessly by sequence number (it was fsynced in
/// step 1 before its successor snapshot could exist), while the newest
/// wal is *tail-tolerant* — a torn, truncated, or bit-flipped trailing
/// record marks the end of the durable history rather than an error.
/// The recovered blob + record payloads are exposed via `recovered()`;
/// interpreting them is the caller's business (durable_fleet.h).
///
/// A freshly opened store has no writable journal: the caller must
/// `Checkpoint` once (durable_fleet.h does so right after recovery)
/// before appending, so new records never land in a wal whose tail was
/// just found corrupt.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "durable/durable_fs.h"
#include "util/status.h"

namespace frechet_motif {

/// What `StateStore::Open` reconstructed from the directory.
struct RecoveredState {
  /// False on a fresh (or snapshot-less) directory; `snapshot` is then
  /// empty and `records` holds any journal tail that still chained.
  bool has_snapshot = false;
  std::string snapshot;
  /// Journal record payloads released after the snapshot, in append
  /// order.
  std::vector<std::string> records;
};

class StateStore {
 public:
  /// Opens (creating if needed) the state directory and runs recovery.
  /// `fs` must outlive the store. Fails with DataLoss when snapshots
  /// exist but none validates, or when an *older*-generation journal —
  /// one the protocol had already made durable — fails to parse.
  static StatusOr<StateStore> Open(DurableFs* fs, std::string dir);

  StateStore(StateStore&&) = default;
  StateStore& operator=(StateStore&&) = default;

  const RecoveredState& recovered() const { return recovered_; }

  /// Rotates to a new generation around `snapshot` (see the file
  /// comment for the crash-ordering argument) and opens its journal
  /// for appending.
  Status Checkpoint(std::string_view snapshot);

  /// Appends one CRC-framed, sequence-numbered record to the current
  /// journal. Not durable until SyncJournal. FailedPrecondition before
  /// the first Checkpoint.
  Status AppendRecord(std::string_view payload);

  /// Forces appended records to stable storage.
  Status SyncJournal();

  /// Current generation (0 before the first Checkpoint on a fresh
  /// directory).
  std::uint64_t generation() const { return generation_; }

  /// Sequence number the next AppendRecord will stamp.
  std::uint64_t next_seq() const { return next_seq_; }

  /// Records appended since the last Checkpoint (recovered journal
  /// records count on a freshly opened store — the caller uses this to
  /// decide when to rotate).
  std::uint64_t records_in_journal() const { return records_in_journal_; }

  std::string SnapshotPath(std::uint64_t gen) const;
  std::string JournalPath(std::uint64_t gen) const;

 private:
  StateStore(DurableFs* fs, std::string dir) : fs_(fs), dir_(std::move(dir)) {}

  Status Recover();

  DurableFs* fs_;
  std::string dir_;

  RecoveredState recovered_;
  std::uint64_t generation_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t records_in_journal_ = 0;
  /// Empty until the first Checkpoint — no appends before rotation.
  std::string journal_path_;
  bool journal_dirty_ = false;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_DURABLE_STATE_STORE_H_
