#ifndef FRECHET_MOTIF_SERVE_SERVE_LOOP_H_
#define FRECHET_MOTIF_SERVE_SERVE_LOOP_H_

/// Production transport of the serve tier: a single-threaded poll(2)
/// event loop driving a `MotifServer` over real sockets.
///
/// The loop owns nothing but readiness detection and the monotonic
/// clock — all policy (admission, parsing, backpressure, drain) lives
/// in the server core, which is what the fault-injection tests drive
/// directly. Signal-triggered shutdown is cooperative: the caller
/// installs handlers that set a `sig_atomic_t` flag (the CLI reuses
/// `fmotif`'s interrupt flag), the loop notices it between poll rounds,
/// begins the drain, and returns once every connection has flushed or
/// the grace period expired. The caller then runs
/// `MotifServer::Shutdown()` for the durable checkpoint.

#include <atomic>
#include <csignal>
#include <cstdint>

#include "serve/motif_server.h"
#include "serve/serve_socket.h"
#include "util/status.h"

namespace frechet_motif {

struct ServeLoopOptions {
  /// Drain trigger: the loop begins a graceful drain once `*stop` is
  /// non-zero (typically set by a SIGTERM/SIGINT handler). Null means
  /// the loop only ends via `stop_atomic` or `max_runtime_ms`.
  const volatile std::sig_atomic_t* stop = nullptr;

  /// Thread-safe drain trigger for callers that run the loop on a
  /// worker thread (tests, embedders). A `sig_atomic_t` is only safe
  /// against signal handlers on the same thread; cross-thread stops
  /// must use this one. This flag is the loop's *only* cross-thread
  /// state (the server core is single-threaded by contract), which is
  /// why it is a std::atomic rather than a GUARDED_BY field — there is
  /// no mutex here for Clang's thread-safety analysis to track, and
  /// the relaxed load below is deliberately race-free on its own.
  const std::atomic<bool>* stop_atomic = nullptr;

  /// poll(2) timeout — the upper bound on drain-trigger and timeout
  /// latency when no traffic arrives.
  int poll_interval_ms = 200;

  /// Safety valve for tests/benchmarks: drain unconditionally after
  /// this long (0 = run until `stop`).
  std::int64_t max_runtime_ms = 0;
};

/// Runs until a drain (stop flag or max runtime) completes. Returns the
/// first listener-level error, or Ok after a clean drain; per-connection
/// failures never end the loop.
Status RunServeLoop(MotifServer& server, ServeListener& listener,
                    const ServeLoopOptions& options);

/// The loop's clock: monotonic milliseconds (steady_clock).
std::int64_t ServeNowMs();

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SERVE_SERVE_LOOP_H_
