#ifndef FRECHET_MOTIF_SERVE_SERVE_SOCKET_H_
#define FRECHET_MOTIF_SERVE_SERVE_SOCKET_H_

/// The narrow socket seam of the serve tier.
///
/// All byte I/O performed by `MotifServer` goes through `ServeSocket`,
/// and all connection admission through `ServeListener` — never through
/// raw fds. The production implementations (`PosixServeSocket`,
/// `PosixListener`) wrap non-blocking TCP sockets; the test double
/// (`tests/fault_socket.h`) is an in-memory pair that injects short
/// reads/writes, EAGAIN storms, and mid-frame resets, mirroring the
/// `DurableFs`/`FaultFs` seam of the durability layer. The server core
/// is therefore testable byte-for-byte without a network stack.
///
/// ## I/O contract
///
/// Both Read and Write are non-blocking and may move fewer bytes than
/// asked (`IoStatus::kOk` with a short count). `kWouldBlock` moves no
/// bytes and means "retry when the transport signals readiness".
/// `kEof` is read-side only: the peer closed cleanly. `kError` is a
/// dead connection (reset, protocol error, injected fault) — the server
/// drops it without further I/O. No method ever blocks, raises, or
/// terminates the process.

#include <cstddef>
#include <memory>
#include <string>

#include "util/status.h"

namespace frechet_motif {

/// Outcome class of one non-blocking socket operation.
enum class IoStatus {
  kOk,          ///< `bytes` moved (possibly fewer than requested).
  kWouldBlock,  ///< Nothing moved; retry on the next readiness signal.
  kEof,         ///< Peer closed the read side cleanly (Read only).
  kError,       ///< Connection dead (reset / injected fault).
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// One bidirectional byte stream. Implementations own the underlying
/// resource and release it in Close() (also called by the destructor).
class ServeSocket {
 public:
  virtual ~ServeSocket() = default;

  /// Reads at most `cap` bytes into `buf`.
  virtual IoResult Read(char* buf, std::size_t cap) = 0;

  /// Writes at most `len` bytes from `data`.
  virtual IoResult Write(const char* data, std::size_t len) = 0;

  virtual void Close() = 0;

  /// The pollable descriptor, or -1 when the transport is not
  /// fd-backed (in-memory test sockets).
  virtual int fd() const { return -1; }

  /// Peer label for counters/log lines ("127.0.0.1:43210", "fault").
  virtual std::string peer() const = 0;
};

/// Accepts inbound connections. `Accept` never blocks: it returns a
/// null socket when no connection is pending.
class ServeListener {
 public:
  virtual ~ServeListener() = default;

  /// One pending connection as a ready ServeSocket, a null pointer when
  /// none is pending, or an error for a broken listener.
  virtual StatusOr<std::unique_ptr<ServeSocket>> Accept() = 0;

  virtual int fd() const = 0;
};

/// Production socket: a connected non-blocking TCP (or socketpair) fd.
/// Takes ownership of `fd`; writes suppress SIGPIPE (MSG_NOSIGNAL).
class PosixServeSocket : public ServeSocket {
 public:
  /// Adopts `fd` and switches it to non-blocking mode.
  explicit PosixServeSocket(int fd, std::string peer = "");
  ~PosixServeSocket() override;

  PosixServeSocket(const PosixServeSocket&) = delete;
  PosixServeSocket& operator=(const PosixServeSocket&) = delete;

  IoResult Read(char* buf, std::size_t cap) override;
  IoResult Write(const char* data, std::size_t len) override;
  void Close() override;
  int fd() const override { return fd_; }
  std::string peer() const override { return peer_; }

 private:
  int fd_ = -1;
  std::string peer_;
};

/// Production listener: a non-blocking TCP listener on `bind_addr:port`
/// (port 0 = kernel-assigned; read it back via port()).
class PosixListener : public ServeListener {
 public:
  static StatusOr<PosixListener> Create(const std::string& bind_addr,
                                        int port);
  ~PosixListener() override;

  PosixListener(PosixListener&& other) noexcept;
  PosixListener& operator=(PosixListener&& other) noexcept;

  StatusOr<std::unique_ptr<ServeSocket>> Accept() override;
  int fd() const override { return fd_; }

  /// The bound port (resolves port 0 to the kernel's choice).
  int port() const { return port_; }

 private:
  PosixListener(int fd, int port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  int port_ = 0;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SERVE_SERVE_SOCKET_H_
