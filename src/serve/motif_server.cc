#include "serve/motif_server.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "data/io.h"
#include "util/json_writer.h"

namespace frechet_motif {

namespace {

/// Streams listed in a `stats` frame; beyond this the array truncates
/// (the aggregate counters always cover every stream).
constexpr std::size_t kStatsFrameStreamCap = 128;

std::string ByeFrame(const std::string& reason) {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("bye");
  w.Key("reason");
  w.String(reason);
  w.EndObject();
  return w.str() + "\n";
}

std::string SimpleFrame(const std::string& type) {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String(type);
  w.EndObject();
  return w.str() + "\n";
}

std::string SubscribedFrame(const std::string& mode) {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("subscribed");
  w.Key("mode");
  w.String(mode);
  w.EndObject();
  return w.str() + "\n";
}

std::string DroppedFrame(std::int64_t frames) {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("dropped");
  w.Key("frames");
  w.Int(frames);
  w.EndObject();
  return w.str() + "\n";
}

std::string ErrorFrame(const std::string& code, std::int64_t line,
                       const std::string& message) {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("error");
  w.Key("code");
  w.String(code);
  if (line > 0) {
    w.Key("line");
    w.Int(line);
  }
  w.Key("message");
  w.String(message);
  w.EndObject();
  return w.str() + "\n";
}

/// Uppercases ASCII in place (command verbs are case-insensitive).
std::string AsciiUpper(std::string s) {
  for (char& c : s) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return s;
}

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

}  // namespace

std::string SerializeReportFrame(const FleetStreamUpdate& update) {
  const StreamUpdate& u = update.update;
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("report");
  w.Key("stream");
  w.Int(static_cast<std::int64_t>(update.stream));
  w.Key("window_start");
  w.Int(u.window_start);
  w.Key("window_points");
  w.Int(static_cast<std::int64_t>(u.window_points));
  w.Key("seeded");
  w.Bool(u.seeded);
  w.Key("carried");
  w.Bool(u.carried);
  w.Key("approx_eps");
  w.Double(u.approximation_epsilon);
  w.Key("found");
  w.Bool(u.motif.found);
  w.Key("distance_m");
  w.Double(u.motif.distance);
  w.Key("first");
  w.BeginArray();
  w.Int(static_cast<std::int64_t>(u.motif.best.i));
  w.Int(static_cast<std::int64_t>(u.motif.best.ie));
  w.EndArray();
  w.Key("second");
  w.BeginArray();
  w.Int(static_cast<std::int64_t>(u.motif.best.j));
  w.Int(static_cast<std::int64_t>(u.motif.best.je));
  w.EndArray();
  w.Key("dfd_cells");
  w.Int(u.stats.dfd_cells_computed);
  w.EndObject();
  return w.str() + "\n";
}

std::string SerializeJoinFrame(const JoinDelta& delta) {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("join_delta");
  w.Key("entered");
  w.BeginArray();
  for (const JoinPair& p : delta.entered) {
    w.BeginArray();
    w.Int(static_cast<std::int64_t>(p.li));
    w.Int(static_cast<std::int64_t>(p.ri));
    w.EndArray();
  }
  w.EndArray();
  w.Key("left");
  w.BeginArray();
  for (const JoinPair& p : delta.left) {
    w.BeginArray();
    w.Int(static_cast<std::int64_t>(p.li));
    w.Int(static_cast<std::int64_t>(p.ri));
    w.EndArray();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

StatusOr<MotifServer> MotifServer::Create(const ServeOptions& options,
                                          const GroundMetric& metric) {
  const ServeLimits& lim = options.limits;
  if (lim.max_connections < 1) {
    return Status::InvalidArgument("max_connections must be >= 1");
  }
  if (lim.max_line_bytes < 16) {
    return Status::InvalidArgument("max_line_bytes must be >= 16");
  }
  if (lim.subscriber_queue_high_water_bytes < lim.subscriber_queue_bytes) {
    return Status::InvalidArgument(
        "subscriber_queue_high_water_bytes must be >= "
        "subscriber_queue_bytes");
  }
  if (lim.max_read_bytes_per_call == 0) {
    return Status::InvalidArgument("max_read_bytes_per_call must be >= 1");
  }
  if (lim.drain_grace_ms < 0) {
    return Status::InvalidArgument("drain_grace_ms must be >= 0");
  }
  if (lim.max_streams < 1) {
    return Status::InvalidArgument("max_streams must be >= 1");
  }

  MotifServer server(options, metric);
  if (options.durable_enabled()) {
    StatusOr<DurableFleet> fleet =
        DurableFleet::Open(options.fleet, metric, options.durable);
    if (!fleet.ok()) return fleet.status();
    server.durable_.emplace(std::move(fleet).value());
  } else {
    StatusOr<MotifFleetEngine> engine =
        MotifFleetEngine::Create(options.fleet, metric);
    if (!engine.ok()) return engine.status();
    server.plain_.emplace(std::move(engine).value());
  }
  return server;
}

MotifServer::Conn* MotifServer::Find(ConnId id) {
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : &it->second;
}

std::vector<MotifServer::ConnId> MotifServer::ConnectionIds() const {
  std::vector<ConnId> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  return ids;
}

bool MotifServer::WantsRead(ConnId id) const {
  auto it = conns_.find(id);
  return it != conns_.end() && !it->second.closing;
}

bool MotifServer::WantsWrite(ConnId id) const {
  auto it = conns_.find(id);
  return it != conns_.end() && !it->second.out.empty();
}

ServeSocket* MotifServer::socket(ConnId id) {
  Conn* c = Find(id);
  return c == nullptr ? nullptr : c->socket.get();
}

std::int64_t MotifServer::ConnDroppedFrames(ConnId id) const {
  auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second.dropped;
}

FleetStats MotifServer::fleet_stats() const {
  return durable_.has_value() ? durable_->stats() : plain_->stats();
}

MotifServer::ConnId MotifServer::OnAccept(std::unique_ptr<ServeSocket> socket,
                                          std::int64_t now_ms) {
  if (socket == nullptr) return 0;
  if (draining_ || AtCapacity()) {
    // Shed with one best-effort frame so the client learns why; a peer
    // that cannot take the write just sees the close.
    const std::string frame = draining_
                                  ? ByeFrame("draining")
                                  : ErrorFrame("busy", 0, "server at capacity");
    (void)socket->Write(frame.data(), frame.size());
    socket->Close();
    if (!draining_) ++stats_.rejected_busy;
    return 0;
  }
  const ConnId id = next_id_++;
  Conn& c = conns_[id];
  c.socket = std::move(socket);
  c.last_read_ms = now_ms;
  ++stats_.accepted;
  Enqueue(id, c, HelloFrame(), /*droppable=*/false, now_ms);
  if (Connected(id)) FlushOut(id, c);
  return id;
}

void MotifServer::OnReadable(ConnId id, std::int64_t now_ms) {
  Conn* c = Find(id);
  if (c == nullptr || c->closing) return;
  const ServeLimits& lim = options_.limits;

  std::size_t total = 0;
  bool eof = false;
  while (total < lim.max_read_bytes_per_call) {
    char buf[8192];
    const std::size_t want =
        std::min(sizeof(buf), lim.max_read_bytes_per_call - total);
    const IoResult r = c->socket->Read(buf, want);
    if (r.status == IoStatus::kOk) {
      if (r.bytes == 0) break;
      c->in.append(buf, r.bytes);
      total += r.bytes;
      stats_.bytes_in += static_cast<std::int64_t>(r.bytes);
      c->last_read_ms = now_ms;
    } else if (r.status == IoStatus::kWouldBlock) {
      break;
    } else if (r.status == IoStatus::kEof) {
      eof = true;
      break;
    } else {
      ++stats_.io_errors;
      CloseNow(id);
      return;
    }
  }

  if (c->in.size() > lim.max_ingest_pending_bytes && !c->discarding) {
    ++stats_.evicted_pending_overflow;
    c->in.clear();
    QueueError(id, *c, "overflow", "pending ingest bytes over limit",
               now_ms);
    if (Connected(id)) BeginClose(*c, "overflow", now_ms);
    if (Connected(id)) FlushOut(id, *c);
    return;
  }

  ProcessBuffer(id, *c, now_ms);
  c = Find(id);
  if (c == nullptr) return;

  if (eof) {
    // End of session: the peer half-closed. Unterminated trailing bytes
    // are an incomplete frame and are discarded; queued output (the
    // peer may still be reading) is flushed, then the socket closes.
    ++stats_.closed_by_peer;
    c->in.clear();
    if (!c->closing) {
      c->closing = true;
      c->close_deadline_ms = now_ms + options_.limits.drain_grace_ms;
    }
    if (c->out.empty()) {
      CloseNow(id);
      return;
    }
  }
  FlushOut(id, *c);
}

void MotifServer::OnWritable(ConnId id, std::int64_t now_ms) {
  (void)now_ms;
  Conn* c = Find(id);
  if (c == nullptr) return;
  FlushOut(id, *c);
}

void MotifServer::Tick(std::int64_t now_ms) {
  const ServeLimits& lim = options_.limits;
  for (ConnId id : ConnectionIds()) {
    Conn* c = Find(id);
    if (c == nullptr) continue;
    if (c->closing) {
      if (now_ms >= c->close_deadline_ms) CloseNow(id);
      continue;
    }
    if (lim.idle_timeout_ms > 0 &&
        now_ms - c->last_read_ms >= lim.idle_timeout_ms) {
      ++stats_.evicted_idle;
      BeginClose(*c, "idle", now_ms);
      FlushOut(id, *c);
    }
  }
}

void MotifServer::BeginDrain(std::int64_t now_ms) {
  if (draining_) return;
  draining_ = true;
  for (ConnId id : ConnectionIds()) {
    Conn* c = Find(id);
    if (c == nullptr || c->closing) continue;
    BeginClose(*c, "draining", now_ms);
    FlushOut(id, *c);
  }
}

Status MotifServer::Shutdown() {
  if (durable_.has_value()) {
    Status checkpoint = durable_->Checkpoint();
    if (!checkpoint.ok()) return checkpoint;
    return durable_->Sync();
  }
  return Status::Ok();
}

void MotifServer::ProcessBuffer(ConnId id, Conn& c, std::int64_t now_ms) {
  const ServeLimits& lim = options_.limits;
  std::vector<FleetArrival> batch;
  std::size_t pos = 0;
  while (true) {
    if (c.discarding) {
      const std::size_t nl = c.in.find('\n', pos);
      if (nl == std::string::npos) {
        pos = c.in.size();
        break;
      }
      pos = nl + 1;
      c.discarding = false;
      continue;
    }
    const std::size_t nl = c.in.find('\n', pos);
    if (nl == std::string::npos) {
      if (c.in.size() - pos > lim.max_line_bytes) {
        ++stats_.oversized_lines;
        ++c.lines;
        QueueError(id, c, "oversized",
                   "line exceeds " + std::to_string(lim.max_line_bytes) +
                       " bytes",
                   now_ms);
        c.discarding = true;
        pos = c.in.size();
      }
      break;
    }
    std::string line = c.in.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.size() > lim.max_line_bytes) {
      ++stats_.oversized_lines;
      ++c.lines;
      QueueError(id, c, "oversized",
                 "line exceeds " + std::to_string(lim.max_line_bytes) +
                     " bytes",
                 now_ms);
      continue;
    }
    HandleLine(id, c, line, &batch, now_ms);
    if (c.closing) break;  // QUIT / eviction: ignore the rest
  }
  c.in.erase(0, pos);
  FlushIngest(id, c, &batch, now_ms);
}

void MotifServer::HandleLine(ConnId id, Conn& c, const std::string& raw,
                             std::vector<FleetArrival>* batch,
                             std::int64_t now_ms) {
  std::string line = raw;
  StripTrailingCr(&line);
  std::size_t at = line.find_first_not_of(" \t");
  if (at == std::string::npos) return;  // blank keepalive line
  ++c.lines;
  ++stats_.lines_in;

  const char first = line[at];
  const bool is_command = (first >= 'A' && first <= 'Z') ||
                          (first >= 'a' && first <= 'z');
  if (is_command) {
    // Commands observe every ingest row that preceded them on the wire.
    FlushIngest(id, c, batch, now_ms);
    HandleCommand(id, c, line.substr(at), now_ms);
    return;
  }

  FleetArrival arrival;
  switch (ParseFleetCsvRow(line, &arrival.stream, &arrival.point.x,
                           &arrival.point.y, &arrival.timestamp,
                           &arrival.has_timestamp)) {
    case CsvRow::kBlank:
      return;
    case CsvRow::kMalformed:
      ++stats_.parse_errors;
      QueueError(id, c, "parse", "unparsable row", now_ms);
      return;
    case CsvRow::kMalformedTimestamp:
      ++stats_.parse_errors;
      QueueError(id, c, "parse", "unparsable timestamp", now_ms);
      return;
    case CsvRow::kPoint:
      break;
  }
  if (!arrival.point.IsFinite() ||
      (arrival.has_timestamp && !std::isfinite(arrival.timestamp))) {
    ++stats_.parse_errors;
    QueueError(id, c, "parse", "non-finite coordinate or timestamp",
               now_ms);
    return;
  }
  if (arrival.stream >= options_.limits.max_streams) {
    ++stats_.parse_errors;
    QueueError(id, c, "range",
               "stream id >= max_streams (" +
                   std::to_string(options_.limits.max_streams) + ")",
               now_ms);
    return;
  }
  batch->push_back(arrival);
}

void MotifServer::HandleCommand(ConnId id, Conn& c, const std::string& line,
                                std::int64_t now_ms) {
  const std::size_t space = line.find_first_of(" \t");
  const std::string verb = AsciiUpper(line.substr(0, space));
  std::string arg;
  if (space != std::string::npos) {
    const std::size_t arg_at = line.find_first_not_of(" \t", space);
    if (arg_at != std::string::npos) {
      std::size_t arg_end = line.find_last_not_of(" \t");
      arg = line.substr(arg_at, arg_end - arg_at + 1);
    }
  }

  if (verb == "PING") {
    Enqueue(id, c, SimpleFrame("pong"), /*droppable=*/false, now_ms);
  } else if (verb == "SUB") {
    const std::string mode = arg.empty() ? "ALL" : AsciiUpper(arg);
    if (mode == "REPORTS") {
      c.sub = SubMode::kReports;
    } else if (mode == "JOIN") {
      c.sub = SubMode::kJoin;
    } else if (mode == "ALL") {
      c.sub = SubMode::kAll;
    } else {
      ++stats_.parse_errors;
      QueueError(id, c, "parse", "SUB expects reports|join|all", now_ms);
      return;
    }
    const char* label = c.sub == SubMode::kReports  ? "reports"
                        : c.sub == SubMode::kJoin   ? "join"
                                                    : "all";
    Enqueue(id, c, SubscribedFrame(label), /*droppable=*/false, now_ms);
  } else if (verb == "UNSUB") {
    c.sub = SubMode::kNone;
    Enqueue(id, c, SimpleFrame("unsubscribed"), /*droppable=*/false, now_ms);
  } else if (verb == "STATS") {
    Enqueue(id, c, StatsFrame(), /*droppable=*/false, now_ms);
  } else if (verb == "QUIT") {
    BeginClose(c, "quit", now_ms);
  } else {
    ++stats_.parse_errors;
    QueueError(id, c, "parse", "unknown command: " + verb, now_ms);
  }
}

Status MotifServer::EnsureStreams(std::size_t stream) {
  while (engine().stream_count() <= stream) {
    StatusOr<std::size_t> added =
        durable_.has_value() ? durable_->AddStream() : plain_->AddStream();
    if (!added.ok()) return added.status();
  }
  return Status::Ok();
}

StatusOr<FleetReport> MotifServer::EngineIngest(
    const std::vector<FleetArrival>& batch) {
  return durable_.has_value() ? durable_->Ingest(batch)
                              : plain_->Ingest(batch);
}

void MotifServer::FlushIngest(ConnId id, Conn& c,
                              std::vector<FleetArrival>* batch,
                              std::int64_t now_ms) {
  if (batch->empty()) return;
  std::size_t max_stream = 0;
  for (const FleetArrival& a : *batch) {
    max_stream = std::max(max_stream, a.stream);
  }
  Status streams = EnsureStreams(max_stream);
  if (!streams.ok()) {
    ++stats_.engine_errors;
    QueueError(id, c, "engine", streams.message(), now_ms);
    batch->clear();
    return;
  }
  StatusOr<FleetReport> report = EngineIngest(*batch);
  if (!report.ok()) {
    // The batch is not acknowledged: the engine rejected it (e.g.
    // mixing bare and timestamped arrivals mid-reorder). The server
    // survives; the offending connection learns why.
    ++stats_.engine_errors;
    QueueError(id, c, "engine", report.status().message(), now_ms);
    batch->clear();
    return;
  }
  stats_.points_ingested += static_cast<std::int64_t>(batch->size());
  batch->clear();
  Broadcast(report.value(), now_ms);
}

void MotifServer::Broadcast(const FleetReport& report,
                            std::int64_t now_ms) {
  if (report.empty()) return;
  std::vector<std::string> report_frames;
  report_frames.reserve(report.updates.size());
  for (const FleetStreamUpdate& u : report.updates) {
    report_frames.push_back(SerializeReportFrame(u));
  }
  const std::string join_frame =
      report.join_delta.empty() ? std::string() : SerializeJoinFrame(
                                                      report.join_delta);

  for (ConnId id : ConnectionIds()) {
    Conn* c = Find(id);
    if (c == nullptr || c->closing || c->sub == SubMode::kNone) continue;
    if (c->sub == SubMode::kReports || c->sub == SubMode::kAll) {
      for (const std::string& frame : report_frames) {
        ++stats_.frames_pushed;
        Enqueue(id, *c, frame, /*droppable=*/true, now_ms);
        c = Find(id);
        if (c == nullptr || c->closing) break;
      }
    }
    if (c == nullptr || c->closing) continue;
    if (!join_frame.empty() &&
        (c->sub == SubMode::kJoin || c->sub == SubMode::kAll)) {
      ++stats_.frames_pushed;
      Enqueue(id, *c, join_frame, /*droppable=*/true, now_ms);
    }
  }
  // Opportunistic flush: most subscribers take the frames immediately,
  // so the common case needs no extra poll round-trip.
  for (ConnId id : ConnectionIds()) {
    Conn* c = Find(id);
    if (c != nullptr && !c->out.empty()) FlushOut(id, *c);
  }
}

void MotifServer::Enqueue(ConnId id, Conn& c, std::string frame,
                          bool droppable, std::int64_t now_ms) {
  (void)id;
  if (c.closing) return;
  const ServeLimits& lim = options_.limits;

  // A subscriber that lost frames learns before its next broadcast.
  if (droppable && c.dropped > c.dropped_notified) {
    const std::int64_t total = c.dropped;
    std::string notice = DroppedFrame(total);
    c.out.push_back(Frame{std::move(notice), /*droppable=*/false});
    c.out_bytes += c.out.back().bytes.size();
    c.dropped_notified = total;
  }

  const std::size_t need = frame.size();
  if (c.out_bytes + need > lim.subscriber_queue_bytes) {
    // Drop-oldest: only droppable frames, never one mid-write.
    for (auto it = c.out.begin();
         it != c.out.end() && c.out_bytes + need > lim.subscriber_queue_bytes;) {
      const bool mid_write = (it == c.out.begin() && c.out_offset > 0);
      if (it->droppable && !mid_write) {
        c.out_bytes -= it->bytes.size();
        ++c.dropped;
        ++stats_.frames_dropped;
        it = c.out.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (c.out_bytes + need > lim.subscriber_queue_high_water_bytes) {
    // Past the high-water mark with nothing left to shed: the
    // subscriber is not draining. Evict it.
    ++stats_.evicted_slow;
    ++c.dropped;
    ++stats_.frames_dropped;
    BeginClose(c, "slow", now_ms);
    return;
  }
  c.out.push_back(Frame{std::move(frame), droppable});
  c.out_bytes += need;
}

void MotifServer::FlushOut(ConnId id, Conn& c) {
  while (!c.out.empty()) {
    const Frame& front = c.out.front();
    const char* data = front.bytes.data() + c.out_offset;
    const std::size_t len = front.bytes.size() - c.out_offset;
    const IoResult r = c.socket->Write(data, len);
    if (r.status == IoStatus::kOk) {
      stats_.bytes_out += static_cast<std::int64_t>(r.bytes);
      c.out_offset += r.bytes;
      if (c.out_offset == front.bytes.size()) {
        c.out_bytes -= front.bytes.size();
        c.out.pop_front();
        c.out_offset = 0;
      } else if (r.bytes == 0) {
        break;  // defensive: a zero-byte kOk write must not spin
      }
    } else if (r.status == IoStatus::kWouldBlock) {
      break;
    } else {
      ++stats_.io_errors;
      CloseNow(id);
      return;
    }
  }
  if (c.out.empty() && c.closing) CloseNow(id);
}

void MotifServer::QueueError(ConnId id, Conn& c, const std::string& code,
                             const std::string& message,
                             std::int64_t now_ms) {
  Enqueue(id, c, ErrorFrame(code, c.lines, message), /*droppable=*/false,
          now_ms);
}

void MotifServer::BeginClose(Conn& c, const std::string& reason,
                             std::int64_t now_ms) {
  if (c.closing) return;
  // The bye bypasses Enqueue's caps: it is the one frame a connection
  // being closed must still carry, and it is a few dozen bytes.
  std::string bye = ByeFrame(reason);
  c.out_bytes += bye.size();
  c.out.push_back(Frame{std::move(bye), /*droppable=*/false});
  c.closing = true;
  c.close_deadline_ms = now_ms + options_.limits.drain_grace_ms;
}

void MotifServer::CloseNow(ConnId id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  if (it->second.socket != nullptr) it->second.socket->Close();
  conns_.erase(it);
}

std::string MotifServer::HelloFrame() const {
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("hello");
  w.Key("proto");
  w.Int(1);
  w.Key("max_line_bytes");
  w.Int(static_cast<std::int64_t>(options_.limits.max_line_bytes));
  w.Key("streams");
  w.Int(static_cast<std::int64_t>(engine().stream_count()));
  w.Key("durable");
  w.Bool(options_.durable_enabled());
  w.EndObject();
  return w.str() + "\n";
}

std::string MotifServer::StatsFrame() const {
  const FleetStats fleet = fleet_stats();
  JsonWriter w(JsonStyle::kCompact);
  w.BeginObject();
  w.Key("type");
  w.String("stats");
  w.Key("connections");
  w.Int(static_cast<std::int64_t>(conns_.size()));
  w.Key("draining");
  w.Bool(draining_);
  w.Key("accepted");
  w.Int(stats_.accepted);
  w.Key("rejected_busy");
  w.Int(stats_.rejected_busy);
  w.Key("evicted_slow");
  w.Int(stats_.evicted_slow);
  w.Key("evicted_idle");
  w.Int(stats_.evicted_idle);
  w.Key("lines_in");
  w.Int(stats_.lines_in);
  w.Key("points_ingested");
  w.Int(stats_.points_ingested);
  w.Key("parse_errors");
  w.Int(stats_.parse_errors);
  w.Key("oversized_lines");
  w.Int(stats_.oversized_lines);
  w.Key("engine_errors");
  w.Int(stats_.engine_errors);
  w.Key("frames_pushed");
  w.Int(stats_.frames_pushed);
  w.Key("frames_dropped");
  w.Int(stats_.frames_dropped);
  w.Key("fleet");
  w.BeginObject();
  w.Key("streams");
  w.Int(fleet.streams);
  w.Key("points_ingested");
  w.Int(fleet.points_ingested);
  w.Key("searches");
  w.Int(fleet.searches);
  w.Key("coalesced_slides");
  w.Int(fleet.coalesced_slides);
  w.Key("reordered");
  w.Int(fleet.reordered);
  w.Key("late_dropped");
  w.Int(fleet.late_dropped);
  w.Key("reorder_buffered");
  w.Int(fleet.reorder_buffered);
  w.Key("reorder_buffered_peak");
  w.Int(fleet.reorder_buffered_peak);
  w.EndObject();
  w.Key("streams");
  w.BeginArray();
  const std::size_t count = engine().stream_count();
  const std::size_t listed = std::min(count, kStatsFrameStreamCap);
  for (std::size_t s = 0; s < listed; ++s) {
    // Durable mode: the journal-side frontends see the raw feed (the
    // engine's only ever see released points), so their counters are
    // the ones that describe the wire.
    const IngestStats& ingest = durable_.has_value()
                                    ? durable_->ingest_stats(s)
                                    : engine().ingest_stats(s);
    w.BeginObject();
    w.Key("id");
    w.Int(static_cast<std::int64_t>(s));
    w.Key("released");
    w.Int(ingest.released);
    w.Key("reordered");
    w.Int(ingest.reordered);
    w.Key("late_dropped");
    w.Int(ingest.late_dropped);
    w.Key("buffered");
    w.Int(static_cast<std::int64_t>(durable_.has_value()
                                        ? durable_->buffered(s)
                                        : engine().stream_buffered(s)));
    w.Key("buffered_peak");
    w.Int(ingest.buffered_peak);
    w.EndObject();
  }
  w.EndArray();
  if (listed < count) {
    w.Key("streams_truncated");
    w.Bool(true);
  }
  w.EndObject();
  return w.str() + "\n";
}

}  // namespace frechet_motif
