#include "serve/serve_loop.h"

#include <errno.h>
#include <poll.h>

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

namespace frechet_motif {

std::int64_t ServeNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status RunServeLoop(MotifServer& server, ServeListener& listener,
                    const ServeLoopOptions& options) {
  const std::int64_t start_ms = ServeNowMs();

  while (true) {
    std::int64_t now = ServeNowMs();

    const bool stop_requested =
        (options.stop != nullptr && *options.stop != 0) ||
        (options.stop_atomic != nullptr &&
         options.stop_atomic->load(std::memory_order_relaxed)) ||
        (options.max_runtime_ms > 0 &&
         now - start_ms >= options.max_runtime_ms);
    if (stop_requested && !server.draining()) server.BeginDrain(now);
    if (server.draining() && server.DrainComplete()) return Status::Ok();

    // Readiness set: the listener (unless draining) plus every
    // connection's socket for the directions the server wants.
    std::vector<pollfd> fds;
    std::vector<MotifServer::ConnId> fd_conn;
    if (!server.draining()) {
      fds.push_back(pollfd{listener.fd(), POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (MotifServer::ConnId id : server.ConnectionIds()) {
      ServeSocket* socket = server.socket(id);
      if (socket == nullptr || socket->fd() < 0) continue;
      short events = 0;
      if (server.WantsRead(id)) events |= POLLIN;
      if (server.WantsWrite(id)) events |= POLLOUT;
      if (events == 0) continue;
      fds.push_back(pollfd{socket->fd(), events, 0});
      fd_conn.push_back(id);
    }

    const int ready =
        ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
               options.poll_interval_ms);
    now = ServeNowMs();
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: the stop flag check runs next
      return Status::IoError("poll failed");
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) continue;
      if (fd_conn[k] == 0) {
        // Accept everything pending; the server sheds past capacity.
        while (true) {
          StatusOr<std::unique_ptr<ServeSocket>> accepted = listener.Accept();
          if (!accepted.ok()) return accepted.status();
          if (accepted.value() == nullptr) break;
          server.OnAccept(std::move(accepted).value(), now);
        }
        continue;
      }
      const MotifServer::ConnId id = fd_conn[k];
      // POLLERR/POLLHUP surface through the read/write calls as
      // kEof/kError — route them through the normal handlers.
      if (fds[k].revents & (POLLIN | POLLERR | POLLHUP)) {
        if (server.WantsRead(id)) {
          server.OnReadable(id, now);
        } else {
          server.OnWritable(id, now);
        }
      }
      if ((fds[k].revents & POLLOUT) && server.Connected(id)) {
        server.OnWritable(id, now);
      }
    }

    server.Tick(now);
  }
}

}  // namespace frechet_motif
