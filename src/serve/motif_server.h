#ifndef FRECHET_MOTIF_SERVE_MOTIF_SERVER_H_
#define FRECHET_MOTIF_SERVE_MOTIF_SERVER_H_

/// Transport-independent core of `fmotif serve`: protocol, routing,
/// backpressure, admission, and drain — everything except the event
/// loop itself.
///
/// The server is single-threaded and **caller-driven**: a transport
/// (serve/serve_loop.h in production, the fault harness in tests) owns
/// readiness detection and calls `OnAccept` / `OnReadable` /
/// `OnWritable` / `Tick`, always passing the current monotonic time in
/// milliseconds. The core never reads a clock and never touches an fd —
/// all byte I/O goes through the `ServeSocket` seam — so every timeout,
/// partial read, EAGAIN storm, and mid-frame reset is reproducible in a
/// unit test.
///
/// ## Wire protocol (see docs/ARCHITECTURE.md "Serve tier")
///
/// Inbound: UTF-8 lines, LF or CRLF terminated.
///   * `stream,lat,lon[,ts]` — one ingest point (fleet CSV dialect).
///   * `SUB reports|join|all`, `UNSUB`, `PING`, `STATS`, `QUIT` —
///     commands (case-insensitive verb).
/// Outbound: newline-delimited single-line JSON frames, each carrying a
/// `"type"` discriminator: `hello`, `subscribed`, `unsubscribed`,
/// `pong`, `stats`, `report`, `join_delta`, `dropped`, `error`, `bye`.
///
/// ## Robustness policy
///
///  * **Tolerant parsing.** Partial lines wait for more bytes; lines
///    over `max_line_bytes` are swallowed to the next newline and
///    answered with an `error` frame; garbage rows get `error` frames
///    with a line number; none of it disturbs other connections.
///  * **Bounded write queues.** Broadcast frames (`report`,
///    `join_delta`) are droppable: when a subscriber's queue would pass
///    `subscriber_queue_bytes`, the oldest droppable frames are dropped
///    and counted, and the subscriber learns via a `dropped` frame
///    before its next delivered broadcast. A queue that would still
///    pass `subscriber_queue_high_water_bytes` (reply frames are never
///    dropped) evicts the connection — a slow subscriber can never
///    stall ingest or grow memory without bound.
///  * **Admission + shedding.** Past `max_connections` an accepted
///    socket gets one best-effort `error {code:"busy"}` write and is
///    closed. A connection whose unparsed inbound buffer passes
///    `max_ingest_pending_bytes` is evicted. Reads are capped per
///    readiness call for fairness. Idle connections (no bytes read for
///    `idle_timeout_ms`) are evicted on `Tick`.
///  * **Graceful drain.** `BeginDrain` stops accepting, queues `bye`
///    frames, and flushes each queue until empty or
///    `drain_grace_ms` passes; `Shutdown` then checkpoints through
///    `DurableFleet` when a state dir is configured.
///
/// The report stream a surviving subscriber observes is bit-identical
/// to a batch oracle (`MotifFleetEngine` fed the same released points)
/// serialized with the same frame functions — the serve-tier extension
/// of the repo-wide parity contract, enforced by tests/serve_fault_test.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "durable/durable_fleet.h"
#include "geo/metric.h"
#include "serve/serve_socket.h"
#include "stream/motif_fleet_engine.h"
#include "util/status.h"

namespace frechet_motif {

/// Admission, shedding, and backpressure knobs. The defaults suit the
/// CLI; tests shrink them to force every policy branch.
struct ServeLimits {
  /// Admission: connections past this are answered `busy` and closed.
  int max_connections = 64;

  /// Protocol lines longer than this are swallowed to the next newline
  /// and answered with an `error {code:"oversized"}` frame.
  std::size_t max_line_bytes = 4096;

  /// Eviction bound on a connection's unparsed inbound bytes (a peer
  /// streaming garbage without newlines).
  std::size_t max_ingest_pending_bytes = 1 << 20;

  /// Per-readiness-call read cap (fairness across connections).
  std::size_t max_read_bytes_per_call = 64 * 1024;

  /// Soft cap on a connection's outbound queue: past it, oldest
  /// droppable (broadcast) frames are dropped and counted.
  std::size_t subscriber_queue_bytes = 256 * 1024;

  /// Hard cap: a queue that would still pass this evicts the
  /// connection (`bye {reason:"slow"}`, best effort).
  std::size_t subscriber_queue_high_water_bytes = 1 << 20;

  /// Evict a connection after this long without reading a byte from it
  /// (0 disables the idle timeout).
  std::int64_t idle_timeout_ms = 0;

  /// How long a closing connection may take to flush its queue before
  /// being force-closed (drain, QUIT, eviction byes).
  std::int64_t drain_grace_ms = 5000;

  /// Streams are auto-created on first reference, up to this id bound.
  std::size_t max_streams = 4096;
};

/// Full serve-tier configuration.
struct ServeOptions {
  FleetOptions fleet;
  ServeLimits limits;

  /// Durability: empty state_dir = plain in-memory engine; otherwise
  /// every ingest is journaled and `Shutdown` checkpoints (see
  /// durable/durable_fleet.h).
  DurableOptions durable;

  bool durable_enabled() const { return !durable.state_dir.empty(); }
};

/// Server-level counters (the engine keeps its own FleetStats).
struct ServeStats {
  std::int64_t accepted = 0;
  std::int64_t rejected_busy = 0;
  std::int64_t evicted_slow = 0;
  std::int64_t evicted_idle = 0;
  std::int64_t evicted_pending_overflow = 0;
  std::int64_t closed_by_peer = 0;
  std::int64_t io_errors = 0;
  std::int64_t lines_in = 0;
  std::int64_t points_ingested = 0;
  std::int64_t parse_errors = 0;
  std::int64_t oversized_lines = 0;
  std::int64_t engine_errors = 0;
  std::int64_t frames_pushed = 0;
  std::int64_t frames_dropped = 0;
  std::int64_t bytes_in = 0;
  std::int64_t bytes_out = 0;
};

/// Serializes one slide report / join delta as a single-line JSON frame
/// (terminating '\n' included). Exposed so parity tests can render the
/// batch oracle's reports with the identical bytes.
std::string SerializeReportFrame(const FleetStreamUpdate& update);
std::string SerializeJoinFrame(const JoinDelta& delta);

class MotifServer {
 public:
  /// Connection handle; 0 is never a live connection.
  using ConnId = std::uint64_t;

  /// Validates options and opens the engine (recovering from
  /// `durable.state_dir` when set). The metric must outlive the server.
  static StatusOr<MotifServer> Create(const ServeOptions& options,
                                      const GroundMetric& metric);

  MotifServer(MotifServer&&) = default;
  MotifServer& operator=(MotifServer&&) = default;

  /// Adopts a freshly accepted socket. Returns 0 when the connection
  /// was shed (at capacity, or draining) — the socket is closed either
  /// way it is rejected.
  ConnId OnAccept(std::unique_ptr<ServeSocket> socket, std::int64_t now_ms);

  /// Drains readable bytes (bounded by `max_read_bytes_per_call`),
  /// parses lines, ingests points, routes frames. Never throws, never
  /// blocks; a connection failing mid-call is closed and counted.
  void OnReadable(ConnId id, std::int64_t now_ms);

  /// Flushes as much of the connection's outbound queue as the socket
  /// accepts.
  void OnWritable(ConnId id, std::int64_t now_ms);

  /// Time-based policy: idle eviction, closing-connection deadlines.
  void Tick(std::int64_t now_ms);

  /// Stops accepting, queues `bye` frames on every connection, and
  /// starts flushing. Idempotent.
  void BeginDrain(std::int64_t now_ms);

  bool draining() const { return draining_; }

  /// True once every connection has flushed (or timed out) and closed.
  bool DrainComplete() const { return draining_ && conns_.empty(); }

  /// Final checkpoint + sync through the durable layer (no-op without
  /// a state dir). Call after the drain completes.
  Status Shutdown();

  // --- Transport introspection -------------------------------------

  bool AtCapacity() const {
    return static_cast<int>(conns_.size()) >=
           options_.limits.max_connections;
  }
  std::vector<ConnId> ConnectionIds() const;
  bool Connected(ConnId id) const { return conns_.count(id) != 0; }
  /// Whether the transport should watch for readability/writability.
  bool WantsRead(ConnId id) const;
  bool WantsWrite(ConnId id) const;
  /// The connection's socket (for fd lookup); null when unknown.
  ServeSocket* socket(ConnId id);

  // --- Introspection for tests, STATS frames, and the CLI ----------

  const ServeStats& stats() const { return stats_; }
  FleetStats fleet_stats() const;
  const MotifFleetEngine& engine() const {
    return durable_.has_value() ? durable_->engine() : *plain_;
  }
  const ServeOptions& options() const { return options_; }
  /// The durable layer (recovery info, generation); null when the
  /// server runs the plain in-memory engine.
  const DurableFleet* durable() const {
    return durable_.has_value() ? &*durable_ : nullptr;
  }
  /// Frames dropped on one connection (drop-oldest casualties).
  std::int64_t ConnDroppedFrames(ConnId id) const;

 private:
  /// Outbound frame: droppable broadcasts vs. never-dropped replies.
  struct Frame {
    std::string bytes;
    bool droppable = false;
  };

  enum class SubMode { kNone, kReports, kJoin, kAll };

  struct Conn {
    std::unique_ptr<ServeSocket> socket;
    /// Unparsed inbound bytes (at most one partial line plus whatever
    /// one read call delivered).
    std::string in;
    /// Oversized-line recovery: swallowing bytes until the next '\n'.
    bool discarding = false;
    std::deque<Frame> out;
    std::size_t out_bytes = 0;
    /// Bytes of out.front() already written (mid-frame progress).
    std::size_t out_offset = 0;
    std::int64_t dropped = 0;
    /// `dropped` value already reported via a `dropped` frame.
    std::int64_t dropped_notified = 0;
    SubMode sub = SubMode::kNone;
    std::int64_t last_read_ms = 0;
    std::int64_t lines = 0;
    /// Flush-then-close (QUIT, drain, eviction); no further reads.
    bool closing = false;
    std::int64_t close_deadline_ms = 0;
  };

  MotifServer(const ServeOptions& options, const GroundMetric& metric)
      : options_(options), metric_(&metric) {}

  Conn* Find(ConnId id);

  /// Parses every complete line in `c.in`, batching ingest rows and
  /// flushing the batch at command boundaries and end of buffer.
  void ProcessBuffer(ConnId id, Conn& c, std::int64_t now_ms);
  void HandleLine(ConnId id, Conn& c, const std::string& line,
                  std::vector<FleetArrival>* batch, std::int64_t now_ms);
  void HandleCommand(ConnId id, Conn& c, const std::string& line,
                     std::int64_t now_ms);
  /// Runs one engine Ingest over the batch and broadcasts its report.
  void FlushIngest(ConnId id, Conn& c, std::vector<FleetArrival>* batch,
                   std::int64_t now_ms);

  /// Engine dispatch (durable vs. plain).
  StatusOr<FleetReport> EngineIngest(const std::vector<FleetArrival>& batch);
  Status EnsureStreams(std::size_t stream);

  void Broadcast(const FleetReport& report, std::int64_t now_ms);
  void Enqueue(ConnId id, Conn& c, std::string frame, bool droppable,
               std::int64_t now_ms);
  /// Writes as much queued output as the socket accepts right now.
  void FlushOut(ConnId id, Conn& c);

  void QueueError(ConnId id, Conn& c, const std::string& code,
                  const std::string& message, std::int64_t now_ms);
  /// Queues a bye frame and switches the connection to flush-then-close.
  void BeginClose(Conn& c, const std::string& reason, std::int64_t now_ms);
  void CloseNow(ConnId id);

  std::string HelloFrame() const;
  std::string StatsFrame() const;

  ServeOptions options_;
  const GroundMetric* metric_;

  /// Exactly one of these is engaged (durable when state_dir is set).
  std::optional<MotifFleetEngine> plain_;
  std::optional<DurableFleet> durable_;

  std::map<ConnId, Conn> conns_;
  ConnId next_id_ = 1;
  bool draining_ = false;
  ServeStats stats_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_SERVE_MOTIF_SERVER_H_
