#include "serve/serve_socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <utility>

namespace frechet_motif {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("fcntl(O_NONBLOCK): " +
                           std::string(::strerror(errno)));
  }
  return Status::Ok();
}

std::string PeerLabel(const sockaddr_in& addr) {
  char text[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, text, sizeof(text));
  return std::string(text) + ":" + std::to_string(ntohs(addr.sin_port));
}

bool RetryableErrno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINTR;
}

}  // namespace

PosixServeSocket::PosixServeSocket(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer)) {
  // Best-effort: an fd that rejects O_NONBLOCK still works, it would
  // just risk blocking — and every fd we adopt is a socket.
  (void)SetNonBlocking(fd_);
}

PosixServeSocket::~PosixServeSocket() { Close(); }

IoResult PosixServeSocket::Read(char* buf, std::size_t cap) {
  if (fd_ < 0) return {IoStatus::kError, 0};
  while (true) {
    const ssize_t n = ::recv(fd_, buf, cap, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kEof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult PosixServeSocket::Write(const char* data, std::size_t len) {
  if (fd_ < 0) return {IoStatus::kError, 0};
  while (true) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

void PosixServeSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<PosixListener> PosixListener::Create(const std::string& bind_addr,
                                              int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port out of range: " +
                                   std::to_string(port));
  }
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparsable bind address: " + bind_addr);
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket: " + std::string(::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::IoError("bind " + bind_addr + ":" + std::to_string(port) +
                           ": " + err);
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    const std::string err = ::strerror(errno);
    ::close(fd);
    return Status::IoError("listen: " + err);
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }

  // Resolve port 0 to the kernel's assignment.
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  int resolved = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    resolved = ntohs(bound.sin_port);
  }
  return PosixListener(fd, resolved);
}

PosixListener::~PosixListener() {
  if (fd_ >= 0) ::close(fd_);
}

PosixListener::PosixListener(PosixListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

PosixListener& PosixListener::operator=(PosixListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<std::unique_ptr<ServeSocket>> PosixListener::Accept() {
  if (fd_ < 0) return Status::Internal("listener closed");
  while (true) {
    sockaddr_in addr;
    socklen_t addr_len = sizeof(addr);
    const int conn =
        ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    if (conn >= 0) {
      const int one = 1;
      ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<ServeSocket>(
          new PosixServeSocket(conn, PeerLabel(addr)));
    }
    if (RetryableErrno(errno) && errno != EINTR) {
      return std::unique_ptr<ServeSocket>();  // nothing pending
    }
    if (errno == EINTR) continue;
    // Per-connection accept failures (ECONNABORTED, EMFILE, ...) must not
    // kill the listener loop; report them as "nothing usable pending".
    if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
        errno == ENOBUFS || errno == ENOMEM || errno == EPROTO) {
      return std::unique_ptr<ServeSocket>();
    }
    return Status::IoError("accept: " + std::string(::strerror(errno)));
  }
}

}  // namespace frechet_motif
