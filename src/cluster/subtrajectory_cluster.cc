#include "cluster/subtrajectory_cluster.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "similarity/frechet.h"

namespace frechet_motif {

namespace {

Status ValidateOptions(const Trajectory& s, const ClusterOptions& options) {
  if (options.window_length < 2) {
    return Status::InvalidArgument("window_length must be >= 2");
  }
  if (options.stride < 1) {
    return Status::InvalidArgument("stride must be >= 1");
  }
  if (options.threshold_m < 0.0) {
    return Status::InvalidArgument("threshold_m must be non-negative");
  }
  if (options.min_members < 2) {
    return Status::InvalidArgument("min_members must be >= 2");
  }
  if (s.size() < 2 * options.window_length) {
    return Status::InvalidArgument(
        "trajectory too short for two non-overlapping windows");
  }
  return Status::Ok();
}

/// Candidate window starts over the whole trajectory.
std::vector<Index> WindowStarts(const Trajectory& s,
                                const ClusterOptions& options) {
  std::vector<Index> starts;
  for (Index start = 0; start + options.window_length <= s.size();
       start += options.stride) {
    starts.push_back(start);
  }
  return starts;
}

/// Does window `b_start` match the reference window `a_start` within θ?
bool WindowsMatch(const Trajectory& s, Index a_start, Index b_start,
                  const ClusterOptions& options, const GroundMetric& metric,
                  ClusterStats* stats, FrechetScratch* scratch) {
  if (stats != nullptr) ++stats->window_pairs;
  const Index len = options.window_length;
  // Endpoint lower bound: the coupling pins first to first, last to last.
  const double endpoint_lb =
      std::max(metric.Distance(s[a_start], s[b_start]),
               metric.Distance(s[a_start + len - 1], s[b_start + len - 1]));
  if (endpoint_lb > options.threshold_m) {
    if (stats != nullptr) ++stats->pruned_endpoints;
    return false;
  }
  if (stats != nullptr) ++stats->decided_exact;
  const Trajectory a = s.Slice(a_start, a_start + len - 1);
  const Trajectory b = s.Slice(b_start, b_start + len - 1);
  const StatusOr<bool> within =
      DiscreteFrechetAtMost(a, b, metric, options.threshold_m, scratch);
  return within.ok() && within.value();
}

/// Greedy left-to-right selection of non-overlapping matching windows
/// around the reference, restricted to `allowed` starts.
std::vector<SubtrajectoryRef> CollectMembers(
    const Trajectory& s, Index reference, const std::vector<Index>& allowed,
    const ClusterOptions& options, const GroundMetric& metric,
    ClusterStats* stats, FrechetScratch* scratch) {
  std::vector<SubtrajectoryRef> members;
  Index next_free = 0;  // first point index not yet covered by a member
  for (const Index start : allowed) {
    if (start < next_free) continue;  // would overlap the previous member
    const bool is_reference = start == reference;
    if (is_reference ||
        WindowsMatch(s, reference, start, options, metric, stats, scratch)) {
      members.push_back(
          SubtrajectoryRef{start, start + options.window_length - 1});
      next_free = start + options.window_length;
    }
  }
  return members;
}

}  // namespace

std::string ClusterStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "window-pairs=%lld endpoint-pruned=%lld exact-decided=%lld",
                static_cast<long long>(window_pairs),
                static_cast<long long>(pruned_endpoints),
                static_cast<long long>(decided_exact));
  return buf;
}

StatusOr<SubtrajectoryCluster> BestSubtrajectoryCluster(
    const Trajectory& s, const GroundMetric& metric,
    const ClusterOptions& options, ClusterStats* stats) {
  FM_RETURN_IF_ERROR(ValidateOptions(s, options));
  const std::vector<Index> starts = WindowStarts(s, options);

  SubtrajectoryCluster best;
  FrechetScratch scratch;  // reused across every window-pair DP
  for (const Index reference : starts) {
    const std::vector<SubtrajectoryRef> members =
        CollectMembers(s, reference, starts, options, metric, stats,
                       &scratch);
    if (static_cast<int>(members.size()) > best.size()) {
      best.reference = {reference, reference + options.window_length - 1};
      best.members = members;
    }
  }
  if (best.size() < options.min_members) {
    return Status::NotFound("no subtrajectory cluster with at least " +
                            std::to_string(options.min_members) +
                            " members under the threshold");
  }
  return best;
}

StatusOr<std::vector<SubtrajectoryCluster>> ClusterSubtrajectories(
    const Trajectory& s, const GroundMetric& metric,
    const ClusterOptions& options, ClusterStats* stats) {
  FM_RETURN_IF_ERROR(ValidateOptions(s, options));
  std::vector<Index> remaining = WindowStarts(s, options);

  std::vector<SubtrajectoryCluster> clusters;
  FrechetScratch scratch;  // reused across every window-pair DP
  while (true) {
    SubtrajectoryCluster best;
    for (const Index reference : remaining) {
      const std::vector<SubtrajectoryRef> members =
          CollectMembers(s, reference, remaining, options, metric, stats,
                         &scratch);
      if (static_cast<int>(members.size()) > best.size()) {
        best.reference = {reference, reference + options.window_length - 1};
        best.members = members;
      }
    }
    if (best.size() < options.min_members) break;
    clusters.push_back(best);
    // Remove every window overlapping a member of the extracted cluster.
    std::vector<Index> next;
    for (const Index start : remaining) {
      const Index end = start + options.window_length - 1;
      bool overlaps = false;
      for (const SubtrajectoryRef& member : best.members) {
        if (start <= member.last && member.first <= end) {
          overlaps = true;
          break;
        }
      }
      if (!overlaps) next.push_back(start);
    }
    remaining = std::move(next);
    if (remaining.empty()) break;
  }
  return clusters;
}

}  // namespace frechet_motif
