#ifndef FRECHET_MOTIF_CLUSTER_SUBTRAJECTORY_CLUSTER_H_
#define FRECHET_MOTIF_CLUSTER_SUBTRAJECTORY_CLUSTER_H_

/// Subtrajectory clustering under the discrete Fréchet distance: group the
/// sliding windows of one trajectory into star-shaped clusters around a
/// reference window — a motif generalized from "the best pair" to "all
/// repetitions". Most applications only need ClusterSubtrajectories();
/// BestSubtrajectoryCluster() exposes the single-cluster primitive.

#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "geo/metric.h"
#include "util/status.h"

namespace frechet_motif {

/// Options for subtrajectory clustering (the paper's Section 7 outlook;
/// in the spirit of Buchin et al.'s commuting-pattern detection [3]).
struct ClusterOptions {
  /// Window length in points; every candidate subtrajectory is one window.
  Index window_length = 100;

  /// Stride between candidate window starts (>= 1). Smaller strides find
  /// better-aligned clusters at quadratically higher cost.
  Index stride = 25;

  /// Membership threshold θ (meters): a window joins a cluster when its
  /// DFD to the cluster's reference window is <= θ.
  double threshold_m = 100.0;

  /// Minimum number of member windows (including the reference) for a
  /// cluster to be reported.
  int min_members = 2;
};

/// A star-shaped subtrajectory cluster: every member window is within the
/// threshold of the reference window, and members are pairwise
/// non-overlapping in time.
struct SubtrajectoryCluster {
  /// The window every member is within the threshold of.
  SubtrajectoryRef reference;
  /// All member windows, including the reference, ascending by start.
  std::vector<SubtrajectoryRef> members;

  /// Number of member windows (reference included).
  int size() const { return static_cast<int>(members.size()); }
};

/// Counters for the clustering run.
struct ClusterStats {
  /// Reference/candidate window pairs considered.
  std::int64_t window_pairs = 0;
  /// Pairs disqualified by the endpoint lower bound alone.
  std::int64_t pruned_endpoints = 0;
  /// Pairs that reached the O(L²) early-abandoning DFD decision.
  std::int64_t decided_exact = 0;

  /// One-line human-readable rendering of the counters, for logs.
  std::string ToString() const;
};

/// Finds the largest cluster: the reference window whose non-overlapping
/// θ-neighbourhood (greedy left-to-right selection) has the most members.
/// Uses the endpoint lower bound before each O(L²) early-abandoning DFD
/// decision. Returns NotFound when no cluster reaches min_members.
StatusOr<SubtrajectoryCluster> BestSubtrajectoryCluster(
    const Trajectory& s, const GroundMetric& metric,
    const ClusterOptions& options, ClusterStats* stats = nullptr);

/// Greedy cover: repeatedly extracts the largest cluster among windows not
/// yet assigned to a cluster, until none reaches min_members. Clusters are
/// pairwise window-disjoint. Returns an empty vector when nothing
/// qualifies.
StatusOr<std::vector<SubtrajectoryCluster>> ClusterSubtrajectories(
    const Trajectory& s, const GroundMetric& metric,
    const ClusterOptions& options, ClusterStats* stats = nullptr);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_CLUSTER_SUBTRAJECTORY_CLUSTER_H_
