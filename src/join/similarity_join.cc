#include "join/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "geo/great_circle.h"
#include <functional>

#include "join/grid_index.h"
#include "similarity/frechet.h"
#include "util/thread_pool.h"

namespace frechet_motif {

namespace {

/// Per-axis separation of two intervals (0 when they overlap).
double AxisGap(double lo_a, double hi_a, double lo_b, double hi_b) {
  if (hi_a < lo_b) return lo_b - hi_a;
  if (hi_b < lo_a) return lo_a - hi_b;
  return 0.0;
}

/// A lower bound on the ground distance between any point of box `a` and
/// any point of box `b` — hence on the DFD of the trajectories they
/// enclose. Metric-aware:
///  * Euclidean: the exact closest-point distance sqrt(gx² + gy²).
///  * Haversine (x = latitude deg, y = longitude deg, no date-line wrap):
///    max of two individually valid bounds — the pure-latitude separation
///    R·Δφ_gap, and the longitude separation evaluated with the most
///    meridian-converging latitude of either box,
///    2R·asin(cos φ_max · sin(Δλ_gap/2)). Both only ever under-estimate.
///  * Unknown metrics: 0 (no pruning — always safe).
double BboxGap(const BoundingBox& a, const BoundingBox& b,
               const GroundMetric& metric) {
  const double gx = AxisGap(a.min_x, a.max_x, b.min_x, b.max_x);
  const double gy = AxisGap(a.min_y, a.max_y, b.min_y, b.max_y);
  if (dynamic_cast<const EuclideanMetric*>(&metric) != nullptr) {
    return std::sqrt(gx * gx + gy * gy);
  }
  if (dynamic_cast<const HaversineMetric*>(&metric) != nullptr) {
    const double lat_bound = kEarthRadiusMeters * DegToRad(gx);
    const double abs_lat_max =
        std::max({std::abs(a.min_x), std::abs(a.max_x), std::abs(b.min_x),
                  std::abs(b.max_x)});
    const double dlambda = DegToRad(std::min(gy, 180.0));
    const double lon_bound =
        2.0 * kEarthRadiusMeters *
        std::asin(std::clamp(
            std::cos(DegToRad(abs_lat_max)) * std::sin(dlambda / 2.0), 0.0,
            1.0));
    return std::max(lat_bound, lon_bound);
  }
  return 0.0;
}

/// Sampled one-sided Hausdorff lower bound: max over sampled points a_p of
/// min over all b_q of d(a_p, b_q). Every coupling matches a_p with some
/// b_q, so this never exceeds the DFD. O(samples * lb).
double SampledHausdorffLb(const Trajectory& a, const Trajectory& b,
                          const GroundMetric& metric, Index samples) {
  double worst = 0.0;
  const Index step = std::max<Index>(1, a.size() / std::max<Index>(1, samples));
  for (Index p = 0; p < a.size(); p += step) {
    double best = std::numeric_limits<double>::infinity();
    for (Index q = 0; q < b.size(); ++q) {
      best = std::min(best, metric.Distance(a[p], b[q]));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

/// The largest |latitude| any box in either collection reaches, for the
/// margin's meridian-convergence correction.
double AbsLatMaxOf(const std::vector<BoundingBox>& a,
                   const std::vector<BoundingBox>& b) {
  double abs_lat_max = 0.0;
  for (const auto* boxes : {&a, &b}) {
    for (const BoundingBox& box : *boxes) {
      abs_lat_max =
          std::max({abs_lat_max, std::abs(box.min_x), std::abs(box.max_x)});
    }
  }
  return abs_lat_max;
}

Status ValidateInputs(const std::vector<Trajectory>& left,
                      const std::vector<Trajectory>& right,
                      const JoinOptions& options) {
  if (options.threshold < 0.0) {
    return Status::InvalidArgument("join threshold must be non-negative");
  }
  if (left.empty() || right.empty()) {
    return Status::InvalidArgument("join inputs must be non-empty");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("join threads must be >= 0");
  }
  for (const auto& collection : {&left, &right}) {
    for (const Trajectory& t : *collection) {
      if (t.empty()) {
        return Status::InvalidArgument(
            "join inputs must not contain empty trajectories");
      }
    }
  }
  return Status::Ok();
}

}  // namespace

double JoinCoordinateMargin(const GroundMetric& metric, double threshold,
                            double abs_lat_max) {
  if (dynamic_cast<const EuclideanMetric*>(&metric) != nullptr) {
    return threshold;
  }
  if (dynamic_cast<const HaversineMetric*>(&metric) != nullptr) {
    const double meters_per_degree = 111132.0;  // conservative minimum
    const double lat_margin = threshold / meters_per_degree;
    const double cos_lat =
        std::max(0.01, std::cos(DegToRad(std::min(abs_lat_max + 1.0, 89.0))));
    const double lon_margin = threshold / (meters_per_degree * cos_lat);
    return std::max(lat_margin, lon_margin);
  }
  // Unknown metric: no sound conversion — effectively disable filtering by
  // using an enormous margin.
  return 1e12;
}

/// Resolves one pair through the cascade. Returns true iff it matches.
bool ResolveJoinCandidate(const Trajectory& a, const BoundingBox& box_a,
                          const Trajectory& b, const BoundingBox& box_b,
                          const GroundMetric& metric,
                          const JoinOptions& options, JoinStats* stats,
                          FrechetScratch* scratch) {
  const double theta = options.threshold;
  if (options.use_pruning) {
    if (BboxGap(box_a, box_b, metric) > theta) {
      if (stats != nullptr) ++stats->pruned_bbox;
      return false;
    }
    const double endpoint_lb =
        std::max(metric.Distance(a[0], b[0]),
                 metric.Distance(a[a.size() - 1], b[b.size() - 1]));
    if (endpoint_lb > theta) {
      if (stats != nullptr) ++stats->pruned_endpoints;
      return false;
    }
    if (options.hausdorff_samples > 0 &&
        SampledHausdorffLb(a, b, metric, options.hausdorff_samples) > theta) {
      if (stats != nullptr) ++stats->pruned_hausdorff;
      return false;
    }
  }
  if (stats != nullptr) ++stats->decided_exact;
  const StatusOr<bool> within =
      DiscreteFrechetAtMost(a, b, metric, theta, scratch);
  const bool matched = within.ok() && within.value();
  if (matched && stats != nullptr) ++stats->matched;
  return matched;
}

namespace {

void MergeJoinStats(const JoinStats& from, JoinStats* into) {
  into->pairs_total += from.pairs_total;
  into->pruned_bbox += from.pruned_bbox;
  into->pruned_endpoints += from.pruned_endpoints;
  into->pruned_hausdorff += from.pruned_hausdorff;
  into->decided_exact += from.decided_exact;
  into->matched += from.matched;
}

/// The candidate-pair enumerator: invokes a callback for each candidate in
/// the canonical (deterministic) order.
using CandidateEnumerator =
    std::function<void(const std::function<void(const JoinPair&)>&)>;

/// Runs the pruning cascade + exact decision over the enumerated
/// candidates. Serial path (threads <= 1): candidates stream straight
/// through the cascade — no list is materialized, preserving the O(1)
/// extra memory of the pre-pool implementation. Parallel path: the list
/// is materialized once and partitioned into contiguous chunks; per-lane
/// match lists are concatenated in lane order, so the output order (and
/// content) is identical to the serial loop, and per-lane stats are
/// summed in lane order. Per-lane FrechetScratch keeps the decision
/// kernel allocation-free.
std::vector<JoinPair> ResolveCandidates(const CandidateEnumerator& enumerate,
                                        const std::vector<Trajectory>& left,
                                        const std::vector<BoundingBox>& left_boxes,
                                        const std::vector<Trajectory>& right,
                                        const std::vector<BoundingBox>& right_boxes,
                                        const GroundMetric& metric,
                                        const JoinOptions& options,
                                        JoinStats* stats) {
  const int threads = ResolveThreadCount(options.threads);
  if (threads <= 1) {
    std::vector<JoinPair> matches;
    FrechetScratch scratch;
    enumerate([&](const JoinPair& c) {
      if (stats != nullptr) ++stats->pairs_total;
      if (ResolveJoinCandidate(left[c.li], left_boxes[c.li], right[c.ri],
                      right_boxes[c.ri], metric, options, stats, &scratch)) {
        matches.push_back(c);
      }
    });
    return matches;
  }
  std::vector<JoinPair> candidates;
  enumerate([&](const JoinPair& c) { candidates.push_back(c); });
  if (stats != nullptr) {
    stats->pairs_total += static_cast<std::int64_t>(candidates.size());
  }
  ThreadPool pool(threads);
  const int lanes = pool.threads();
  std::vector<std::vector<JoinPair>> lane_matches(lanes);
  std::vector<JoinStats> lane_stats(lanes);
  pool.ParallelFor(
      static_cast<std::int64_t>(candidates.size()),
      [&](int lane, std::int64_t lo, std::int64_t hi) {
        FrechetScratch scratch;
        JoinStats* local = stats != nullptr ? &lane_stats[lane] : nullptr;
        for (std::int64_t k = lo; k < hi; ++k) {
          const JoinPair& c = candidates[static_cast<std::size_t>(k)];
          if (ResolveJoinCandidate(left[c.li], left_boxes[c.li], right[c.ri],
                          right_boxes[c.ri], metric, options, local,
                          &scratch)) {
            lane_matches[lane].push_back(c);
          }
        }
      });
  std::vector<JoinPair> matches;
  for (int lane = 0; lane < lanes; ++lane) {
    matches.insert(matches.end(), lane_matches[lane].begin(),
                   lane_matches[lane].end());
    if (stats != nullptr) MergeJoinStats(lane_stats[lane], stats);
  }
  return matches;
}

}  // namespace

std::string JoinStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "pairs=%lld bbox-pruned=%lld endpoint-pruned=%lld "
                "hausdorff-pruned=%lld exact-decided=%lld matched=%lld",
                static_cast<long long>(pairs_total),
                static_cast<long long>(pruned_bbox),
                static_cast<long long>(pruned_endpoints),
                static_cast<long long>(pruned_hausdorff),
                static_cast<long long>(decided_exact),
                static_cast<long long>(matched));
  return buf;
}

StatusOr<std::vector<JoinPair>> DfdSimilarityJoin(
    const std::vector<Trajectory>& left, const std::vector<Trajectory>& right,
    const GroundMetric& metric, const JoinOptions& options,
    JoinStats* stats) {
  FM_RETURN_IF_ERROR(ValidateInputs(left, right, options));

  std::vector<BoundingBox> left_boxes;
  left_boxes.reserve(left.size());
  for (const Trajectory& t : left) left_boxes.push_back(BoundingBox::Of(t));
  std::vector<BoundingBox> right_boxes;
  right_boxes.reserve(right.size());
  for (const Trajectory& t : right) right_boxes.push_back(BoundingBox::Of(t));

  // Candidate generation (grid-indexed or exhaustive) is cheap and runs
  // serially; verification streams (threads=1) or fans out over the
  // enumerated candidates.
  if (options.use_grid_index) {
    const double margin =
        JoinCoordinateMargin(metric, options.threshold,
                             AbsLatMaxOf(left_boxes, right_boxes));
    const StatusOr<GridIndex> index =
        GridIndex::Build(right_boxes, std::max(margin, 1e-9) * 2.0);
    if (!index.ok()) return index.status();
    const CandidateEnumerator enumerate =
        [&](const std::function<void(const JoinPair&)>& emit) {
          for (std::size_t li = 0; li < left.size(); ++li) {
            for (const std::size_t ri :
                 index.value().Candidates(left_boxes[li].Expanded(margin))) {
              emit(JoinPair{li, ri});
            }
          }
        };
    return ResolveCandidates(enumerate, left, left_boxes, right, right_boxes,
                             metric, options, stats);
  }
  const CandidateEnumerator enumerate =
      [&](const std::function<void(const JoinPair&)>& emit) {
        for (std::size_t li = 0; li < left.size(); ++li) {
          for (std::size_t ri = 0; ri < right.size(); ++ri) {
            emit(JoinPair{li, ri});
          }
        }
      };
  return ResolveCandidates(enumerate, left, left_boxes, right, right_boxes,
                           metric, options, stats);
}

StatusOr<std::vector<JoinPair>> DfdSelfJoin(
    const std::vector<Trajectory>& trajectories, const GroundMetric& metric,
    const JoinOptions& options, JoinStats* stats) {
  FM_RETURN_IF_ERROR(ValidateInputs(trajectories, trajectories, options));

  std::vector<BoundingBox> boxes;
  boxes.reserve(trajectories.size());
  for (const Trajectory& t : trajectories) {
    boxes.push_back(BoundingBox::Of(t));
  }

  if (options.use_grid_index) {
    const double margin =
        JoinCoordinateMargin(metric, options.threshold, AbsLatMaxOf(boxes, boxes));
    const StatusOr<GridIndex> index =
        GridIndex::Build(boxes, std::max(margin, 1e-9) * 2.0);
    if (!index.ok()) return index.status();
    const CandidateEnumerator enumerate =
        [&](const std::function<void(const JoinPair&)>& emit) {
          for (std::size_t i = 0; i < trajectories.size(); ++i) {
            for (const std::size_t j :
                 index.value().Candidates(boxes[i].Expanded(margin))) {
              if (j <= i) continue;  // unordered pairs once
              emit(JoinPair{i, j});
            }
          }
        };
    return ResolveCandidates(enumerate, trajectories, boxes, trajectories,
                             boxes, metric, options, stats);
  }
  const CandidateEnumerator enumerate =
      [&](const std::function<void(const JoinPair&)>& emit) {
        for (std::size_t i = 0; i + 1 < trajectories.size(); ++i) {
          for (std::size_t j = i + 1; j < trajectories.size(); ++j) {
            emit(JoinPair{i, j});
          }
        }
      };
  return ResolveCandidates(enumerate, trajectories, boxes, trajectories,
                           boxes, metric, options, stats);
}

}  // namespace frechet_motif
