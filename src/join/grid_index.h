#ifndef FRECHET_MOTIF_JOIN_GRID_INDEX_H_
#define FRECHET_MOTIF_JOIN_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// Axis-aligned bounding box in coordinate space (latitude/longitude
/// degrees for geographic data, meters for planar data).
struct BoundingBox {
  double min_x = 0.0;
  double max_x = 0.0;
  double min_y = 0.0;
  double max_y = 0.0;

  /// Smallest box containing `t`'s points. t must be non-empty.
  static BoundingBox Of(const Trajectory& t);

  /// This box grown by `margin` on every side.
  BoundingBox Expanded(double margin) const;

  /// True iff the boxes share at least a point.
  bool Intersects(const BoundingBox& other) const;
};

/// A uniform spatial grid over trajectory bounding boxes — the candidate
/// generator that turns the similarity join's O(|A|·|B|) pair enumeration
/// into an output-sensitive one (in the spirit of the SETI-style trajectory
/// indexing the paper cites as inspiration for its grouping).
///
/// Each indexed box is registered in every grid cell it overlaps; a query
/// box reports the ids of all boxes whose cells it touches (a superset of
/// the true intersections — callers re-check, so the index only ever
/// *adds* candidates, never loses one).
class GridIndex {
 public:
  /// Builds an index over `boxes` with the given cell size (coordinate
  /// units, > 0). Returns InvalidArgument for a non-positive cell size.
  static StatusOr<GridIndex> Build(const std::vector<BoundingBox>& boxes,
                                   double cell_size);

  /// Ids (positions in the build vector) of all indexed boxes that might
  /// intersect `query`; sorted, duplicate-free. Exact superset guarantee:
  /// contains every id whose box intersects `query`.
  std::vector<std::size_t> Candidates(const BoundingBox& query) const;

  /// Number of indexed boxes.
  std::size_t size() const { return boxes_.size(); }

  /// Number of non-empty grid cells (diagnostics).
  std::size_t cell_count() const { return cells_.size(); }

 private:
  GridIndex() = default;

  /// Packs a 2D cell coordinate into one key.
  static std::int64_t CellKey(std::int32_t cx, std::int32_t cy) {
    return (static_cast<std::int64_t>(cx) << 32) ^
           static_cast<std::uint32_t>(cy);
  }

  std::int32_t CellOf(double v) const;

  double cell_size_ = 1.0;
  std::vector<BoundingBox> boxes_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> cells_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_JOIN_GRID_INDEX_H_
