#ifndef FRECHET_MOTIF_JOIN_GRID_INDEX_H_
#define FRECHET_MOTIF_JOIN_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/trajectory.h"
#include "util/status.h"

namespace frechet_motif {

/// Axis-aligned bounding box in coordinate space (latitude/longitude
/// degrees for geographic data, meters for planar data).
struct BoundingBox {
  double min_x = 0.0;
  double max_x = 0.0;
  double min_y = 0.0;
  double max_y = 0.0;

  /// Smallest box containing `t`'s points. t must be non-empty.
  static BoundingBox Of(const Trajectory& t);

  /// This box grown by `margin` on every side.
  BoundingBox Expanded(double margin) const;

  /// True iff the boxes share at least a point.
  bool Intersects(const BoundingBox& other) const;
};

/// A uniform spatial grid over trajectory bounding boxes — the candidate
/// generator that turns the similarity join's O(|A|·|B|) pair enumeration
/// into an output-sensitive one (in the spirit of the SETI-style trajectory
/// indexing the paper cites as inspiration for its grouping).
///
/// Each indexed box is registered in every grid cell it overlaps; a query
/// box reports the ids of all boxes whose cells it touches (a superset of
/// the true intersections — callers re-check, so the index only ever
/// *adds* candidates, never loses one).
///
/// The index is mutable: sliding-window consumers (the fleet's
/// incremental ε-join) call `Update(id, box)` as a window's extent
/// drifts, which inserts/evicts the id only in the grid cells entering or
/// leaving the box's cell range — O(changed cells), not O(covered cells)
/// — so maintaining the index across a slide costs proportional to how
/// far the box actually moved. `Build` remains the batch constructor.
class GridIndex {
 public:
  /// An empty index with the default cell size of 1 coordinate unit —
  /// valid but rarely what you want; prefer CreateEmpty/Build, which size
  /// the cells to the workload.
  GridIndex() = default;

  /// An empty, mutable index with the given cell size (coordinate units,
  /// > 0). Returns InvalidArgument for a non-positive cell size.
  static StatusOr<GridIndex> CreateEmpty(double cell_size);

  /// Builds an index over `boxes` with the given cell size: equivalent to
  /// CreateEmpty + Insert(0..n-1).
  static StatusOr<GridIndex> Build(const std::vector<BoundingBox>& boxes,
                                   double cell_size);

  /// Registers `box` under `id` in every cell it overlaps. Ids are
  /// caller-chosen (need not be dense); inserting a present id is an
  /// error — use Update.
  Status Insert(std::size_t id, const BoundingBox& box);

  /// Replaces `id`'s box, touching only the cells entering or leaving its
  /// cell range. Returns NotFound for an unknown id.
  Status Update(std::size_t id, const BoundingBox& box);

  /// Evicts `id` from every cell it occupies. Returns NotFound for an
  /// unknown id.
  Status Remove(std::size_t id);

  /// Ids of all indexed boxes that might intersect `query`; sorted,
  /// duplicate-free. Exact superset guarantee: contains every id whose
  /// box intersects `query`.
  std::vector<std::size_t> Candidates(const BoundingBox& query) const;

  /// Number of indexed boxes.
  std::size_t size() const { return boxes_.size(); }

  /// Number of non-empty grid cells (diagnostics).
  std::size_t cell_count() const { return cells_.size(); }

  double cell_size() const { return cell_size_; }

 private:
  /// Packs a 2D cell coordinate into one key: cx in the high 32 bits, cy
  /// in the low. The shift happens on the unsigned widening — shifting a
  /// negative signed value is undefined behavior (UBSan flags it for the
  /// negative cells of west/south coordinates).
  static std::int64_t CellKey(std::int32_t cx, std::int32_t cy) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
        static_cast<std::uint32_t>(cy);
    return static_cast<std::int64_t>(key);
  }

  std::int32_t CellOf(double v) const;

  /// Inclusive cell-coordinate range a box covers.
  struct CellRange {
    std::int32_t x0, x1, y0, y1;
    bool Contains(std::int32_t cx, std::int32_t cy) const {
      return cx >= x0 && cx <= x1 && cy >= y0 && cy <= y1;
    }
  };
  CellRange RangeOf(const BoundingBox& box) const;

  void AddToCell(std::int32_t cx, std::int32_t cy, std::size_t id);
  void DropFromCell(std::int32_t cx, std::int32_t cy, std::size_t id);

  double cell_size_ = 1.0;
  /// id -> box for present ids (sparse ids supported).
  std::unordered_map<std::size_t, BoundingBox> boxes_;
  std::unordered_map<std::int64_t, std::vector<std::size_t>> cells_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_JOIN_GRID_INDEX_H_
