#ifndef FRECHET_MOTIF_JOIN_INCREMENTAL_JOIN_H_
#define FRECHET_MOTIF_JOIN_INCREMENTAL_JOIN_H_

/// Incrementally maintained DFD ε-self-join over mutating trajectory
/// snapshots, with per-update **join deltas**.
///
/// The batch joins (similarity_join.h) recompute every pair from
/// scratch; under sliding windows almost nothing changes per slide — one
/// window's snapshot is replaced, every other pair's verdict is exactly
/// what it was. IncrementalDfdJoin keeps:
///
///  * a mutable `GridIndex` over member bounding boxes, updated in place
///    as windows drift (`GridIndex::Update` touches only the grid cells
///    the box enters or leaves);
///  * a **verdict cache**: the set of currently matching pairs. A pair
///    whose two members were untouched since the last Tick keeps its
///    cached verdict — trajectories identical, verdict identical — so a
///    Tick re-runs the pruning cascade only for pairs with at least one
///    *dirty* (updated) member.
///
/// `Tick()` returns the delta — pairs entering and leaving ε — and its
/// accumulation is provably identical to a from-scratch `DfdSelfJoin`
/// over the current snapshots: per-pair verdicts are computed by the
/// same `ResolveJoinCandidate` cascade on the same inputs, clean pairs
/// cannot change by definition, and a previously matching pair whose
/// partner left the dirty member's grid neighborhood is evicted without
/// verification (outside the expanded query box, every point pair
/// exceeds the coordinate margin, hence DFD > ε). `CurrentMatches()`
/// exposes the accumulated set for exactly that parity check.
///
/// Determinism: deltas are sorted by (li, ri); verdicts are pure
/// functions of the snapshots. The grid cell size is fixed at the first
/// Update (from the threshold's coordinate margin); later latitude
/// growth only widens the query margin — cell size affects candidate
/// counts, never correctness.
///
/// `JoinOptions::threshold` is ε; `use_pruning`/`hausdorff_samples`
/// configure the cascade as in the batch join. `use_grid_index` and
/// `threads` are ignored: the incremental join always uses its grid and
/// verifies serially (pair counts per Tick are small by design).

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/trajectory.h"
#include "geo/metric.h"
#include "join/grid_index.h"
#include "join/similarity_join.h"
#include "similarity/frechet.h"
#include "util/binary_codec.h"
#include "util/status.h"

namespace frechet_motif {

/// Pairs that crossed the ε boundary in one Tick, sorted by (li, ri)
/// with li < ri.
struct JoinDelta {
  std::vector<JoinPair> entered;
  std::vector<JoinPair> left;

  bool empty() const { return entered.empty() && left.empty(); }
};

/// Cumulative counters of the incremental join.
struct IncrementalJoinStats {
  std::int64_t ticks = 0;
  /// Pairs re-verified through the cascade (>= one dirty member).
  std::int64_t pairs_reverified = 0;
  /// Matching pairs carried from the verdict cache without re-running the
  /// cascade (both members clean) — the work a from-scratch join repays
  /// every slide.
  std::int64_t verdicts_carried = 0;
  /// Previously matching pairs evicted by the grid alone (partner left
  /// the dirty member's neighborhood; no cascade needed).
  std::int64_t evicted_by_grid = 0;
  std::int64_t entered_total = 0;
  std::int64_t left_total = 0;
  /// The pruning-cascade counters aggregated over all re-verifications.
  JoinStats cascade;
};

class IncrementalDfdJoin {
 public:
  /// Validates the options (threshold >= 0). The metric must outlive the
  /// join.
  static StatusOr<IncrementalDfdJoin> Create(const JoinOptions& options,
                                             const GroundMetric& metric);

  IncrementalDfdJoin(IncrementalDfdJoin&&) = default;
  IncrementalDfdJoin& operator=(IncrementalDfdJoin&&) = default;

  /// Registers or replaces member `id`'s trajectory snapshot and marks it
  /// dirty for the next Tick. Ids are caller-chosen (the fleet uses
  /// stream ids). The trajectory must be non-empty.
  Status Update(std::size_t id, Trajectory trajectory);

  /// Unregisters `id`. Its current matches are reported as `left` by the
  /// next Tick.
  Status Remove(std::size_t id);

  /// Re-verifies every pair with at least one dirty member and returns
  /// the resulting delta, accumulating it into CurrentMatches().
  StatusOr<JoinDelta> Tick();

  /// The accumulated match set — provably equal to a from-scratch
  /// DfdSelfJoin over the current snapshots (see the file comment).
  /// Sorted by (li, ri), li < ri.
  std::vector<JoinPair> CurrentMatches() const;

  std::size_t member_count() const { return members_.size(); }
  const IncrementalJoinStats& stats() const { return stats_; }
  const JoinOptions& options() const { return options_; }

  /// Serializes the verdict-cache epoch: member snapshots, the match
  /// adjacency, dirty/pending sets, margins, the frozen grid cell size,
  /// and the counters. A LoadFrom'd join produces bit-identical future
  /// deltas: verdicts are pure functions of the (restored) snapshots,
  /// and a restored match set means no pair spuriously re-enters.
  void SaveTo(BinaryWriter* writer) const;

  /// Restores SaveTo's encoding into this join, which must have been
  /// freshly Create'd with the same options and metric. The grid is
  /// rebuilt with the saved (frozen) cell size; members are re-inserted
  /// in id order — candidate *sets* are what correctness and the
  /// counters depend on, and those are order-independent.
  Status LoadFrom(BinaryReader* reader);

 private:
  IncrementalDfdJoin(const JoinOptions& options, const GroundMetric& metric);

  struct Member {
    Trajectory trajectory;
    BoundingBox box;
  };

  JoinOptions options_;
  const GroundMetric* metric_;

  std::unordered_map<std::size_t, Member> members_;
  /// Lazily created at the first Update (cell size needs a margin, the
  /// margin needs a latitude).
  GridIndex grid_;
  bool grid_ready_ = false;
  /// Current sound coordinate margin; only ever grows (with the largest
  /// |latitude| seen), so query expansion stays conservative.
  double margin_ = 0.0;
  double abs_lat_max_ = 0.0;

  /// Dirty members awaiting a Tick, and matches stranded by Remove.
  std::set<std::size_t> dirty_;
  std::vector<JoinPair> pending_left_;

  /// The verdict cache: adjacency of the current match set.
  std::map<std::size_t, std::set<std::size_t>> matches_;
  std::int64_t matched_count_ = 0;

  FrechetScratch scratch_;
  IncrementalJoinStats stats_;
};

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_JOIN_INCREMENTAL_JOIN_H_
