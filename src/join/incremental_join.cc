#include "join/incremental_join.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace frechet_motif {

namespace {

JoinPair MakePair(std::size_t a, std::size_t b) {
  return a < b ? JoinPair{a, b} : JoinPair{b, a};
}

bool PairLess(const JoinPair& a, const JoinPair& b) {
  if (a.li != b.li) return a.li < b.li;
  return a.ri < b.ri;
}

}  // namespace

IncrementalDfdJoin::IncrementalDfdJoin(const JoinOptions& options,
                                       const GroundMetric& metric)
    : options_(options), metric_(&metric) {}

StatusOr<IncrementalDfdJoin> IncrementalDfdJoin::Create(
    const JoinOptions& options, const GroundMetric& metric) {
  if (options.threshold < 0.0) {
    return Status::InvalidArgument("join threshold must be non-negative");
  }
  return IncrementalDfdJoin(options, metric);
}

Status IncrementalDfdJoin::Update(std::size_t id, Trajectory trajectory) {
  if (trajectory.empty()) {
    return Status::InvalidArgument(
        "incremental join members must be non-empty trajectories");
  }
  const BoundingBox box = BoundingBox::Of(trajectory);

  const double abs_lat =
      std::max(std::abs(box.min_x), std::abs(box.max_x));
  if (!grid_ready_) {
    abs_lat_max_ = abs_lat;
    margin_ = JoinCoordinateMargin(*metric_, options_.threshold, abs_lat_max_);
    // Cell size is a performance knob frozen at first contact with the
    // data; the margin itself stays current (below), which is what
    // soundness depends on.
    StatusOr<GridIndex> grid =
        GridIndex::CreateEmpty(std::max(margin_, 1e-9) * 2.0);
    if (!grid.ok()) return grid.status();
    grid_ = std::move(grid).value();
    grid_ready_ = true;
  } else if (abs_lat > abs_lat_max_) {
    abs_lat_max_ = abs_lat;
    margin_ =
        std::max(margin_, JoinCoordinateMargin(*metric_, options_.threshold,
                                               abs_lat_max_));
  }

  const auto it = members_.find(id);
  if (it == members_.end()) {
    FM_RETURN_IF_ERROR(grid_.Insert(id, box));
    members_.emplace(id, Member{std::move(trajectory), box});
  } else {
    FM_RETURN_IF_ERROR(grid_.Update(id, box));
    it->second = Member{std::move(trajectory), box};
  }
  dirty_.insert(id);
  return Status::Ok();
}

Status IncrementalDfdJoin::Remove(std::size_t id) {
  const auto it = members_.find(id);
  if (it == members_.end()) {
    return Status::NotFound("incremental join member not present");
  }
  FM_RETURN_IF_ERROR(grid_.Remove(id));
  members_.erase(it);
  dirty_.erase(id);
  const auto adj = matches_.find(id);
  if (adj != matches_.end()) {
    for (const std::size_t partner : adj->second) {
      pending_left_.push_back(MakePair(id, partner));
      matches_[partner].erase(id);
      if (matches_[partner].empty()) matches_.erase(partner);
      --matched_count_;
    }
    matches_.erase(id);
  }
  return Status::Ok();
}

StatusOr<JoinDelta> IncrementalDfdJoin::Tick() {
  JoinDelta delta;
  delta.left = std::move(pending_left_);
  pending_left_.clear();
  ++stats_.ticks;

  const std::int64_t matched_before = matched_count_;
  std::int64_t touched_matched = 0;

  std::set<std::pair<std::size_t, std::size_t>> processed;
  for (const std::size_t id : dirty_) {
    const auto member = members_.find(id);
    if (member == members_.end()) continue;  // removed after dirtying

    const std::vector<std::size_t> candidates =
        grid_.Candidates(member->second.box.Expanded(margin_));
    for (const std::size_t partner : candidates) {
      if (partner == id) continue;
      const JoinPair pair = MakePair(id, partner);
      if (!processed.emplace(pair.li, pair.ri).second) continue;
      const Member& other = members_.at(partner);
      ++stats_.pairs_reverified;
      ++stats_.cascade.pairs_total;
      const bool now = ResolveJoinCandidate(
          member->second.trajectory, member->second.box, other.trajectory,
          other.box, *metric_, options_, &stats_.cascade, &scratch_);
      const auto adj = matches_.find(id);
      const bool was =
          adj != matches_.end() && adj->second.count(partner) != 0;
      if (was) ++touched_matched;
      if (now && !was) {
        delta.entered.push_back(pair);
        matches_[id].insert(partner);
        matches_[partner].insert(id);
        ++matched_count_;
      } else if (!now && was) {
        delta.left.push_back(pair);
        matches_[id].erase(partner);
        if (matches_[id].empty()) matches_.erase(id);
        matches_[partner].erase(id);
        if (matches_[partner].empty()) matches_.erase(partner);
        --matched_count_;
      }
    }

    // Previously matching partners no longer in the grid neighborhood:
    // outside the expanded query box every point pair exceeds the
    // coordinate margin, so DFD > ε — evict without a cascade run.
    const auto adj = matches_.find(id);
    if (adj != matches_.end()) {
      const std::vector<std::size_t> partners(adj->second.begin(),
                                              adj->second.end());
      for (const std::size_t partner : partners) {
        const JoinPair pair = MakePair(id, partner);
        if (!processed.emplace(pair.li, pair.ri).second) continue;
        ++touched_matched;
        ++stats_.evicted_by_grid;
        delta.left.push_back(pair);
        matches_[id].erase(partner);
        matches_[partner].erase(id);
        if (matches_[partner].empty()) matches_.erase(partner);
        --matched_count_;
      }
      if (matches_.count(id) != 0 && matches_[id].empty()) {
        matches_.erase(id);
      }
    }
  }
  dirty_.clear();

  stats_.verdicts_carried += matched_before - touched_matched;
  stats_.entered_total += static_cast<std::int64_t>(delta.entered.size());
  stats_.left_total += static_cast<std::int64_t>(delta.left.size());

  std::sort(delta.entered.begin(), delta.entered.end(), PairLess);
  std::sort(delta.left.begin(), delta.left.end(), PairLess);
  return delta;
}

namespace {

void SaveTrajectory(BinaryWriter* writer, const Trajectory& t) {
  writer->PutU64(static_cast<std::uint64_t>(t.size()));
  for (Index i = 0; i < t.size(); ++i) {
    writer->PutDouble(t[i].x);
    writer->PutDouble(t[i].y);
  }
  writer->PutBool(t.has_timestamps());
  if (t.has_timestamps()) {
    for (Index i = 0; i < t.size(); ++i) writer->PutDouble(t.timestamp(i));
  }
}

Status LoadTrajectory(BinaryReader* reader, Trajectory* t) {
  std::uint64_t size = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&size));
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(size));
  for (std::uint64_t i = 0; i < size; ++i) {
    Point p;
    FM_RETURN_IF_ERROR(reader->GetDouble(&p.x));
    FM_RETURN_IF_ERROR(reader->GetDouble(&p.y));
    points.push_back(p);
  }
  bool timestamped = false;
  FM_RETURN_IF_ERROR(reader->GetBool(&timestamped));
  std::vector<double> times;
  if (timestamped) {
    times.resize(static_cast<std::size_t>(size));
    for (double& ts : times) FM_RETURN_IF_ERROR(reader->GetDouble(&ts));
  }
  *t = Trajectory(std::move(points), std::move(times));
  return Status::Ok();
}

void SaveJoinPairs(BinaryWriter* writer, const std::vector<JoinPair>& pairs) {
  writer->PutU64(pairs.size());
  for (const JoinPair& pair : pairs) {
    writer->PutU64(pair.li);
    writer->PutU64(pair.ri);
  }
}

Status LoadJoinPairs(BinaryReader* reader, std::vector<JoinPair>* pairs) {
  std::uint64_t count = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&count));
  pairs->clear();
  for (std::uint64_t k = 0; k < count; ++k) {
    std::uint64_t li = 0;
    std::uint64_t ri = 0;
    FM_RETURN_IF_ERROR(reader->GetU64(&li));
    FM_RETURN_IF_ERROR(reader->GetU64(&ri));
    pairs->push_back(JoinPair{static_cast<std::size_t>(li),
                              static_cast<std::size_t>(ri)});
  }
  return Status::Ok();
}

}  // namespace

void IncrementalDfdJoin::SaveTo(BinaryWriter* writer) const {
  writer->PutBool(grid_ready_);
  writer->PutDouble(margin_);
  writer->PutDouble(abs_lat_max_);
  writer->PutDouble(grid_ready_ ? grid_.cell_size() : 0.0);

  // Members in id order (members_ itself is unordered).
  std::vector<std::size_t> ids;
  ids.reserve(members_.size());
  for (const auto& [id, member] : members_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  writer->PutU64(ids.size());
  for (const std::size_t id : ids) {
    writer->PutU64(id);
    SaveTrajectory(writer, members_.at(id).trajectory);
  }

  // The verdict cache, as its canonical (li < ri, sorted) pair list.
  SaveJoinPairs(writer, CurrentMatches());

  writer->PutU64(dirty_.size());
  for (const std::size_t id : dirty_) writer->PutU64(id);
  SaveJoinPairs(writer, pending_left_);

  writer->PutI64(stats_.ticks);
  writer->PutI64(stats_.pairs_reverified);
  writer->PutI64(stats_.verdicts_carried);
  writer->PutI64(stats_.evicted_by_grid);
  writer->PutI64(stats_.entered_total);
  writer->PutI64(stats_.left_total);
  writer->PutI64(stats_.cascade.pairs_total);
  writer->PutI64(stats_.cascade.pruned_bbox);
  writer->PutI64(stats_.cascade.pruned_endpoints);
  writer->PutI64(stats_.cascade.pruned_hausdorff);
  writer->PutI64(stats_.cascade.decided_exact);
  writer->PutI64(stats_.cascade.matched);
}

Status IncrementalDfdJoin::LoadFrom(BinaryReader* reader) {
  bool grid_ready = false;
  double margin = 0.0;
  double abs_lat_max = 0.0;
  double cell_size = 0.0;
  FM_RETURN_IF_ERROR(reader->GetBool(&grid_ready));
  FM_RETURN_IF_ERROR(reader->GetDouble(&margin));
  FM_RETURN_IF_ERROR(reader->GetDouble(&abs_lat_max));
  FM_RETURN_IF_ERROR(reader->GetDouble(&cell_size));

  members_.clear();
  dirty_.clear();
  pending_left_.clear();
  matches_.clear();
  matched_count_ = 0;
  grid_ready_ = grid_ready;
  margin_ = margin;
  abs_lat_max_ = abs_lat_max;
  if (grid_ready) {
    StatusOr<GridIndex> grid = GridIndex::CreateEmpty(cell_size);
    if (!grid.ok()) {
      return Status::DataLoss("join snapshot holds an invalid cell size: " +
                              grid.status().ToString());
    }
    grid_ = std::move(grid).value();
  } else {
    grid_ = GridIndex();
  }

  std::uint64_t member_count = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&member_count));
  for (std::uint64_t k = 0; k < member_count; ++k) {
    std::uint64_t id = 0;
    FM_RETURN_IF_ERROR(reader->GetU64(&id));
    Trajectory trajectory;
    FM_RETURN_IF_ERROR(LoadTrajectory(reader, &trajectory));
    if (trajectory.empty() || !grid_ready) {
      return Status::DataLoss("join snapshot member set is inconsistent");
    }
    const BoundingBox box = BoundingBox::Of(trajectory);
    FM_RETURN_IF_ERROR(grid_.Insert(static_cast<std::size_t>(id), box));
    members_.emplace(static_cast<std::size_t>(id),
                     Member{std::move(trajectory), box});
  }

  std::vector<JoinPair> match_pairs;
  FM_RETURN_IF_ERROR(LoadJoinPairs(reader, &match_pairs));
  for (const JoinPair& pair : match_pairs) {
    if (members_.count(pair.li) == 0 || members_.count(pair.ri) == 0) {
      return Status::DataLoss("join snapshot match references a non-member");
    }
    matches_[pair.li].insert(pair.ri);
    matches_[pair.ri].insert(pair.li);
    ++matched_count_;
  }

  std::uint64_t dirty_count = 0;
  FM_RETURN_IF_ERROR(reader->GetU64(&dirty_count));
  for (std::uint64_t k = 0; k < dirty_count; ++k) {
    std::uint64_t id = 0;
    FM_RETURN_IF_ERROR(reader->GetU64(&id));
    dirty_.insert(static_cast<std::size_t>(id));
  }
  FM_RETURN_IF_ERROR(LoadJoinPairs(reader, &pending_left_));

  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.ticks));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.pairs_reverified));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.verdicts_carried));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.evicted_by_grid));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.entered_total));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.left_total));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.cascade.pairs_total));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.cascade.pruned_bbox));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.cascade.pruned_endpoints));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.cascade.pruned_hausdorff));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.cascade.decided_exact));
  FM_RETURN_IF_ERROR(reader->GetI64(&stats_.cascade.matched));
  return Status::Ok();
}

std::vector<JoinPair> IncrementalDfdJoin::CurrentMatches() const {
  std::vector<JoinPair> out;
  for (const auto& [id, partners] : matches_) {
    for (const std::size_t partner : partners) {
      if (id < partner) out.push_back(JoinPair{id, partner});
    }
  }
  std::sort(out.begin(), out.end(), PairLess);
  return out;
}

}  // namespace frechet_motif
