#include "join/incremental_join.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace frechet_motif {

namespace {

JoinPair MakePair(std::size_t a, std::size_t b) {
  return a < b ? JoinPair{a, b} : JoinPair{b, a};
}

bool PairLess(const JoinPair& a, const JoinPair& b) {
  if (a.li != b.li) return a.li < b.li;
  return a.ri < b.ri;
}

}  // namespace

IncrementalDfdJoin::IncrementalDfdJoin(const JoinOptions& options,
                                       const GroundMetric& metric)
    : options_(options), metric_(&metric) {}

StatusOr<IncrementalDfdJoin> IncrementalDfdJoin::Create(
    const JoinOptions& options, const GroundMetric& metric) {
  if (options.threshold < 0.0) {
    return Status::InvalidArgument("join threshold must be non-negative");
  }
  return IncrementalDfdJoin(options, metric);
}

Status IncrementalDfdJoin::Update(std::size_t id, Trajectory trajectory) {
  if (trajectory.empty()) {
    return Status::InvalidArgument(
        "incremental join members must be non-empty trajectories");
  }
  const BoundingBox box = BoundingBox::Of(trajectory);

  const double abs_lat =
      std::max(std::abs(box.min_x), std::abs(box.max_x));
  if (!grid_ready_) {
    abs_lat_max_ = abs_lat;
    margin_ = JoinCoordinateMargin(*metric_, options_.threshold, abs_lat_max_);
    // Cell size is a performance knob frozen at first contact with the
    // data; the margin itself stays current (below), which is what
    // soundness depends on.
    StatusOr<GridIndex> grid =
        GridIndex::CreateEmpty(std::max(margin_, 1e-9) * 2.0);
    if (!grid.ok()) return grid.status();
    grid_ = std::move(grid).value();
    grid_ready_ = true;
  } else if (abs_lat > abs_lat_max_) {
    abs_lat_max_ = abs_lat;
    margin_ =
        std::max(margin_, JoinCoordinateMargin(*metric_, options_.threshold,
                                               abs_lat_max_));
  }

  const auto it = members_.find(id);
  if (it == members_.end()) {
    FM_RETURN_IF_ERROR(grid_.Insert(id, box));
    members_.emplace(id, Member{std::move(trajectory), box});
  } else {
    FM_RETURN_IF_ERROR(grid_.Update(id, box));
    it->second = Member{std::move(trajectory), box};
  }
  dirty_.insert(id);
  return Status::Ok();
}

Status IncrementalDfdJoin::Remove(std::size_t id) {
  const auto it = members_.find(id);
  if (it == members_.end()) {
    return Status::NotFound("incremental join member not present");
  }
  FM_RETURN_IF_ERROR(grid_.Remove(id));
  members_.erase(it);
  dirty_.erase(id);
  const auto adj = matches_.find(id);
  if (adj != matches_.end()) {
    for (const std::size_t partner : adj->second) {
      pending_left_.push_back(MakePair(id, partner));
      matches_[partner].erase(id);
      if (matches_[partner].empty()) matches_.erase(partner);
      --matched_count_;
    }
    matches_.erase(id);
  }
  return Status::Ok();
}

StatusOr<JoinDelta> IncrementalDfdJoin::Tick() {
  JoinDelta delta;
  delta.left = std::move(pending_left_);
  pending_left_.clear();
  ++stats_.ticks;

  const std::int64_t matched_before = matched_count_;
  std::int64_t touched_matched = 0;

  std::set<std::pair<std::size_t, std::size_t>> processed;
  for (const std::size_t id : dirty_) {
    const auto member = members_.find(id);
    if (member == members_.end()) continue;  // removed after dirtying

    const std::vector<std::size_t> candidates =
        grid_.Candidates(member->second.box.Expanded(margin_));
    for (const std::size_t partner : candidates) {
      if (partner == id) continue;
      const JoinPair pair = MakePair(id, partner);
      if (!processed.emplace(pair.li, pair.ri).second) continue;
      const Member& other = members_.at(partner);
      ++stats_.pairs_reverified;
      ++stats_.cascade.pairs_total;
      const bool now = ResolveJoinCandidate(
          member->second.trajectory, member->second.box, other.trajectory,
          other.box, *metric_, options_, &stats_.cascade, &scratch_);
      const auto adj = matches_.find(id);
      const bool was =
          adj != matches_.end() && adj->second.count(partner) != 0;
      if (was) ++touched_matched;
      if (now && !was) {
        delta.entered.push_back(pair);
        matches_[id].insert(partner);
        matches_[partner].insert(id);
        ++matched_count_;
      } else if (!now && was) {
        delta.left.push_back(pair);
        matches_[id].erase(partner);
        if (matches_[id].empty()) matches_.erase(id);
        matches_[partner].erase(id);
        if (matches_[partner].empty()) matches_.erase(partner);
        --matched_count_;
      }
    }

    // Previously matching partners no longer in the grid neighborhood:
    // outside the expanded query box every point pair exceeds the
    // coordinate margin, so DFD > ε — evict without a cascade run.
    const auto adj = matches_.find(id);
    if (adj != matches_.end()) {
      const std::vector<std::size_t> partners(adj->second.begin(),
                                              adj->second.end());
      for (const std::size_t partner : partners) {
        const JoinPair pair = MakePair(id, partner);
        if (!processed.emplace(pair.li, pair.ri).second) continue;
        ++touched_matched;
        ++stats_.evicted_by_grid;
        delta.left.push_back(pair);
        matches_[id].erase(partner);
        matches_[partner].erase(id);
        if (matches_[partner].empty()) matches_.erase(partner);
        --matched_count_;
      }
      if (matches_.count(id) != 0 && matches_[id].empty()) {
        matches_.erase(id);
      }
    }
  }
  dirty_.clear();

  stats_.verdicts_carried += matched_before - touched_matched;
  stats_.entered_total += static_cast<std::int64_t>(delta.entered.size());
  stats_.left_total += static_cast<std::int64_t>(delta.left.size());

  std::sort(delta.entered.begin(), delta.entered.end(), PairLess);
  std::sort(delta.left.begin(), delta.left.end(), PairLess);
  return delta;
}

std::vector<JoinPair> IncrementalDfdJoin::CurrentMatches() const {
  std::vector<JoinPair> out;
  for (const auto& [id, partners] : matches_) {
    for (const std::size_t partner : partners) {
      if (id < partner) out.push_back(JoinPair{id, partner});
    }
  }
  std::sort(out.begin(), out.end(), PairLess);
  return out;
}

}  // namespace frechet_motif
