#include "join/grid_index.h"

#include <algorithm>
#include <cmath>

namespace frechet_motif {

BoundingBox BoundingBox::Of(const Trajectory& t) {
  BoundingBox box;
  box.min_x = box.max_x = t[0].x;
  box.min_y = box.max_y = t[0].y;
  for (Index i = 1; i < t.size(); ++i) {
    box.min_x = std::min(box.min_x, t[i].x);
    box.max_x = std::max(box.max_x, t[i].x);
    box.min_y = std::min(box.min_y, t[i].y);
    box.max_y = std::max(box.max_y, t[i].y);
  }
  return box;
}

BoundingBox BoundingBox::Expanded(double margin) const {
  return BoundingBox{min_x - margin, max_x + margin, min_y - margin,
                     max_y + margin};
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

std::int32_t GridIndex::CellOf(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

StatusOr<GridIndex> GridIndex::Build(const std::vector<BoundingBox>& boxes,
                                     double cell_size) {
  if (!(cell_size > 0.0)) {
    return Status::InvalidArgument("grid cell size must be positive");
  }
  GridIndex index;
  index.cell_size_ = cell_size;
  index.boxes_ = boxes;
  for (std::size_t id = 0; id < boxes.size(); ++id) {
    const BoundingBox& b = boxes[id];
    for (std::int32_t cx = index.CellOf(b.min_x);
         cx <= index.CellOf(b.max_x); ++cx) {
      for (std::int32_t cy = index.CellOf(b.min_y);
           cy <= index.CellOf(b.max_y); ++cy) {
        index.cells_[CellKey(cx, cy)].push_back(id);
      }
    }
  }
  return index;
}

std::vector<std::size_t> GridIndex::Candidates(
    const BoundingBox& query) const {
  std::vector<std::size_t> out;
  for (std::int32_t cx = CellOf(query.min_x); cx <= CellOf(query.max_x);
       ++cx) {
    for (std::int32_t cy = CellOf(query.min_y); cy <= CellOf(query.max_y);
         ++cy) {
      const auto it = cells_.find(CellKey(cx, cy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace frechet_motif
