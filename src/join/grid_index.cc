#include "join/grid_index.h"

#include <algorithm>
#include <cmath>

namespace frechet_motif {

BoundingBox BoundingBox::Of(const Trajectory& t) {
  BoundingBox box;
  box.min_x = box.max_x = t[0].x;
  box.min_y = box.max_y = t[0].y;
  for (Index i = 1; i < t.size(); ++i) {
    box.min_x = std::min(box.min_x, t[i].x);
    box.max_x = std::max(box.max_x, t[i].x);
    box.min_y = std::min(box.min_y, t[i].y);
    box.max_y = std::max(box.max_y, t[i].y);
  }
  return box;
}

BoundingBox BoundingBox::Expanded(double margin) const {
  return BoundingBox{min_x - margin, max_x + margin, min_y - margin,
                     max_y + margin};
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  return min_x <= other.max_x && other.min_x <= max_x &&
         min_y <= other.max_y && other.min_y <= max_y;
}

std::int32_t GridIndex::CellOf(double v) const {
  return static_cast<std::int32_t>(std::floor(v / cell_size_));
}

GridIndex::CellRange GridIndex::RangeOf(const BoundingBox& box) const {
  return CellRange{CellOf(box.min_x), CellOf(box.max_x), CellOf(box.min_y),
                   CellOf(box.max_y)};
}

void GridIndex::AddToCell(std::int32_t cx, std::int32_t cy, std::size_t id) {
  cells_[CellKey(cx, cy)].push_back(id);
}

void GridIndex::DropFromCell(std::int32_t cx, std::int32_t cy,
                             std::size_t id) {
  const auto it = cells_.find(CellKey(cx, cy));
  if (it == cells_.end()) return;
  std::vector<std::size_t>& ids = it->second;
  const auto at = std::find(ids.begin(), ids.end(), id);
  if (at != ids.end()) ids.erase(at);
  if (ids.empty()) cells_.erase(it);
}

StatusOr<GridIndex> GridIndex::CreateEmpty(double cell_size) {
  if (!(cell_size > 0.0)) {
    return Status::InvalidArgument("grid cell size must be positive");
  }
  GridIndex index;
  index.cell_size_ = cell_size;
  return index;
}

StatusOr<GridIndex> GridIndex::Build(const std::vector<BoundingBox>& boxes,
                                     double cell_size) {
  StatusOr<GridIndex> index = CreateEmpty(cell_size);
  if (!index.ok()) return index;
  for (std::size_t id = 0; id < boxes.size(); ++id) {
    FM_RETURN_IF_ERROR(index.value().Insert(id, boxes[id]));
  }
  return index;
}

Status GridIndex::Insert(std::size_t id, const BoundingBox& box) {
  if (boxes_.count(id) != 0) {
    return Status::InvalidArgument("grid id already present; use Update");
  }
  const CellRange range = RangeOf(box);
  for (std::int32_t cx = range.x0; cx <= range.x1; ++cx) {
    for (std::int32_t cy = range.y0; cy <= range.y1; ++cy) {
      AddToCell(cx, cy, id);
    }
  }
  boxes_.emplace(id, box);
  return Status::Ok();
}

Status GridIndex::Update(std::size_t id, const BoundingBox& box) {
  const auto it = boxes_.find(id);
  if (it == boxes_.end()) {
    return Status::NotFound("grid id not present; use Insert");
  }
  const CellRange old_range = RangeOf(it->second);
  const CellRange new_range = RangeOf(box);
  // Touch only the symmetric difference of the two cell ranges: the cells
  // the sliding box leaves and the cells it enters. A small drift (the
  // common per-slide case) touches O(perimeter) cells; an unchanged range
  // touches none.
  for (std::int32_t cx = old_range.x0; cx <= old_range.x1; ++cx) {
    for (std::int32_t cy = old_range.y0; cy <= old_range.y1; ++cy) {
      if (!new_range.Contains(cx, cy)) DropFromCell(cx, cy, id);
    }
  }
  for (std::int32_t cx = new_range.x0; cx <= new_range.x1; ++cx) {
    for (std::int32_t cy = new_range.y0; cy <= new_range.y1; ++cy) {
      if (!old_range.Contains(cx, cy)) AddToCell(cx, cy, id);
    }
  }
  it->second = box;
  return Status::Ok();
}

Status GridIndex::Remove(std::size_t id) {
  const auto it = boxes_.find(id);
  if (it == boxes_.end()) {
    return Status::NotFound("grid id not present");
  }
  const CellRange range = RangeOf(it->second);
  for (std::int32_t cx = range.x0; cx <= range.x1; ++cx) {
    for (std::int32_t cy = range.y0; cy <= range.y1; ++cy) {
      DropFromCell(cx, cy, id);
    }
  }
  boxes_.erase(it);
  return Status::Ok();
}

std::vector<std::size_t> GridIndex::Candidates(
    const BoundingBox& query) const {
  std::vector<std::size_t> out;
  for (std::int32_t cx = CellOf(query.min_x); cx <= CellOf(query.max_x);
       ++cx) {
    for (std::int32_t cy = CellOf(query.min_y); cy <= CellOf(query.max_y);
         ++cy) {
      const auto it = cells_.find(CellKey(cx, cy));
      if (it == cells_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace frechet_motif
