#ifndef FRECHET_MOTIF_JOIN_SIMILARITY_JOIN_H_
#define FRECHET_MOTIF_JOIN_SIMILARITY_JOIN_H_

/// Similarity join between trajectory collections under the discrete
/// Fréchet distance (DFD): report every pair within a distance threshold.
/// Most applications only need DfdSimilarityJoin() or DfdSelfJoin(); the
/// JoinOptions knobs expose the pruning cascade for ablation studies.

#include <cstdint>
#include <string>
#include <vector>

#include "core/trajectory.h"
#include "geo/metric.h"
#include "join/grid_index.h"
#include "similarity/frechet.h"
#include "util/status.h"

namespace frechet_motif {

/// A matching pair produced by the join: trajectories left[li] and
/// right[ri] with DFD <= the join threshold.
struct JoinPair {
  /// Index into the left collection.
  std::size_t li = 0;
  /// Index into the right collection (for a self-join, li < ri).
  std::size_t ri = 0;

  friend bool operator==(const JoinPair& a, const JoinPair& b) {
    return a.li == b.li && a.ri == b.ri;
  }
};

/// Counters describing how the join's pruning cascade resolved each pair.
struct JoinStats {
  /// Candidate pairs considered (all pairs, or the grid index's output).
  std::int64_t pairs_total = 0;
  /// Disqualified because the bounding boxes are further apart than the
  /// threshold (every ground distance, hence the DFD, exceeds it).
  std::int64_t pruned_bbox = 0;
  /// Disqualified by the endpoint bound: every coupling matches first with
  /// first and last with last, so max(d(a0,b0), d(a_end,b_end)) <= DFD.
  std::int64_t pruned_endpoints = 0;
  /// Disqualified by the sampled one-sided Hausdorff bound: for any point
  /// a_p, min_q d(a_p, b_q) <= DFD (the coupling matches a_p to *some* b_q).
  std::int64_t pruned_hausdorff = 0;
  /// Pairs that reached the O(l^2) early-abandoning decision kernel.
  std::int64_t decided_exact = 0;
  /// Pairs reported as matches.
  std::int64_t matched = 0;

  /// One-line human-readable rendering of the counters, for logs.
  std::string ToString() const;
};

/// Options for the similarity join.
struct JoinOptions {
  /// Match threshold θ (meters): report pairs with DFD <= θ. Must be >= 0.
  double threshold = 100.0;

  /// How many points of the left trajectory to probe in the sampled
  /// Hausdorff lower bound (0 disables that stage).
  Index hausdorff_samples = 8;

  /// Disables the cheap bounds, forcing every pair through the exact
  /// decision kernel (for ablation benchmarks).
  bool use_pruning = true;

  /// Generates candidate pairs with a uniform grid over bounding boxes
  /// (see GridIndex) instead of enumerating all pairs — output-sensitive
  /// for spread-out collections. Results are identical; JoinStats then
  /// counts only the generated candidates in pairs_total.
  bool use_grid_index = false;

  /// Worker threads for candidate-pair verification. 1 (default) keeps the
  /// canonical serial path; 0 means "all hardware threads". Candidates are
  /// partitioned statically and per-lane matches are concatenated in lane
  /// order, so the result list is identical for every setting. With
  /// threads > 1 the GroundMetric must be safe for concurrent const
  /// access (the built-in metrics are stateless).
  int threads = 1;
};

/// DFD similarity join (the paper's Section 7 outlook: "other trajectory
/// analysis operations that rely on DFD, such as similarity join"): all
/// pairs (li, ri) with DFD(left[li], right[ri]) <= options.threshold.
///
/// Per pair, a cascade of O(1)/O(l) lower bounds disqualifies most
/// non-matches before the O(l^2) early-abandoning decision kernel
/// (DiscreteFrechetAtMost) resolves the rest — the same
/// bound-then-verify design as the motif algorithms.
///
/// Returns InvalidArgument when either side is empty, any trajectory is
/// empty, or the threshold is negative. `stats` may be null.
StatusOr<std::vector<JoinPair>> DfdSimilarityJoin(
    const std::vector<Trajectory>& left, const std::vector<Trajectory>& right,
    const GroundMetric& metric, const JoinOptions& options,
    JoinStats* stats = nullptr);

/// Self-join: all unordered pairs {i, j}, i < j, within one collection.
StatusOr<std::vector<JoinPair>> DfdSelfJoin(
    const std::vector<Trajectory>& trajectories, const GroundMetric& metric,
    const JoinOptions& options, JoinStats* stats = nullptr);

/// Resolves one candidate pair through the join's pruning cascade
/// (bounding-box gap, endpoint bound, sampled Hausdorff bound, then the
/// exact early-abandoning decision kernel). Returns true iff
/// DFD(a, b) <= options.threshold. This is the single-pair verdict the
/// batch joins apply per candidate, exposed so incremental consumers
/// (IncrementalDfdJoin) produce verdicts bit-identical to a from-scratch
/// join. `stats` may be null; `scratch` (optional) makes the call
/// allocation-free.
bool ResolveJoinCandidate(const Trajectory& a, const BoundingBox& box_a,
                          const Trajectory& b, const BoundingBox& box_b,
                          const GroundMetric& metric,
                          const JoinOptions& options, JoinStats* stats,
                          FrechetScratch* scratch);

/// Conservative conversion of the metric threshold θ into coordinate
/// units, for grid cell sizing and query-box expansion: any two points
/// within θ of each other differ by at most this much per coordinate.
/// Euclidean: θ itself. Haversine: θ over the per-degree meter length,
/// with the longitude axis corrected for the worst meridian convergence
/// at `abs_lat_max` degrees (pass the largest |latitude| the data can
/// reach; the margin grows with it, so over-estimating is always safe).
/// Unknown metrics get an effectively unbounded margin (no filtering).
double JoinCoordinateMargin(const GroundMetric& metric, double threshold,
                            double abs_lat_max);

}  // namespace frechet_motif

#endif  // FRECHET_MOTIF_JOIN_SIMILARITY_JOIN_H_
