// Why the discrete Fréchet distance? Reproduces the arguments of the
// paper's Figures 2-3 and Table 1 on synthetic data:
//  (1) ED measures lock-step spatial proximity only and can prefer a pair
//      whose movement patterns differ;
//  (2) DTW sums matched distances and mis-ranks non-uniformly sampled
//      trajectories, while DFD is unaffected.
//
//   ./measure_comparison

#include <cstdio>
#include <vector>

#include "core/trajectory.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/dtw.h"
#include "similarity/edr.h"
#include "similarity/euclidean.h"
#include "similarity/frechet.h"
#include "similarity/lcss.h"

namespace fm = frechet_motif;

namespace {

const fm::Point kOrigin = fm::LatLon(39.9, 116.4);

/// Track through meter-frame waypoints, one sample per `step_m`.
fm::Trajectory Track(const std::vector<fm::Point>& waypoints, double step_m) {
  fm::Trajectory out;
  double clock = 0.0;
  for (std::size_t w = 0; w + 1 < waypoints.size(); ++w) {
    const double dx = waypoints[w + 1].x - waypoints[w].x;
    const double dy = waypoints[w + 1].y - waypoints[w].y;
    const double len = std::sqrt(dx * dx + dy * dy);
    const int steps = std::max(1, static_cast<int>(len / step_m));
    for (int k = 0; k < steps; ++k) {
      const double f = static_cast<double>(k) / steps;
      out.Append(fm::OffsetByMeters(kOrigin, waypoints[w].x + f * dx,
                                    waypoints[w].y + f * dy),
                 clock);
      clock += 1.0;
    }
  }
  out.Append(fm::OffsetByMeters(kOrigin, waypoints.back().x,
                                waypoints.back().y),
             clock);
  return out;
}

void PrintRow(const char* label, const fm::Trajectory& a,
              const fm::Trajectory& b) {
  const double dfd = fm::DiscreteFrechet(a, b, fm::Haversine()).value();
  const double dtw = fm::DtwDistance(a, b, fm::Haversine()).value();
  const double lcss = fm::LcssDistance(a, b, fm::Haversine(), 15.0).value();
  const double edr =
      fm::EdrNormalized(a, b, fm::Haversine(), 15.0).value();
  std::printf("  %-28s DFD=%8.1f m  DTW=%10.1f  LCSS=%5.2f  EDR=%5.2f\n",
              label, dfd, dtw, lcss, edr);
}

}  // namespace

int main() {
  // --- (1) Spatial proximity is not pattern similarity (Figure 2). -------
  // `reversed` drives the same street as `straight` but in the opposite
  // direction: every sample is spatially near the street, yet the movement
  // pattern is opposite. `parallel` is a farther street driven in the same
  // direction. ED (lock-step proximity) prefers the reversed pair; DFD
  // recognises the opposite pattern and prefers the parallel one — the
  // paper's Figure 2 argument.
  const fm::Trajectory straight = Track({{0, 0}, {400, 0}}, 10.0);
  const fm::Trajectory reversed = Track({{400, 10}, {0, 10}}, 10.0);
  const fm::Trajectory parallel = Track({{0, 250}, {400, 250}}, 10.0);

  const double ed_rev =
      fm::EuclideanMeanDistance(straight, reversed, fm::Haversine()).value();
  const double ed_par =
      fm::EuclideanMeanDistance(straight, parallel, fm::Haversine()).value();
  const double dfd_rev =
      fm::DiscreteFrechet(straight, reversed, fm::Haversine()).value();
  const double dfd_par =
      fm::DiscreteFrechet(straight, parallel, fm::Haversine()).value();

  std::printf("(1) spatial proximity vs movement pattern (cf. Figure 2)\n");
  std::printf(
      "  same street, opposite direction: mean ED=%6.1f m  DFD=%6.1f m\n",
      ed_rev, dfd_rev);
  std::printf(
      "  parallel street, same direction: mean ED=%6.1f m  DFD=%6.1f m\n",
      ed_par, dfd_par);
  std::printf(
      "  ED prefers the %s pair; DFD prefers the %s pair.\n\n",
      ed_rev < ed_par ? "opposite-direction (pattern mismatch!)" : "parallel",
      dfd_rev < dfd_par ? "opposite-direction (pattern mismatch!)"
                        : "parallel");

  // --- (2) Non-uniform sampling (Figure 3). ------------------------------
  const fm::Trajectory sa = Track({{0, 0}, {500, 0}}, 10.0);
  const fm::Trajectory sb = Track({{0, 25}, {500, 25}}, 10.0);
  // Same geometry as sa at a *closer* offset, but heavily oversampled in
  // the first 150 m (a phone logging at 10x rate in that stretch).
  fm::Trajectory sc = Track({{0, 12}, {150, 12}}, 1.0);
  const fm::Trajectory tail = Track({{150, 12}, {500, 12}}, 10.0);
  for (fm::Index k = 0; k < tail.size(); ++k) {
    sc.Append(tail[k], 1000.0 + k);
  }

  std::printf("(2) non-uniform sampling (cf. Figure 3)\n");
  PrintRow("Sa vs Sb (uniform, 25 m off)", sa, sb);
  PrintRow("Sa vs Sc (oversampled, 12 m)", sa, sc);
  std::printf(
      "  Sc is geometrically closer to Sa, and DFD agrees; DTW explodes on\n"
      "  the oversampled stretch and ranks Sb first — the paper's argument\n"
      "  for adopting DFD on real GPS data.\n");
  return 0;
}
