// Trajectory pattern mining beyond the single best motif: the library as a
// building block (the role the paper's introduction assigns to motifs).
//  1. top-k motifs with diversity separation;
//  2. subtrajectory clustering: how often is the commute repeated;
//  3. the symbolic baseline on the same data — fast, but its "motif" can
//     pair spatially unrelated parts (why the paper uses DFD instead).
//
//   ./pattern_mining [--n=2000] [--xi=50]

#include <cstdio>

#include "cluster/subtrajectory_cluster.h"
#include "data/datasets.h"
#include "geo/metric.h"
#include "motif/top_k.h"
#include "similarity/frechet.h"
#include "symbolic/symbolic.h"
#include "util/flags.h"

namespace fm = frechet_motif;

int main(int argc, char** argv) {
  fm::Flags flags;
  if (!flags.Parse(argc, argv).ok()) return 2;
  const fm::Index n = static_cast<fm::Index>(flags.GetInt("n", 2000));
  const fm::Index xi = static_cast<fm::Index>(flags.GetInt("xi", 50));

  const fm::StatusOr<fm::Trajectory> data = fm::MakeDataset(
      fm::DatasetKind::kGeoLifeLike, fm::DatasetOptions{.length = n,
                                                        .seed = 11});
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  const fm::Trajectory& s = data.value();

  // ---- 1. Top-k diverse motifs. ----------------------------------------
  fm::TopKOptions topk;
  topk.motif.min_length_xi = xi;
  topk.k = 5;
  topk.min_start_separation = xi;  // spread the findings out
  const fm::StatusOr<std::vector<fm::MotifResult>> motifs =
      TopKMotifs(s, fm::Haversine(), topk);
  if (!motifs.ok()) {
    std::fprintf(stderr, "%s\n", motifs.status().ToString().c_str());
    return 1;
  }
  std::printf("top-%d motifs (xi=%d, separation=%d):\n", topk.k, xi, xi);
  int rank = 1;
  for (const fm::MotifResult& m : motifs.value()) {
    std::printf("  #%d S[%4d..%4d] ~ S[%4d..%4d]  DFD=%7.1f m\n", rank++,
                m.best.i, m.best.ie, m.best.j, m.best.je, m.distance);
  }

  // ---- 2. Subtrajectory clustering. ------------------------------------
  fm::ClusterOptions cluster_options;
  cluster_options.window_length = xi;
  cluster_options.stride = xi / 4;
  cluster_options.threshold_m = 60.0;
  fm::ClusterStats cluster_stats;
  const fm::StatusOr<fm::SubtrajectoryCluster> cluster =
      BestSubtrajectoryCluster(s, fm::Haversine(), cluster_options,
                               &cluster_stats);
  if (cluster.ok()) {
    std::printf(
        "\nlargest route cluster: %d repetitions of S[%d..%d] "
        "(theta=%.0f m)\n",
        cluster.value().size(), cluster.value().reference.first,
        cluster.value().reference.last, cluster_options.threshold_m);
    for (const fm::SubtrajectoryRef& member : cluster.value().members) {
      std::printf("  occurrence S[%4d..%4d]\n", member.first, member.last);
    }
    std::printf("  (%s)\n", cluster_stats.ToString().c_str());
  } else {
    std::printf("\nno route repeated within %.0f m (%s)\n",
                cluster_options.threshold_m,
                cluster.status().ToString().c_str());
  }

  // ---- 3. The symbolic baseline on the same data. -----------------------
  fm::SymbolizerOptions sym;
  sym.fragment_length = 8;
  const fm::StatusOr<fm::SymbolicMotif> symbolic =
      SymbolicMotifDiscovery(s, sym, /*min_length=*/3);
  if (symbolic.ok()) {
    const fm::SymbolicMotif& m = symbolic.value();
    // How spatially similar is the symbolic "motif" really?
    const double dfd =
        fm::DiscreteFrechet(
            s.Slice(m.first_points.first, m.first_points.last),
            s.Slice(m.second_points.first, m.second_points.last),
            fm::Haversine())
            .value();
    std::printf(
        "\nsymbolic baseline: word \"%s\" repeats at S[%d..%d] and "
        "S[%d..%d]\n  — but the actual DFD of those ranges is %.1f m "
        "(pattern letters ignore geography).\n",
        m.word.c_str(), m.first_points.first, m.first_points.last,
        m.second_points.first, m.second_points.last, dfd);
  } else {
    std::printf("\nsymbolic baseline found no repeated word.\n");
  }
  return 0;
}
