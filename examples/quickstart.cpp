// Quickstart: generate a GPS trajectory, discover its motif (the most
// similar pair of non-overlapping subtrajectories under the discrete
// Fréchet distance) and print what was found.
//
//   ./quickstart [--n=2000] [--xi=50] [--algorithm=gtm|gtm_star|btm|brute]

#include <cstdio>
#include <string>

// The public API surface an installed consumer sees; only the CLI flag
// parser comes from the internal (impl) headers.
#include <frechet_motif/frechet_motif.h>

#include "util/flags.h"

using frechet_motif::DatasetKind;
using frechet_motif::DatasetOptions;
using frechet_motif::FindMotif;
using frechet_motif::FindMotifOptions;
using frechet_motif::Flags;
using frechet_motif::Haversine;
using frechet_motif::Index;
using frechet_motif::MakeDataset;
using frechet_motif::MotifAlgorithm;
using frechet_motif::MotifResult;
using frechet_motif::MotifStats;
using frechet_motif::StatusOr;
using frechet_motif::Trajectory;

int main(int argc, char** argv) {
  Flags flags;
  if (!flags.Parse(argc, argv).ok()) {
    std::fprintf(stderr, "usage: quickstart [--n=2000] [--xi=50]\n");
    return 2;
  }

  // 1. Get a trajectory. Any ordered sequence of (lat, lon) points works;
  //    here we synthesize a GeoLife-style pedestrian trace. To use your own
  //    data, see ReadCsv / ReadPlt in data/io.h.
  DatasetOptions data;
  data.length = static_cast<Index>(flags.GetInt("n", 2000));
  data.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
  const StatusOr<Trajectory> trajectory =
      MakeDataset(DatasetKind::kGeoLifeLike, data);
  if (!trajectory.ok()) {
    std::fprintf(stderr, "%s\n", trajectory.status().ToString().c_str());
    return 1;
  }
  const Trajectory& s = trajectory.value();

  // 2. Configure the search. ξ is the minimum motif length; GTM is the
  //    fastest exact algorithm from the paper.
  FindMotifOptions options;
  options.min_length_xi = static_cast<Index>(flags.GetInt("xi", 50));
  options.group_size_tau = static_cast<Index>(flags.GetInt("tau", 16));
  const std::string algo = flags.GetString("algorithm", "gtm");
  options.algorithm = algo == "brute"      ? MotifAlgorithm::kBruteDp
                      : algo == "btm"      ? MotifAlgorithm::kBtm
                      : algo == "gtm_star" ? MotifAlgorithm::kGtmStar
                                           : MotifAlgorithm::kGtm;

  // 3. Run it.
  MotifStats stats;
  const StatusOr<MotifResult> result = FindMotif(s, Haversine(), options,
                                                 &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "motif search failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const MotifResult& motif = result.value();

  // 4. Use the result.
  std::printf("trajectory: n=%d points\n", s.size());
  std::printf("motif: S[%d..%d]  ~  S[%d..%d]\n", motif.best.i, motif.best.ie,
              motif.best.j, motif.best.je);
  std::printf("discrete Fréchet distance: %.2f m\n", motif.distance);
  if (s.has_timestamps()) {
    std::printf("first leg:  t=[%.0f s .. %.0f s]\n",
                s.timestamp(motif.best.i), s.timestamp(motif.best.ie));
    std::printf("second leg: t=[%.0f s .. %.0f s]\n",
                s.timestamp(motif.best.j), s.timestamp(motif.best.je));
  }
  std::printf("\nsearch statistics (%s):\n%s\n",
              AlgorithmName(options.algorithm).c_str(),
              stats.ToString().c_str());
  return 0;
}
