// Human-behaviour analysis, in the spirit of the paper's Figure 1: a
// multi-day pedestrian trace contains a repeated commute; the motif is the
// pair of most similar subtrajectories, i.e. the commute happening twice.
// The example discovers it, reports when each repetition happened, and
// exports both legs as CSV for plotting.
//
//   ./commute_analysis [--n=3000] [--xi=60] [--out=/tmp]

#include <cstdio>
#include <string>

#include "data/datasets.h"
#include "data/io.h"
#include "data/planted.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "util/flags.h"

namespace fm = frechet_motif;

namespace {

/// Formats a timestamp (seconds since recording start) as d:hh:mm:ss.
std::string FormatClock(double seconds) {
  const long total = static_cast<long>(seconds);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "day %ld %02ld:%02ld:%02ld",
                total / 86400, (total % 86400) / 3600, (total % 3600) / 60,
                total % 60);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  fm::Flags flags;
  if (!flags.Parse(argc, argv).ok()) return 2;
  const fm::Index n = static_cast<fm::Index>(flags.GetInt("n", 3000));
  const fm::Index xi = static_cast<fm::Index>(flags.GetInt("xi", 60));
  const std::string out_dir = flags.GetString("out", "/tmp");

  // A multi-day pedestrian trace. The GeoLife-like generator re-uses a
  // small commute-route library across recordings, so a genuine motif
  // exists; we additionally plant a controlled near-copy to make the
  // demonstration deterministic.
  const fm::StatusOr<fm::Trajectory> base = fm::MakeDataset(
      fm::DatasetKind::kGeoLifeLike,
      fm::DatasetOptions{.length = n, .seed = 2009});
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  const fm::StatusOr<fm::PlantedMotif> planted = fm::PlantMotif(
      base.value(), /*segment_start=*/n / 5, /*segment_length=*/xi + 20,
      /*gap_length=*/n / 10, /*noise_m=*/5.0, /*seed=*/10);
  if (!planted.ok()) {
    std::fprintf(stderr, "%s\n", planted.status().ToString().c_str());
    return 1;
  }
  const fm::Trajectory& s = planted.value().trajectory;

  fm::FindMotifOptions options;
  options.min_length_xi = xi;
  options.group_size_tau = 16;
  options.algorithm = fm::MotifAlgorithm::kGtm;
  const fm::StatusOr<fm::MotifResult> result =
      fm::FindMotif(s, fm::Haversine(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const fm::MotifResult& motif = result.value();

  std::printf("analyzed %d GPS samples spanning %s\n", s.size(),
              FormatClock(s.timestamp(s.size() - 1) - s.timestamp(0)).c_str());
  std::printf("repeated movement pattern found (DFD %.1f m):\n",
              motif.distance);
  std::printf("  1st occurrence: samples %d..%d, %s -> %s\n", motif.best.i,
              motif.best.ie, FormatClock(s.timestamp(motif.best.i)).c_str(),
              FormatClock(s.timestamp(motif.best.ie)).c_str());
  std::printf("  2nd occurrence: samples %d..%d, %s -> %s\n", motif.best.j,
              motif.best.je, FormatClock(s.timestamp(motif.best.j)).c_str(),
              FormatClock(s.timestamp(motif.best.je)).c_str());

  const double leg_km =
      [&] {
        double total = 0.0;
        for (fm::Index k = motif.best.i; k < motif.best.ie; ++k) {
          total += fm::GreatCircleDistanceMeters(s[k], s[k + 1]);
        }
        return total / 1000.0;
      }();
  std::printf("  route length: %.2f km\n", leg_km);

  // Export both legs for plotting (e.g. with gnuplot or a notebook).
  const std::string first_path = out_dir + "/motif_first_leg.csv";
  const std::string second_path = out_dir + "/motif_second_leg.csv";
  const fm::Status w1 =
      fm::WriteCsv(s.Slice(motif.best.i, motif.best.ie), first_path);
  const fm::Status w2 =
      fm::WriteCsv(s.Slice(motif.best.j, motif.best.je), second_path);
  if (!w1.ok() || !w2.ok()) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  std::printf("exported:\n  %s\n  %s\n", first_path.c_str(),
              second_path.c_str());
  return 0;
}
