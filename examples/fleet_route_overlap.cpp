// Traffic analysis with the cross-trajectory motif variant: given the GPS
// traces of two different delivery trucks, find the road segment the two
// vehicles share most closely (smallest discrete Fréchet distance between
// any pair of their subtrajectories). Useful for detecting common routes,
// convoy behaviour or redundant tours across a fleet.
//
//   ./fleet_route_overlap [--n=1500] [--xi=40]

#include <cstdio>

#include "data/datasets.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "util/flags.h"
#include "util/timer.h"

namespace fm = frechet_motif;

int main(int argc, char** argv) {
  fm::Flags flags;
  if (!flags.Parse(argc, argv).ok()) return 2;
  const fm::Index n = static_cast<fm::Index>(flags.GetInt("n", 1500));
  const fm::Index xi = static_cast<fm::Index>(flags.GetInt("xi", 40));

  // Two trucks of the same company share the depot and road grid: generate
  // one fleet schedule over the shared route library and split it into the
  // two vehicles' recordings.
  const fm::StatusOr<fm::Trajectory> fleet = fm::MakeDataset(
      fm::DatasetKind::kTruckLike,
      fm::DatasetOptions{.length = 2 * n, .seed = 5});
  if (!fleet.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 fleet.status().ToString().c_str());
    return 1;
  }
  const fm::Trajectory truck_a = fleet.value().Slice(0, n - 1);
  const fm::Trajectory truck_b = fleet.value().Slice(n, 2 * n - 1);

  fm::FindMotifOptions options;
  options.min_length_xi = xi;
  options.group_size_tau = 16;
  options.algorithm = fm::MotifAlgorithm::kGtm;

  fm::MotifStats stats;
  fm::Timer timer;
  const fm::StatusOr<fm::MotifResult> result = fm::FindMotif(
      truck_a, truck_b, fm::Haversine(), options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const fm::MotifResult& motif = result.value();
  const fm::Trajectory& a = truck_a;
  const fm::Trajectory& b = truck_b;

  std::printf("truck A: %d samples; truck B: %d samples\n", a.size(),
              b.size());
  std::printf("closest shared segment (DFD %.1f m, found in %.2f s):\n",
              motif.distance, timer.ElapsedSeconds());
  std::printf("  truck A samples %d..%d (%d points)\n", motif.best.i,
              motif.best.ie, motif.first().length());
  std::printf("  truck B samples %d..%d (%d points)\n", motif.best.j,
              motif.best.je, motif.second().length());

  double overlap_km = 0.0;
  for (fm::Index k = motif.best.i; k < motif.best.ie; ++k) {
    overlap_km += fm::GreatCircleDistanceMeters(a[k], a[k + 1]);
  }
  overlap_km /= 1000.0;
  std::printf("  shared-route length: %.2f km\n", overlap_km);
  // At ~30 s sampling an 11 m/s truck moves ~330 m between fixes, so a DFD
  // below one inter-sample gap means the same road segment was driven.
  if (motif.distance < 400.0) {
    std::printf(
        "  => the trucks drove the same road segment (DFD below one\n"
        "     inter-sample gap); a planner could consolidate these tours.\n");
  } else {
    std::printf("  => no closely shared segment at this minimum length.\n");
  }
  std::printf("\n%s\n", stats.ToString().c_str());
  return 0;
}
