#!/usr/bin/env python3
"""Runs clang-tidy over the project compile database.

Usage:
    python3 tools/run_clang_tidy.py -p build [paths...] [-j N] [--fix]

`-p` names a build directory configured with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo root CMakeLists turns this
on by default, so any configured build tree works). `paths` filter the
translation units by prefix, default: src tools bench examples — tests
are excluded because gtest's macro expansion trips checks we do not
own. Findings are printed as the compiler would; exit status is 1 when
any TU produced one (the .clang-tidy profile sets WarningsAsErrors, so
clang-tidy itself reports them as errors). This is what the CI `lint`
job runs; locally it needs a clang-tidy on PATH (or --binary).
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

DEFAULT_PATHS = ("src", "tools", "bench", "examples")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-p", "--build-dir", default="build",
                        help="build directory holding compile_commands.json")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="repo-relative path prefixes to lint "
                             f"(default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("-j", "--jobs", type=int,
                        default=os.cpu_count() or 1)
    parser.add_argument("--fix", action="store_true",
                        help="apply suggested fixes (runs serially: "
                             "parallel fixers race on shared headers)")
    parser.add_argument("--binary", default=None,
                        help="clang-tidy executable (default: newest "
                             "clang-tidy[-N] on PATH)")
    args = parser.parse_args()

    root = Path(__file__).resolve().parent.parent
    build = Path(args.build_dir)
    if not build.is_absolute():
        build = root / build
    db_path = build / "compile_commands.json"
    if not db_path.exists():
        print(f"error: {db_path} not found — configure the build dir with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the repo default) first",
              file=sys.stderr)
        return 2

    binary = args.binary or find_clang_tidy()
    if binary is None:
        print("error: no clang-tidy on PATH (try --binary)", file=sys.stderr)
        return 2

    with open(db_path) as f:
        database = json.load(f)
    prefixes = tuple(str((root / p).resolve()) + os.sep for p in args.paths)
    files = sorted({
        str(Path(entry["directory"], entry["file"]).resolve())
        for entry in database
    })
    files = [f for f in files if f.startswith(prefixes)]
    if not files:
        print("error: no translation units matched "
              f"{args.paths} in {db_path}", file=sys.stderr)
        return 2

    cmd_base = [binary, "-p", str(build), "--quiet"]
    if args.fix:
        cmd_base.append("--fix")
        args.jobs = 1

    print(f"clang-tidy ({binary}) over {len(files)} TUs, "
          f"{args.jobs} jobs", flush=True)
    failed = []

    def run_one(path):
        proc = subprocess.run(cmd_base + [path], capture_output=True,
                              text=True)
        return path, proc.returncode, proc.stdout, proc.stderr

    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, out, err in pool.map(run_one, files):
            rel = os.path.relpath(path, root)
            if code != 0 or "warning:" in out or "error:" in out:
                failed.append(rel)
                print(f"--- {rel}")
                if out.strip():
                    print(out.strip())
                # clang-tidy writes config/database problems to stderr;
                # suppressed-warning chatter is filtered by --quiet.
                if code != 0 and err.strip():
                    print(err.strip(), file=sys.stderr)
            else:
                print(f"ok  {rel}", flush=True)

    if failed:
        print(f"\nclang-tidy: findings in {len(failed)} TU(s):",
              file=sys.stderr)
        for rel in failed:
            print(f"  {rel}", file=sys.stderr)
        return 1
    print("clang-tidy: clean")
    return 0


def find_clang_tidy():
    """Newest clang-tidy on PATH: bare name first, then versioned."""
    if shutil.which("clang-tidy"):
        return "clang-tidy"
    for version in range(25, 13, -1):
        name = f"clang-tidy-{version}"
        if shutil.which(name):
            return name
    return None


if __name__ == "__main__":
    sys.exit(main())
