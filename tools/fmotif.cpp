// fmotif — command-line front end for the library.
//
//   fmotif motif  <file> [--xi=100] [--algorithm=gtm] [--tau=32] [--topk=1]
//   fmotif cross  <fileA> <fileB> [--xi=100] [--algorithm=gtm]
//   fmotif join   <file>... --threshold=250 [--no-pruning]
//   fmotif stats  <file>...
//   fmotif simplify <file> --tolerance=10 --out=<file>
//
// Files are CSV ("lat,lon[,timestamp]") or GeoLife PLT (by .plt suffix).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/trajectory_stats.h"
#include "data/io.h"
#include "data/simplify.h"
#include "geo/metric.h"
#include "join/similarity_join.h"
#include "motif/motif.h"
#include "motif/top_k.h"
#include "util/flags.h"

namespace fm = frechet_motif;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  fmotif motif  <file> [--xi=100] [--algorithm=gtm|gtm_star|btm|brute]"
      " [--tau=32] [--topk=1]\n"
      "  fmotif cross  <fileA> <fileB> [--xi=100] [--algorithm=...]\n"
      "  fmotif join   <file> <file>... --threshold=250 [--no-pruning]\n"
      "  fmotif stats  <file>...\n"
      "  fmotif simplify <file> --tolerance=10 --out=<file>\n");
  return 2;
}

fm::StatusOr<fm::Trajectory> Load(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".plt") {
    return fm::ReadPlt(path);
  }
  return fm::ReadCsv(path);
}

fm::MotifAlgorithm ParseAlgorithm(const std::string& name) {
  if (name == "brute") return fm::MotifAlgorithm::kBruteDp;
  if (name == "btm") return fm::MotifAlgorithm::kBtm;
  if (name == "gtm_star") return fm::MotifAlgorithm::kGtmStar;
  return fm::MotifAlgorithm::kGtm;
}

void PrintMotif(const fm::Trajectory& s, const fm::MotifResult& r, int rank) {
  std::printf("#%d  S[%d..%d] ~ S[%d..%d]  DFD=%.2f m", rank, r.best.i,
              r.best.ie, r.best.j, r.best.je, r.distance);
  if (s.has_timestamps()) {
    std::printf("  t1=[%.0f..%.0f] t2=[%.0f..%.0f]", s.timestamp(r.best.i),
                s.timestamp(r.best.ie), s.timestamp(r.best.j),
                s.timestamp(r.best.je));
  }
  std::printf("\n");
}

int RunMotif(const fm::Flags& flags) {
  if (flags.positional().size() != 2) return Usage();
  fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[1]);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return 1;
  }
  const int topk = static_cast<int>(flags.GetInt("topk", 1));
  const fm::Index xi = static_cast<fm::Index>(flags.GetInt("xi", 100));
  if (topk > 1) {
    fm::TopKOptions options;
    options.motif.min_length_xi = xi;
    options.k = topk;
    options.min_start_separation =
        static_cast<fm::Index>(flags.GetInt("separation", xi));
    fm::StatusOr<std::vector<fm::MotifResult>> r =
        TopKMotifs(t.value(), fm::Haversine(), options);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    int rank = 1;
    for (const fm::MotifResult& m : r.value()) {
      PrintMotif(t.value(), m, rank++);
    }
    return 0;
  }
  fm::FindMotifOptions options;
  options.min_length_xi = xi;
  options.group_size_tau = static_cast<fm::Index>(flags.GetInt("tau", 32));
  options.algorithm = ParseAlgorithm(flags.GetString("algorithm", "gtm"));
  fm::MotifStats stats;
  fm::StatusOr<fm::MotifResult> r =
      FindMotif(t.value(), fm::Haversine(), options, &stats);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  PrintMotif(t.value(), r.value(), 1);
  std::printf("%s\n", stats.ToString().c_str());
  return 0;
}

int RunCross(const fm::Flags& flags) {
  if (flags.positional().size() != 3) return Usage();
  fm::StatusOr<fm::Trajectory> a = Load(flags.positional()[1]);
  fm::StatusOr<fm::Trajectory> b = Load(flags.positional()[2]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "failed to load inputs\n");
    return 1;
  }
  fm::FindMotifOptions options;
  options.min_length_xi = static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.group_size_tau = static_cast<fm::Index>(flags.GetInt("tau", 32));
  options.algorithm = ParseAlgorithm(flags.GetString("algorithm", "gtm"));
  fm::StatusOr<fm::MotifResult> r =
      FindMotif(a.value(), b.value(), fm::Haversine(), options);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  const fm::MotifResult& m = r.value();
  std::printf("A[%d..%d] ~ B[%d..%d]  DFD=%.2f m\n", m.best.i, m.best.ie,
              m.best.j, m.best.je, m.distance);
  return 0;
}

int RunJoin(const fm::Flags& flags) {
  if (flags.positional().size() < 3) return Usage();
  std::vector<fm::Trajectory> trajectories;
  for (std::size_t k = 1; k < flags.positional().size(); ++k) {
    fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[k]);
    if (!t.ok()) {
      std::fprintf(stderr, "%s: %s\n", flags.positional()[k].c_str(),
                   t.status().ToString().c_str());
      return 1;
    }
    trajectories.push_back(std::move(t).value());
  }
  fm::JoinOptions options;
  options.threshold = flags.GetDouble("threshold", 250.0);
  options.use_pruning = !flags.GetBool("no-pruning", false);
  fm::JoinStats stats;
  fm::StatusOr<std::vector<fm::JoinPair>> matches =
      DfdSelfJoin(trajectories, fm::Haversine(), options, &stats);
  if (!matches.ok()) {
    std::fprintf(stderr, "%s\n", matches.status().ToString().c_str());
    return 1;
  }
  for (const fm::JoinPair& p : matches.value()) {
    std::printf("%s ~ %s\n", flags.positional()[p.li + 1].c_str(),
                flags.positional()[p.ri + 1].c_str());
  }
  std::printf("%s\n", stats.ToString().c_str());
  return 0;
}

int RunStats(const fm::Flags& flags) {
  if (flags.positional().size() < 2) return Usage();
  for (std::size_t k = 1; k < flags.positional().size(); ++k) {
    fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[k]);
    if (!t.ok()) {
      std::fprintf(stderr, "%s: %s\n", flags.positional()[k].c_str(),
                   t.status().ToString().c_str());
      return 1;
    }
    fm::StatusOr<fm::TrajectorySummary> s =
        Summarize(t.value(), fm::Haversine());
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
      return 1;
    }
    std::printf("== %s ==\n%s\n", flags.positional()[k].c_str(),
                s.value().ToString().c_str());
  }
  return 0;
}

int RunSimplify(const fm::Flags& flags) {
  if (flags.positional().size() != 2 || !flags.Has("out")) return Usage();
  fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[1]);
  if (!t.ok()) {
    std::fprintf(stderr, "%s\n", t.status().ToString().c_str());
    return 1;
  }
  fm::StatusOr<fm::Trajectory> simplified =
      SimplifyDouglasPeucker(t.value(), flags.GetDouble("tolerance", 10.0));
  if (!simplified.ok()) {
    std::fprintf(stderr, "%s\n", simplified.status().ToString().c_str());
    return 1;
  }
  const fm::Status w =
      fm::WriteCsv(simplified.value(), flags.GetString("out", ""));
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.ToString().c_str());
    return 1;
  }
  std::printf("%d -> %d points\n", t.value().size(),
              simplified.value().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fm::Flags flags;
  if (!flags.Parse(argc, argv).ok() || flags.positional().empty()) {
    return Usage();
  }
  const std::string& command = flags.positional()[0];
  if (command == "motif") return RunMotif(flags);
  if (command == "cross") return RunCross(flags);
  if (command == "join") return RunJoin(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "simplify") return RunSimplify(flags);
  return Usage();
}
