// fmotif — command-line front end driving the whole library pipeline:
// ingest (CSV / GeoJSON / GeoLife PLT), optional simplification, motif
// discovery / top-k / join / clustering / synthetic generation, and
// human-readable or JSON (--json) results on stdout.
//
// Subcommands and flags are documented by `fmotif --help` and
// `fmotif <command> --help`; the full walkthrough is docs/TUTORIAL.md.
//
// Exit codes: 0 success, 1 runtime/data error, 2 usage error.

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <utility>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cluster/subtrajectory_cluster.h"
#include "durable/durable_fleet.h"
#include "core/trajectory_stats.h"
#include "data/datasets.h"
#include "data/io.h"
#include "data/simplify.h"
#include "geo/metric.h"
#include "join/similarity_join.h"
#include "motif/motif.h"
#include "motif/top_k.h"
#include "serve/motif_server.h"
#include "serve/serve_loop.h"
#include "serve/serve_socket.h"
#include "stream/motif_fleet_engine.h"
#include "stream/streaming_motif_monitor.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/numeric.h"

namespace fm = frechet_motif;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitError = 1;
constexpr int kExitUsage = 2;

constexpr char kGlobalFlagsHelp[] =
    "global flags:\n"
    "  --json                    machine-readable JSON results on stdout\n"
    "  --threads=N               worker threads (1 = serial, 0 = all "
    "hardware threads);\n"
    "                            results are bit-identical for every "
    "setting\n"
    "  --metric=haversine|euclidean\n"
    "                            ground distance (default haversine, "
    "meters)\n"
    "  --simplify-tolerance=M    Douglas-Peucker simplify every input at "
    "ingest\n"
    "  --help                    print usage (global or per command)\n";

int Usage(std::FILE* stream) {
  std::fprintf(
      stream,
      "fmotif — trajectory motif discovery under the discrete Fréchet "
      "distance\n"
      "(Tang et al., EDBT 2017)\n"
      "\n"
      "usage: fmotif <command> [<files>] [--flags]\n"
      "\n"
      "commands:\n"
      "  motif    <file>            best motif pair within one trajectory\n"
      "  stream   <file|->          maintain the motif over a live sliding "
      "window\n"
      "  fleet    <file>...|-       N sliding windows over one arrival "
      "loop,\n"
      "                             with optional ε-join deltas\n"
      "  serve                      fleet engine behind a TCP line "
      "protocol\n"
      "  topk     <file>            the k best motifs, diversity-separated\n"
      "  cross    <fileA> <fileB>   best motif pair across two "
      "trajectories\n"
      "  join     <file> <file>...  all pairs with DFD <= eps\n"
      "  cluster  <file>            star-shaped subtrajectory clusters\n"
      "  stats    <file>...         descriptive trajectory statistics\n"
      "  simplify <file>            Douglas-Peucker simplification\n"
      "  gen                        synthetic dataset generation\n"
      "\n"
      "Input files are CSV (\"lat,lon[,timestamp]\"), GeoJSON LineString\n"
      "(.geojson/.json) or GeoLife PLT (.plt), chosen by extension.\n"
      "\n"
      "%s"
      "\n"
      "`fmotif <command> --help` documents the per-command flags.\n",
      kGlobalFlagsHelp);
  return stream == stdout ? kExitOk : kExitUsage;
}

int CommandUsage(std::FILE* stream, const std::string& command) {
  if (command == "motif" || command == "cross") {
    std::fprintf(
        stream,
        "usage: fmotif %s [--xi=100] [--algorithm=gtm|gtm_star|btm|brute]\n"
        "       [--tau=32] [--approx-eps=0] [--json] [--threads=N]\n"
        "\n"
        "Finds the pair of non-overlapping subtrajectories (one file) or "
        "the best\n"
        "cross-trajectory pair (two files), each spanning more than xi "
        "index\n"
        "steps, with the smallest discrete Fréchet distance. All "
        "algorithms are\n"
        "exact at --approx-eps=0 (the default); they differ in pruning "
        "power (gtm\n"
        "is the paper's fastest). --approx-eps=E trades accuracy for "
        "speed: the\n"
        "reported distance is at most (1+E) times the optimum (brute "
        "ignores E).\n",
        command == "motif" ? "motif <file>" : "cross <fileA> <fileB>");
  } else if (command == "stream") {
    std::fprintf(
        stream,
        "usage: fmotif stream <file|-> [--window=512] [--slide=32] "
        "[--xi=100]\n"
        "       [--approx-eps=0] [--state-dir=DIR] [--checkpoint=N] "
        "[--json]\n"
        "       [--threads=N]\n"
        "\n"
        "Feeds a trajectory point stream through the incremental "
        "sliding-window\n"
        "motif engine and emits one report per slide: the motif of the "
        "last\n"
        "--window points, re-derived every --slide arrivals without "
        "rebuilding\n"
        "state (ring-buffer distance matrix, incrementally maintained "
        "bounds,\n"
        "threshold carried across slides). Each answer's distance is "
        "exactly\n"
        "what a from-scratch `fmotif motif --algorithm=btm` would report "
        "on the\n"
        "same window. --approx-eps=E relaxes each per-window answer to at "
        "most\n"
        "(1+E) times that window's optimum (never compounding across "
        "slides).\n"
        "\n"
        "CSV input is consumed line by line; pass `-` to tail stdin (e.g.\n"
        "`tail -f live.csv | fmotif stream -`). GeoJSON/PLT files are "
        "replayed\n"
        "point by point. With --json, one JSON report per slide plus a "
        "final\n"
        "summary document go to stdout.\n"
        "\n"
        "--state-dir=DIR makes the run durable: engine state is "
        "checkpointed\n"
        "and journaled there (rotating a snapshot every --checkpoint=N\n"
        "records), and a restart recovers the window and resumes. SIGINT/\n"
        "SIGTERM end the feed cleanly: the summary is still flushed and "
        "the\n"
        "journal synced before exit.\n");
  } else if (command == "fleet") {
    std::fprintf(
        stream,
        "usage: fmotif fleet <file>... | - [--window=512] [--slide=32] "
        "[--xi=100]\n"
        "       [--approx-eps=0] [--members=SPEC] [--eps=M] [--reorder=K]\n"
        "       [--budget=K] [--state-dir=DIR] [--checkpoint=N] [--json]\n"
        "       [--threads=N]\n"
        "\n"
        "Maintains one sliding-window motif per input stream behind a "
        "single\n"
        "arrival loop, scheduler and worker pool (MotifFleetEngine). Each "
        "file\n"
        "is one stream, ingested round-robin; pass `-` to multiplex stdin\n"
        "instead, one point per line as `stream,lat,lon[,timestamp]` "
        "(stream\n"
        "ids are dense integers from 0; new ids add streams on the fly).\n"
        "\n"
        "Every slide report is bit-identical to an independent `fmotif "
        "stream`\n"
        "on that stream. --eps additionally maintains the DFD ε-join "
        "across\n"
        "the fleet's windows and reports per-slide join deltas (stream "
        "pairs\n"
        "entering/leaving ε). --reorder=K buffers up to K timestamped "
        "points\n"
        "per stream to fix out-of-order feeds (late arrivals below the\n"
        "watermark are dropped and counted). --budget=K caps searches per\n"
        "drain — a backlogged window coalesces its pending slides.\n"
        "\n"
        "--members=SPEC declares a heterogeneous fleet up front: a comma-\n"
        "separated list of member specs, `s` (one sliding window) or `x` "
        "(one\n"
        "cross-trajectory window pair, consuming the next two stream "
        "ids),\n"
        "each optionally suffixed `:E` to override --approx-eps for that\n"
        "member — e.g. --members=s,x:0.05,s:0.1. Rows (or files) feed "
        "stream\n"
        "ids in declaration order; ids past the declared set add default\n"
        "streams on the fly. Requires the in-memory engine (no "
        "--state-dir).\n"
        "\n"
        "--state-dir=DIR journals every released batch and rotates "
        "snapshots\n"
        "(every --checkpoint=N records); a restart recovers the fleet "
        "and\n"
        "resumes. SIGINT/SIGTERM end the feed cleanly: the summary is "
        "still\n"
        "flushed and the journal synced before exit.\n");
  } else if (command == "serve") {
    std::fprintf(
        stream,
        "usage: fmotif serve [--port=0] [--bind=127.0.0.1] [--window=512]\n"
        "       [--slide=32] [--xi=100] [--approx-eps=0] [--eps=M] "
        "[--reorder=K]\n"
        "       [--budget=K] [--state-dir=DIR] [--checkpoint=N] "
        "[--max-conns=64]\n"
        "       [--idle-timeout-ms=MS] [--max-runtime-ms=MS] [--json]\n"
        "       [--threads=N]\n"
        "\n"
        "Runs the fleet engine behind a TCP line protocol. Clients send "
        "one\n"
        "`stream,lat,lon[,timestamp]` row per line (the fleet stdin "
        "dialect;\n"
        "new ids add streams on the fly) plus commands `SUB "
        "reports|join|all`,\n"
        "`UNSUB`, `PING`, `STATS`, `QUIT`; the server pushes per-slide\n"
        "reports and ε-join deltas to subscribers as newline-delimited\n"
        "single-line JSON frames. `--port=0` picks a free port; the "
        "resolved\n"
        "address is printed to stderr as `listening on HOST:PORT`.\n"
        "\n"
        "The server is robustness-first: malformed, oversized, or torn\n"
        "lines answer with `error` frames and never kill the process; a\n"
        "slow subscriber loses oldest broadcast frames (counted and\n"
        "reported via `dropped` frames) and is evicted past a high-water\n"
        "mark; connections past --max-conns are shed with `error\n"
        "{code:\"busy\"}`; --idle-timeout-ms evicts silent peers.\n"
        "\n"
        "--state-dir=DIR journals every ingest and checkpoints on "
        "shutdown\n"
        "(rotating a snapshot every --checkpoint=N records); a restart\n"
        "recovers the fleet and resumes. SIGINT/SIGTERM drain "
        "gracefully:\n"
        "accepting stops, every subscriber queue is flushed, then the\n"
        "journal is checkpointed and synced. --max-runtime-ms drains\n"
        "automatically after a fixed runtime (0 = run until "
        "signalled).\n");
  } else if (command == "topk") {
    std::fprintf(
        stream,
        "usage: fmotif topk <file> [--k=5] [--xi=100] [--separation=xi]\n"
        "       [--approx-eps=0] [--json] [--threads=N]\n"
        "\n"
        "The k best motifs, at most one per candidate subset, pairwise\n"
        "separated by at least --separation in start-cell Chebyshev "
        "distance.\n"
        "--approx-eps=E relaxes every rank: the i-th reported distance is "
        "at\n"
        "most (1+E) times the i-th exact one.\n"
        "(`fmotif motif <file> --topk=N` is kept as a legacy alias.)\n");
  } else if (command == "join") {
    std::fprintf(
        stream,
        "usage: fmotif join <file> <file>... --eps=250 [--no-pruning]\n"
        "       [--grid] [--json] [--threads=N]\n"
        "\n"
        "DFD similarity self-join: every pair of input trajectories whose\n"
        "discrete Fréchet distance is <= eps meters (--threshold is an\n"
        "accepted alias for --eps). --grid generates candidates with a\n"
        "uniform grid index; --no-pruning forces every pair through the\n"
        "exact decision kernel.\n");
  } else if (command == "cluster") {
    std::fprintf(
        stream,
        "usage: fmotif cluster <file> [--window=100] [--stride=25]\n"
        "       [--eps=100] [--min-members=2] [--json]\n"
        "\n"
        "Greedy star-shaped clustering of sliding windows: every member\n"
        "window is within eps meters (DFD) of its cluster's reference\n"
        "window, members are pairwise non-overlapping.\n");
  } else if (command == "stats") {
    std::fprintf(stream,
                 "usage: fmotif stats <file>... [--json]\n"
                 "\n"
                 "One-pass descriptive statistics per input: path length, "
                 "sampling\n"
                 "periods, dropout events, geographic extent.\n");
  } else if (command == "simplify") {
    std::fprintf(
        stream,
        "usage: fmotif simplify <file> --tolerance=10 --out=<file> "
        "[--json]\n"
        "\n"
        "Douglas-Peucker simplification with the given tolerance in "
        "meters.\n"
        "The output format follows the --out extension (CSV, .geojson, "
        ".plt).\n");
  } else if (command == "gen") {
    std::fprintf(
        stream,
        "usage: fmotif gen [--kind=geolife|truck|baboon] [--n=5000] "
        "[--seed=42]\n"
        "       [--out=<file>] [--json]\n"
        "\n"
        "Generates a synthetic trajectory emulating one of the paper's "
        "three\n"
        "datasets. Deterministic per seed. Without --out, CSV rows go to\n"
        "stdout; with --out, the extension picks CSV/GeoJSON/PLT. --json\n"
        "(requires --out) prints a generation summary instead of data.\n");
  } else {
    return Usage(stream);
  }
  if (stream == stderr) {
    std::fprintf(stream, "\n%s", kGlobalFlagsHelp);
  }
  return stream == stdout ? kExitOk : kExitUsage;
}

int Fail(const fm::Status& status) {
  std::fprintf(stderr, "fmotif: %s\n", status.ToString().c_str());
  return kExitError;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Reads `path` in the format its extension names (PLT, GeoJSON, CSV).
fm::StatusOr<fm::Trajectory> LoadRaw(const std::string& path) {
  if (HasSuffix(path, ".plt")) return fm::ReadPlt(path);
  if (HasSuffix(path, ".geojson") || HasSuffix(path, ".json")) {
    return fm::ReadGeoJson(path);
  }
  return fm::ReadCsv(path);
}

/// Ingest: format by extension, then the optional global
/// --simplify-tolerance pass.
fm::StatusOr<fm::Trajectory> Load(const std::string& path,
                                  const fm::Flags& flags) {
  fm::StatusOr<fm::Trajectory> t = LoadRaw(path);
  if (!t.ok()) return t;
  if (flags.Has("simplify-tolerance")) {
    return SimplifyDouglasPeucker(t.value(),
                                  flags.GetDouble("simplify-tolerance", 0.0));
  }
  return t;
}

/// Egress: format by extension (CSV unless .geojson/.json/.plt).
fm::Status Save(const fm::Trajectory& t, const std::string& path) {
  if (HasSuffix(path, ".plt")) return fm::WritePlt(t, path);
  if (HasSuffix(path, ".geojson") || HasSuffix(path, ".json")) {
    return fm::WriteGeoJson(t, path);
  }
  return fm::WriteCsv(t, path);
}

const fm::GroundMetric& Metric(const fm::Flags& flags) {
  return flags.GetString("metric", "haversine") == "euclidean"
             ? fm::Euclidean()
             : fm::Haversine();
}

int Threads(const fm::Flags& flags) {
  return static_cast<int>(flags.GetInt("threads", 1));
}

/// Shared --approx-eps handling for every motif-reporting command. 0 (the
/// default) keeps the search exact; E > 0 allows the reported distance to
/// exceed the optimum by a factor of at most (1+E).
double ApproxEps(const fm::Flags& flags) {
  return flags.GetDouble("approx-eps", 0.0);
}

// The long-running commands (stream, fleet) convert SIGINT/SIGTERM into a
// clean end-of-feed: the ingest loop stops, the end-of-run summary is
// flushed, and a durable run commits its final journal sync — an operator
// interrupt must not lose the last window's report.
volatile std::sig_atomic_t g_interrupted = 0;

void OnInterrupt(int) { g_interrupted = 1; }

void InstallInterruptHandlers() {
  g_interrupted = 0;
  struct sigaction sa = {};
  sa.sa_handler = OnInterrupt;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read returns EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

/// Reads one feed line for the live-tail loops (stream/fleet stdin).
///
/// std::getline already delivers a final unterminated row (eofbit
/// without failbit), so EOF-without-newline ingests like any other row.
/// The subtle case is a read torn mid-line: the interrupt handlers
/// install without SA_RESTART, so SIGINT/SIGTERM during a blocked stdin
/// read makes the stream report end-of-feed with only the row's prefix
/// extracted — and a truncated coordinate ("39.1" torn from
/// "39.123456") parses as a valid, wrong point that a durable run would
/// journal. stdio keeps the distinction the iostream loses: a torn read
/// sets ferror(stdin), a real end of feed sets feof(stdin). Torn reads
/// resume until the row completes; once the interrupt flag is up the
/// torn prefix is dropped and the feed ends at the last complete row.
bool ReadFeedLine(std::istream& in, bool from_stdin, std::string* line) {
  line->clear();
  std::string chunk;
  while (true) {
    const bool got = static_cast<bool>(std::getline(in, chunk));
    line->append(chunk);
    if (got && !in.eof()) return true;  // complete, terminated row
    const bool torn =
        from_stdin && std::ferror(stdin) != 0 && std::feof(stdin) == 0;
    if (!torn) return got || !line->empty();  // real EOF (maybe final row)
    if (g_interrupted) return false;  // drop the torn prefix
    std::clearerr(stdin);             // EINTR: resume mid-row
    in.clear();
  }
}

/// Shared --state-dir/--checkpoint handling for stream and fleet.
fm::DurableOptions DurableConfig(const fm::Flags& flags) {
  fm::DurableOptions durable;
  durable.state_dir = flags.GetString("state-dir", "");
  durable.checkpoint_interval_records =
      static_cast<std::uint64_t>(flags.GetInt("checkpoint", 1024));
  return durable;
}

void PrintRecoveryNote(const fm::DurableFleet& fleet) {
  const fm::RecoveryInfo& r = fleet.recovery();
  if (!r.restored_snapshot && r.replayed_records == 0) return;
  std::fprintf(stderr,
               "recovered: snapshot=%s, replayed %llu journal records, "
               "%zu streams\n",
               r.restored_snapshot ? "yes" : "no",
               static_cast<unsigned long long>(r.replayed_records),
               fleet.stream_count());
}

fm::MotifAlgorithm ParseAlgorithm(const std::string& name) {
  if (name == "brute") return fm::MotifAlgorithm::kBruteDp;
  if (name == "btm") return fm::MotifAlgorithm::kBtm;
  if (name == "gtm_star") return fm::MotifAlgorithm::kGtmStar;
  return fm::MotifAlgorithm::kGtm;
}

// --- JSON helpers -----------------------------------------------------------

void JsonRange(fm::JsonWriter* w, const fm::SubtrajectoryRef& ref) {
  w->BeginObject();
  w->Key("start");
  w->Int(ref.first);
  w->Key("end");
  w->Int(ref.last);
  w->EndObject();
}

void JsonMotifResult(fm::JsonWriter* w, const fm::Trajectory& s,
                     const fm::MotifResult& r) {
  w->BeginObject();
  w->Key("found");
  w->Bool(r.found);
  w->Key("distance_m");
  w->Double(r.distance);
  w->Key("first");
  JsonRange(w, r.first());
  w->Key("second");
  JsonRange(w, r.second());
  if (s.has_timestamps() && r.found) {
    w->Key("first_time_s");
    w->BeginArray();
    w->Double(s.timestamp(r.best.i));
    w->Double(s.timestamp(r.best.ie));
    w->EndArray();
    w->Key("second_time_s");
    w->BeginArray();
    w->Double(s.timestamp(r.best.j));
    w->Double(s.timestamp(r.best.je));
    w->EndArray();
  }
  w->EndObject();
}

void JsonMotifStats(fm::JsonWriter* w, const fm::MotifStats& stats) {
  w->BeginObject();
  w->Key("total_subsets");
  w->Int(stats.total_subsets);
  w->Key("pruned_subsets");
  w->Int(stats.pruned_total());
  w->Key("pruning_ratio");
  w->Double(stats.pruning_ratio());
  w->Key("subsets_evaluated");
  w->Int(stats.subsets_evaluated);
  w->Key("dfd_cells_computed");
  w->Int(stats.dfd_cells_computed);
  w->Key("precompute_seconds");
  w->Double(stats.precompute_seconds);
  w->Key("search_seconds");
  w->Double(stats.search_seconds);
  w->EndObject();
}

void PrintJson(const fm::JsonWriter& w) {
  std::fputs(w.str().c_str(), stdout);
}

// --- subcommands ------------------------------------------------------------

void PrintMotifText(const fm::Trajectory& s, const fm::MotifResult& r,
                    int rank) {
  std::printf("#%d  S[%d..%d] ~ S[%d..%d]  DFD=%.2f m", rank, r.best.i,
              r.best.ie, r.best.j, r.best.je, r.distance);
  if (s.has_timestamps()) {
    std::printf("  t1=[%.0f..%.0f] t2=[%.0f..%.0f]", s.timestamp(r.best.i),
                s.timestamp(r.best.ie), s.timestamp(r.best.j),
                s.timestamp(r.best.je));
  }
  std::printf("\n");
}

int RunMotif(const fm::Flags& flags) {
  if (flags.positional().size() != 2) return CommandUsage(stderr, "motif");
  const std::string& path = flags.positional()[1];
  fm::StatusOr<fm::Trajectory> t = Load(path, flags);
  if (!t.ok()) return Fail(t.status());

  fm::FindMotifOptions options;
  options.min_length_xi = static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.group_size_tau = static_cast<fm::Index>(flags.GetInt("tau", 32));
  options.algorithm = ParseAlgorithm(flags.GetString("algorithm", "gtm"));
  options.threads = Threads(flags);
  options.approximation_epsilon = ApproxEps(flags);
  fm::MotifStats stats;
  fm::StatusOr<fm::MotifResult> r =
      FindMotif(t.value(), Metric(flags), options, &stats);
  if (!r.ok()) return Fail(r.status());

  if (flags.GetBool("json", false)) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("motif");
    w.Key("input");
    w.String(path);
    w.Key("points");
    w.Int(t.value().size());
    w.Key("options");
    w.BeginObject();
    w.Key("xi");
    w.Int(options.min_length_xi);
    w.Key("tau");
    w.Int(options.group_size_tau);
    w.Key("algorithm");
    w.String(AlgorithmName(options.algorithm));
    w.Key("approx_eps");
    w.Double(options.approximation_epsilon);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.threads);
    w.EndObject();
    w.Key("result");
    JsonMotifResult(&w, t.value(), r.value());
    w.Key("stats");
    JsonMotifStats(&w, stats);
    w.EndObject();
    PrintJson(w);
  } else {
    PrintMotifText(t.value(), r.value(), 1);
    std::printf("%s\n", stats.ToString().c_str());
  }
  return kExitOk;
}

void PrintStreamUpdateJson(const fm::StreamUpdate& u) {
  fm::JsonWriter w;
  w.BeginObject();
  w.Key("window_start");
  w.Int(u.window_start);
  w.Key("window_points");
  w.Int(u.window_points);
  w.Key("seeded");
  w.Bool(u.seeded);
  w.Key("carried");
  w.Bool(u.carried);
  w.Key("approx_eps");
  w.Double(u.approximation_epsilon);
  w.Key("result");
  w.BeginObject();
  w.Key("found");
  w.Bool(u.motif.found);
  w.Key("distance_m");
  w.Double(u.motif.distance);
  w.Key("first");
  JsonRange(&w, u.motif.first());
  w.Key("second");
  JsonRange(&w, u.motif.second());
  w.EndObject();
  w.Key("stats");
  w.BeginObject();
  w.Key("total_subsets");
  w.Int(u.stats.total_subsets);
  w.Key("pruned_subsets");
  w.Int(u.stats.pruned_total());
  w.Key("subsets_evaluated");
  w.Int(u.stats.subsets_evaluated);
  w.Key("dfd_cells_computed");
  w.Int(u.stats.dfd_cells_computed);
  w.EndObject();
  w.EndObject();
  PrintJson(w);
}

void PrintStreamUpdateText(const fm::StreamUpdate& u) {
  std::printf("@%lld  S[%d..%d] ~ S[%d..%d]  DFD=%.2f m  %s%scells=%lld\n",
              static_cast<long long>(u.window_start), u.motif.best.i,
              u.motif.best.ie, u.motif.best.j, u.motif.best.je,
              u.motif.distance, u.seeded ? "seeded " : "cold ",
              u.carried ? "carried " : "",
              static_cast<long long>(u.stats.dfd_cells_computed));
  std::fflush(stdout);
}

int RunStream(const fm::Flags& flags) {
  if (flags.positional().size() != 2) return CommandUsage(stderr, "stream");
  const std::string& path = flags.positional()[1];
  const bool json = flags.GetBool("json", false);
  InstallInterruptHandlers();

  fm::StreamOptions options;
  options.window_length =
      static_cast<fm::Index>(flags.GetInt("window", options.window_length));
  options.slide_step =
      static_cast<fm::Index>(flags.GetInt("slide", options.slide_step));
  options.min_length_xi = static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.threads = Threads(flags);
  options.approximation_epsilon = ApproxEps(flags);

  // --state-dir routes the single stream through a one-stream
  // DurableFleet (journal + snapshots + recovery); otherwise the plain
  // in-memory monitor runs. Reports are bit-identical either way.
  const fm::DurableOptions durable = DurableConfig(flags);
  std::optional<fm::StreamingMotifMonitor> monitor;
  std::optional<fm::DurableFleet> fleet;
  if (durable.state_dir.empty()) {
    fm::StatusOr<fm::StreamingMotifMonitor> created =
        fm::StreamingMotifMonitor::Create(options, Metric(flags));
    if (!created.ok()) return Fail(created.status());
    monitor.emplace(std::move(created).value());
  } else {
    fm::FleetOptions fleet_options;
    fleet_options.stream = options;
    fm::StatusOr<fm::DurableFleet> opened =
        fm::DurableFleet::Open(fleet_options, Metric(flags), durable);
    if (!opened.ok()) return Fail(opened.status());
    fleet.emplace(std::move(opened).value());
    PrintRecoveryNote(*fleet);
    if (fleet->stream_count() == 0) {
      const fm::StatusOr<std::size_t> added = fleet->AddStream();
      if (!added.ok()) return Fail(added.status());
    }
  }

  std::int64_t slides = 0;
  const auto emit = [&](const fm::StreamUpdate& u) {
    ++slides;
    if (json) {
      PrintStreamUpdateJson(u);
    } else {
      PrintStreamUpdateText(u);
    }
  };
  const auto push = [&](const fm::Point& p, const double* ts) -> fm::Status {
    if (monitor.has_value()) {
      fm::StatusOr<std::optional<fm::StreamUpdate>> update =
          ts != nullptr ? monitor->Push(p, *ts) : monitor->Push(p);
      if (!update.ok()) return update.status();
      if (update.value().has_value()) emit(*update.value());
      return fm::Status::Ok();
    }
    fm::StatusOr<fm::FleetReport> report =
        ts != nullptr ? fleet->Push(0, p, *ts) : fleet->Push(0, p);
    if (!report.ok()) return report.status();
    for (const fm::FleetStreamUpdate& fu : report.value().updates) {
      emit(fu.update);
    }
    return fm::Status::Ok();
  };

  const bool from_stdin = path == "-";
  const bool csv = from_stdin || !(HasSuffix(path, ".plt") ||
                                   HasSuffix(path, ".geojson") ||
                                   HasSuffix(path, ".json"));
  if (csv) {
    // Line-at-a-time ingestion: this is the live-tail path, so rows are
    // pushed as they arrive rather than buffered into a Trajectory.
    std::ifstream file;
    if (!from_stdin) {
      file.open(path);
      if (!file) {
        return Fail(fm::Status::IoError("cannot open for reading: " + path));
      }
    }
    std::istream& in = from_stdin ? std::cin : file;
    std::string line;
    std::size_t line_no = 0;
    while (!g_interrupted && ReadFeedLine(in, from_stdin, &line)) {
      ++line_no;
      double lat = 0.0;
      double lon = 0.0;
      double ts = 0.0;
      bool has_ts = false;
      switch (fm::ParseCsvPointRow(line, &lat, &lon, &ts, &has_ts)) {
        case fm::CsvRow::kBlank:
          continue;
        case fm::CsvRow::kMalformed:
          if (line_no == 1) continue;  // header row
          return Fail(fm::Status::InvalidArgument(
              "malformed CSV row " + std::to_string(line_no)));
        case fm::CsvRow::kMalformedTimestamp:
          return Fail(fm::Status::InvalidArgument(
              "malformed timestamp on row " + std::to_string(line_no)));
        case fm::CsvRow::kPoint:
          break;
      }
      const fm::Status pushed =
          push(fm::LatLon(lat, lon), has_ts ? &ts : nullptr);
      if (!pushed.ok()) return Fail(pushed);
    }
  } else {
    fm::StatusOr<fm::Trajectory> t = LoadRaw(path);
    if (!t.ok()) return Fail(t.status());
    const bool timed = t.value().has_timestamps();
    for (fm::Index i = 0; !g_interrupted && i < t.value().size(); ++i) {
      const double ts = timed ? t.value().timestamp(i) : 0.0;
      const fm::Status pushed = push(t.value()[i], timed ? &ts : nullptr);
      if (!pushed.ok()) return Fail(pushed);
    }
  }

  if (fleet.has_value()) {
    // End of feed (or interrupt): release any reorder-buffered points,
    // then force the journal tail to stable storage — the operator must
    // never lose an already-reported window to an interrupt.
    fm::StatusOr<fm::FleetReport> flushed = fleet->Flush();
    if (!flushed.ok()) return Fail(flushed.status());
    for (const fm::FleetStreamUpdate& fu : flushed.value().updates) {
      emit(fu.update);
    }
    const fm::Status synced = fleet->Sync();
    if (!synced.ok()) return Fail(synced);
  }
  if (g_interrupted) {
    std::fprintf(stderr, "interrupted: flushing summary\n");
  }

  fm::StreamEngineStats engine;
  if (monitor.has_value()) {
    engine = monitor->engine_stats();
  } else {
    const fm::FleetStats stats = fleet->stats();
    engine.points_ingested = stats.points_ingested;
    engine.searches = stats.searches;
    engine.seeded_searches = stats.seeded_searches;
    engine.ground_distances_computed = stats.ground_distances_computed;
    engine.dfd_cells_computed = stats.dfd_cells_computed;
  }
  if (json) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("stream");
    w.Key("input");
    w.String(path);
    w.Key("options");
    w.BeginObject();
    w.Key("window");
    w.Int(options.window_length);
    w.Key("slide");
    w.Int(options.slide_step);
    w.Key("xi");
    w.Int(options.min_length_xi);
    w.Key("approx_eps");
    w.Double(options.approximation_epsilon);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.threads);
    w.EndObject();
    w.Key("points_ingested");
    w.Int(engine.points_ingested);
    w.Key("slides");
    w.Int(slides);
    w.Key("seeded_searches");
    w.Int(engine.seeded_searches);
    w.Key("ground_distances_computed");
    w.Int(engine.ground_distances_computed);
    w.Key("dfd_cells_computed");
    w.Int(engine.dfd_cells_computed);
    // Optional keys only: the default schema (and its goldens) is
    // unchanged unless the run was durable or interrupted.
    if (fleet.has_value()) {
      // The durable path routes through an IngestFrontend, so its
      // late-arrival and reorder-occupancy counters are observable here
      // (the plain monitor path has no reorder stage).
      const fm::FleetStats fleet_stats = fleet->stats();
      w.Key("reordered");
      w.Int(fleet_stats.reordered);
      w.Key("late_dropped");
      w.Int(fleet_stats.late_dropped);
      w.Key("reorder_buffered_peak");
      w.Int(fleet_stats.reorder_buffered_peak);
      w.Key("durable");
      w.BeginObject();
      w.Key("state_dir");
      w.String(durable.state_dir);
      w.Key("generation");
      w.Int(static_cast<std::int64_t>(fleet->generation()));
      w.Key("restored_snapshot");
      w.Bool(fleet->recovery().restored_snapshot);
      w.Key("replayed_records");
      w.Int(static_cast<std::int64_t>(fleet->recovery().replayed_records));
      w.EndObject();
    }
    if (g_interrupted) {
      w.Key("interrupted");
      w.Bool(true);
    }
    w.EndObject();
    PrintJson(w);
  } else {
    std::printf(
        "%lld points, %lld slides (%lld seeded), %lld ground distances, "
        "%lld DFD cells\n",
        static_cast<long long>(engine.points_ingested),
        static_cast<long long>(slides),
        static_cast<long long>(engine.seeded_searches),
        static_cast<long long>(engine.ground_distances_computed),
        static_cast<long long>(engine.dfd_cells_computed));
  }
  return kExitOk;
}

void PrintFleetUpdateJson(const fm::FleetStreamUpdate& fu) {
  const fm::StreamUpdate& u = fu.update;
  fm::JsonWriter w;
  w.BeginObject();
  w.Key("stream");
  w.Int(static_cast<std::int64_t>(fu.stream));
  w.Key("window_start");
  w.Int(u.window_start);
  w.Key("window_points");
  w.Int(u.window_points);
  w.Key("seeded");
  w.Bool(u.seeded);
  w.Key("carried");
  w.Bool(u.carried);
  w.Key("approx_eps");
  w.Double(u.approximation_epsilon);
  w.Key("result");
  w.BeginObject();
  w.Key("found");
  w.Bool(u.motif.found);
  w.Key("distance_m");
  w.Double(u.motif.distance);
  w.Key("first");
  JsonRange(&w, u.motif.first());
  w.Key("second");
  JsonRange(&w, u.motif.second());
  w.EndObject();
  w.Key("dfd_cells_computed");
  w.Int(u.stats.dfd_cells_computed);
  w.EndObject();
  PrintJson(w);
}

void PrintJoinDeltaJson(const fm::JoinDelta& delta) {
  fm::JsonWriter w;
  w.BeginObject();
  w.Key("join_delta");
  w.BeginObject();
  for (const auto* side : {&delta.entered, &delta.left}) {
    w.Key(side == &delta.entered ? "entered" : "left");
    w.BeginArray();
    for (const fm::JoinPair& p : *side) {
      w.BeginArray();
      w.Int(static_cast<std::int64_t>(p.li));
      w.Int(static_cast<std::int64_t>(p.ri));
      w.EndArray();
    }
    w.EndArray();
  }
  w.EndObject();
  w.EndObject();
  PrintJson(w);
}

void PrintFleetReport(const fm::FleetReport& report, bool json,
                      std::int64_t* slides) {
  *slides += static_cast<std::int64_t>(report.updates.size());
  for (const fm::FleetStreamUpdate& fu : report.updates) {
    if (json) {
      PrintFleetUpdateJson(fu);
      continue;
    }
    const fm::StreamUpdate& u = fu.update;
    std::printf(
        "s%zu @%lld  S[%d..%d] ~ S[%d..%d]  DFD=%.2f m  %s%scells=%lld\n",
        fu.stream, static_cast<long long>(u.window_start), u.motif.best.i,
        u.motif.best.ie, u.motif.best.j, u.motif.best.je, u.motif.distance,
        u.seeded ? "seeded " : "cold ", u.carried ? "carried " : "",
        static_cast<long long>(u.stats.dfd_cells_computed));
  }
  if (!report.join_delta.empty()) {
    if (json) {
      PrintJoinDeltaJson(report.join_delta);
    } else {
      std::printf("join");
      for (const fm::JoinPair& p : report.join_delta.entered) {
        std::printf(" +s%zu~s%zu", p.li, p.ri);
      }
      for (const fm::JoinPair& p : report.join_delta.left) {
        std::printf(" -s%zu~s%zu", p.li, p.ri);
      }
      std::printf("\n");
    }
  }
  if (!json) std::fflush(stdout);
}

/// Parses a multiplexed stdin row `stream,lat,lon[,timestamp]`. The grammar
/// lives in data/io.h (ParseFleetCsvRow) — `fmotif serve` speaks the same
/// dialect over TCP, so both front ends share one parser.
fm::CsvRow ParseFleetRow(const std::string& line, std::size_t* stream,
                         double* lat, double* lon, double* ts, bool* has_ts) {
  return fm::ParseFleetCsvRow(line, stream, lat, lon, ts, has_ts);
}

/// One --members token: `s` (single sliding window) or `x` (cross-trajectory
/// window pair), optionally suffixed `:eps` to override --approx-eps for
/// that member alone.
struct FleetMemberSpec {
  bool cross = false;
  bool has_eps = false;
  double eps = 0.0;
};

fm::StatusOr<std::vector<FleetMemberSpec>> ParseFleetMembers(
    const std::string& spec) {
  std::vector<FleetMemberSpec> members;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    if (token.empty()) {
      return fm::Status::InvalidArgument("--members: empty member spec");
    }
    FleetMemberSpec m;
    if (token[0] == 'x') {
      m.cross = true;
    } else if (token[0] != 's') {
      return fm::Status::InvalidArgument(
          "--members: member spec must start with 's' or 'x': \"" + token +
          "\"");
    }
    if (token.size() > 1) {
      if (token[1] != ':' || token.size() == 2) {
        return fm::Status::InvalidArgument(
            "--members: expected s[:eps] or x[:eps], got \"" + token + "\"");
      }
      const std::string eps_text = token.substr(2);
      char* end = nullptr;
      m.eps = std::strtod(eps_text.c_str(), &end);
      if (end == nullptr || *end != '\0' || !(m.eps >= 0.0)) {
        return fm::Status::InvalidArgument(
            "--members: malformed eps in \"" + token + "\"");
      }
      m.has_eps = true;
    }
    members.push_back(m);
    if (comma == spec.size()) break;
    pos = comma + 1;
  }
  if (members.empty()) {
    return fm::Status::InvalidArgument("--members: no member specs");
  }
  return members;
}

int RunFleet(const fm::Flags& flags) {
  if (flags.positional().size() < 2) return CommandUsage(stderr, "fleet");
  const bool json = flags.GetBool("json", false);
  const bool from_stdin =
      flags.positional().size() == 2 && flags.positional()[1] == "-";
  InstallInterruptHandlers();

  fm::FleetOptions options;
  options.stream.window_length = static_cast<fm::Index>(
      flags.GetInt("window", options.stream.window_length));
  options.stream.slide_step =
      static_cast<fm::Index>(flags.GetInt("slide", options.stream.slide_step));
  options.stream.min_length_xi =
      static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.stream.threads = Threads(flags);
  options.stream.approximation_epsilon = ApproxEps(flags);
  if (flags.Has("eps")) options.join_epsilon = flags.GetDouble("eps", 250.0);
  options.reorder_capacity =
      static_cast<fm::Index>(flags.GetInt("reorder", 0));
  options.max_searches_per_drain =
      static_cast<int>(flags.GetInt("budget", 0));

  // --state-dir swaps the in-memory engine for a DurableFleet; every
  // mutation below goes through the dispatch lambdas so both paths share
  // one ingest loop.
  const fm::DurableOptions durable_config = DurableConfig(flags);
  std::optional<fm::MotifFleetEngine> plain;
  std::optional<fm::DurableFleet> durable;
  if (durable_config.state_dir.empty()) {
    fm::StatusOr<fm::MotifFleetEngine> created =
        fm::MotifFleetEngine::Create(options, Metric(flags));
    if (!created.ok()) return Fail(created.status());
    plain.emplace(std::move(created).value());
  } else {
    fm::StatusOr<fm::DurableFleet> opened =
        fm::DurableFleet::Open(options, Metric(flags), durable_config);
    if (!opened.ok()) return Fail(opened.status());
    durable.emplace(std::move(opened).value());
    PrintRecoveryNote(*durable);
  }
  const fm::MotifFleetEngine& view =
      durable.has_value() ? durable->engine() : *plain;
  const auto add_stream = [&]() -> fm::StatusOr<std::size_t> {
    return durable.has_value() ? durable->AddStream() : plain->AddStream();
  };
  const auto ingest =
      [&](const std::vector<fm::FleetArrival>& batch)
      -> fm::StatusOr<fm::FleetReport> {
    return durable.has_value() ? durable->Ingest(batch)
                               : plain->Ingest(batch);
  };

  // --members pre-registers a heterogeneous fleet (per-member ε, cross
  // pairs). The durable journal only replays default single-stream
  // AddStream records, so the flag requires the in-memory engine.
  const std::string members_spec = flags.GetString("members", "");
  if (!members_spec.empty()) {
    if (durable.has_value()) {
      return Fail(fm::Status::InvalidArgument(
          "--members requires the in-memory engine (drop --state-dir)"));
    }
    fm::StatusOr<std::vector<FleetMemberSpec>> members =
        ParseFleetMembers(members_spec);
    if (!members.ok()) return Fail(members.status());
    for (const FleetMemberSpec& m : members.value()) {
      fm::StreamOptions member_options = options.stream;
      if (m.has_eps) member_options.approximation_epsilon = m.eps;
      if (m.cross) {
        const fm::StatusOr<std::pair<std::size_t, std::size_t>> added =
            plain->AddCrossPair(member_options);
        if (!added.ok()) return Fail(added.status());
      } else {
        const fm::StatusOr<std::size_t> added =
            plain->AddStream(member_options);
        if (!added.ok()) return Fail(added.status());
      }
    }
  }

  std::int64_t slides = 0;
  if (from_stdin) {
    // Multiplexed live tail: one `stream,lat,lon[,ts]` row per line, new
    // stream ids registering streams on the fly.
    constexpr std::size_t kMaxStreams = 4096;
    std::string line;
    std::size_t line_no = 0;
    while (!g_interrupted && ReadFeedLine(std::cin, /*from_stdin=*/true,
                                          &line)) {
      ++line_no;
      std::size_t stream = 0;
      double lat = 0.0;
      double lon = 0.0;
      double ts = 0.0;
      bool has_ts = false;
      switch (ParseFleetRow(line, &stream, &lat, &lon, &ts, &has_ts)) {
        case fm::CsvRow::kBlank:
          continue;
        case fm::CsvRow::kMalformed:
          if (line_no == 1) continue;  // header row
          return Fail(fm::Status::InvalidArgument(
              "malformed fleet row " + std::to_string(line_no) +
              " (expected stream,lat,lon[,timestamp])"));
        case fm::CsvRow::kMalformedTimestamp:
          return Fail(fm::Status::InvalidArgument(
              "malformed timestamp on row " + std::to_string(line_no)));
        case fm::CsvRow::kPoint:
          break;
      }
      if (stream >= kMaxStreams) {
        return Fail(fm::Status::InvalidArgument(
            "fleet stream id out of range on row " + std::to_string(line_no)));
      }
      while (stream >= view.stream_count()) {
        const fm::StatusOr<std::size_t> added = add_stream();
        if (!added.ok()) return Fail(added.status());
      }
      fm::FleetArrival arrival;
      arrival.stream = stream;
      arrival.point = fm::LatLon(lat, lon);
      arrival.has_timestamp = has_ts;
      arrival.timestamp = has_ts ? ts : 0.0;
      fm::StatusOr<fm::FleetReport> report = ingest({arrival});
      if (!report.ok()) return Fail(report.status());
      PrintFleetReport(report.value(), json, &slides);
    }
  } else {
    // One file per stream, replayed round-robin through one arrival loop.
    // A recovered state directory already has its streams registered, so
    // only the missing ones are added.
    std::vector<fm::Trajectory> streams;
    for (std::size_t k = 1; k < flags.positional().size(); ++k) {
      fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[k], flags);
      if (!t.ok()) return Fail(t.status());
      while (view.stream_count() < k) {
        const fm::StatusOr<std::size_t> added = add_stream();
        if (!added.ok()) return Fail(added.status());
      }
      streams.push_back(std::move(t).value());
    }
    fm::Index longest = 0;
    for (const fm::Trajectory& t : streams) {
      longest = std::max(longest, t.size());
    }
    // One Ingest per slide period (slide_step round-robin rounds): the
    // engine appends the whole chunk in one tight loop and drains due
    // searches once per chunk — which is what lets --budget coalesce
    // backlogged windows instead of draining after every single point.
    // Unbudgeted reports are identical either way (the parity guard
    // runs due searches before a window slides further).
    const fm::Index chunk = options.stream.slide_step;
    for (fm::Index k0 = 0; !g_interrupted && k0 < longest; k0 += chunk) {
      std::vector<fm::FleetArrival> batch;
      for (fm::Index k = k0; k < std::min(longest, k0 + chunk); ++k) {
        for (std::size_t s = 0; s < streams.size(); ++s) {
          if (k >= streams[s].size()) continue;
          fm::FleetArrival arrival;
          arrival.stream = s;
          arrival.point = streams[s][k];
          if (streams[s].has_timestamps()) {
            arrival.has_timestamp = true;
            arrival.timestamp = streams[s].timestamp(k);
          }
          batch.push_back(arrival);
        }
      }
      fm::StatusOr<fm::FleetReport> report = ingest(batch);
      if (!report.ok()) return Fail(report.status());
      PrintFleetReport(report.value(), json, &slides);
    }
  }
  fm::StatusOr<fm::FleetReport> flushed =
      durable.has_value() ? durable->Flush() : plain->Flush();
  if (!flushed.ok()) return Fail(flushed.status());
  PrintFleetReport(flushed.value(), json, &slides);
  if (durable.has_value()) {
    const fm::Status synced = durable->Sync();
    if (!synced.ok()) return Fail(synced);
  }
  if (g_interrupted) {
    std::fprintf(stderr, "interrupted: flushing summary\n");
  }

  const fm::FleetStats stats =
      durable.has_value() ? durable->stats() : plain->stats();
  const fm::IncrementalJoinStats* join = view.join_stats();
  if (json) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("fleet");
    w.Key("options");
    w.BeginObject();
    w.Key("window");
    w.Int(options.stream.window_length);
    w.Key("slide");
    w.Int(options.stream.slide_step);
    w.Key("xi");
    w.Int(options.stream.min_length_xi);
    w.Key("approx_eps");
    w.Double(options.stream.approximation_epsilon);
    w.Key("eps_m");
    w.Double(options.join_epsilon);
    w.Key("reorder");
    w.Int(options.reorder_capacity);
    w.Key("budget");
    w.Int(options.max_searches_per_drain);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.stream.threads);
    w.EndObject();
    w.Key("streams");
    w.Int(stats.streams);
    w.Key("members");
    w.Int(static_cast<std::int64_t>(view.member_count()));
    w.Key("points_ingested");
    w.Int(stats.points_ingested);
    w.Key("slides");
    w.Int(slides);
    w.Key("seeded_searches");
    w.Int(stats.seeded_searches);
    w.Key("coalesced_slides");
    w.Int(stats.coalesced_slides);
    w.Key("reordered");
    w.Int(stats.reordered);
    w.Key("late_dropped");
    w.Int(stats.late_dropped);
    w.Key("reorder_buffered");
    w.Int(stats.reorder_buffered);
    w.Key("reorder_buffered_peak");
    w.Int(stats.reorder_buffered_peak);
    w.Key("ground_distances_computed");
    w.Int(stats.ground_distances_computed);
    w.Key("dfd_cells_computed");
    w.Int(stats.dfd_cells_computed);
    if (join != nullptr) {
      w.Key("join");
      w.BeginObject();
      w.Key("pairs_reverified");
      w.Int(join->pairs_reverified);
      w.Key("verdicts_carried");
      w.Int(join->verdicts_carried);
      w.Key("entered_total");
      w.Int(join->entered_total);
      w.Key("left_total");
      w.Int(join->left_total);
      w.Key("current_matches");
      w.Int(static_cast<std::int64_t>(
          view.CurrentJoinMatches().size()));
      w.EndObject();
    }
    w.EndObject();
    PrintJson(w);
  } else {
    std::printf(
        "%lld streams, %lld points, %lld slides (%lld seeded, %lld "
        "coalesced), %lld reordered, %lld late-dropped, %lld DFD cells\n",
        static_cast<long long>(stats.streams),
        static_cast<long long>(stats.points_ingested),
        static_cast<long long>(slides),
        static_cast<long long>(stats.seeded_searches),
        static_cast<long long>(stats.coalesced_slides),
        static_cast<long long>(stats.reordered),
        static_cast<long long>(stats.late_dropped),
        static_cast<long long>(stats.dfd_cells_computed));
    if (join != nullptr) {
      std::printf(
          "join: %lld reverified, %lld carried, +%lld -%lld, %zu current\n",
          static_cast<long long>(join->pairs_reverified),
          static_cast<long long>(join->verdicts_carried),
          static_cast<long long>(join->entered_total),
          static_cast<long long>(join->left_total),
          view.CurrentJoinMatches().size());
    }
  }
  return kExitOk;
}

int RunServe(const fm::Flags& flags) {
  if (flags.positional().size() != 1) return CommandUsage(stderr, "serve");
  const bool json = flags.GetBool("json", false);
  InstallInterruptHandlers();

  fm::ServeOptions options;
  options.fleet.stream.window_length = static_cast<fm::Index>(
      flags.GetInt("window", options.fleet.stream.window_length));
  options.fleet.stream.slide_step = static_cast<fm::Index>(
      flags.GetInt("slide", options.fleet.stream.slide_step));
  options.fleet.stream.min_length_xi =
      static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.fleet.stream.threads = Threads(flags);
  options.fleet.stream.approximation_epsilon = ApproxEps(flags);
  if (flags.Has("eps")) {
    options.fleet.join_epsilon = flags.GetDouble("eps", 250.0);
  }
  options.fleet.reorder_capacity =
      static_cast<fm::Index>(flags.GetInt("reorder", 0));
  options.fleet.max_searches_per_drain =
      static_cast<int>(flags.GetInt("budget", 0));
  options.durable = DurableConfig(flags);
  options.limits.max_connections = static_cast<int>(
      flags.GetInt("max-conns", options.limits.max_connections));
  options.limits.idle_timeout_ms =
      flags.GetInt("idle-timeout-ms", options.limits.idle_timeout_ms);

  fm::StatusOr<fm::MotifServer> server =
      fm::MotifServer::Create(options, Metric(flags));
  if (!server.ok()) return Fail(server.status());
  if (server.value().durable() != nullptr) {
    PrintRecoveryNote(*server.value().durable());
  }

  const std::string bind = flags.GetString("bind", "127.0.0.1");
  fm::StatusOr<fm::PosixListener> listener =
      fm::PosixListener::Create(bind, static_cast<int>(
                                          flags.GetInt("port", 0)));
  if (!listener.ok()) return Fail(listener.status());
  // Machine-parsable: tests and scripts discover a --port=0 allocation
  // from this line.
  std::fprintf(stderr, "listening on %s:%d\n", bind.c_str(),
               listener.value().port());
  std::fflush(stderr);

  fm::ServeLoopOptions loop;
  loop.stop = &g_interrupted;
  loop.max_runtime_ms = flags.GetInt("max-runtime-ms", 0);
  const fm::Status ran =
      fm::RunServeLoop(server.value(), listener.value(), loop);
  if (!ran.ok()) return Fail(ran);
  const fm::Status shut = server.value().Shutdown();
  if (!shut.ok()) return Fail(shut);

  const fm::ServeStats& s = server.value().stats();
  const fm::FleetStats fleet = server.value().fleet_stats();
  if (json) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("serve");
    w.Key("options");
    w.BeginObject();
    w.Key("window");
    w.Int(options.fleet.stream.window_length);
    w.Key("slide");
    w.Int(options.fleet.stream.slide_step);
    w.Key("xi");
    w.Int(options.fleet.stream.min_length_xi);
    w.Key("approx_eps");
    w.Double(options.fleet.stream.approximation_epsilon);
    w.Key("eps_m");
    w.Double(options.fleet.join_epsilon);
    w.Key("reorder");
    w.Int(options.fleet.reorder_capacity);
    w.Key("budget");
    w.Int(options.fleet.max_searches_per_drain);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.fleet.stream.threads);
    w.Key("max_conns");
    w.Int(options.limits.max_connections);
    w.EndObject();
    w.Key("accepted");
    w.Int(s.accepted);
    w.Key("rejected_busy");
    w.Int(s.rejected_busy);
    w.Key("evicted_slow");
    w.Int(s.evicted_slow);
    w.Key("evicted_idle");
    w.Int(s.evicted_idle);
    w.Key("closed_by_peer");
    w.Int(s.closed_by_peer);
    w.Key("lines_in");
    w.Int(s.lines_in);
    w.Key("points_ingested");
    w.Int(s.points_ingested);
    w.Key("parse_errors");
    w.Int(s.parse_errors);
    w.Key("oversized_lines");
    w.Int(s.oversized_lines);
    w.Key("engine_errors");
    w.Int(s.engine_errors);
    w.Key("frames_pushed");
    w.Int(s.frames_pushed);
    w.Key("frames_dropped");
    w.Int(s.frames_dropped);
    w.Key("bytes_in");
    w.Int(s.bytes_in);
    w.Key("bytes_out");
    w.Int(s.bytes_out);
    w.Key("streams");
    w.Int(fleet.streams);
    w.Key("reordered");
    w.Int(fleet.reordered);
    w.Key("late_dropped");
    w.Int(fleet.late_dropped);
    w.Key("reorder_buffered_peak");
    w.Int(fleet.reorder_buffered_peak);
    if (server.value().durable() != nullptr) {
      w.Key("durable");
      w.BeginObject();
      w.Key("state_dir");
      w.String(options.durable.state_dir);
      w.Key("generation");
      w.Int(static_cast<std::int64_t>(
          server.value().durable()->generation()));
      w.EndObject();
    }
    w.EndObject();
    PrintJson(w);
  } else {
    std::printf(
        "%lld conns (%lld shed), %lld lines, %lld points, %lld streams, "
        "%lld frames pushed (%lld dropped), %lld parse errors\n",
        static_cast<long long>(s.accepted),
        static_cast<long long>(s.rejected_busy),
        static_cast<long long>(s.lines_in),
        static_cast<long long>(s.points_ingested),
        static_cast<long long>(fleet.streams),
        static_cast<long long>(s.frames_pushed),
        static_cast<long long>(s.frames_dropped),
        static_cast<long long>(s.parse_errors));
  }
  return kExitOk;
}

int RunTopK(const fm::Flags& flags) {
  if (flags.positional().size() != 2) return CommandUsage(stderr, "topk");
  const std::string& path = flags.positional()[1];
  fm::StatusOr<fm::Trajectory> t = Load(path, flags);
  if (!t.ok()) return Fail(t.status());

  fm::TopKOptions options;
  // --topk is honored as an alias for --k: the pre-subcommand CLI spelled
  // this query `fmotif motif <file> --topk=N`, and main() still routes
  // that invocation here.
  options.k = static_cast<int>(flags.GetInt("k", flags.GetInt("topk", 5)));
  options.motif.min_length_xi = static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.motif.threads = Threads(flags);
  options.approximation_epsilon = ApproxEps(flags);
  options.min_start_separation = static_cast<fm::Index>(
      flags.GetInt("separation", options.motif.min_length_xi));
  fm::MotifStats stats;
  fm::StatusOr<std::vector<fm::MotifResult>> r =
      TopKMotifs(t.value(), Metric(flags), options, &stats);
  if (!r.ok()) return Fail(r.status());

  if (flags.GetBool("json", false)) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("topk");
    w.Key("input");
    w.String(path);
    w.Key("points");
    w.Int(t.value().size());
    w.Key("options");
    w.BeginObject();
    w.Key("k");
    w.Int(options.k);
    w.Key("xi");
    w.Int(options.motif.min_length_xi);
    w.Key("separation");
    w.Int(options.min_start_separation);
    w.Key("approx_eps");
    w.Double(options.approximation_epsilon);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.motif.threads);
    w.EndObject();
    w.Key("results");
    w.BeginArray();
    for (const fm::MotifResult& m : r.value()) {
      JsonMotifResult(&w, t.value(), m);
    }
    w.EndArray();
    w.Key("stats");
    JsonMotifStats(&w, stats);
    w.EndObject();
    PrintJson(w);
  } else {
    int rank = 1;
    for (const fm::MotifResult& m : r.value()) {
      PrintMotifText(t.value(), m, rank++);
    }
  }
  return kExitOk;
}

int RunCross(const fm::Flags& flags) {
  if (flags.positional().size() != 3) return CommandUsage(stderr, "cross");
  fm::StatusOr<fm::Trajectory> a = Load(flags.positional()[1], flags);
  if (!a.ok()) return Fail(a.status());
  fm::StatusOr<fm::Trajectory> b = Load(flags.positional()[2], flags);
  if (!b.ok()) return Fail(b.status());

  fm::FindMotifOptions options;
  options.min_length_xi = static_cast<fm::Index>(flags.GetInt("xi", 100));
  options.group_size_tau = static_cast<fm::Index>(flags.GetInt("tau", 32));
  options.algorithm = ParseAlgorithm(flags.GetString("algorithm", "gtm"));
  options.threads = Threads(flags);
  options.approximation_epsilon = ApproxEps(flags);
  fm::MotifStats stats;
  fm::StatusOr<fm::MotifResult> r =
      FindMotif(a.value(), b.value(), Metric(flags), options, &stats);
  if (!r.ok()) return Fail(r.status());
  const fm::MotifResult& m = r.value();

  if (flags.GetBool("json", false)) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("cross");
    w.Key("inputs");
    w.BeginArray();
    w.String(flags.positional()[1]);
    w.String(flags.positional()[2]);
    w.EndArray();
    w.Key("options");
    w.BeginObject();
    w.Key("xi");
    w.Int(options.min_length_xi);
    w.Key("tau");
    w.Int(options.group_size_tau);
    w.Key("algorithm");
    w.String(AlgorithmName(options.algorithm));
    w.Key("approx_eps");
    w.Double(options.approximation_epsilon);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.threads);
    w.EndObject();
    w.Key("result");
    w.BeginObject();
    w.Key("found");
    w.Bool(m.found);
    w.Key("distance_m");
    w.Double(m.distance);
    w.Key("first");
    JsonRange(&w, m.first());
    w.Key("second");
    JsonRange(&w, m.second());
    w.EndObject();
    w.Key("stats");
    JsonMotifStats(&w, stats);
    w.EndObject();
    PrintJson(w);
  } else {
    std::printf("A[%d..%d] ~ B[%d..%d]  DFD=%.2f m\n", m.best.i, m.best.ie,
                m.best.j, m.best.je, m.distance);
  }
  return kExitOk;
}

int RunJoin(const fm::Flags& flags) {
  if (flags.positional().size() < 3) return CommandUsage(stderr, "join");
  std::vector<fm::Trajectory> trajectories;
  for (std::size_t k = 1; k < flags.positional().size(); ++k) {
    fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[k], flags);
    if (!t.ok()) return Fail(t.status());
    trajectories.push_back(std::move(t).value());
  }
  fm::JoinOptions options;
  // --eps is the join radius ε; --threshold stays as the historical alias.
  options.threshold =
      flags.GetDouble("eps", flags.GetDouble("threshold", 250.0));
  options.use_pruning = !flags.GetBool("no-pruning", false);
  options.use_grid_index = flags.GetBool("grid", false);
  options.threads = Threads(flags);
  fm::JoinStats stats;
  fm::StatusOr<std::vector<fm::JoinPair>> matches =
      DfdSelfJoin(trajectories, Metric(flags), options, &stats);
  if (!matches.ok()) return Fail(matches.status());

  if (flags.GetBool("json", false)) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("join");
    w.Key("inputs");
    w.BeginArray();
    for (std::size_t k = 1; k < flags.positional().size(); ++k) {
      w.String(flags.positional()[k]);
    }
    w.EndArray();
    w.Key("options");
    w.BeginObject();
    w.Key("eps_m");
    w.Double(options.threshold);
    w.Key("pruning");
    w.Bool(options.use_pruning);
    w.Key("grid_index");
    w.Bool(options.use_grid_index);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.Key("threads");
    w.Int(options.threads);
    w.EndObject();
    w.Key("matches");
    w.BeginArray();
    for (const fm::JoinPair& p : matches.value()) {
      w.BeginObject();
      w.Key("left");
      w.String(flags.positional()[p.li + 1]);
      w.Key("right");
      w.String(flags.positional()[p.ri + 1]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("stats");
    w.BeginObject();
    w.Key("pairs_total");
    w.Int(stats.pairs_total);
    w.Key("pruned_bbox");
    w.Int(stats.pruned_bbox);
    w.Key("pruned_endpoints");
    w.Int(stats.pruned_endpoints);
    w.Key("pruned_hausdorff");
    w.Int(stats.pruned_hausdorff);
    w.Key("decided_exact");
    w.Int(stats.decided_exact);
    w.Key("matched");
    w.Int(stats.matched);
    w.EndObject();
    w.EndObject();
    PrintJson(w);
  } else {
    for (const fm::JoinPair& p : matches.value()) {
      std::printf("%s ~ %s\n", flags.positional()[p.li + 1].c_str(),
                  flags.positional()[p.ri + 1].c_str());
    }
    std::printf("%s\n", stats.ToString().c_str());
  }
  return kExitOk;
}

int RunCluster(const fm::Flags& flags) {
  if (flags.positional().size() != 2) return CommandUsage(stderr, "cluster");
  const std::string& path = flags.positional()[1];
  fm::StatusOr<fm::Trajectory> t = Load(path, flags);
  if (!t.ok()) return Fail(t.status());

  fm::ClusterOptions options;
  options.window_length =
      static_cast<fm::Index>(flags.GetInt("window", options.window_length));
  options.stride = static_cast<fm::Index>(flags.GetInt("stride", options.stride));
  options.threshold_m = flags.GetDouble("eps", options.threshold_m);
  options.min_members =
      static_cast<int>(flags.GetInt("min-members", options.min_members));
  fm::ClusterStats stats;
  fm::StatusOr<std::vector<fm::SubtrajectoryCluster>> clusters =
      ClusterSubtrajectories(t.value(), Metric(flags), options, &stats);
  if (!clusters.ok()) return Fail(clusters.status());

  if (flags.GetBool("json", false)) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("cluster");
    w.Key("input");
    w.String(path);
    w.Key("points");
    w.Int(t.value().size());
    w.Key("options");
    w.BeginObject();
    w.Key("window");
    w.Int(options.window_length);
    w.Key("stride");
    w.Int(options.stride);
    w.Key("eps_m");
    w.Double(options.threshold_m);
    w.Key("min_members");
    w.Int(options.min_members);
    w.Key("metric");
    w.String(Metric(flags).Name());
    w.EndObject();
    w.Key("clusters");
    w.BeginArray();
    for (const fm::SubtrajectoryCluster& c : clusters.value()) {
      w.BeginObject();
      w.Key("reference");
      JsonRange(&w, c.reference);
      w.Key("members");
      w.BeginArray();
      for (const fm::SubtrajectoryRef& m : c.members) {
        JsonRange(&w, m);
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndArray();
    w.Key("stats");
    w.BeginObject();
    w.Key("window_pairs");
    w.Int(stats.window_pairs);
    w.Key("pruned_endpoints");
    w.Int(stats.pruned_endpoints);
    w.Key("decided_exact");
    w.Int(stats.decided_exact);
    w.EndObject();
    w.EndObject();
    PrintJson(w);
  } else {
    int rank = 1;
    for (const fm::SubtrajectoryCluster& c : clusters.value()) {
      std::printf("#%d  reference S[%d..%d], %d members:", rank++,
                  c.reference.first, c.reference.last, c.size());
      for (const fm::SubtrajectoryRef& m : c.members) {
        std::printf(" [%d..%d]", m.first, m.last);
      }
      std::printf("\n");
    }
    std::printf("%s\n", stats.ToString().c_str());
  }
  return kExitOk;
}

int RunStats(const fm::Flags& flags) {
  if (flags.positional().size() < 2) return CommandUsage(stderr, "stats");
  const bool json = flags.GetBool("json", false);
  fm::JsonWriter w;
  if (json) {
    w.BeginObject();
    w.Key("command");
    w.String("stats");
    w.Key("trajectories");
    w.BeginArray();
  }
  for (std::size_t k = 1; k < flags.positional().size(); ++k) {
    fm::StatusOr<fm::Trajectory> t = Load(flags.positional()[k], flags);
    if (!t.ok()) return Fail(t.status());
    fm::StatusOr<fm::TrajectorySummary> s =
        Summarize(t.value(), Metric(flags));
    if (!s.ok()) return Fail(s.status());
    if (json) {
      const fm::TrajectorySummary& sum = s.value();
      w.BeginObject();
      w.Key("file");
      w.String(flags.positional()[k]);
      w.Key("points");
      w.Int(sum.num_points);
      w.Key("path_length_m");
      w.Double(sum.path_length_m);
      w.Key("net_displacement_m");
      w.Double(sum.net_displacement_m);
      w.Key("duration_s");
      w.Double(sum.duration_s);
      w.Key("mean_speed_mps");
      w.Double(sum.mean_speed_mps);
      w.Key("median_period_s");
      w.Double(sum.median_period_s);
      w.Key("dropout_events");
      w.Int(sum.dropout_events);
      w.EndObject();
    } else {
      std::printf("== %s ==\n%s\n", flags.positional()[k].c_str(),
                  s.value().ToString().c_str());
    }
  }
  if (json) {
    w.EndArray();
    w.EndObject();
    PrintJson(w);
  }
  return kExitOk;
}

int RunSimplify(const fm::Flags& flags) {
  if (flags.positional().size() != 2 || !flags.Has("out")) {
    return CommandUsage(stderr, "simplify");
  }
  const std::string& path = flags.positional()[1];
  // Deliberately LoadRaw, without the global --simplify-tolerance pass:
  // this command's own --tolerance is the simplification.
  fm::StatusOr<fm::Trajectory> t = LoadRaw(path);
  if (!t.ok()) return Fail(t.status());
  const double tolerance = flags.GetDouble("tolerance", 10.0);
  fm::StatusOr<fm::Trajectory> simplified =
      SimplifyDouglasPeucker(t.value(), tolerance);
  if (!simplified.ok()) return Fail(simplified.status());
  const std::string out_path = flags.GetString("out", "");
  const fm::Status written = Save(simplified.value(), out_path);
  if (!written.ok()) return Fail(written);

  if (flags.GetBool("json", false)) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("simplify");
    w.Key("input");
    w.String(path);
    w.Key("output");
    w.String(out_path);
    w.Key("tolerance_m");
    w.Double(tolerance);
    w.Key("points_before");
    w.Int(t.value().size());
    w.Key("points_after");
    w.Int(simplified.value().size());
    w.EndObject();
    PrintJson(w);
  } else {
    std::printf("%d -> %d points\n", t.value().size(),
                simplified.value().size());
  }
  return kExitOk;
}

int RunGen(const fm::Flags& flags) {
  if (flags.positional().size() != 1) return CommandUsage(stderr, "gen");
  const std::string kind_name = flags.GetString("kind", "geolife");
  fm::DatasetKind kind;
  if (kind_name == "geolife") {
    kind = fm::DatasetKind::kGeoLifeLike;
  } else if (kind_name == "truck") {
    kind = fm::DatasetKind::kTruckLike;
  } else if (kind_name == "baboon") {
    kind = fm::DatasetKind::kBaboonLike;
  } else {
    std::fprintf(stderr, "fmotif: unknown --kind=%s (geolife|truck|baboon)\n",
                 kind_name.c_str());
    return kExitUsage;
  }
  fm::DatasetOptions options;
  options.length = static_cast<fm::Index>(flags.GetInt("n", 5000));
  options.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 42));
  fm::StatusOr<fm::Trajectory> t = fm::MakeDataset(kind, options);
  if (!t.ok()) return Fail(t.status());

  const std::string out_path = flags.GetString("out", "");
  const bool json = flags.GetBool("json", false);
  if (json && out_path.empty()) {
    std::fprintf(stderr, "fmotif: gen --json requires --out "
                         "(data and JSON would interleave on stdout)\n");
    return kExitUsage;
  }
  if (!out_path.empty()) {
    const fm::Status written = Save(t.value(), out_path);
    if (!written.ok()) return Fail(written);
  } else {
    // CSV to stdout, identical to WriteCsv's file format (and like it,
    // locale-independent).
    const bool timed = t.value().has_timestamps();
    std::printf(timed ? "lat,lon,timestamp\n" : "lat,lon\n");
    for (fm::Index i = 0; i < t.value().size(); ++i) {
      std::string row = fm::DoubleToStringFixed(t.value()[i].lat(), 8) + "," +
                        fm::DoubleToStringFixed(t.value()[i].lon(), 8);
      if (timed) {
        row += "," + fm::DoubleToStringFixed(t.value().timestamp(i), 3);
      }
      std::printf("%s\n", row.c_str());
    }
  }

  if (json) {
    fm::JsonWriter w;
    w.BeginObject();
    w.Key("command");
    w.String("gen");
    w.Key("kind");
    w.String(DatasetName(kind));
    w.Key("n");
    w.Int(t.value().size());
    w.Key("seed");
    w.Int(static_cast<std::int64_t>(options.seed));
    w.Key("output");
    w.String(out_path);
    w.EndObject();
    PrintJson(w);
  } else if (!out_path.empty()) {
    std::printf("wrote %d points to %s\n", t.value().size(),
                out_path.c_str());
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  fm::Flags flags;
  const fm::Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "fmotif: %s\n", parsed.ToString().c_str());
    return kExitUsage;
  }
  if (flags.positional().empty()) {
    return Usage(flags.GetBool("help", false) ? stdout : stderr);
  }
  const std::string& command = flags.positional()[0];
  if (flags.GetBool("help", false)) return CommandUsage(stdout, command);
  if (command == "motif") {
    // Back-compat: `motif --topk=N` predates the topk subcommand.
    if (flags.GetInt("topk", 1) > 1) return RunTopK(flags);
    return RunMotif(flags);
  }
  if (command == "stream") return RunStream(flags);
  if (command == "fleet") return RunFleet(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "topk") return RunTopK(flags);
  if (command == "cross") return RunCross(flags);
  if (command == "join") return RunJoin(flags);
  if (command == "cluster") return RunCluster(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "simplify") return RunSimplify(flags);
  if (command == "gen") return RunGen(flags);
  std::fprintf(stderr, "fmotif: unknown command \"%s\"\n\n", command.c_str());
  return Usage(stderr);
}
