#!/usr/bin/env python3
"""Project-specific lint rules no generic tool knows.

Run from anywhere:  python3 tools/fmotif_lint.py [repo_root]
Exit status: 0 = clean, 1 = findings (one per line, file:line: [rule] msg).
Registered as the `fmotif_lint` CTest case and run by the CI lint job.

Rules
-----
locale-format
    The C library's printf("%f"/"%g"/"%e") and strtod/stod/atof honor
    the process-global LC_NUMERIC locale; a host application calling
    setlocale() would corrupt every number the library formats or
    parses (the PR-4 bug class). All data-plane number formatting and
    parsing in library code (src/) must go through util/numeric.*.
    Display-text call sites (stats tables, memory sizes — see the
    contract in util/numeric.h) carry an explicit file- or line-level
    suppression so the exemption is visible where it happens.

layer-dag
    A layer under src/ may include only its own headers and layers
    strictly below it in the documented DAG (src/CMakeLists.txt,
    docs/ARCHITECTURE.md):

        util -> geo -> core -> data/similarity/symbolic
             -> motif/cluster/join -> stream -> durable -> serve

    Peers on the same level must not include each other, and library
    code must never include the public aggregation headers
    (include/frechet_motif/...) — that edge points the other way.

stderr
    Library code must report failures through Status, not by writing
    to the process's stderr (a library cannot assume it owns the
    terminal). Raw fprintf(stderr)/std::cerr in src/ needs a
    suppression explaining why no Status channel exists at that point.

bare-mutex
    New locking in library code must use the annotated wrappers from
    util/mutex.h (Mutex, MutexLock, CondVar) so Clang's
    -Wthread-safety analysis can check the GUARDED_BY/FM_REQUIRES
    contracts. A raw std::mutex / std::lock_guard /
    std::condition_variable gives the analysis nothing to see.
    util/mutex.h itself is the one permitted wrapper site.

fuzz-seed
    Every randomized gtest suite (tests/*fuzz*_test.cc) must derive
    its randomness from test_util.h's FuzzSeed(), which prints the
    seed unconditionally — a fuzz failure that cannot be replayed with
    FMOTIF_FUZZ_SEED=<seed> is lost. Coverage-guided harnesses under
    tests/fuzz/ are corpus-driven (the input is the repro) and must
    define LLVMFuzzerTestOneInput instead.

Suppressions
------------
    // fmotif-lint: allow(<rule>) <justification>          (this line)
    // fmotif-lint-file: allow(<rule>) <justification>     (whole file)
"""

import re
import sys
from pathlib import Path

# Layer levels of the documented DAG. A file in layer L may include
# headers of any layer with a strictly smaller level, plus its own.
LAYER_LEVEL = {
    "util": 0,
    "geo": 1,
    "core": 2,
    "data": 3,
    "similarity": 3,
    "symbolic": 3,
    "motif": 4,
    "cluster": 4,
    "join": 4,
    "stream": 5,
    "durable": 6,
    "serve": 7,
}

LOCALE_PARSE_RE = re.compile(
    r"\b(?:std::)?(?:strtod|strtof|strtold|atof|stod|stof|stold|sscanf|"
    r"vsscanf|fscanf|scanf)\s*\("
)
# A printf-family call whose format string contains a locale-dependent
# floating-point conversion (%f/%e/%g/%a, any flags/width/precision).
PRINTF_CALL_RE = re.compile(
    r"\b(?:std::)?(?:printf|fprintf|snprintf|sprintf|vsnprintf|vsprintf)\s*\("
)
FLOAT_FMT_RE = re.compile(r'"[^"\\]*(?:\\.[^"\\]*)*"')
FLOAT_CONV_RE = re.compile(r"%[-+ #0-9.*hlLqjzt]*[fFeEgGaA]")

STDERR_RE = re.compile(r"\bfprintf\s*\(\s*stderr\b|\bstd::cerr\b")

BARE_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|"
    r"condition_variable(?:_any)?)\b"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')

ALLOW_LINE_RE = re.compile(r"fmotif-lint:\s*allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"fmotif-lint-file:\s*allow\(([a-z-]+)\)")


def strip_comments(text):
    """Blanks out // and /* */ comments, preserving line structure and
    string literals (format strings must stay visible to the rules)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
            elif c == "'":
                state = "char"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append(c)
                out.append(nxt)
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


class Linter:
    def __init__(self, root):
        self.root = Path(root)
        self.findings = []

    def report(self, path, lineno, rule, message):
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path, rules):
        raw = path.read_text(encoding="utf-8", errors="replace")
        file_allows = set(ALLOW_FILE_RE.findall(raw))
        raw_lines = raw.splitlines()
        code_lines = strip_comments(raw).splitlines()
        for idx, code in enumerate(code_lines):
            lineno = idx + 1
            raw_line = raw_lines[idx] if idx < len(raw_lines) else ""
            prev_raw = raw_lines[idx - 1] if idx > 0 else ""
            line_allows = set(
                ALLOW_LINE_RE.findall(raw_line) + ALLOW_LINE_RE.findall(prev_raw)
            )
            allows = file_allows | line_allows
            for rule in rules:
                if rule.NAME in allows:
                    continue
                rule(self, path, lineno, code)

    # ---- per-line rules -------------------------------------------------

    def rule_locale(self, path, lineno, code):
        if LOCALE_PARSE_RE.search(code):
            self.report(
                path, lineno, "locale-format",
                "locale-dependent number parsing in library code; use "
                "util/numeric.h (ParseDouble/from_chars)")
            return
        if PRINTF_CALL_RE.search(code):
            for fmt in FLOAT_FMT_RE.findall(code):
                if FLOAT_CONV_RE.search(fmt):
                    self.report(
                        path, lineno, "locale-format",
                        "locale-dependent %f/%g/%e formatting in library "
                        "code; use util/numeric.h (FormatDouble*)")
                    return

    rule_locale.NAME = "locale-format"

    def rule_stderr(self, path, lineno, code):
        if STDERR_RE.search(code):
            self.report(
                path, lineno, "stderr",
                "library code must report through Status, not stderr")

    rule_stderr.NAME = "stderr"

    def rule_bare_mutex(self, path, lineno, code):
        if BARE_MUTEX_RE.search(code):
            self.report(
                path, lineno, "bare-mutex",
                "raw std:: synchronization in library code is invisible to "
                "-Wthread-safety; use the annotated wrappers in util/mutex.h")

    rule_bare_mutex.NAME = "bare-mutex"

    def make_layer_rule(self, layer):
        level = LAYER_LEVEL[layer]

        def rule(self, path, lineno, code):
            m = INCLUDE_RE.match(code)
            if not m:
                return
            target = m.group(1)
            if target.startswith("frechet_motif/"):
                self.report(
                    path, lineno, "layer-dag",
                    "library code must not include the public aggregation "
                    "headers (the edge points the other way)")
                return
            first = target.split("/", 1)[0]
            if first not in LAYER_LEVEL:
                return  # not a layer-rooted include (system/local header)
            if first != layer and LAYER_LEVEL[first] >= level:
                self.report(
                    path, lineno, "layer-dag",
                    f"layer '{layer}' (level {level}) must not include "
                    f"'{target}' (layer '{first}', level "
                    f"{LAYER_LEVEL[first]}) — see the DAG in "
                    "src/CMakeLists.txt")

        rule.NAME = "layer-dag"
        return rule

    # ---- per-file rules -------------------------------------------------

    def lint_fuzz_suite(self, path):
        text = path.read_text(encoding="utf-8", errors="replace")
        if "FuzzSeed(" not in text:
            self.report(
                path, 1, "fuzz-seed",
                "randomized fuzz suite does not derive its randomness from "
                "FuzzSeed() (tests/test_util.h), so failures print no "
                "replayable seed")

    def lint_fuzz_harness(self, path):
        text = path.read_text(encoding="utf-8", errors="replace")
        if "LLVMFuzzerTestOneInput" not in text:
            self.report(
                path, 1, "fuzz-seed",
                "fuzz harness does not define LLVMFuzzerTestOneInput")

    # ---- driver ---------------------------------------------------------

    def run(self):
        src = self.root / "src"
        for path in sorted(src.rglob("*")):
            if path.suffix not in (".h", ".cc"):
                continue
            rel = path.relative_to(src)
            layer = rel.parts[0]
            rules = [Linter.rule_stderr]
            if layer in LAYER_LEVEL:
                rules.append(self.make_layer_rule(layer))
            # util/mutex.h is where the std:: primitives get wrapped.
            if not (layer == "util" and path.name == "mutex.h"):
                rules.append(Linter.rule_bare_mutex)
            # util/numeric.* is the one place locale-correct formatting
            # is implemented; everything else goes through it.
            if not (layer == "util" and path.stem == "numeric"):
                rules.append(Linter.rule_locale)
            self.lint_file(path, rules)

        tests = self.root / "tests"
        for path in sorted(tests.glob("*fuzz*_test.cc")):
            self.lint_fuzz_suite(path)
        fuzz_dir = tests / "fuzz"
        if fuzz_dir.is_dir():
            for path in sorted(fuzz_dir.glob("fuzz_*.cc")):
                self.lint_fuzz_harness(path)

        return self.findings


def main(argv):
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    if not (root / "src").is_dir():
        print(f"fmotif_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    findings = Linter(root).run()
    for f in findings:
        print(f)
    if findings:
        print(f"fmotif_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("fmotif_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
