#!/usr/bin/env python3
"""Checks that relative markdown links in the repository resolve.

Scans every tracked-directory *.md file for inline links/images
(`[text](target)`) and reference definitions (`[id]: target`), and fails
if a relative target does not exist on disk. External (scheme://),
mailto: and pure-anchor (#...) targets are skipped; a `target#anchor`
only checks the file part. Registered as the `markdown_links` CTest test
and run by CI's docs job, so READMEs cannot accumulate dead pointers.

Usage: check_markdown_links.py [repo_root]
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "node_modules", ".claude"}
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
FENCE = re.compile(r"```.*?```", re.DOTALL)


def find_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    with open(path, encoding="utf-8") as f:
        content = f.read()
    # Fenced code blocks routinely contain bracketed text that is not a
    # link (array indexing, CLI examples); drop them before scanning.
    content = FENCE.sub("", content)
    errors = []
    targets = INLINE_LINK.findall(content) + REFERENCE_DEF.findall(content)
    for target in targets:
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # scheme: / mailto:
            continue
        if target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        base = root if file_part.startswith("/") else os.path.dirname(path)
        resolved = os.path.normpath(os.path.join(base, file_part.lstrip("/")))
        if not os.path.exists(resolved):
            errors.append(f"{os.path.relpath(path, root)}: broken link "
                          f"-> {target}")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = []
    count = 0
    for path in find_markdown_files(root):
        count += 1
        errors.extend(check_file(path, root))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
