// Locale-robustness regression tests: the I/O stack (CSV/GeoJSON/PLT
// writers and readers, the JSON writer, flag parsing) must behave
// identically under a comma-decimal global locale — historically,
// snprintf("%f") serialized "39,9" and strtod("39.9") stopped at the
// decimal point, silently corrupting coordinates on any host application
// that calls setlocale().
//
// The tests activate de_DE.UTF-8 (or another comma-decimal locale). When
// none is installed they *generate* one with localedef into a temp
// directory and point LOCPATH at it, so the round-trip genuinely runs
// under a decimal comma on minimal containers and CI runners alike; they
// skip only when even that fails. This file is its own test binary so the
// global locale never leaks into other suites.

#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/stat.h>

#include "data/io.h"
#include "gtest/gtest.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/numeric.h"

namespace frechet_motif {
namespace {

/// Activates a comma-decimal locale for the lifetime of the object,
/// generating one with localedef when none is installed. ok() is false
/// when no comma-decimal locale could be activated.
class CommaLocale {
 public:
  CommaLocale() {
    previous_ = std::setlocale(LC_ALL, nullptr);
    static const char* kCandidates[] = {"de_DE.UTF-8", "de_DE.utf8",
                                        "fr_FR.UTF-8", "da_DK.UTF-8"};
    for (const char* name : kCandidates) {
      if (Activate(name)) return;
    }
    // Not installed: compile de_DE.UTF-8 from the glibc locale sources
    // into a temp dir and point LOCPATH at it.
    const std::string dir = ::testing::TempDir() + "fmotif_locales";
    ::mkdir(dir.c_str(), 0755);
    const std::string command =
        "localedef -i de_DE -f UTF-8 '" + dir + "/de_DE.UTF-8' >/dev/null 2>&1";
    if (std::system(command.c_str()) != -1) {
      ::setenv("LOCPATH", dir.c_str(), 1);
      set_locpath_ = true;
      if (Activate("de_DE.UTF-8")) return;
    }
  }

  ~CommaLocale() {
    std::setlocale(LC_ALL, previous_.c_str());
    if (set_locpath_) ::unsetenv("LOCPATH");
  }

  bool ok() const { return ok_; }

 private:
  bool Activate(const char* name) {
    if (std::setlocale(LC_ALL, name) == nullptr) return false;
    // Prove the decimal comma is live — otherwise the tests would pass
    // vacuously.
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.1f", 1.5);
    ok_ = std::string(buf) == "1,5";
    if (!ok_) std::setlocale(LC_ALL, previous_.c_str());
    return ok_;
  }

  std::string previous_;
  bool ok_ = false;
  bool set_locpath_ = false;
};

#define REQUIRE_COMMA_LOCALE(guard)                                     \
  if (!(guard).ok()) {                                                  \
    GTEST_SKIP() << "no comma-decimal locale available (setlocale and " \
                    "localedef both failed)";                           \
  }

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Trajectory MakeFractionalTrajectory() {
  std::vector<Point> points = {LatLon(39.98765432, 116.30455678),
                               LatLon(39.98770001, 116.30460002),
                               LatLon(39.98774570, 116.30464541)};
  std::vector<double> times = {1234567890.125, 1234567895.5, 1234567900.875};
  return Trajectory(std::move(points), std::move(times));
}

TEST(LocaleRoundTrip, CsvBytesAndValuesAreLocaleInvariant) {
  const Trajectory t = MakeFractionalTrajectory();
  const std::string comma_path = ::testing::TempDir() + "locale_comma.csv";
  const std::string c_path = ::testing::TempDir() + "locale_c.csv";

  {
    CommaLocale guard;
    REQUIRE_COMMA_LOCALE(guard);
    ASSERT_TRUE(WriteCsv(t, comma_path).ok());
    // Reading back under the comma locale must also work.
    StatusOr<Trajectory> back = ReadCsv(comma_path);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_EQ(t.size(), back.value().size());
    for (Index i = 0; i < t.size(); ++i) {
      EXPECT_DOUBLE_EQ(t[i].lat(), back.value()[i].lat());
      EXPECT_DOUBLE_EQ(t[i].lon(), back.value()[i].lon());
      EXPECT_DOUBLE_EQ(t.timestamp(i), back.value().timestamp(i));
    }
  }
  ASSERT_TRUE(WriteCsv(t, c_path).ok());  // C locale restored here
  EXPECT_EQ(ReadFileBytes(c_path), ReadFileBytes(comma_path))
      << "CSV bytes drifted under the comma locale";
  EXPECT_NE(std::string::npos, ReadFileBytes(c_path).find("39.98765432"));
}

TEST(LocaleRoundTrip, GeoJsonBytesAndValuesAreLocaleInvariant) {
  const Trajectory t = MakeFractionalTrajectory();
  const std::string comma_path =
      ::testing::TempDir() + "locale_comma.geojson";
  const std::string c_path = ::testing::TempDir() + "locale_c.geojson";

  {
    CommaLocale guard;
    REQUIRE_COMMA_LOCALE(guard);
    ASSERT_TRUE(WriteGeoJson(t, comma_path).ok());
    StatusOr<Trajectory> back = ReadGeoJson(comma_path);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_EQ(t.size(), back.value().size());
    for (Index i = 0; i < t.size(); ++i) {
      EXPECT_DOUBLE_EQ(t[i].lat(), back.value()[i].lat());
      EXPECT_DOUBLE_EQ(t[i].lon(), back.value()[i].lon());
      EXPECT_DOUBLE_EQ(t.timestamp(i), back.value().timestamp(i));
    }
  }
  ASSERT_TRUE(WriteGeoJson(t, c_path).ok());
  EXPECT_EQ(ReadFileBytes(c_path), ReadFileBytes(comma_path));
}

TEST(LocaleRoundTrip, PltBytesAreLocaleInvariant) {
  const Trajectory t = MakeFractionalTrajectory();
  const std::string comma_path = ::testing::TempDir() + "locale_comma.plt";
  const std::string c_path = ::testing::TempDir() + "locale_c.plt";
  {
    CommaLocale guard;
    REQUIRE_COMMA_LOCALE(guard);
    ASSERT_TRUE(WritePlt(t, comma_path).ok());
    StatusOr<Trajectory> back = ReadPlt(comma_path);
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_EQ(t.size(), back.value().size());
  }
  ASSERT_TRUE(WritePlt(t, c_path).ok());
  EXPECT_EQ(ReadFileBytes(c_path), ReadFileBytes(comma_path));
}

TEST(LocaleRoundTrip, JsonWriterEmitsDotDecimalsUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);
  JsonWriter w;
  w.BeginObject();
  w.Key("shortest");
  w.Double(12.5);
  w.Key("fixed");
  w.Double(1234567890.125, 3);
  w.Key("tiny");
  w.Double(1.25e-7);
  w.EndObject();
  EXPECT_NE(std::string::npos, w.str().find("12.5"));
  EXPECT_NE(std::string::npos, w.str().find("1234567890.125"));
  EXPECT_NE(std::string::npos, w.str().find("1.25e-07"));
  // The element separators are legitimate commas; decimal commas inside
  // the numbers are not.
  EXPECT_EQ(std::string::npos, w.str().find("12,5"))
      << "JSON grew a decimal comma: " << w.str();
  EXPECT_EQ(std::string::npos, w.str().find("890,125"));
}

TEST(LocaleRoundTrip, ParsersAcceptDotDecimalsUnderCommaLocale) {
  CommaLocale guard;
  REQUIRE_COMMA_LOCALE(guard);

  double lat = 0.0;
  double lon = 0.0;
  double ts = 0.0;
  bool has_ts = false;
  ASSERT_EQ(CsvRow::kPoint, ParseCsvPointRow("39.98765432,116.30455678,7.5",
                                             &lat, &lon, &ts, &has_ts));
  EXPECT_DOUBLE_EQ(39.98765432, lat);
  EXPECT_DOUBLE_EQ(116.30455678, lon);
  ASSERT_TRUE(has_ts);
  EXPECT_DOUBLE_EQ(7.5, ts);

  double v = 0.0;
  EXPECT_TRUE(ParseDoubleC("2.5", &v));
  EXPECT_DOUBLE_EQ(2.5, v);
  EXPECT_TRUE(ParseDoubleC("+1.25e2", &v));
  EXPECT_DOUBLE_EQ(125.0, v);
  EXPECT_FALSE(ParseDoubleC("2,5", &v)) << "decimal comma must not parse";
  EXPECT_FALSE(ParseDoubleC("2.5x", &v));
  EXPECT_FALSE(ParseDoubleC("", &v));
  EXPECT_FALSE(ParseDoubleC("+", &v));
  EXPECT_FALSE(ParseDoubleC("+-3", &v)) << "double sign must not parse";
  // Out-of-range magnitudes saturate like strtod — and do so under the
  // comma locale too.
  EXPECT_TRUE(ParseDoubleC("1.5e999", &v));
  EXPECT_TRUE(std::isinf(v));
  EXPECT_GT(v, 0.0);
  EXPECT_TRUE(ParseDoubleC("-1.5e999", &v));
  EXPECT_TRUE(std::isinf(v));
  EXPECT_LT(v, 0.0);
  EXPECT_TRUE(ParseDoubleC("2.5e-999", &v));
  EXPECT_GE(v, 0.0);
  EXPECT_LT(v, 1e-300);

  const char* argv[] = {"prog", "--eps=2.5"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_DOUBLE_EQ(2.5, flags.GetDouble("eps", 0.0));
}

}  // namespace
}  // namespace frechet_motif
