#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>

namespace frechet_motif {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::Ok().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad xi");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad xi");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad xi");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamInsertionUsesToString) {
  std::ostringstream os;
  os << Status::IoError("disk gone");
  EXPECT_EQ(os.str(), "IoError: disk gone");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<int> v = 7;
  EXPECT_EQ(v.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("payload");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FM_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, ReturnIfErrorEvaluatesExpressionOnce) {
  // A double evaluation here would double-apply side effects at every
  // FM_RETURN_IF_ERROR call site in the library.
  int calls = 0;
  auto counted = [&] {
    ++calls;
    return Status::Ok();
  };
  auto wrapper = [&]() -> Status {
    FM_RETURN_IF_ERROR(counted());
    return Status::Ok();
  };
  EXPECT_TRUE(wrapper().ok());
  EXPECT_EQ(calls, 1);
}

TEST(StatusOrTest, StatusAccessorIsOkWhenHoldingValue) {
  StatusOr<int> v = 3;
  EXPECT_TRUE(v.status().ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOk);
}

TEST(StatusOrTest, ValueOrReturnsFallbackOnError) {
  StatusOr<int> e = Status::NotFound("gone");
  EXPECT_EQ(e.value_or(9), 9);
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(e.status().message(), "gone");
}

TEST(StatusOrTest, MoveOnlyValueMovesOutThroughRvalueValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(42);
  ASSERT_TRUE(v.ok());
  const std::unique_ptr<int> out = std::move(v).value();
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 42);
}

TEST(StatusOrTest, ErrorStateKeepsFullMessageAcrossCopies) {
  const StatusOr<int> e = Status::DataLoss("snap-000007: bad crc");
  const StatusOr<int> copy = e;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_FALSE(copy.ok());
  EXPECT_EQ(copy.status(), e.status());
  EXPECT_EQ(copy.status().ToString(), "DataLoss: snap-000007: bad crc");
}

}  // namespace
}  // namespace frechet_motif
