#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/planted.h"
#include "geo/metric.h"
#include "motif/motif.h"
#include "similarity/frechet.h"

namespace frechet_motif {
namespace {

constexpr MotifAlgorithm kAllAlgorithms[] = {
    MotifAlgorithm::kBruteDp, MotifAlgorithm::kBtm, MotifAlgorithm::kGtm,
    MotifAlgorithm::kGtmStar};

/// End-to-end agreement on realistic data: all four algorithms must return
/// the same motif distance on each emulated dataset.
class DatasetAgreementTest
    : public ::testing::TestWithParam<std::tuple<DatasetKind, std::uint64_t>> {
};

TEST_P(DatasetAgreementTest, AllAlgorithmsAgreeSingleTrajectory) {
  const auto [kind, seed] = GetParam();
  DatasetOptions data_options;
  data_options.length = 280;
  data_options.seed = seed;
  const Trajectory s = MakeDataset(kind, data_options).value();

  FindMotifOptions options;
  options.min_length_xi = 20;
  options.group_size_tau = 8;

  double reference = -1.0;
  for (const MotifAlgorithm algorithm : kAllAlgorithms) {
    options.algorithm = algorithm;
    StatusOr<MotifResult> r = FindMotif(s, Haversine(), options);
    ASSERT_TRUE(r.ok()) << AlgorithmName(algorithm) << ": " << r.status();
    ASSERT_TRUE(r.value().found) << AlgorithmName(algorithm);
    if (reference < 0.0) {
      reference = r.value().distance;
    } else {
      EXPECT_DOUBLE_EQ(r.value().distance, reference)
          << AlgorithmName(algorithm) << " diverged on "
          << DatasetName(kind);
    }
    // The reported pair must reproduce the reported distance.
    const Candidate c = r.value().best;
    const OnTheFlyDistance dist(s, Haversine());
    EXPECT_DOUBLE_EQ(
        DiscreteFrechetOnRange(dist, c.i, c.ie, c.j, c.je).value(),
        r.value().distance);
  }
}

TEST_P(DatasetAgreementTest, AllAlgorithmsAgreeCrossTrajectory) {
  const auto [kind, seed] = GetParam();
  DatasetOptions a_options;
  a_options.length = 180;
  a_options.seed = seed;
  DatasetOptions b_options;
  b_options.length = 200;
  b_options.seed = seed + 500;
  const Trajectory s = MakeDataset(kind, a_options).value();
  const Trajectory t = MakeDataset(kind, b_options).value();

  FindMotifOptions options;
  options.min_length_xi = 15;
  options.group_size_tau = 8;

  double reference = -1.0;
  for (const MotifAlgorithm algorithm : kAllAlgorithms) {
    options.algorithm = algorithm;
    StatusOr<MotifResult> r = FindMotif(s, t, Haversine(), options);
    ASSERT_TRUE(r.ok()) << AlgorithmName(algorithm) << ": " << r.status();
    ASSERT_TRUE(r.value().found);
    if (reference < 0.0) {
      reference = r.value().distance;
    } else {
      EXPECT_DOUBLE_EQ(r.value().distance, reference)
          << AlgorithmName(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, DatasetAgreementTest,
    ::testing::Combine(::testing::ValuesIn(kAllDatasetKinds),
                       ::testing::Values(1u, 2u)));

/// Planted-motif recovery: with a near-exact copy planted, the discovered
/// motif distance must be at most the plant's noise bound, and the
/// discovered pair must essentially overlap the planted regions.
class PlantedRecoveryTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(PlantedRecoveryTest, RecoversPlantedMotif) {
  DatasetOptions data_options;
  data_options.length = 260;
  data_options.seed = 77;
  const Trajectory base = MakeDataset(GetParam(), data_options).value();
  const Index xi = 25;
  const Index segment_length = xi + 10;
  const PlantedMotif planted =
      PlantMotif(base, 40, segment_length, 30, 1.0, 99).value();

  FindMotifOptions options;
  options.min_length_xi = xi;
  options.group_size_tau = 8;
  options.algorithm = MotifAlgorithm::kGtm;
  StatusOr<MotifResult> r = FindMotif(planted.trajectory, Haversine(), options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r.value().found);
  // A valid candidate inside (original, copy) has DFD <= the noise bound;
  // the optimum can only be smaller.
  EXPECT_LE(r.value().distance, planted.dfd_upper_bound_m);
}

INSTANTIATE_TEST_SUITE_P(Datasets, PlantedRecoveryTest,
                         ::testing::ValuesIn(kAllDatasetKinds));

TEST(FindMotifTest, AlgorithmNamesAreStable) {
  EXPECT_EQ(AlgorithmName(MotifAlgorithm::kBruteDp), "BruteDP");
  EXPECT_EQ(AlgorithmName(MotifAlgorithm::kBtm), "BTM");
  EXPECT_EQ(AlgorithmName(MotifAlgorithm::kGtm), "GTM");
  EXPECT_EQ(AlgorithmName(MotifAlgorithm::kGtmStar), "GTM*");
}

TEST(FindMotifTest, PropagatesValidationErrors) {
  DatasetOptions data_options;
  data_options.length = 50;
  const Trajectory s =
      MakeDataset(DatasetKind::kGeoLifeLike, data_options).value();
  FindMotifOptions options;
  options.min_length_xi = 100;  // too long for n=50
  StatusOr<MotifResult> r = FindMotif(s, Haversine(), options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(FindMotifTest, StatsArePopulatedThroughFacade) {
  DatasetOptions data_options;
  data_options.length = 240;
  const Trajectory s =
      MakeDataset(DatasetKind::kTruckLike, data_options).value();
  FindMotifOptions options;
  options.min_length_xi = 20;
  options.algorithm = MotifAlgorithm::kGtm;
  MotifStats stats;
  ASSERT_TRUE(FindMotif(s, Haversine(), options, &stats).ok());
  EXPECT_GT(stats.total_subsets, 0);
  EXPECT_GT(stats.total_seconds(), 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(FindMotifTest, MotifPairIsNonOverlappingInTime) {
  DatasetOptions data_options;
  data_options.length = 240;
  const Trajectory s =
      MakeDataset(DatasetKind::kGeoLifeLike, data_options).value();
  FindMotifOptions options;
  options.min_length_xi = 20;
  StatusOr<MotifResult> r = FindMotif(s, Haversine(), options);
  ASSERT_TRUE(r.ok());
  const MotifResult& result = r.value();
  // Problem 1's i < ie < j < je ordering implies disjoint timestamp
  // intervals on a strictly-increasing clock.
  EXPECT_LT(s.timestamp(result.first().last),
            s.timestamp(result.second().first));
}

}  // namespace
}  // namespace frechet_motif
