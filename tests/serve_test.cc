// Protocol-level unit tests of the serve tier: handshake, commands,
// ingest routing, tolerant parsing, admission control, bounded write
// queues, idle eviction, graceful drain, and the wire-schema golden.
// Everything runs the transport-independent MotifServer core over
// in-memory FaultConn sockets — no network, no clocks, no threads.
// The randomized fault schedules live in serve_fault_test.cc; the
// real-socket loop is covered by serve_integration_test.cc.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fault_socket.h"
#include "geo/metric.h"
#include "gtest/gtest.h"
#include "serve/motif_server.h"
#include "serve_test_util.h"
#include "stream/motif_fleet_engine.h"

namespace frechet_motif {
namespace {

using testing_util::FaultConn;
using testing_util::Frames;
using testing_util::FramesOfType;
using testing_util::HasFrame;
using testing_util::OracleReportFrames;

/// Small, fast engine shape shared by most tests: slides every 2
/// points over an 8-point window, xi=2 so motifs exist quickly.
ServeOptions SmallOptions() {
  ServeOptions options;
  options.fleet.stream.window_length = 8;
  options.fleet.stream.slide_step = 2;
  options.fleet.stream.min_length_xi = 2;
  return options;
}

MotifServer MakeServer(const ServeOptions& options) {
  return std::move(MotifServer::Create(options, Euclidean())).value();
}

/// One ingest row in the fleet CSV dialect.
std::string Row(std::size_t stream, double lat, double lon) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu,%.6f,%.6f\n", stream, lat, lon);
  return buf;
}

FleetArrival Arrival(std::size_t stream, double lat, double lon) {
  FleetArrival a;
  a.stream = stream;
  a.point = LatLon(lat, lon);
  return a;
}

// ---------------------------------------------------------------------------
// Handshake and commands
// ---------------------------------------------------------------------------

TEST(Serve, HelloOnAccept) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  ASSERT_NE(0u, id);
  const std::vector<std::string> hello =
      FramesOfType(conn.TakeOutput(), "hello");
  ASSERT_EQ(1u, hello.size());
  EXPECT_NE(std::string::npos, hello[0].find("\"proto\":1"));
  EXPECT_NE(std::string::npos, hello[0].find("\"durable\":false"));
  EXPECT_EQ(1, server.stats().accepted);
}

TEST(Serve, PingPongAndCaseInsensitiveVerbs) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed("ping\nPiNg\r\n");
  server.OnReadable(id, 0);
  EXPECT_EQ(2u, FramesOfType(conn.TakeOutput(), "pong").size());
}

TEST(Serve, SubscribeModesAndUnsub) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();

  conn.Feed("SUB reports\n");
  server.OnReadable(id, 0);
  std::vector<std::string> subscribed =
      FramesOfType(conn.TakeOutput(), "subscribed");
  ASSERT_EQ(1u, subscribed.size());
  EXPECT_NE(std::string::npos, subscribed[0].find("\"mode\":\"reports\""));

  conn.Feed("SUB\n");  // defaults to all
  server.OnReadable(id, 0);
  subscribed = FramesOfType(conn.TakeOutput(), "subscribed");
  ASSERT_EQ(1u, subscribed.size());
  EXPECT_NE(std::string::npos, subscribed[0].find("\"mode\":\"all\""));

  conn.Feed("SUB nonsense\n");
  server.OnReadable(id, 0);
  EXPECT_TRUE(HasFrame(conn.TakeOutput(), "error"));

  conn.Feed("UNSUB\n");
  server.OnReadable(id, 0);
  EXPECT_TRUE(HasFrame(conn.TakeOutput(), "unsubscribed"));
}

TEST(Serve, QuitFlushesThenCloses) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed("QUIT\n");
  server.OnReadable(id, 0);
  EXPECT_TRUE(HasFrame(conn.TakeOutput(), "bye"));
  EXPECT_TRUE(conn.closed());
  EXPECT_FALSE(server.Connected(id));
}

// ---------------------------------------------------------------------------
// Ingest and parity
// ---------------------------------------------------------------------------

TEST(Serve, SubscriberSeesOracleReportBytes) {
  const ServeOptions options = SmallOptions();
  MotifServer server = MakeServer(options);

  FaultConn sub;
  const MotifServer::ConnId sub_id = server.OnAccept(sub.NewSocket(), 0);
  sub.Feed("SUB reports\n");
  server.OnReadable(sub_id, 0);
  sub.TakeOutput();

  FaultConn feed;
  const MotifServer::ConnId feed_id = server.OnAccept(feed.NewSocket(), 0);
  feed.TakeOutput();

  std::vector<FleetArrival> arrivals;
  for (int i = 0; i < 24; ++i) {
    const double lat = 40.0 + 0.002 * (i % 7);
    const double lon = -70.0 + 0.001 * i;
    arrivals.push_back(Arrival(0, lat, lon));
    feed.Feed(Row(0, lat, lon));
    server.OnReadable(feed_id, 0);
  }

  const std::vector<std::string> got =
      FramesOfType(sub.TakeOutput(), "report");
  const std::vector<std::string> want =
      OracleReportFrames(options.fleet, Euclidean(), arrivals);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(want, got);
  EXPECT_EQ(24, server.stats().points_ingested);
}

TEST(Serve, MultiStreamRowsAutoRegisterStreams) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed(Row(0, 40.0, -70.0));
  conn.Feed(Row(3, 41.0, -71.0));
  server.OnReadable(id, 0);
  EXPECT_EQ(4u, server.engine().stream_count());
  EXPECT_EQ(2, server.stats().points_ingested);
}

TEST(Serve, StatsSeesRowsFedEarlierOnTheSameRead) {
  // STATS is a batch boundary: ingest rows fed before it in the same
  // buffer must already be in the engine when the frame renders.
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed(Row(0, 40.0, -70.0) + Row(0, 40.1, -70.1) + "STATS\n");
  server.OnReadable(id, 0);
  const std::vector<std::string> stats =
      FramesOfType(conn.TakeOutput(), "stats");
  ASSERT_EQ(1u, stats.size());
  EXPECT_NE(std::string::npos, stats[0].find("\"points_ingested\":2"));
}

// ---------------------------------------------------------------------------
// Tolerant parsing
// ---------------------------------------------------------------------------

TEST(Serve, GarbageRowsAnswerErrorsWithoutDisturbingIngest) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed("0,40.0,-70.0\nnot,a,row\n\n0,40.1,-70.1\n0,nan,inf\n");
  server.OnReadable(id, 0);
  const std::string out = conn.TakeOutput();
  EXPECT_EQ(2u, FramesOfType(out, "error").size());
  EXPECT_EQ(2, server.stats().points_ingested);
  EXPECT_EQ(2, server.stats().parse_errors);
  EXPECT_TRUE(server.Connected(id));
}

TEST(Serve, PartialLinesWaitForMoreBytes) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed("0,40.0");
  server.OnReadable(id, 0);
  EXPECT_EQ(0, server.stats().points_ingested);
  conn.Feed(",-70.0\n");
  server.OnReadable(id, 0);
  EXPECT_EQ(1, server.stats().points_ingested);
  EXPECT_EQ(1, server.stats().lines_in);
}

TEST(Serve, OversizedLineIsSwallowedAndAnswered) {
  ServeOptions options = SmallOptions();
  options.limits.max_line_bytes = 32;
  MotifServer server = MakeServer(options);
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();

  // Oversized line delivered across two reads: the payload between the
  // newlines must be discarded, the valid rows around it ingested.
  conn.Feed("0,40.0,-70.0\n" + std::string(40, 'x'));
  server.OnReadable(id, 0);
  conn.Feed(std::string(40, 'y') + "\n0,40.1,-70.1\n");
  server.OnReadable(id, 0);

  const std::string out = conn.TakeOutput();
  EXPECT_TRUE(HasFrame(out, "error"));
  EXPECT_EQ(2, server.stats().points_ingested);
  EXPECT_EQ(1, server.stats().oversized_lines);
  EXPECT_TRUE(server.Connected(id));
}

TEST(Serve, StreamIdPastBoundIsRejectedPerRow) {
  ServeOptions options = SmallOptions();
  options.limits.max_streams = 2;
  MotifServer server = MakeServer(options);
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed(Row(1, 40.0, -70.0) + Row(2, 40.0, -70.0));
  server.OnReadable(id, 0);
  EXPECT_TRUE(HasFrame(conn.TakeOutput(), "error"));
  EXPECT_EQ(1, server.stats().points_ingested);
  EXPECT_EQ(2u, server.engine().stream_count());
}

TEST(Serve, EofDiscardsUnterminatedTrailingBytes) {
  // A torn final frame is not a row: half-close ends the session at
  // the last complete line.
  MotifServer server = MakeServer(SmallOptions());
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed("0,40.0,-70.0\n0,40.1");
  conn.FeedEof();
  server.OnReadable(id, 0);
  EXPECT_EQ(1, server.stats().points_ingested);
  EXPECT_EQ(1, server.stats().closed_by_peer);
  EXPECT_FALSE(server.Connected(id));
  EXPECT_TRUE(conn.closed());
}

// ---------------------------------------------------------------------------
// Admission control and shedding
// ---------------------------------------------------------------------------

TEST(Serve, AtCapacityConnectionsAreShedBusy) {
  ServeOptions options = SmallOptions();
  options.limits.max_connections = 1;
  MotifServer server = MakeServer(options);

  FaultConn first;
  const MotifServer::ConnId id = server.OnAccept(first.NewSocket(), 0);
  ASSERT_NE(0u, id);

  FaultConn second;
  EXPECT_EQ(0u, server.OnAccept(second.NewSocket(), 0));
  EXPECT_TRUE(HasFrame(second.TakeOutput(), "error"));
  EXPECT_TRUE(second.closed());
  EXPECT_EQ(1, server.stats().rejected_busy);

  // The admitted connection is untouched.
  first.TakeOutput();
  first.Feed("PING\n");
  server.OnReadable(id, 0);
  EXPECT_TRUE(HasFrame(first.TakeOutput(), "pong"));
}

TEST(Serve, PendingIngestOverflowEvicts) {
  ServeOptions options = SmallOptions();
  options.limits.max_ingest_pending_bytes = 64;
  options.limits.max_line_bytes = 4096;  // lines may exceed the pending cap
  MotifServer server = MakeServer(options);
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.TakeOutput();
  conn.Feed(std::string(200, 'z'));  // no newline: unparsable pending bytes
  server.OnReadable(id, 0);
  const std::string out = conn.TakeOutput();
  EXPECT_TRUE(HasFrame(out, "error"));
  EXPECT_TRUE(HasFrame(out, "bye"));
  EXPECT_FALSE(server.Connected(id));
  EXPECT_EQ(1, server.stats().evicted_pending_overflow);
}

TEST(Serve, IdleConnectionsAreEvictedOnTick) {
  ServeOptions options = SmallOptions();
  options.limits.idle_timeout_ms = 100;
  MotifServer server = MakeServer(options);
  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 1000);
  conn.TakeOutput();
  server.Tick(1050);
  EXPECT_TRUE(server.Connected(id));
  server.Tick(1101);
  EXPECT_TRUE(HasFrame(conn.output(), "bye"));
  EXPECT_FALSE(server.Connected(id));  // queue flushed synchronously
  EXPECT_EQ(1, server.stats().evicted_idle);
}

// ---------------------------------------------------------------------------
// Bounded write queues
// ---------------------------------------------------------------------------

TEST(Serve, SlowSubscriberDropsOldestAndLearnsViaDroppedFrame) {
  ServeOptions options = SmallOptions();
  options.limits.subscriber_queue_bytes = 256;
  options.limits.subscriber_queue_high_water_bytes = 1 << 20;
  MotifServer server = MakeServer(options);

  FaultConn sub;
  const MotifServer::ConnId sub_id = server.OnAccept(sub.NewSocket(), 0);
  sub.Feed("SUB reports\n");
  server.OnReadable(sub_id, 0);
  sub.TakeOutput();
  sub.StallWrites(1 << 20);  // everything queues

  FaultConn feed;
  const MotifServer::ConnId feed_id = server.OnAccept(feed.NewSocket(), 0);
  feed.TakeOutput();
  for (int i = 0; i < 64; ++i) {
    feed.Feed(Row(0, 40.0 + 0.001 * i, -70.0));
    server.OnReadable(feed_id, 0);
  }

  EXPECT_GT(server.ConnDroppedFrames(sub_id), 0);
  EXPECT_GT(server.stats().frames_dropped, 0);
  EXPECT_TRUE(server.Connected(sub_id));  // bounded, not evicted

  // Once writable again, the subscriber hears how much it lost before
  // the next delivered broadcast.
  sub.StallWrites(0);
  server.OnWritable(sub_id, 0);
  const std::string out = sub.TakeOutput();
  const std::vector<std::string> dropped = FramesOfType(out, "dropped");
  ASSERT_FALSE(dropped.empty());
  EXPECT_NE(std::string::npos, dropped[0].find("\"frames\":"));
}

TEST(Serve, QueuePastHighWaterEvictsSlowSubscriber) {
  ServeOptions options = SmallOptions();
  options.limits.subscriber_queue_bytes = 64;
  options.limits.subscriber_queue_high_water_bytes = 128;
  MotifServer server = MakeServer(options);

  FaultConn sub;
  const MotifServer::ConnId sub_id = server.OnAccept(sub.NewSocket(), 0);
  sub.Feed("SUB all\nPING\nPING\nPING\n");  // non-droppable replies fill
  sub.StallWrites(1 << 20);
  server.OnReadable(sub_id, 0);

  FaultConn feed;
  const MotifServer::ConnId feed_id = server.OnAccept(feed.NewSocket(), 0);
  for (int i = 0; i < 64; ++i) {
    feed.Feed(Row(0, 40.0 + 0.001 * i, -70.0));
    server.OnReadable(feed_id, 0);
  }
  // Eviction is flush-then-close (the bye may still be in flight); the
  // stalled socket never drains, so the grace deadline reaps it.
  EXPECT_EQ(1, server.stats().evicted_slow);
  server.Tick(options.limits.drain_grace_ms + 1);
  EXPECT_FALSE(server.Connected(sub_id));
  EXPECT_EQ(64, server.stats().points_ingested);  // ingest unaffected
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

TEST(Serve, DrainFlushesSubscribersThenCompletes) {
  MotifServer server = MakeServer(SmallOptions());
  FaultConn a;
  FaultConn b;
  const MotifServer::ConnId id_a = server.OnAccept(a.NewSocket(), 0);
  server.OnAccept(b.NewSocket(), 0);
  a.TakeOutput();
  b.TakeOutput();
  a.StallWrites(1);  // one EAGAIN before the bye flushes

  server.BeginDrain(1000);
  EXPECT_TRUE(server.draining());
  EXPECT_TRUE(HasFrame(b.output(), "bye"));
  EXPECT_FALSE(server.DrainComplete());

  server.OnWritable(id_a, 1001);
  EXPECT_TRUE(HasFrame(a.output(), "bye"));
  EXPECT_TRUE(server.DrainComplete());

  // Draining servers shed fresh connections with a bye.
  FaultConn late;
  EXPECT_EQ(0u, server.OnAccept(late.NewSocket(), 1002));
  EXPECT_TRUE(HasFrame(late.TakeOutput(), "bye"));
}

TEST(Serve, DrainForceClosesAfterGrace) {
  ServeOptions options = SmallOptions();
  options.limits.drain_grace_ms = 50;
  MotifServer server = MakeServer(options);
  FaultConn stuck;
  server.OnAccept(stuck.NewSocket(), 0);
  stuck.TakeOutput();
  stuck.StallWrites(1 << 20);

  server.BeginDrain(1000);
  EXPECT_FALSE(server.DrainComplete());
  server.Tick(1049);
  EXPECT_FALSE(server.DrainComplete());
  server.Tick(1051);
  EXPECT_TRUE(server.DrainComplete());
}

// ---------------------------------------------------------------------------
// Wire-schema golden
// ---------------------------------------------------------------------------

/// One sample frame per outbound type, in a deterministic order. This
/// is the serve tier's wire contract: a diff here is a protocol change
/// and must be deliberate (FMOTIF_UPDATE_GOLDEN=1 regenerates).
std::string SampleWireSchema() {
  ServeOptions options = SmallOptions();
  options.limits.max_line_bytes = 64;
  MotifServer server = MakeServer(options);

  FaultConn conn;
  const MotifServer::ConnId id = server.OnAccept(conn.NewSocket(), 0);
  conn.Feed("SUB all\nPING\n");
  server.OnReadable(id, 0);
  for (int i = 0; i < 10; ++i) {
    conn.Feed(Row(0, 40.0 + 0.002 * (i % 3), -70.0 + 0.001 * i));
    server.OnReadable(id, 0);
  }
  conn.Feed("bogus,row\n");
  conn.Feed(std::string(80, 'x') + "\n");
  conn.Feed("STATS\nUNSUB\nQUIT\n");
  server.OnReadable(id, 0);

  std::string schema;
  for (const std::string& frame : Frames(conn.TakeOutput())) {
    schema += frame + "\n";
  }
  return schema;
}

TEST(Serve, WireSchemaMatchesGolden) {
  const std::string golden_path =
      std::string(FMOTIF_GOLDEN_DIR) + "/serve_wire.golden";
  const std::string got = SampleWireSchema();
  if (std::getenv("FMOTIF_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << got;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    GTEST_SKIP() << "golden updated";
  }
  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path
                         << " (run with FMOTIF_UPDATE_GOLDEN=1)";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got);
}

// ---------------------------------------------------------------------------
// Limit validation
// ---------------------------------------------------------------------------

TEST(Serve, CreateRejectsNonsenseLimits) {
  ServeOptions options = SmallOptions();
  options.limits.max_connections = 0;
  EXPECT_FALSE(MotifServer::Create(options, Euclidean()).ok());

  options = SmallOptions();
  options.limits.subscriber_queue_high_water_bytes = 16;
  options.limits.subscriber_queue_bytes = 64;
  EXPECT_FALSE(MotifServer::Create(options, Euclidean()).ok());

  options = SmallOptions();
  options.limits.max_line_bytes = 4;
  EXPECT_FALSE(MotifServer::Create(options, Euclidean()).ok());
}

}  // namespace
}  // namespace frechet_motif
