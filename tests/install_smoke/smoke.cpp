// Consumer smoke test: the quickstart, driven purely through the installed
// public API (<frechet_motif/frechet_motif.h> + find_package).
//
// Mirrors docs/TUTORIAL.md: generate a GeoLife-like trajectory with a
// planted motif, discover the motif with GTM, and check the search found
// the planted copy within its certified DFD bound. Exits non-zero on any
// failure so CI treats a regression as a hard error.

#include <frechet_motif/frechet_motif.h>

#include <cstdio>

namespace fm = frechet_motif;

int main() {
  fm::DatasetOptions dataset_options;
  dataset_options.length = 900;
  dataset_options.seed = 7;
  fm::StatusOr<fm::Trajectory> base =
      fm::MakeDataset(fm::DatasetKind::kGeoLifeLike, dataset_options);
  if (!base.ok()) {
    std::fprintf(stderr, "MakeDataset: %s\n", base.status().ToString().c_str());
    return 1;
  }

  fm::StatusOr<fm::PlantedMotif> planted =
      fm::PlantMotif(base.value(), /*segment_start=*/100,
                     /*segment_length=*/160, /*gap_length=*/80,
                     /*noise_m=*/4.0, /*seed=*/11);
  if (!planted.ok()) {
    std::fprintf(stderr, "PlantMotif: %s\n",
                 planted.status().ToString().c_str());
    return 1;
  }

  fm::FindMotifOptions options;
  options.algorithm = fm::MotifAlgorithm::kGtm;
  options.min_length_xi = 120;
  fm::MotifStats stats;
  fm::StatusOr<fm::MotifResult> result = fm::FindMotif(
      planted.value().trajectory, fm::Haversine(), options, &stats);
  if (!result.ok()) {
    std::fprintf(stderr, "FindMotif: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result.value().found) {
    std::fprintf(stderr, "no motif found in a planted instance\n");
    return 1;
  }
  if (result.value().distance > planted.value().dfd_upper_bound_m) {
    std::fprintf(stderr,
                 "motif distance %.2f m exceeds the planted bound %.2f m\n",
                 result.value().distance, planted.value().dfd_upper_bound_m);
    return 1;
  }

  std::printf("install smoke OK: motif S[%d..%d] ~ S[%d..%d], DFD %.2f m "
              "(bound %.2f m), %lld subsets pruned\n",
              result.value().best.i, result.value().best.ie,
              result.value().best.j, result.value().best.je,
              result.value().distance, planted.value().dfd_upper_bound_m,
              static_cast<long long>(stats.pruned_total()));
  return 0;
}
