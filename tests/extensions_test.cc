// Tests for the supporting extensions: coupling extraction, trajectory
// summaries, Douglas-Peucker simplification and the cached haversine
// provider's bit-equality with fresh evaluation.

#include <gtest/gtest.h>

#include <cmath>

#include "core/distance_matrix.h"
#include "core/trajectory_stats.h"
#include "data/datasets.h"
#include "data/simplify.h"
#include "geo/great_circle.h"
#include "geo/metric.h"
#include "similarity/frechet.h"
#include "test_util.h"

namespace frechet_motif {
namespace {

using testing_util::MakePlanarWalk;

// ----------------------------------------------------------------- coupling

TEST(CouplingTest, DistanceMatchesScalarDfd) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Trajectory a = MakePlanarWalk(20, seed);
    const Trajectory b = MakePlanarWalk(25, seed + 30);
    const Coupling c = DiscreteFrechetCoupling(a, b, Euclidean()).value();
    EXPECT_DOUBLE_EQ(c.distance,
                     DiscreteFrechet(a, b, Euclidean()).value());
  }
}

TEST(CouplingTest, StepsFormMonotonePathCoveringBothEnds) {
  const Trajectory a = MakePlanarWalk(15, 3);
  const Trajectory b = MakePlanarWalk(18, 4);
  const Coupling c = DiscreteFrechetCoupling(a, b, Euclidean()).value();
  ASSERT_FALSE(c.steps.empty());
  EXPECT_EQ(c.steps.front(), (CouplingStep{0, 0}));
  EXPECT_EQ(c.steps.back(), (CouplingStep{14, 17}));
  for (std::size_t k = 1; k < c.steps.size(); ++k) {
    const Index dap = c.steps[k].ap - c.steps[k - 1].ap;
    const Index dbq = c.steps[k].bq - c.steps[k - 1].bq;
    EXPECT_GE(dap, 0);
    EXPECT_GE(dbq, 0);
    EXPECT_LE(dap, 1);
    EXPECT_LE(dbq, 1);
    EXPECT_GE(dap + dbq, 1);  // must advance
  }
}

TEST(CouplingTest, MaxLinkEqualsDistance) {
  const Trajectory a = MakePlanarWalk(22, 5);
  const Trajectory b = MakePlanarWalk(19, 6);
  const Coupling c = DiscreteFrechetCoupling(a, b, Euclidean()).value();
  double worst = 0.0;
  for (const CouplingStep& s : c.steps) {
    worst = std::max(worst, Euclidean().Distance(a[s.ap], b[s.bq]));
  }
  EXPECT_DOUBLE_EQ(worst, c.distance);
}

TEST(CouplingTest, IdenticalTrajectoriesCoupleDiagonally) {
  const Trajectory a = MakePlanarWalk(12, 7);
  const Coupling c = DiscreteFrechetCoupling(a, a, Euclidean()).value();
  EXPECT_DOUBLE_EQ(c.distance, 0.0);
  EXPECT_EQ(c.steps.size(), 12u);  // pure diagonal
}

// ------------------------------------------------------------- summaries

TEST(SummaryTest, RejectsEmpty) {
  Trajectory empty;
  EXPECT_FALSE(Summarize(empty, Euclidean()).ok());
}

TEST(SummaryTest, StraightLineNumbers) {
  Trajectory t;
  for (int k = 0; k < 5; ++k) {
    t.Append(Point(10.0 * k, 0.0), 2.0 * k);
  }
  const TrajectorySummary s = Summarize(t, Euclidean()).value();
  EXPECT_EQ(s.num_points, 5);
  EXPECT_DOUBLE_EQ(s.path_length_m, 40.0);
  EXPECT_DOUBLE_EQ(s.net_displacement_m, 40.0);
  EXPECT_DOUBLE_EQ(s.duration_s, 8.0);
  EXPECT_DOUBLE_EQ(s.mean_speed_mps, 5.0);
  EXPECT_DOUBLE_EQ(s.median_period_s, 2.0);
  EXPECT_EQ(s.dropout_events, 0);
}

TEST(SummaryTest, DetectsDropouts) {
  Trajectory t;
  double clock = 0.0;
  for (int k = 0; k < 50; ++k) {
    clock += (k == 20 || k == 35) ? 50.0 : 1.0;  // two large gaps
    t.Append(Point(static_cast<double>(k), 0.0), clock);
  }
  const TrajectorySummary s = Summarize(t, Euclidean()).value();
  EXPECT_EQ(s.dropout_events, 2);
  EXPECT_DOUBLE_EQ(s.median_period_s, 1.0);
  EXPECT_DOUBLE_EQ(s.max_period_s, 50.0);
}

TEST(SummaryTest, DatasetSummariesAreSane) {
  DatasetOptions d;
  d.length = 400;
  for (const DatasetKind kind : kAllDatasetKinds) {
    const Trajectory t = MakeDataset(kind, d).value();
    const TrajectorySummary s = Summarize(t, Haversine()).value();
    EXPECT_EQ(s.num_points, 400);
    EXPECT_GT(s.path_length_m, 0.0);
    EXPECT_GE(s.path_length_m, s.net_displacement_m);
    EXPECT_GT(s.mean_speed_mps, 0.0);
    EXPECT_LT(s.mean_speed_mps, 50.0) << DatasetName(kind);
    EXPECT_FALSE(s.ToString().empty());
  }
}

// ---------------------------------------------------------- simplification

TEST(SimplifyTest, RejectsBadInputs) {
  Trajectory empty;
  EXPECT_FALSE(SimplifyDouglasPeucker(empty, 1.0).ok());
  const Trajectory t = MakePlanarWalk(10, 1);
  EXPECT_FALSE(SimplifyDouglasPeucker(t, -0.1).ok());
}

TEST(SimplifyTest, KeepsEndpointsAndShrinks) {
  DatasetOptions d;
  d.length = 500;
  const Trajectory t = MakeDataset(DatasetKind::kGeoLifeLike, d).value();
  const Trajectory s = SimplifyDouglasPeucker(t, 15.0).value();
  ASSERT_GE(s.size(), 2);
  EXPECT_LT(s.size(), t.size());
  EXPECT_EQ(s[0], t[0]);
  EXPECT_EQ(s[s.size() - 1], t[t.size() - 1]);
  EXPECT_TRUE(s.has_timestamps());
}

TEST(SimplifyTest, DroppedPointsStayWithinTolerance) {
  DatasetOptions d;
  d.length = 300;
  d.seed = 17;
  const Trajectory t = MakeDataset(DatasetKind::kTruckLike, d).value();
  const double tolerance = 40.0;
  const Trajectory s = SimplifyDouglasPeucker(t, tolerance).value();

  // For each original point, distance to the nearest simplified segment
  // must be <= tolerance (evaluated in the local meter frame).
  const Point origin = t[0];
  auto meters = [&](const Point& p) { return MetersFromOrigin(origin, p); };
  for (Index i = 0; i < t.size(); ++i) {
    const Point p = meters(t[i]);
    double best = std::numeric_limits<double>::infinity();
    for (Index k = 0; k + 1 < s.size(); ++k) {
      const Point a = meters(s[k]);
      const Point b = meters(s[k + 1]);
      const double abx = b.x - a.x;
      const double aby = b.y - a.y;
      const double len_sq = abx * abx + aby * aby;
      double f = len_sq > 0.0
                     ? std::clamp(((p.x - a.x) * abx + (p.y - a.y) * aby) /
                                      len_sq,
                                  0.0, 1.0)
                     : 0.0;
      const double dx = p.x - (a.x + f * abx);
      const double dy = p.y - (a.y + f * aby);
      best = std::min(best, std::sqrt(dx * dx + dy * dy));
    }
    EXPECT_LE(best, tolerance + 1e-6) << "point " << i;
  }
}

TEST(SimplifyTest, ZeroToleranceDropsOnlyCollinearPoints) {
  Trajectory t;
  // Three collinear + one off-line point.
  t.Append(LatLon(40.0, 116.0), 0);
  t.Append(LatLon(40.0, 116.001), 1);
  t.Append(LatLon(40.0, 116.002), 2);
  t.Append(LatLon(40.001, 116.003), 3);
  const Trajectory s = SimplifyDouglasPeucker(t, 0.0).value();
  // The interior collinear point may go; the off-line bend must stay.
  ASSERT_GE(s.size(), 3);
  EXPECT_EQ(s[s.size() - 1], t[3]);
}

TEST(SimplifyTest, TwoPointInputIsUnchanged) {
  Trajectory t({LatLon(1, 2), LatLon(3, 4)});
  const Trajectory s = SimplifyDouglasPeucker(t, 100.0).value();
  EXPECT_EQ(s.size(), 2);
}

// ------------------------------------------------- cached haversine

TEST(CachedHaversineTest, BitIdenticalToFreshEvaluation) {
  DatasetOptions d;
  d.length = 60;
  const Trajectory s = MakeDataset(DatasetKind::kBaboonLike, d).value();
  const CachedHaversineDistance cached(s);
  for (Index i = 0; i < s.size(); ++i) {
    for (Index j = 0; j < s.size(); ++j) {
      // Bit-for-bit, not approximately: GreatCircleDistanceMeters is
      // defined as the same two-step computation.
      EXPECT_EQ(cached.Distance(i, j),
                GreatCircleDistanceMeters(s[i], s[j]));
    }
  }
}

TEST(CachedHaversineTest, CrossFormUsesBothTrajectories) {
  DatasetOptions d;
  d.length = 20;
  const Trajectory a = MakeDataset(DatasetKind::kGeoLifeLike, d).value();
  d.seed = 43;
  const Trajectory b = MakeDataset(DatasetKind::kGeoLifeLike, d).value();
  const CachedHaversineDistance cached(a, b);
  EXPECT_EQ(cached.rows(), 20);
  EXPECT_EQ(cached.cols(), 20);
  EXPECT_EQ(cached.Distance(3, 7), GreatCircleDistanceMeters(a[3], b[7]));
  EXPECT_GT(cached.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace frechet_motif
